//! The `rtcm` command-line tool. See `rtcm help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rtcm::cli::run(&args) {
        Ok(output) => println!("{output}"),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(1);
        }
    }
}
