//! The `rtcm` command-line tool: validate workload specifications, run the
//! configuration engine, and simulate strategy combinations — the
//! downstream-user face of the middleware.
//!
//! ```text
//! rtcm combos
//! rtcm validate <spec-file>
//! rtcm analyze  <spec-file>
//! rtcm plan     <spec-file> [--combo L] [--answers C1,C3,C2,OV] [--format xml|json|summary]
//! rtcm simulate <spec-file> --combo L [--horizon-secs N] [--seed N] [--ideal] [--poisson-factor F]
//! ```
//!
//! `--answers` takes the paper's Figure-4 notation, in question order:
//! job skipping (Y/N), replicated components (Y/N), state persistence
//! (Y/N), overhead tolerance (N/PT/PJ) — e.g. `--answers N,Y,Y,PT`.

use std::fmt;

use rtcm_config::{configure, configure_with, CpsCharacteristics, OverheadTolerance, WorkloadSpec};
use rtcm_core::analysis::analyze;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::time::Duration;
use rtcm_sim::{simulate, OverheadModel, SimConfig};
use rtcm_workload::{ArrivalConfig, ArrivalTrace};

/// Errors reported to the CLI user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Wrong invocation; the message includes usage help.
    Usage(String),
    /// The spec file could not be read.
    Io(String),
    /// Parsing, validation or engine failure.
    Failed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            CliError::Io(msg) => write!(f, "io error: {msg}"),
            CliError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

const USAGE: &str = "\
rtcm <command> [options]

commands:
  combos                      list the 15 valid strategy combinations
  validate <spec-file>        parse and validate a workload specification
  analyze  <spec-file>        design-time AUB feasibility report
  plan     <spec-file>        run the configuration engine
      --combo <L>             explicit combination label, e.g. J_J_T
      --answers <a,b,c,d>     questionnaire answers, e.g. N,Y,Y,PT
      --format xml|json|summary   output format (default summary)
  simulate <spec-file>        simulate the spec under one combination
      --combo <L>             combination label (default T_T_T)
      --horizon-secs <N>      virtual horizon (default 60)
      --seed <N>              arrival/jitter seed (default 0)
      --poisson-factor <F>    aperiodic mean interarrival factor (default 2.0)
      --ideal                 zero middleware overheads";

/// Executes one CLI invocation (without the leading program name) and
/// returns the text to print.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => Ok(USAGE.to_owned()),
        Some("combos") => Ok(combos()),
        Some("validate") => {
            let spec = load_spec(&mut it)?;
            no_more(&mut it)?;
            Ok(format!(
                "ok: workload \"{}\": {} tasks on {} processors",
                spec.name,
                spec.tasks.len(),
                spec.processors
            ))
        }
        Some("analyze") => {
            let spec = load_spec(&mut it)?;
            no_more(&mut it)?;
            let tasks = spec.to_task_set().map_err(|e| CliError::Failed(e.to_string()))?;
            Ok(analyze(&tasks).to_string())
        }
        Some("plan") => plan(&mut it),
        Some("simulate") => simulate_cmd(&mut it),
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn combos() -> String {
    let mut out = String::from("valid strategy combinations (AC_IR_LB):\n");
    for c in ServiceConfig::all_valid() {
        out.push_str(&format!("  {}\n", c.label()));
    }
    out.push_str("invalid (rejected by the engine):\n");
    for c in ServiceConfig::all().into_iter().filter(|c| !c.is_valid()) {
        out.push_str(&format!("  {}\n", c.label()));
    }
    out
}

fn load_spec<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<WorkloadSpec, CliError> {
    let path = it.next().ok_or_else(|| CliError::Usage("missing <spec-file>".into()))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    WorkloadSpec::parse(&text).map_err(|e| CliError::Failed(format!("{path}: {e}")))
}

fn no_more<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<(), CliError> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(CliError::Usage(format!("unexpected argument {extra:?}"))),
    }
}

fn parse_answers(s: &str) -> Result<CpsCharacteristics, CliError> {
    let parts: Vec<&str> = s.split(',').collect();
    let [skip, repl, persist, overhead] = parts.as_slice() else {
        return Err(CliError::Usage(format!(
            "--answers needs 4 comma-separated values (got {s:?})"
        )));
    };
    let yn = |v: &str, q: &str| match v {
        "Y" | "y" => Ok(true),
        "N" | "n" => Ok(false),
        _ => Err(CliError::Usage(format!("{q} must be Y or N (got {v:?})"))),
    };
    let overhead = match *overhead {
        "N" | "n" => OverheadTolerance::None,
        "PT" | "pt" => OverheadTolerance::PerTask,
        "PJ" | "pj" => OverheadTolerance::PerJob,
        other => {
            return Err(CliError::Usage(format!(
                "overhead tolerance must be N, PT or PJ (got {other:?})"
            )))
        }
    };
    Ok(CpsCharacteristics {
        job_skipping: yn(skip, "job skipping")?,
        component_replication: yn(repl, "component replication")?,
        state_persistency: yn(persist, "state persistence")?,
        overhead_tolerance: overhead,
    })
}

fn parse_combo(s: &str) -> Result<ServiceConfig, CliError> {
    s.parse().map_err(|e: rtcm_core::strategy::ParseConfigError| CliError::Usage(e.to_string()))
}

fn plan<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<String, CliError> {
    let spec = load_spec(it)?;
    let mut combo: Option<ServiceConfig> = None;
    let mut answers: Option<CpsCharacteristics> = None;
    let mut format = "summary".to_owned();
    while let Some(flag) = it.next() {
        match flag {
            "--combo" => {
                let v = it.next().ok_or_else(|| CliError::Usage("--combo needs a value".into()))?;
                combo = Some(parse_combo(v)?);
            }
            "--answers" => {
                let v =
                    it.next().ok_or_else(|| CliError::Usage("--answers needs a value".into()))?;
                answers = Some(parse_answers(v)?);
            }
            "--format" => {
                let v =
                    it.next().ok_or_else(|| CliError::Usage("--format needs a value".into()))?;
                format = v.to_owned();
            }
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    if combo.is_some() && answers.is_some() {
        return Err(CliError::Usage("--combo and --answers are mutually exclusive".into()));
    }
    let deployment = match combo {
        Some(services) => {
            configure_with(&spec, services).map_err(|e| CliError::Failed(e.to_string()))?
        }
        None => {
            let answers = answers.unwrap_or_default();
            configure(&spec, &answers).map_err(|e| CliError::Failed(e.to_string()))?
        }
    };
    match format.as_str() {
        "summary" => Ok(rtcm_config::summarize(&deployment)),
        "xml" => Ok(deployment.plan.to_xml()),
        "json" => serde_json::to_string_pretty(&deployment.plan)
            .map_err(|e| CliError::Failed(e.to_string())),
        other => {
            Err(CliError::Usage(format!("unknown format {other:?} (use xml, json or summary)")))
        }
    }
}

fn simulate_cmd<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<String, CliError> {
    let spec = load_spec(it)?;
    let mut combo = ServiceConfig::default_per_task();
    let mut horizon = 60u64;
    let mut seed = 0u64;
    let mut poisson = 2.0f64;
    let mut ideal = false;
    while let Some(flag) = it.next() {
        match flag {
            "--combo" => {
                let v = it.next().ok_or_else(|| CliError::Usage("--combo needs a value".into()))?;
                combo = parse_combo(v)?;
            }
            "--horizon-secs" => {
                let v = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::Usage("--horizon-secs needs a number".into()))?;
                horizon = v;
            }
            "--seed" => {
                let v = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::Usage("--seed needs a number".into()))?;
                seed = v;
            }
            "--poisson-factor" => {
                let v = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::Usage("--poisson-factor needs a number".into()))?;
                poisson = v;
            }
            "--ideal" => ideal = true,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let tasks = spec.to_task_set().map_err(|e| CliError::Failed(e.to_string()))?;
    let trace = ArrivalTrace::generate(
        &tasks,
        &ArrivalConfig {
            horizon: Duration::from_secs(horizon),
            poisson_factor: poisson,
            ..ArrivalConfig::default()
        },
        seed,
    );
    let cfg = SimConfig {
        services: combo,
        overheads: if ideal { OverheadModel::zero() } else { OverheadModel::paper_calibrated() },
        seed,
    };
    let report = simulate(&tasks, &trace, &cfg).map_err(|e| CliError::Failed(e.to_string()))?;
    Ok(format!(
        "workload \"{}\" under {} for {horizon}s (seed {seed}):\n\
         \x20 arrivals:                  {}\n\
         \x20 accepted utilization ratio: {:.3}\n\
         \x20 jobs completed:            {}\n\
         \x20 deadline misses:           {}\n\
         \x20 mean response:             {:.2} ms\n\
         \x20 idle-reset reports:        {}",
        spec.name,
        combo,
        trace.len(),
        report.ratio.ratio(),
        report.jobs_completed,
        report.deadline_misses,
        report.response.mean().as_secs_f64() * 1e3,
        report.ir_reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    fn spec_file() -> std::path::PathBuf {
        // Tests run in parallel: every call gets its own file.
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!("rtcm-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("spec-{n}.txt"));
        std::fs::write(
            &path,
            "workload cli-test\nprocessors 2\n\
             task scan periodic period=200ms\n  subtask exec=5ms proc=0 replicas=1\n\
             task alert aperiodic deadline=100ms\n  subtask exec=2ms proc=1\n",
        )
        .unwrap();
        path
    }

    #[test]
    fn help_and_empty() {
        assert!(run(&args(&["help"])).unwrap().contains("commands:"));
        assert!(run(&[]).unwrap().contains("commands:"));
    }

    #[test]
    fn combos_lists_fifteen_plus_three() {
        let out = run(&args(&["combos"])).unwrap();
        assert_eq!(out.matches("\n  ").count(), 18);
        assert!(out.contains("J_J_J"));
        assert!(out.contains("invalid"));
    }

    #[test]
    fn validate_and_analyze() {
        let path = spec_file();
        let out = run(&args(&["validate", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("cli-test"));
        let out = run(&args(&["analyze", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("feasibility"));
    }

    #[test]
    fn plan_with_answers_and_formats() {
        let path = spec_file();
        let p = path.to_str().unwrap();
        let summary = run(&args(&["plan", p, "--answers", "N,Y,Y,PT"])).unwrap();
        assert!(summary.contains("T_T_T"));
        let xml = run(&args(&["plan", p, "--combo", "J_J_T", "--format", "xml"])).unwrap();
        assert!(xml.contains("Central-AC"));
        let json = run(&args(&["plan", p, "--format", "json"])).unwrap();
        assert!(json.contains("\"instances\""));
    }

    #[test]
    fn plan_rejects_invalid_combo_and_conflicts() {
        let path = spec_file();
        let p = path.to_str().unwrap();
        let err = run(&args(&["plan", p, "--combo", "T_J_N"])).unwrap_err();
        assert!(matches!(err, CliError::Failed(_)));
        let err =
            run(&args(&["plan", p, "--combo", "J_N_N", "--answers", "Y,Y,Y,PT"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn simulate_produces_report() {
        let path = spec_file();
        let out = run(&args(&[
            "simulate",
            path.to_str().unwrap(),
            "--combo",
            "J_J_J",
            "--horizon-secs",
            "5",
            "--ideal",
        ]))
        .unwrap();
        assert!(out.contains("accepted utilization ratio"));
        assert!(out.contains("deadline misses:           0"));
    }

    #[test]
    fn usage_errors_are_helpful() {
        assert!(matches!(run(&args(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["validate"])), Err(CliError::Usage(_))));
        let err = run(&args(&["validate", "/nonexistent/file"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
        let path = spec_file();
        let err = run(&args(&["simulate", path.to_str().unwrap(), "--combo", "X"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn answers_parser_accepts_paper_notation() {
        let c = parse_answers("N,Y,Y,PT").unwrap();
        assert!(!c.job_skipping);
        assert!(c.component_replication);
        assert!(c.state_persistency);
        assert_eq!(c.overhead_tolerance, OverheadTolerance::PerTask);
        assert!(parse_answers("Y,N").is_err());
        assert!(parse_answers("Q,Y,Y,PT").is_err());
        assert!(parse_answers("Y,Y,Y,XX").is_err());
    }
}
