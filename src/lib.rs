//! # rtcm — Reconfigurable Real-Time Component Middleware
//!
//! Facade crate re-exporting the full **rtcm** workspace: a from-scratch
//! Rust reproduction of *"Reconfigurable Real-Time Middleware for
//! Distributed Cyber-Physical Systems with Aperiodic Events"* (Zhang, Gill
//! & Lu, ICDCS 2008 / WUCSE-2008-5).
//!
//! * [`core`] — task model, AUB/EDMS analysis, AC/IR/LB service logic.
//! * [`workload`] — the paper's §7.1/§7.2 workload generators.
//! * [`sim`] — deterministic discrete-event simulator substrate.
//! * [`events`] — federated event channel substrate.
//! * [`rt`] — threaded runtime with wall-clock overhead instrumentation.
//! * [`config`] — front-end configuration engine and deployment plans.
//! * [`telemetry`] — lock-free metrics, OAM scrape endpoint, job tracer.
//!
//! See `examples/quickstart.rs` for a guided tour, and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

pub use rtcm_config as config;
pub use rtcm_core as core;
pub use rtcm_events as events;
pub use rtcm_rt as rt;
pub use rtcm_sim as sim;
pub use rtcm_telemetry as telemetry;
pub use rtcm_workload as workload;

/// Widely used types from across the workspace.
pub mod prelude {
    pub use rtcm_core::prelude::*;
}
