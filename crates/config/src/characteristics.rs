//! The CPS characteristics questionnaire (§4.1, §6) and its Table-1
//! mapping onto middleware strategies.
//!
//! The front-end configuration engine asks the application developer four
//! questions:
//!
//! 1. Does your application allow job skipping? (criterion **C1**)
//! 2. Does your application have replicated components? (criterion **C3**)
//! 3. Does your application require state persistence? (criterion **C2**)
//! 4. How much extra overhead can you accept as it potentially improves
//!    schedulability? — none (N), some per task (PT), some per job (PJ)
//!
//! and maps the answers to strategies per Table 1:
//!
//! | criterion | No | Yes |
//! |---|---|---|
//! | C1 job skipping | AC per task | AC per job |
//! | C2 state persistency | LB per job | LB per task |
//! | C3 component replication | no LB | LB |
//!
//! with the overhead answer selecting the idle-resetting strategy. The
//! mapping never emits an invalid combination: a per-job overhead budget
//! combined with no-job-skipping (AC per task) is downgraded to IR per
//! task, and the adjustment is reported.

use std::fmt;

use serde::{Deserialize, Serialize};

use rtcm_core::strategy::{AcStrategy, IrStrategy, LbStrategy, ServiceConfig};

/// Answer to question 4: tolerable overhead for improved schedulability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum OverheadTolerance {
    /// No extra overhead (N) — idle resetting disabled.
    None,
    /// Some overhead per task (PT) — the paper's default.
    #[default]
    PerTask,
    /// Some overhead per job (PJ).
    PerJob,
}

impl fmt::Display for OverheadTolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OverheadTolerance::None => "N",
            OverheadTolerance::PerTask => "PT",
            OverheadTolerance::PerJob => "PJ",
        })
    }
}

/// The developer's answers to the four questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpsCharacteristics {
    /// C1: may individual jobs of an admitted task be skipped?
    pub job_skipping: bool,
    /// C3: are application components replicated across processors?
    pub component_replication: bool,
    /// C2: must state persist between jobs of the same task?
    pub state_persistency: bool,
    /// Question 4: tolerable overhead.
    pub overhead_tolerance: OverheadTolerance,
}

impl Default for CpsCharacteristics {
    /// The paper's default configuration settings: "per task admission
    /// control, idle resetting and load balancing" (§6) — i.e. no job
    /// skipping, replicated stateful components, PT overhead.
    fn default() -> Self {
        CpsCharacteristics {
            job_skipping: false,
            component_replication: true,
            state_persistency: true,
            overhead_tolerance: OverheadTolerance::PerTask,
        }
    }
}

/// A strategy mapping plus any adjustments made to keep it valid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedConfig {
    /// The selected (always valid) combination.
    pub services: ServiceConfig,
    /// Human-readable notes about downgrades applied by the engine.
    pub adjustments: Vec<String>,
}

impl CpsCharacteristics {
    /// Applies the Table-1 mapping, downgrading contradictions (§4.5) and
    /// reporting every adjustment.
    #[must_use]
    pub fn map(&self) -> MappedConfig {
        let mut adjustments = Vec::new();

        let ac = if self.job_skipping { AcStrategy::PerJob } else { AcStrategy::PerTask };

        let lb = if !self.component_replication {
            LbStrategy::None
        } else if self.state_persistency {
            LbStrategy::PerTask
        } else {
            LbStrategy::PerJob
        };

        let mut ir = match self.overhead_tolerance {
            OverheadTolerance::None => IrStrategy::None,
            OverheadTolerance::PerTask => IrStrategy::PerTask,
            OverheadTolerance::PerJob => IrStrategy::PerJob,
        };
        if ac == AcStrategy::PerTask && ir == IrStrategy::PerJob {
            ir = IrStrategy::PerTask;
            adjustments.push(
                "per-job idle resetting contradicts per-task admission control \
                 (no job skipping); downgraded idle resetting to per-task"
                    .to_owned(),
            );
        }

        let services = ServiceConfig::new(ac, ir, lb);
        debug_assert!(services.is_valid());
        MappedConfig { services, adjustments }
    }

    /// The four questions as the engine presents them (§6).
    #[must_use]
    pub fn questions() -> [&'static str; 4] {
        [
            "Does your application allow job skipping?",
            "Does your application have replicated components?",
            "Does your application require state persistence?",
            "How much extra overhead can you accept as it potentially improves \
             schedulability? [none (N), some per task (PT), some per job (PJ)]",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(
        job_skipping: bool,
        replication: bool,
        persistency: bool,
        overhead: OverheadTolerance,
    ) -> CpsCharacteristics {
        CpsCharacteristics {
            job_skipping,
            component_replication: replication,
            state_persistency: persistency,
            overhead_tolerance: overhead,
        }
    }

    #[test]
    fn paper_example_maps_to_all_per_task() {
        // Figure 4's example answers: 1. N, 2. Y, 3. Y, 4. PT -> all PT.
        let m = chars(false, true, true, OverheadTolerance::PerTask).map();
        assert_eq!(m.services.label(), "T_T_T");
        assert!(m.adjustments.is_empty());
    }

    #[test]
    fn table1_c1_drives_ac() {
        assert_eq!(
            chars(false, true, true, OverheadTolerance::None).map().services.ac,
            AcStrategy::PerTask
        );
        assert_eq!(
            chars(true, true, true, OverheadTolerance::None).map().services.ac,
            AcStrategy::PerJob
        );
    }

    #[test]
    fn table1_c3_gates_lb_and_c2_selects_granularity() {
        assert_eq!(
            chars(true, false, false, OverheadTolerance::None).map().services.lb,
            LbStrategy::None
        );
        assert_eq!(
            chars(true, true, true, OverheadTolerance::None).map().services.lb,
            LbStrategy::PerTask
        );
        assert_eq!(
            chars(true, true, false, OverheadTolerance::None).map().services.lb,
            LbStrategy::PerJob
        );
    }

    #[test]
    fn overhead_selects_ir() {
        assert_eq!(
            chars(true, true, true, OverheadTolerance::None).map().services.ir,
            IrStrategy::None
        );
        assert_eq!(
            chars(true, true, true, OverheadTolerance::PerTask).map().services.ir,
            IrStrategy::PerTask
        );
        assert_eq!(
            chars(true, true, true, OverheadTolerance::PerJob).map().services.ir,
            IrStrategy::PerJob
        );
    }

    #[test]
    fn contradiction_is_downgraded_and_reported() {
        let m = chars(false, true, true, OverheadTolerance::PerJob).map();
        assert_eq!(m.services.label(), "T_T_T");
        assert_eq!(m.adjustments.len(), 1);
        assert!(m.adjustments[0].contains("downgraded"));
    }

    #[test]
    fn every_answer_combination_maps_to_a_valid_config() {
        for skipping in [false, true] {
            for replication in [false, true] {
                for persistency in [false, true] {
                    for overhead in [
                        OverheadTolerance::None,
                        OverheadTolerance::PerTask,
                        OverheadTolerance::PerJob,
                    ] {
                        let m = chars(skipping, replication, persistency, overhead).map();
                        assert!(
                            m.services.is_valid(),
                            "answers ({skipping},{replication},{persistency},{overhead}) \
                             produced invalid {}",
                            m.services
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn default_is_paper_default() {
        let m = CpsCharacteristics::default().map();
        assert_eq!(m.services, ServiceConfig::default_per_task());
    }

    #[test]
    fn questions_are_four() {
        assert_eq!(CpsCharacteristics::questions().len(), 4);
        assert!(CpsCharacteristics::questions()[3].contains("PT"));
    }
}
