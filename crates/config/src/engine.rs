//! The front-end configuration engine (§6): workload spec + developer
//! answers in, validated deployment plan out.
//!
//! The engine:
//!
//! 1. parses/validates the [`WorkloadSpec`];
//! 2. maps [`CpsCharacteristics`] to service strategies per Table 1 — or
//!    takes an explicit [`ServiceConfig`] and *rejects invalid
//!    combinations* (the paper's feasibility check);
//! 3. assigns EDMS priorities "in order of tasks' end-to-end deadlines";
//! 4. emits the deployment plan: one AC and one LB instance on the
//!    `task-manager` node, one TE and one IR instance per application
//!    processor, and one subtask component instance per (subtask ×
//!    candidate processor) — duplicates included — with execution time,
//!    priority and strategy attributes as configuration properties.

use std::collections::HashMap;
use std::fmt;

use rtcm_core::priority::{assign_edms, Priority};
use rtcm_core::strategy::{AcStrategy, InvalidConfigError, ServiceConfig};
use rtcm_core::task::{TaskId, TaskSet};

use crate::characteristics::CpsCharacteristics;
use crate::plan::{ComponentType, Connection, DeploymentPlan, Instance, PropValue};
use crate::spec::{SpecError, WorkloadSpec};

/// Node name of the central task manager.
pub const TASK_MANAGER_NODE: &str = "task-manager";

/// Node name of application processor `p`.
#[must_use]
pub fn app_node(p: u16) -> String {
    format!("app-{p}")
}

/// The engine's output: everything the runtime launcher needs.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The selected (valid) strategy combination.
    pub services: ServiceConfig,
    /// Adjustments the engine made to keep the combination valid.
    pub adjustments: Vec<String>,
    /// Design-time feasibility warnings (tasks that cannot be admitted,
    /// saturated processors); deployment proceeds, but the developer is
    /// told.
    pub warnings: Vec<String>,
    /// The task model.
    pub tasks: TaskSet,
    /// EDMS priorities per task.
    pub priorities: HashMap<TaskId, Priority>,
    /// Number of application processors.
    pub processors: u16,
    /// The generated deployment plan.
    pub plan: DeploymentPlan,
}

/// Errors from the configuration engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The workload specification is invalid.
    Spec(SpecError),
    /// An explicitly requested strategy combination is invalid (§4.5).
    InvalidCombination(InvalidConfigError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Spec(e) => write!(f, "workload specification: {e}"),
            EngineError::InvalidCombination(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SpecError> for EngineError {
    fn from(e: SpecError) -> Self {
        EngineError::Spec(e)
    }
}

impl From<InvalidConfigError> for EngineError {
    fn from(e: InvalidConfigError) -> Self {
        EngineError::InvalidCombination(e)
    }
}

fn strategy_value(letter: char) -> PropValue {
    PropValue::Str(
        match letter {
            'N' => "N",
            'T' => "PT",
            'J' => "PJ",
            _ => unreachable!("strategy letters are N/T/J"),
        }
        .to_owned(),
    )
}

/// Maps the developer's characteristics to strategies and builds the plan.
///
/// # Errors
///
/// Returns [`EngineError::Spec`] for invalid workload specifications. The
/// characteristics mapping itself cannot produce invalid combinations.
pub fn configure(
    spec: &WorkloadSpec,
    answers: &CpsCharacteristics,
) -> Result<Deployment, EngineError> {
    let mapped = answers.map();
    build(spec, mapped.services, mapped.adjustments)
}

/// Builds a deployment for an explicitly chosen strategy combination.
///
/// # Errors
///
/// Returns [`EngineError::InvalidCombination`] for the contradictory
/// AC-per-task + IR-per-job combinations — "a developer might specify
/// incompatible service configuration combinations, \[so\] our approach
/// should be able to detect and disallow them" — and
/// [`EngineError::Spec`] for invalid workload specifications.
pub fn configure_with(
    spec: &WorkloadSpec,
    services: ServiceConfig,
) -> Result<Deployment, EngineError> {
    services.validate()?;
    build(spec, services, Vec::new())
}

fn build(
    spec: &WorkloadSpec,
    services: ServiceConfig,
    adjustments: Vec<String>,
) -> Result<Deployment, EngineError> {
    let tasks = spec.to_task_set()?;
    let priorities = assign_edms(&tasks);

    // Design-time feasibility check (core::analysis): warn, don't refuse —
    // per-job admission control may still admit partial load.
    let feasibility = rtcm_core::analysis::analyze(&tasks);
    let mut warnings = Vec::new();
    for id in feasibility.never_admittable() {
        let name = tasks.get(id).map_or("?", |t| t.name());
        warnings.push(format!(
            "task {id} ({name}) exceeds the AUB bound even alone and can never be admitted"
        ));
    }
    for id in feasibility.contended() {
        let name = tasks.get(id).map_or("?", |t| t.name());
        warnings.push(format!(
            "task {id} ({name}) fails the AUB bound when all tasks are simultaneously \
             current; expect rejections under worst-case phasing"
        ));
    }
    for p in feasibility.saturated_processors() {
        warnings.push(format!(
            "processor {p} reaches synthetic utilization ≥ 1 with all tasks current"
        ));
    }

    let mut instances = Vec::new();
    let mut connections = Vec::new();

    // Central services on the task manager.
    instances.push(Instance {
        id: "Central-AC".into(),
        component: ComponentType::AdmissionController,
        node: TASK_MANAGER_NODE.into(),
        properties: vec![
            ("AC_Strategy".into(), strategy_value(services.ac.letter())),
            ("LB_Strategy".into(), strategy_value(services.lb.letter())),
        ],
    });
    instances.push(Instance {
        id: "Central-LB".into(),
        component: ComponentType::LoadBalancer,
        node: TASK_MANAGER_NODE.into(),
        properties: vec![("LB_Strategy".into(), strategy_value(services.lb.letter()))],
    });
    connections.push(Connection {
        from_instance: "Central-AC".into(),
        from_port: "location".into(),
        to_instance: "Central-LB".into(),
        to_port: "location".into(),
    });

    // Per-processor infrastructure.
    for p in 0..spec.processors {
        let te_id = format!("TE-{p}");
        instances.push(Instance {
            id: te_id.clone(),
            component: ComponentType::TaskEffector,
            node: app_node(p),
            properties: vec![
                ("ProcessorId".into(), PropValue::U32(u32::from(p))),
                (
                    "ReleaseGuard".into(),
                    PropValue::Str(
                        match services.ac {
                            AcStrategy::PerTask => "per-task",
                            AcStrategy::PerJob => "per-job",
                        }
                        .into(),
                    ),
                ),
            ],
        });
        let ir_id = format!("IR-{p}");
        instances.push(Instance {
            id: ir_id.clone(),
            component: ComponentType::IdleResetter,
            node: app_node(p),
            properties: vec![
                ("ProcessorId".into(), PropValue::U32(u32::from(p))),
                ("IR_Strategy".into(), strategy_value(services.ir.letter())),
            ],
        });
        connections.push(Connection {
            from_instance: te_id.clone(),
            from_port: "task_arrive".into(),
            to_instance: "Central-AC".into(),
            to_port: "task_arrive".into(),
        });
        connections.push(Connection {
            from_instance: "Central-AC".into(),
            from_port: "accept".into(),
            to_instance: te_id,
            to_port: "accept".into(),
        });
        connections.push(Connection {
            from_instance: ir_id,
            from_port: "idle_reset".into(),
            to_instance: "Central-AC".into(),
            to_port: "idle_reset".into(),
        });
    }

    // Subtask components: one instance per (subtask, candidate processor),
    // replicas ("duplicates") included.
    let ir_letter = services.ir.letter();
    for (i, task) in tasks.iter().enumerate() {
        let task_prio = priorities[&task.id()];
        let n = task.subtasks().len();
        for (j, sub) in task.subtasks().iter().enumerate() {
            let is_last = j + 1 == n;
            let component =
                if is_last { ComponentType::LastSubtask } else { ComponentType::FiSubtask };
            let candidates: Vec<_> = sub.candidates().collect();
            for proc in &candidates {
                let id = subtask_instance_id(i, j, proc.0);
                instances.push(Instance {
                    id: id.clone(),
                    component,
                    node: app_node(proc.0),
                    properties: vec![
                        ("TaskId".into(), PropValue::U32(i as u32)),
                        ("SubtaskIndex".into(), PropValue::U32(j as u32)),
                        ("ExecutionTimeUs".into(), PropValue::U64(sub.execution_time.as_micros())),
                        ("Priority".into(), PropValue::U32(task_prio.0)),
                        ("IR_Mode".into(), strategy_value(ir_letter)),
                        (
                            "Periodic".into(),
                            PropValue::Str(if task.is_periodic() { "yes" } else { "no" }.into()),
                        ),
                    ],
                });
                // Completions go to the local idle resetter.
                connections.push(Connection {
                    from_instance: id.clone(),
                    from_port: "complete".into(),
                    to_instance: format!("IR-{}", proc.0),
                    to_port: "complete".into(),
                });
            }
            // Trigger connections: every candidate of stage j feeds every
            // candidate of stage j+1 (placement is decided at run time).
            if !is_last {
                let next: Vec<_> = task.subtasks()[j + 1].candidates().collect();
                for from in &candidates {
                    for to in &next {
                        connections.push(Connection {
                            from_instance: subtask_instance_id(i, j, from.0),
                            from_port: "trigger".into(),
                            to_instance: subtask_instance_id(i, j + 1, to.0),
                            to_port: "trigger".into(),
                        });
                    }
                }
            }
        }
    }

    let plan = DeploymentPlan { label: spec.name.clone(), instances, connections };
    plan.validate().expect("engine-built plans are structurally sound");

    Ok(Deployment {
        services,
        adjustments,
        warnings,
        tasks,
        priorities,
        processors: spec.processors,
        plan,
    })
}

/// Instance id of the component executing subtask `j` of task `i` on
/// processor `p`.
#[must_use]
pub fn subtask_instance_id(task: usize, subtask: usize, processor: u16) -> String {
    format!("task{task}-sub{subtask}@app{processor}")
}

/// Summarizes a deployment for terminal display.
#[must_use]
pub fn summarize(deployment: &Deployment) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "deployment \"{}\": services {}, {} tasks on {} processors (+ task manager)\n",
        deployment.plan.label,
        deployment.services,
        deployment.tasks.len(),
        deployment.processors
    ));
    for note in &deployment.adjustments {
        out.push_str(&format!("  note: {note}\n"));
    }
    for warning in &deployment.warnings {
        out.push_str(&format!("  warning: {warning}\n"));
    }
    for task in deployment.tasks.iter() {
        out.push_str(&format!(
            "  {} prio={} deadline={}\n",
            task.name(),
            deployment.priorities[&task.id()].0,
            task.deadline()
        ));
    }
    out.push_str(&format!(
        "  plan: {} instances, {} connections\n",
        deployment.plan.instances.len(),
        deployment.plan.connections.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::OverheadTolerance;
    use rtcm_core::time::Duration;

    fn sample_spec() -> WorkloadSpec {
        WorkloadSpec::parse(
            "workload demo\nprocessors 3\n\
             task scan periodic period=500ms\n  subtask exec=10ms proc=0 replicas=1\n  subtask exec=5ms proc=2\n\
             task alert aperiodic deadline=200ms\n  subtask exec=5ms proc=1\n",
        )
        .unwrap()
    }

    #[test]
    fn configure_maps_and_builds() {
        let d = configure(&sample_spec(), &CpsCharacteristics::default()).unwrap();
        assert_eq!(d.services.label(), "T_T_T");
        assert_eq!(d.processors, 3);
        assert_eq!(d.tasks.len(), 2);
        // Central services.
        assert!(d.plan.instance("Central-AC").is_some());
        assert!(d.plan.instance("Central-LB").is_some());
        // Per-processor TE and IR.
        for p in 0..3 {
            assert!(d.plan.instance(&format!("TE-{p}")).is_some());
            assert!(d.plan.instance(&format!("IR-{p}")).is_some());
        }
        // Subtask components incl. the replica duplicate.
        assert!(d.plan.instance("task0-sub0@app0").is_some());
        assert!(d.plan.instance("task0-sub0@app1").is_some(), "duplicate instance");
        assert!(d.plan.instance("task0-sub1@app2").is_some());
        assert!(d.plan.instance("task1-sub0@app1").is_some());
    }

    #[test]
    fn edms_priorities_follow_deadlines() {
        let d = configure(&sample_spec(), &CpsCharacteristics::default()).unwrap();
        // alert (200 ms) beats scan (500 ms).
        let scan = d.tasks.get(TaskId(0)).unwrap();
        let alert = d.tasks.get(TaskId(1)).unwrap();
        assert_eq!(scan.deadline(), Duration::from_millis(500));
        assert!(d.priorities[&alert.id()].is_higher_than(d.priorities[&scan.id()]));
        // Priority lands in the plan as a property.
        let inst = d.plan.instance("task1-sub0@app1").unwrap();
        assert_eq!(inst.property("Priority"), Some(&PropValue::U32(0)));
    }

    #[test]
    fn configure_with_rejects_invalid_combos() {
        let err = configure_with(&sample_spec(), "T_J_N".parse().unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidCombination(_)));
        assert!(err.to_string().contains("T_J_N"));
    }

    #[test]
    fn configure_with_accepts_all_valid_combos() {
        for services in ServiceConfig::all_valid() {
            let d = configure_with(&sample_spec(), services).unwrap();
            assert_eq!(d.services, services);
            let ac = d.plan.instance("Central-AC").unwrap();
            assert!(ac.property("LB_Strategy").is_some());
        }
    }

    #[test]
    fn strategy_letters_map_to_paper_values() {
        let d = configure_with(&sample_spec(), "J_N_T".parse().unwrap()).unwrap();
        let ac = d.plan.instance("Central-AC").unwrap();
        assert_eq!(ac.property("AC_Strategy"), Some(&PropValue::Str("PJ".into())));
        assert_eq!(ac.property("LB_Strategy"), Some(&PropValue::Str("PT".into())));
        let ir = d.plan.instance("IR-0").unwrap();
        assert_eq!(ir.property("IR_Strategy"), Some(&PropValue::Str("N".into())));
    }

    #[test]
    fn trigger_connections_cover_replica_pairs() {
        let d = configure(&sample_spec(), &CpsCharacteristics::default()).unwrap();
        // scan sub0 candidates {0,1} × sub1 candidates {2} = 2 trigger links.
        let triggers: Vec<_> = d
            .plan
            .connections
            .iter()
            .filter(|c| c.from_port == "trigger" && c.from_instance.starts_with("task0-sub0"))
            .collect();
        assert_eq!(triggers.len(), 2);
        for t in triggers {
            assert_eq!(t.to_instance, "task0-sub1@app2");
        }
    }

    #[test]
    fn last_subtask_components_have_no_trigger_out() {
        let d = configure(&sample_spec(), &CpsCharacteristics::default()).unwrap();
        let last = d.plan.instance("task0-sub1@app2").unwrap();
        assert_eq!(last.component, ComponentType::LastSubtask);
        assert!(!d
            .plan
            .connections
            .iter()
            .any(|c| c.from_instance == "task0-sub1@app2" && c.from_port == "trigger"));
    }

    #[test]
    fn feasibility_warnings_surface_in_deployment() {
        // A task that can never be admitted: four stages at C/D = 0.24.
        let spec = WorkloadSpec::parse(
            "workload bad\nprocessors 4\n\
             task impossible periodic period=100ms\n\
               subtask exec=24ms proc=0\n  subtask exec=24ms proc=1\n\
               subtask exec=24ms proc=2\n  subtask exec=24ms proc=3\n",
        )
        .unwrap();
        let d = configure(&spec, &CpsCharacteristics::default()).unwrap();
        assert!(!d.warnings.is_empty());
        assert!(d.warnings[0].contains("never be admitted"));
        assert!(summarize(&d).contains("warning:"));

        // A healthy spec produces no warnings.
        let ok = configure(&sample_spec(), &CpsCharacteristics::default()).unwrap();
        assert!(ok.warnings.is_empty(), "{:?}", ok.warnings);
    }

    #[test]
    fn mapping_adjustments_surface_in_deployment() {
        let answers = CpsCharacteristics {
            job_skipping: false,
            component_replication: true,
            state_persistency: true,
            overhead_tolerance: OverheadTolerance::PerJob,
        };
        let d = configure(&sample_spec(), &answers).unwrap();
        assert_eq!(d.adjustments.len(), 1);
        assert!(summarize(&d).contains("note:"));
    }

    #[test]
    fn xml_output_includes_strategies() {
        let d = configure(&sample_spec(), &CpsCharacteristics::default()).unwrap();
        let xml = d.plan.to_xml();
        assert!(xml.contains("<name>LB_Strategy</name>"));
        assert!(xml.contains("<string>PT</string>"));
        assert!(xml.contains("task0-sub0@app1"));
    }
}
