//! The workload specification file: the developer-facing description of
//! end-to-end tasks and their placement (§6: "the application developer
//! first provides a workload specification file which describes each
//! end-to-end task and where its subtasks execute").
//!
//! Two encodings are supported:
//!
//! * a line-oriented **text format** (shown below), hand-editable;
//! * **JSON** via serde, for tooling.
//!
//! ```text
//! # industrial plant monitor
//! workload plant-monitor
//! processors 5
//!
//! task pressure-scan periodic period=500ms
//!   subtask exec=10ms proc=0 replicas=1
//!   subtask exec=5ms  proc=2
//!
//! task hazard-alert aperiodic deadline=300ms
//!   subtask exec=5ms proc=0 replicas=1,3
//! ```
//!
//! # Examples
//!
//! ```
//! use rtcm_config::spec::WorkloadSpec;
//!
//! let text = "workload demo\nprocessors 2\n\
//!             task t periodic period=100ms\n  subtask exec=10ms proc=0 replicas=1\n";
//! let spec = WorkloadSpec::parse(text)?;
//! let tasks = spec.to_task_set()?;
//! assert_eq!(tasks.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use rtcm_core::task::{ProcessorId, SubtaskSpec, TaskId, TaskKind, TaskSet, TaskSpec};
use rtcm_core::time::Duration;

/// Release pattern in a spec entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecKind {
    /// Periodic with the given period.
    Periodic {
        /// Release period.
        period: Duration,
    },
    /// Event-driven.
    Aperiodic,
}

/// One subtask line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubtaskEntry {
    /// Worst-case execution time.
    pub execution: Duration,
    /// Primary processor.
    pub processor: u16,
    /// Replica processors (may be empty).
    #[serde(default)]
    pub replicas: Vec<u16>,
}

/// One task block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskEntry {
    /// Task name (unique within the spec).
    pub name: String,
    /// Release pattern.
    pub kind: SpecKind,
    /// End-to-end deadline; for periodic tasks this may be omitted in the
    /// text format (defaults to the period).
    pub deadline: Duration,
    /// The subtask chain.
    pub subtasks: Vec<SubtaskEntry>,
}

/// A parsed workload specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name.
    pub name: String,
    /// Number of application processors.
    pub processors: u16,
    /// Task blocks, in declaration order (this order defines task ids).
    pub tasks: Vec<TaskEntry>,
}

impl WorkloadSpec {
    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] with the offending line number on syntax
    /// errors, and semantic errors (unknown processors, duplicate names)
    /// detected after parsing.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut name = None;
        let mut processors = None;
        let mut tasks: Vec<TaskEntry> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next().expect("nonempty line has a first word") {
                "workload" => {
                    let n = words
                        .next()
                        .ok_or_else(|| SpecError::parse(line_no, "expected `workload <name>`"))?;
                    name = Some(n.to_owned());
                }
                "processors" => {
                    let n = words.next().and_then(|w| w.parse::<u16>().ok()).ok_or_else(|| {
                        SpecError::parse(line_no, "expected `processors <count>`")
                    })?;
                    processors = Some(n);
                }
                "task" => {
                    let task_name = words
                        .next()
                        .ok_or_else(|| SpecError::parse(line_no, "expected task name"))?
                        .to_owned();
                    let kind_word = words.next().ok_or_else(|| {
                        SpecError::parse(line_no, "expected `periodic` or `aperiodic`")
                    })?;
                    let mut period = None;
                    let mut deadline = None;
                    for kv in words {
                        let (key, value) = kv.split_once('=').ok_or_else(|| {
                            SpecError::parse(line_no, format!("expected key=value, got {kv:?}"))
                        })?;
                        match key {
                            "period" => period = Some(parse_duration(value, line_no)?),
                            "deadline" => deadline = Some(parse_duration(value, line_no)?),
                            other => {
                                return Err(SpecError::parse(
                                    line_no,
                                    format!("unknown task attribute {other:?}"),
                                ))
                            }
                        }
                    }
                    let kind = match kind_word {
                        "periodic" => {
                            let period = period.ok_or_else(|| {
                                SpecError::parse(line_no, "periodic task needs period=<dur>")
                            })?;
                            SpecKind::Periodic { period }
                        }
                        "aperiodic" => {
                            if period.is_some() {
                                return Err(SpecError::parse(
                                    line_no,
                                    "aperiodic task cannot have a period",
                                ));
                            }
                            SpecKind::Aperiodic
                        }
                        other => {
                            return Err(SpecError::parse(
                                line_no,
                                format!("expected `periodic` or `aperiodic`, got {other:?}"),
                            ))
                        }
                    };
                    let deadline = match (deadline, kind) {
                        (Some(d), _) => d,
                        (None, SpecKind::Periodic { period }) => period,
                        (None, SpecKind::Aperiodic) => {
                            return Err(SpecError::parse(
                                line_no,
                                "aperiodic task needs deadline=<dur>",
                            ))
                        }
                    };
                    tasks.push(TaskEntry { name: task_name, kind, deadline, subtasks: Vec::new() });
                }
                "subtask" => {
                    let task = tasks
                        .last_mut()
                        .ok_or_else(|| SpecError::parse(line_no, "subtask before any task"))?;
                    let mut execution = None;
                    let mut processor = None;
                    let mut replicas = Vec::new();
                    for kv in words {
                        let (key, value) = kv.split_once('=').ok_or_else(|| {
                            SpecError::parse(line_no, format!("expected key=value, got {kv:?}"))
                        })?;
                        match key {
                            "exec" => execution = Some(parse_duration(value, line_no)?),
                            "proc" => {
                                processor = Some(value.parse::<u16>().map_err(|_| {
                                    SpecError::parse(line_no, format!("bad processor {value:?}"))
                                })?);
                            }
                            "replicas" => {
                                for r in value.split(',') {
                                    replicas.push(r.parse::<u16>().map_err(|_| {
                                        SpecError::parse(
                                            line_no,
                                            format!("bad replica processor {r:?}"),
                                        )
                                    })?);
                                }
                            }
                            other => {
                                return Err(SpecError::parse(
                                    line_no,
                                    format!("unknown subtask attribute {other:?}"),
                                ))
                            }
                        }
                    }
                    let execution = execution
                        .ok_or_else(|| SpecError::parse(line_no, "subtask needs exec=<dur>"))?;
                    let processor = processor
                        .ok_or_else(|| SpecError::parse(line_no, "subtask needs proc=<id>"))?;
                    task.subtasks.push(SubtaskEntry { execution, processor, replicas });
                }
                other => {
                    return Err(SpecError::parse(line_no, format!("unknown directive {other:?}")))
                }
            }
        }

        let spec = WorkloadSpec {
            name: name.unwrap_or_else(|| "unnamed".to_owned()),
            processors: processors
                .ok_or_else(|| SpecError::semantic("missing `processors <count>`"))?,
            tasks,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the text format (inverse of [`WorkloadSpec::parse`]).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("workload {}\n", self.name));
        out.push_str(&format!("processors {}\n", self.processors));
        for task in &self.tasks {
            match task.kind {
                SpecKind::Periodic { period } => {
                    if task.deadline == period {
                        out.push_str(&format!("task {} periodic period={}\n", task.name, period));
                    } else {
                        out.push_str(&format!(
                            "task {} periodic period={} deadline={}\n",
                            task.name, period, task.deadline
                        ));
                    }
                }
                SpecKind::Aperiodic => {
                    out.push_str(&format!(
                        "task {} aperiodic deadline={}\n",
                        task.name, task.deadline
                    ));
                }
            }
            for sub in &task.subtasks {
                out.push_str(&format!("  subtask exec={} proc={}", sub.execution, sub.processor));
                if !sub.replicas.is_empty() {
                    let list: Vec<String> = sub.replicas.iter().map(u16::to_string).collect();
                    out.push_str(&format!(" replicas={}", list.join(",")));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Semantic validation: processor references in range, unique task
    /// names, nonempty chains.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] describing the first violation.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.processors == 0 {
            return Err(SpecError::semantic("at least one processor is required"));
        }
        let mut seen = std::collections::HashSet::new();
        for task in &self.tasks {
            if !seen.insert(&task.name) {
                return Err(SpecError::semantic(format!("duplicate task name {:?}", task.name)));
            }
            if task.subtasks.is_empty() {
                return Err(SpecError::semantic(format!("task {:?} has no subtasks", task.name)));
            }
            for sub in &task.subtasks {
                if sub.processor >= self.processors {
                    return Err(SpecError::semantic(format!(
                        "task {:?} places a subtask on processor {} but only {} exist",
                        task.name, sub.processor, self.processors
                    )));
                }
                for r in &sub.replicas {
                    if *r >= self.processors {
                        return Err(SpecError::semantic(format!(
                            "task {:?} declares replica on processor {r} but only {} exist",
                            task.name, self.processors
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Converts to the core task model; ids follow declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] wrapping core validation failures (zero
    /// execution times, demand exceeding deadline, …).
    pub fn to_task_set(&self) -> Result<TaskSet, SpecError> {
        self.validate()?;
        let mut specs = Vec::with_capacity(self.tasks.len());
        for (i, task) in self.tasks.iter().enumerate() {
            let kind = match task.kind {
                SpecKind::Periodic { period } => TaskKind::Periodic { period },
                SpecKind::Aperiodic => TaskKind::Aperiodic,
            };
            let subtasks = task
                .subtasks
                .iter()
                .map(|s| {
                    SubtaskSpec::with_replicas(
                        s.execution,
                        ProcessorId(s.processor),
                        s.replicas.iter().map(|r| ProcessorId(*r)),
                    )
                })
                .collect();
            let spec =
                TaskSpec::new(TaskId(i as u32), task.name.clone(), kind, task.deadline, subtasks)
                    .map_err(|e| SpecError::semantic(e.to_string()))?;
            specs.push(spec);
        }
        TaskSet::from_tasks(specs).map_err(|e| SpecError::semantic(e.to_string()))
    }
}

impl WorkloadSpec {
    /// Builds a specification from an existing task set (e.g. one produced
    /// by the `rtcm-workload` generators), so generated workloads can flow
    /// through the configuration engine like hand-written ones.
    #[must_use]
    pub fn from_task_set(name: impl Into<String>, processors: u16, tasks: &TaskSet) -> Self {
        let entries = tasks
            .iter()
            .map(|t| TaskEntry {
                name: t.name().to_owned(),
                kind: match t.kind() {
                    TaskKind::Periodic { period } => SpecKind::Periodic { period },
                    TaskKind::Aperiodic => SpecKind::Aperiodic,
                },
                deadline: t.deadline(),
                subtasks: t
                    .subtasks()
                    .iter()
                    .map(|s| SubtaskEntry {
                        execution: s.execution_time,
                        processor: s.primary.0,
                        replicas: s.replicas.iter().map(|r| r.0).collect(),
                    })
                    .collect(),
            })
            .collect();
        WorkloadSpec { name: name.into(), processors, tasks: entries }
    }
}

/// Parses `250ms`, `10s`, `5us`, `100ns` style durations.
fn parse_duration(s: &str, line: usize) -> Result<Duration, SpecError> {
    let (digits, unit) = s.split_at(s.find(|c: char| c.is_ascii_alphabetic()).unwrap_or(s.len()));
    let value: u64 =
        digits.parse().map_err(|_| SpecError::parse(line, format!("bad duration {s:?}")))?;
    match unit {
        "ns" => Ok(Duration::from_nanos(value)),
        "us" => Ok(Duration::from_micros(value)),
        "ms" => Ok(Duration::from_millis(value)),
        "s" => Ok(Duration::from_secs(value)),
        _ => Err(SpecError::parse(line, format!("bad duration unit in {s:?} (use ns/us/ms/s)"))),
    }
}

/// Errors from specification parsing and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A syntax error with its line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// A semantic violation.
    Semantic {
        /// Description.
        message: String,
    },
}

impl SpecError {
    fn parse(line: usize, message: impl Into<String>) -> Self {
        SpecError::Parse { line, message: message.into() }
    }

    fn semantic(message: impl Into<String>) -> Self {
        SpecError::Semantic { message: message.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "line {line}: {message}"),
            SpecError::Semantic { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# industrial plant monitor
workload plant-monitor
processors 5

task pressure-scan periodic period=500ms
  subtask exec=10ms proc=0 replicas=1
  subtask exec=5ms proc=2

task hazard-alert aperiodic deadline=300ms
  subtask exec=5ms proc=0 replicas=1,3
";

    #[test]
    fn parses_the_sample() {
        let spec = WorkloadSpec::parse(SAMPLE).unwrap();
        assert_eq!(spec.name, "plant-monitor");
        assert_eq!(spec.processors, 5);
        assert_eq!(spec.tasks.len(), 2);
        assert_eq!(spec.tasks[0].subtasks.len(), 2);
        assert_eq!(spec.tasks[0].deadline, Duration::from_millis(500));
        assert_eq!(spec.tasks[1].kind, SpecKind::Aperiodic);
        assert_eq!(spec.tasks[1].subtasks[0].replicas, vec![1, 3]);
    }

    #[test]
    fn text_round_trip() {
        let spec = WorkloadSpec::parse(SAMPLE).unwrap();
        let text = spec.to_text();
        let back = WorkloadSpec::parse(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn json_round_trip() {
        let spec = WorkloadSpec::parse(SAMPLE).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn converts_to_task_set() {
        let spec = WorkloadSpec::parse(SAMPLE).unwrap();
        let tasks = spec.to_task_set().unwrap();
        assert_eq!(tasks.len(), 2);
        let scan = tasks.get(TaskId(0)).unwrap();
        assert_eq!(scan.name(), "pressure-scan");
        assert!(scan.is_periodic());
        assert_eq!(scan.subtasks()[0].replicas, vec![ProcessorId(1)]);
        let alert = tasks.get(TaskId(1)).unwrap();
        assert!(!alert.is_periodic());
    }

    #[test]
    fn periodic_deadline_defaults_to_period() {
        let spec = WorkloadSpec::parse(
            "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        )
        .unwrap();
        assert_eq!(spec.tasks[0].deadline, Duration::from_millis(100));
    }

    #[test]
    fn explicit_deadline_overrides() {
        let spec = WorkloadSpec::parse(
            "workload w\nprocessors 1\ntask t periodic period=100ms deadline=80ms\n  subtask exec=1ms proc=0\n",
        )
        .unwrap();
        assert_eq!(spec.tasks[0].deadline, Duration::from_millis(80));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = WorkloadSpec::parse("processors 1\nbogus line\n").unwrap_err();
        assert_eq!(
            err,
            SpecError::Parse { line: 2, message: "unknown directive \"bogus\"".into() }
        );
        assert!(err.to_string().starts_with("line 2"));
    }

    #[test]
    fn rejects_aperiodic_without_deadline() {
        let err = WorkloadSpec::parse(
            "workload w\nprocessors 1\ntask t aperiodic\n  subtask exec=1ms proc=0\n",
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 3, .. }));
    }

    #[test]
    fn rejects_subtask_before_task() {
        let err =
            WorkloadSpec::parse("workload w\nprocessors 1\nsubtask exec=1ms proc=0\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 3, .. }));
    }

    #[test]
    fn rejects_out_of_range_processors() {
        let err = WorkloadSpec::parse(
            "workload w\nprocessors 2\ntask t aperiodic deadline=10ms\n  subtask exec=1ms proc=5\n",
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::Semantic { .. }));
        assert!(err.to_string().contains("processor 5"));
    }

    #[test]
    fn rejects_duplicate_task_names() {
        let err = WorkloadSpec::parse(
            "workload w\nprocessors 1\n\
             task t aperiodic deadline=10ms\n  subtask exec=1ms proc=0\n\
             task t aperiodic deadline=10ms\n  subtask exec=1ms proc=0\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_missing_processors_directive() {
        let err = WorkloadSpec::parse("workload w\n").unwrap_err();
        assert!(err.to_string().contains("processors"));
    }

    #[test]
    fn duration_units_parse() {
        let spec = WorkloadSpec::parse(
            "workload w\nprocessors 1\ntask t aperiodic deadline=1s\n  subtask exec=500us proc=0\n",
        )
        .unwrap();
        assert_eq!(spec.tasks[0].subtasks[0].execution, Duration::from_micros(500));
        let err = WorkloadSpec::parse(
            "workload w\nprocessors 1\ntask t aperiodic deadline=1h\n  subtask exec=1ms proc=0\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unit"));
    }

    #[test]
    fn from_task_set_round_trips_through_engine() {
        let spec = WorkloadSpec::parse(SAMPLE).unwrap();
        let tasks = spec.to_task_set().unwrap();
        let rebuilt = WorkloadSpec::from_task_set("plant-monitor", 5, &tasks);
        assert_eq!(rebuilt.to_task_set().unwrap().tasks(), tasks.tasks());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let spec = WorkloadSpec::parse(
            "# header\n\nworkload w # trailing\nprocessors 1\n# mid\ntask t aperiodic deadline=10ms\n  subtask exec=1ms proc=0 # tail\n",
        )
        .unwrap();
        assert_eq!(spec.tasks.len(), 1);
    }
}
