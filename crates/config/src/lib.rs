//! # rtcm-config
//!
//! The front-end configuration engine of **rtcm** (§6 of the paper): it
//! turns a developer-provided workload specification plus answers to four
//! application-characteristics questions into a validated, DAnCE-style
//! deployment plan — "allowing application developers to configure
//! middleware services to achieve any valid combination of strategies,
//! while disallowing invalid combinations".
//!
//! * [`spec`] — the workload specification file (text + JSON formats);
//! * [`characteristics`] — the §4.1 criteria questionnaire and its Table-1
//!   mapping onto strategies;
//! * [`plan`] — the deployment-plan model with an OMG-D&C-flavoured XML
//!   emitter (Figure 4's `<configProperty>` shape);
//! * [`engine`] — ties it together: validation, EDMS priority assignment,
//!   instance/connection generation.
//!
//! # Examples
//!
//! ```
//! use rtcm_config::{configure, CpsCharacteristics, WorkloadSpec};
//!
//! let spec = WorkloadSpec::parse(
//!     "workload demo\nprocessors 2\n\
//!      task scan periodic period=500ms\n  subtask exec=10ms proc=0 replicas=1\n",
//! )?;
//! let deployment = configure(&spec, &CpsCharacteristics::default())?;
//! assert_eq!(deployment.services.label(), "T_T_T");
//! assert!(deployment.plan.to_xml().contains("Central-AC"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod characteristics;
pub mod engine;
pub mod plan;
pub mod spec;

pub use characteristics::{CpsCharacteristics, MappedConfig, OverheadTolerance};
pub use engine::{
    app_node, configure, configure_with, subtask_instance_id, summarize, Deployment, EngineError,
    TASK_MANAGER_NODE,
};
pub use plan::{ComponentType, Connection, DeploymentPlan, Instance, PlanError, PropValue};
pub use spec::{SpecError, SpecKind, SubtaskEntry, TaskEntry, WorkloadSpec};
