//! The deployment plan: a DAnCE-style description of which component
//! instances run on which nodes, their configuration properties, and the
//! port connections between them (§6, Figure 4).
//!
//! The plan is the hand-off artifact between the front-end configuration
//! engine and the runtime launcher (`rtcm-rt`), and can be rendered as
//! OMG-D&C-flavoured XML — including the `<configProperty>` shape shown in
//! the paper's Figure 4 — or as JSON via serde.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The component kinds of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentType {
    /// Central admission controller.
    AdmissionController,
    /// Central load balancer.
    LoadBalancer,
    /// Per-processor task effector.
    TaskEffector,
    /// Per-processor idle resetter.
    IdleResetter,
    /// First or intermediate subtask executor (has a Trigger publisher).
    FiSubtask,
    /// Last subtask executor.
    LastSubtask,
}

impl fmt::Display for ComponentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ComponentType::AdmissionController => "AdmissionController",
            ComponentType::LoadBalancer => "LoadBalancer",
            ComponentType::TaskEffector => "TaskEffector",
            ComponentType::IdleResetter => "IdleResetter",
            ComponentType::FiSubtask => "FiSubtask",
            ComponentType::LastSubtask => "LastSubtask",
        })
    }
}

/// A typed configuration property value (maps to the XML `tk_*` kinds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropValue {
    /// `tk_string`.
    Str(String),
    /// `tk_ulong`.
    U32(u32),
    /// `tk_ulonglong` (used for times in microseconds).
    U64(u64),
}

impl PropValue {
    fn xml_kind(&self) -> &'static str {
        match self {
            PropValue::Str(_) => "tk_string",
            PropValue::U32(_) => "tk_ulong",
            PropValue::U64(_) => "tk_ulonglong",
        }
    }

    fn xml_tag(&self) -> &'static str {
        match self {
            PropValue::Str(_) => "string",
            PropValue::U32(_) => "ulong",
            PropValue::U64(_) => "ulonglong",
        }
    }
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropValue::Str(s) => f.write_str(s),
            PropValue::U32(v) => write!(f, "{v}"),
            PropValue::U64(v) => write!(f, "{v}"),
        }
    }
}

/// One component instance placed on a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Unique instance id, e.g. `Central-AC` or `task0-sub1@app2`.
    pub id: String,
    /// Component kind.
    pub component: ComponentType,
    /// Hosting node name, e.g. `task-manager` or `app-3`.
    pub node: String,
    /// Configuration properties (`set_configuration` payload).
    pub properties: Vec<(String, PropValue)>,
}

impl Instance {
    /// Looks a property up by name.
    #[must_use]
    pub fn property(&self, name: &str) -> Option<&PropValue> {
        self.properties.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// One port connection between two instances.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// Publishing/calling instance id.
    pub from_instance: String,
    /// Source port name.
    pub from_port: String,
    /// Consuming/serving instance id.
    pub to_instance: String,
    /// Destination port name.
    pub to_port: String,
}

/// A complete deployment plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// Plan label (typically the workload name).
    pub label: String,
    /// All component instances.
    pub instances: Vec<Instance>,
    /// All port connections.
    pub connections: Vec<Connection>,
}

impl DeploymentPlan {
    /// Finds an instance by id.
    #[must_use]
    pub fn instance(&self, id: &str) -> Option<&Instance> {
        self.instances.iter().find(|i| i.id == id)
    }

    /// All instances placed on `node`.
    pub fn instances_on<'a>(&'a self, node: &'a str) -> impl Iterator<Item = &'a Instance> {
        self.instances.iter().filter(move |i| i.node == node)
    }

    /// The distinct node names, in first-appearance order.
    #[must_use]
    pub fn nodes(&self) -> Vec<&str> {
        let mut seen = HashSet::new();
        self.instances.iter().map(|i| i.node.as_str()).filter(|n| seen.insert(*n)).collect()
    }

    /// Structural validation: unique instance ids and connections that
    /// reference existing instances.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] naming the first violation.
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut ids = HashSet::new();
        for inst in &self.instances {
            if !ids.insert(inst.id.as_str()) {
                return Err(PlanError::DuplicateInstance { id: inst.id.clone() });
            }
        }
        for conn in &self.connections {
            for end in [&conn.from_instance, &conn.to_instance] {
                if !ids.contains(end.as_str()) {
                    return Err(PlanError::DanglingConnection {
                        instance: end.clone(),
                        from: conn.from_instance.clone(),
                        to: conn.to_instance.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Renders OMG-D&C-flavoured XML, including the paper's Figure-4
    /// `<configProperty>` shape.
    #[must_use]
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        out.push_str(
            "<Deployment:DeploymentPlan xmlns:Deployment=\"http://www.omg.org/Deployment\">\n",
        );
        out.push_str(&format!("  <label>{}</label>\n", xml_escape(&self.label)));
        for inst in &self.instances {
            out.push_str(&format!("  <instance id=\"{}\">\n", xml_escape(&inst.id)));
            out.push_str(&format!("    <node>{}</node>\n", xml_escape(&inst.node)));
            out.push_str(&format!("    <type>{}</type>\n", inst.component));
            for (name, value) in &inst.properties {
                out.push_str("    <configProperty>\n");
                out.push_str(&format!("      <name>{}</name>\n", xml_escape(name)));
                out.push_str("      <value>\n");
                out.push_str(&format!("        <type><kind>{}</kind></type>\n", value.xml_kind()));
                out.push_str(&format!(
                    "        <value><{tag}>{}</{tag}></value>\n",
                    xml_escape(&value.to_string()),
                    tag = value.xml_tag()
                ));
                out.push_str("      </value>\n");
                out.push_str("    </configProperty>\n");
            }
            out.push_str("  </instance>\n");
        }
        for conn in &self.connections {
            out.push_str("  <connection>\n");
            out.push_str(&format!(
                "    <name>{}.{}-{}.{}</name>\n",
                xml_escape(&conn.from_instance),
                xml_escape(&conn.from_port),
                xml_escape(&conn.to_instance),
                xml_escape(&conn.to_port)
            ));
            out.push_str(&format!(
                "    <source instance=\"{}\" port=\"{}\"/>\n",
                xml_escape(&conn.from_instance),
                xml_escape(&conn.from_port)
            ));
            out.push_str(&format!(
                "    <dest instance=\"{}\" port=\"{}\"/>\n",
                xml_escape(&conn.to_instance),
                xml_escape(&conn.to_port)
            ));
            out.push_str("  </connection>\n");
        }
        out.push_str("</Deployment:DeploymentPlan>\n");
        out
    }
}

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Structural plan errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Two instances share an id.
    DuplicateInstance {
        /// The duplicated id.
        id: String,
    },
    /// A connection references a missing instance.
    DanglingConnection {
        /// The missing instance.
        instance: String,
        /// Connection source.
        from: String,
        /// Connection destination.
        to: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::DuplicateInstance { id } => write!(f, "duplicate instance id {id:?}"),
            PlanError::DanglingConnection { instance, from, to } => {
                write!(f, "connection {from} -> {to} references missing instance {instance:?}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> DeploymentPlan {
        DeploymentPlan {
            label: "demo".into(),
            instances: vec![
                Instance {
                    id: "Central-AC".into(),
                    component: ComponentType::AdmissionController,
                    node: "task-manager".into(),
                    properties: vec![("LB_Strategy".into(), PropValue::Str("PT".into()))],
                },
                Instance {
                    id: "TE-0".into(),
                    component: ComponentType::TaskEffector,
                    node: "app-0".into(),
                    properties: vec![("ProcessorId".into(), PropValue::U32(0))],
                },
            ],
            connections: vec![Connection {
                from_instance: "TE-0".into(),
                from_port: "task_arrive".into(),
                to_instance: "Central-AC".into(),
                to_port: "task_arrive".into(),
            }],
        }
    }

    #[test]
    fn lookup_and_nodes() {
        let plan = sample_plan();
        assert!(plan.instance("Central-AC").is_some());
        assert!(plan.instance("nope").is_none());
        assert_eq!(plan.nodes(), vec!["task-manager", "app-0"]);
        assert_eq!(plan.instances_on("app-0").count(), 1);
        assert_eq!(
            plan.instance("Central-AC").unwrap().property("LB_Strategy"),
            Some(&PropValue::Str("PT".into()))
        );
    }

    #[test]
    fn validates_structure() {
        let mut plan = sample_plan();
        assert!(plan.validate().is_ok());
        plan.connections.push(Connection {
            from_instance: "ghost".into(),
            from_port: "x".into(),
            to_instance: "TE-0".into(),
            to_port: "y".into(),
        });
        assert!(matches!(plan.validate(), Err(PlanError::DanglingConnection { .. })));

        let mut plan = sample_plan();
        plan.instances.push(plan.instances[0].clone());
        assert!(matches!(plan.validate(), Err(PlanError::DuplicateInstance { .. })));
    }

    #[test]
    fn xml_contains_figure4_shape() {
        let xml = sample_plan().to_xml();
        assert!(xml.contains("<instance id=\"Central-AC\">"));
        assert!(xml.contains("<name>LB_Strategy</name>"));
        assert!(xml.contains("<kind>tk_string</kind>"));
        assert!(xml.contains("<string>PT</string>"));
        assert!(xml.contains("<source instance=\"TE-0\" port=\"task_arrive\"/>"));
    }

    #[test]
    fn xml_escapes_special_characters() {
        let mut plan = sample_plan();
        plan.label = "a<b&\"c\"".into();
        let xml = plan.to_xml();
        assert!(xml.contains("<label>a&lt;b&amp;&quot;c&quot;</label>"));
    }

    #[test]
    fn json_round_trip() {
        let plan = sample_plan();
        let json = serde_json::to_string(&plan).unwrap();
        let back: DeploymentPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn prop_value_kinds() {
        assert_eq!(PropValue::Str("x".into()).xml_kind(), "tk_string");
        assert_eq!(PropValue::U32(1).xml_kind(), "tk_ulong");
        assert_eq!(PropValue::U64(1).xml_kind(), "tk_ulonglong");
        assert_eq!(PropValue::U64(7).to_string(), "7");
    }
}
