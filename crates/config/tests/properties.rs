//! Property-based tests for the configuration engine: spec round-trips,
//! questionnaire mapping totality, and plan structural soundness.

use proptest::collection::vec;
use proptest::prelude::*;

use rtcm_config::{
    configure, configure_with, CpsCharacteristics, OverheadTolerance, SpecKind, SubtaskEntry,
    TaskEntry, WorkloadSpec,
};
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::time::Duration;

const PROCS: u16 = 4;

fn arb_subtask() -> impl Strategy<Value = SubtaskEntry> {
    (1u64..50, 0..PROCS, proptest::option::of(0..PROCS)).prop_map(|(exec, proc, replica)| {
        SubtaskEntry {
            execution: Duration::from_millis(exec),
            processor: proc,
            replicas: replica.into_iter().collect(),
        }
    })
}

fn arb_task(i: usize) -> impl Strategy<Value = TaskEntry> {
    (vec(arb_subtask(), 1..4), 300u64..2_000, any::<bool>()).prop_map(
        move |(subtasks, deadline_ms, periodic)| {
            let deadline = Duration::from_millis(deadline_ms);
            TaskEntry {
                name: format!("task-{i}"),
                kind: if periodic {
                    SpecKind::Periodic { period: deadline }
                } else {
                    SpecKind::Aperiodic
                },
                deadline,
                subtasks,
            }
        },
    )
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    vec((0..8usize).prop_flat_map(arb_task), 1..6).prop_map(|mut tasks| {
        // Names must be unique; re-index deterministically.
        for (i, t) in tasks.iter_mut().enumerate() {
            t.name = format!("task-{i}");
        }
        WorkloadSpec { name: "prop".into(), processors: PROCS, tasks }
    })
}

fn arb_answers() -> impl Strategy<Value = CpsCharacteristics> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 0usize..3).prop_map(
        |(skip, repl, persist, overhead)| CpsCharacteristics {
            job_skipping: skip,
            component_replication: repl,
            state_persistency: persist,
            overhead_tolerance: [
                OverheadTolerance::None,
                OverheadTolerance::PerTask,
                OverheadTolerance::PerJob,
            ][overhead],
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Text rendering parses back to the identical spec.
    #[test]
    fn text_round_trip(spec in arb_spec()) {
        let text = spec.to_text();
        let back = WorkloadSpec::parse(&text).unwrap();
        prop_assert_eq!(back, spec);
    }

    /// JSON round-trips too.
    #[test]
    fn json_round_trip(spec in arb_spec()) {
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, spec);
    }

    /// Every answer vector maps to a deployable, valid configuration whose
    /// plan passes structural validation and covers the expected instances.
    #[test]
    fn questionnaire_always_deploys(spec in arb_spec(), answers in arb_answers()) {
        let deployment = configure(&spec, &answers).unwrap();
        prop_assert!(deployment.services.is_valid());
        deployment.plan.validate().unwrap();
        // One TE and one IR per processor plus the two central services.
        let te_count = deployment
            .plan
            .instances
            .iter()
            .filter(|i| matches!(i.component, rtcm_config::ComponentType::TaskEffector))
            .count();
        prop_assert_eq!(te_count, PROCS as usize);
        prop_assert!(deployment.plan.instance("Central-AC").is_some());
        prop_assert!(deployment.plan.instance("Central-LB").is_some());
        // Subtask instances: one per (subtask, candidate processor).
        let expected: usize = deployment
            .tasks
            .iter()
            .flat_map(|t| t.subtasks())
            .map(|s| s.candidates().count())
            .sum();
        let actual = deployment
            .plan
            .instances
            .iter()
            .filter(|i| {
                matches!(
                    i.component,
                    rtcm_config::ComponentType::FiSubtask
                        | rtcm_config::ComponentType::LastSubtask
                )
            })
            .count();
        prop_assert_eq!(actual, expected);
    }

    /// Explicit combinations: valid ones deploy, invalid ones error.
    #[test]
    fn explicit_combo_gate(spec in arb_spec(), idx in 0usize..18) {
        let services = ServiceConfig::all()[idx];
        let result = configure_with(&spec, services);
        prop_assert_eq!(result.is_ok(), services.is_valid());
    }

    /// The XML emitter always produces parseable-shaped output: balanced
    /// root element, every instance id present, and escaped labels.
    #[test]
    fn xml_is_well_formed_enough(spec in arb_spec()) {
        let deployment = configure(&spec, &CpsCharacteristics::default()).unwrap();
        let xml = deployment.plan.to_xml();
        prop_assert!(xml.starts_with("<?xml"));
        prop_assert!(xml.trim_end().ends_with("</Deployment:DeploymentPlan>"));
        prop_assert_eq!(xml.matches("<instance ").count(), deployment.plan.instances.len());
        prop_assert_eq!(xml.matches("</instance>").count(), deployment.plan.instances.len());
        for inst in &deployment.plan.instances {
            let needle = format!("<instance id=\"{}\">", inst.id);
            let present = xml.contains(&needle);
            prop_assert!(present, "missing instance element for {}", inst.id);
        }
    }
}
