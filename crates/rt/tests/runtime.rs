//! End-to-end tests of the threaded runtime: configuration engine →
//! launcher → running system → report.

use std::time::Duration as StdDuration;

use rtcm_config::{configure_with, WorkloadSpec};
use rtcm_core::task::TaskId;
use rtcm_rt::{ExecMode, RtOptions, System};

const QUIESCE: StdDuration = StdDuration::from_secs(20);

fn spec(text: &str) -> WorkloadSpec {
    WorkloadSpec::parse(text).expect("test specs are valid")
}

fn launch(spec_text: &str, services: &str) -> System {
    let deployment =
        configure_with(&spec(spec_text), services.parse().expect("valid combo")).unwrap();
    System::launch(&deployment, RtOptions::fast()).unwrap()
}

#[test]
fn single_job_completes_end_to_end() {
    let system = launch(
        "workload w\nprocessors 2\n\
         task chain aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n  subtask exec=1ms proc=1\n",
        "J_N_N",
    );
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE), "job should drain");
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.ratio.released_jobs(), 1);
    assert!((report.ratio.ratio() - 1.0).abs() < 1e-9);
}

#[test]
fn submit_unknown_task_errors() {
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=100ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    assert!(system.submit(TaskId(9), 0).is_err());
    let _ = system.shutdown();
}

#[test]
fn per_task_ac_tests_only_once_then_fast_paths() {
    let system = launch(
        "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        "T_N_N",
    );
    for seq in 0..5 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 5);
    // Only the first job took the AC round-trip.
    assert_eq!(report.ac_test.count(), 1, "one admission test");
    assert_eq!(report.hold.count(), 1, "one hold");
}

#[test]
fn per_job_ac_tests_every_job() {
    let system = launch(
        "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    for seq in 0..5 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let report = system.shutdown();
    assert_eq!(report.ac_test.count(), 5);
    assert_eq!(report.jobs_completed, 5);
}

#[test]
fn overload_rejects_and_drops() {
    // Two heavy tasks on one processor: the second must be rejected, and
    // under per-task AC its later jobs are dropped locally.
    let system = launch(
        "workload w\nprocessors 1\n\
         task a periodic period=100ms\n  subtask exec=45ms proc=0\n\
         task b periodic period=100ms\n  subtask exec=45ms proc=0\n",
        "T_N_N",
    );
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    system.submit(TaskId(1), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    system.submit(TaskId(1), 1).unwrap(); // dropped at the TE, no AC trip
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.ac_test.count(), 2, "third job never reached the AC");
    assert_eq!(report.ratio.arrived_jobs(), 3);
    assert_eq!(report.ratio.released_jobs(), 1);
}

#[test]
fn load_balancing_reallocates_to_replica() {
    // P0 is occupied by a heavy reserved task; a replicated arrival should
    // release on its duplicate processor.
    let system = launch(
        "workload w\nprocessors 2\n\
         task hog periodic period=100ms\n  subtask exec=40ms proc=0\n\
         task flex periodic period=100ms\n  subtask exec=40ms proc=0 replicas=1\n",
        "T_N_T",
    );
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    system.submit(TaskId(1), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 2);
    assert_eq!(report.reallocations, 1);
    assert_eq!(report.total_realloc.count(), 1);
}

#[test]
fn idle_resetting_reports_flow_to_manager() {
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n",
        "J_J_N",
    );
    for seq in 0..3 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    // Give idle reports a moment to cross the channel.
    std::thread::sleep(StdDuration::from_millis(100));
    let report = system.shutdown();
    assert!(report.ir_reports > 0, "idle resets must reach the AC");
    assert!(report.ir_update.count() > 0);
}

#[test]
fn no_ir_configuration_sends_no_reports() {
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    for seq in 0..3 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(50));
    let report = system.shutdown();
    assert_eq!(report.ir_reports, 0);
}

#[test]
fn sleep_execution_takes_real_time_and_meets_deadlines() {
    let deployment = configure_with(
        &spec(
            "workload w\nprocessors 2\n\
             task chain aperiodic deadline=400ms\n  subtask exec=20ms proc=0\n  subtask exec=20ms proc=1\n",
        ),
        "J_N_N".parse().unwrap(),
    )
    .unwrap();
    let system =
        System::launch(&deployment, RtOptions { exec: ExecMode::Sleep, ..RtOptions::default() })
            .unwrap();
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.deadline_misses, 0);
    // Response covers both stages plus the AC round-trip.
    let resp = report.response.mean();
    assert!(resp.as_millis() >= 40, "response {resp}");
    assert!(resp.as_millis() < 400, "response {resp}");
    // Communication delay was measured in the paper's band.
    assert!(report.comm.count() >= 1);
    let comm = report.comm.mean();
    assert!(comm.as_micros() >= 280, "comm {comm}");
    assert!(comm.as_micros() < 3_000, "comm {comm}");
}

#[test]
fn edms_priority_preempts_lower_priority_work() {
    // A long low-priority job and a short urgent one on the same CPU: the
    // urgent one must finish first even though it arrives second.
    let deployment = configure_with(
        &spec(
            "workload w\nprocessors 1\n\
             task slow aperiodic deadline=2s\n  subtask exec=100ms proc=0\n\
             task urgent aperiodic deadline=200ms\n  subtask exec=5ms proc=0\n",
        ),
        "J_N_N".parse().unwrap(),
    )
    .unwrap();
    let system =
        System::launch(&deployment, RtOptions { exec: ExecMode::Sleep, ..RtOptions::default() })
            .unwrap();
    system.submit(TaskId(0), 0).unwrap();
    std::thread::sleep(StdDuration::from_millis(20));
    system.submit(TaskId(1), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 2);
    assert_eq!(report.deadline_misses, 0, "urgent job preempted the slow one");
}

#[test]
fn replay_submits_a_whole_trace() {
    use rtcm_core::time::Duration as CoreDuration;
    use rtcm_workload::{ArrivalConfig, ArrivalTrace, Phasing};

    let system = launch(
        "workload w\nprocessors 1\ntask t periodic period=50ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    let trace = ArrivalTrace::generate(
        system.tasks(),
        &ArrivalConfig {
            horizon: CoreDuration::from_millis(500),
            poisson_factor: 2.0,
            phasing: Phasing::Simultaneous,
        },
        1,
    );
    system.replay(&trace, 10.0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.ratio.arrived_jobs() as usize, trace.len());
    assert_eq!(report.jobs_completed as usize, trace.len());
}

#[test]
fn duplicate_submission_is_rejected_not_fatal() {
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    system.submit(TaskId(0), 0).unwrap();
    system.submit(TaskId(0), 0).unwrap(); // same job twice: caller mistake
    assert!(system.quiesce(QUIESCE), "the duplicate must not wedge the system");
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1, "only one copy runs");
    assert_eq!(report.ratio.arrived_jobs(), 2);
}

#[test]
fn lb_per_job_consults_manager_every_job_even_with_per_task_ac() {
    // T_N_J: per-task AC admits once, but per-job load balancing means the
    // TE cannot fast-path — every job needs a (possibly relocated) plan.
    let system = launch(
        "workload w\nprocessors 2\n\
         task t periodic period=100ms\n  subtask exec=1ms proc=0 replicas=1\n",
        "T_N_J",
    );
    for seq in 0..4 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 4);
    // One fresh admission + three pass-through relocations, all at the
    // manager: the TE held every job.
    assert_eq!(report.hold.count(), 4);
    assert_eq!(report.ac_test.count(), 4);
}

#[test]
fn ir_per_task_reports_only_aperiodic_completions() {
    // Periodic-only workload + IR per task: nothing to report.
    let periodic_only = launch(
        "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        "J_T_N",
    );
    for seq in 0..3 {
        periodic_only.submit(TaskId(0), seq).unwrap();
        assert!(periodic_only.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(50));
    let report = periodic_only.shutdown();
    assert_eq!(report.ir_reports, 0, "periodic completions are not reported per task");

    // The same configuration with an aperiodic task does report.
    let with_aperiodic = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=400ms\n  subtask exec=1ms proc=0\n",
        "J_T_N",
    );
    for seq in 0..3 {
        with_aperiodic.submit(TaskId(0), seq).unwrap();
        assert!(with_aperiodic.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(100));
    let report = with_aperiodic.shutdown();
    assert!(report.ir_reports > 0, "aperiodic completions are reported per task");
}

#[test]
fn ir_strategy_reconfigures_at_runtime() {
    use rtcm_core::strategy::IrStrategy;
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=400ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    // Phase 1: no IR — no reports.
    for seq in 0..3 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(50));
    assert_eq!(system.stats().ir_reports, 0);

    // Hot-swap to IR per job.
    let new = system.reconfigure_ir(IrStrategy::PerJob).unwrap();
    assert_eq!(new.label(), "J_J_N");
    assert_eq!(system.services().ir, IrStrategy::PerJob);
    std::thread::sleep(StdDuration::from_millis(20)); // let nodes apply it

    // Phase 2: reports flow.
    for seq in 3..6 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(100));
    let report = system.shutdown();
    assert!(report.ir_reports > 0, "reports after reconfiguration");
}

#[test]
fn ir_reconfiguration_respects_validity_rule() {
    use rtcm_core::strategy::IrStrategy;
    let system = launch(
        "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        "T_T_T",
    );
    // AC per task + IR per job is the §4.5 contradiction.
    assert!(system.reconfigure_ir(IrStrategy::PerJob).is_err());
    assert_eq!(system.services().label(), "T_T_T", "unchanged after refusal");
    // Downgrading to no IR is fine.
    assert!(system.reconfigure_ir(IrStrategy::None).is_ok());
    assert_eq!(system.services().label(), "T_N_T");
    let _ = system.shutdown();
}

#[test]
fn full_config_swap_carries_reservations_mid_flight() {
    // A per-task system with a live reservation swaps to per-job: the
    // reservation is drained (not dropped), the sticky rejection clears,
    // and per-job semantics govern later arrivals — all without stopping
    // the system.
    let system = launch(
        "workload w\nprocessors 1\n\
         task a periodic period=100ms\n  subtask exec=1ms proc=0\n\
         task hog periodic period=100ms\n  subtask exec=60ms proc=0\n",
        "T_N_N",
    );
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    system.submit(TaskId(1), 0).unwrap(); // rejected: 0.01 + 0.6 breaks the bound
    assert!(system.quiesce(QUIESCE));

    let report = system.reconfigure("J_N_N".parse().unwrap()).unwrap();
    assert_eq!(report.handover.reservations_drained, 1);
    assert_eq!(report.handover.rejections_cleared, 1);
    assert_eq!(report.acked_nodes, 1);
    assert_eq!(system.services().label(), "J_N_N");

    // Under per-job AC the formerly sticky-rejected task is tested afresh
    // per arrival (and still rejected while the drained contribution
    // guards the old reservation's in-flight window, which is fine).
    for seq in 1..4 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let stats = system.shutdown();
    assert_eq!(stats.reconfig_swaps, 1);
    assert_eq!(stats.reconfig_latency.count(), 1);
    assert!(stats.jobs_completed >= 4, "jobs kept completing across the swap");
}

#[test]
fn swap_under_load_defers_but_loses_nothing() {
    // Fire arrivals while the swap runs: every job must still be decided
    // (accepted or rejected), none may be lost in the prepare window.
    let system = launch(
        "workload w\nprocessors 2\n\
         task a aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n\
         task b aperiodic deadline=500ms\n  subtask exec=1ms proc=1\n",
        "J_N_N",
    );
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let sys = &system;
        let stop = &stop;
        let submitter = scope.spawn(move || {
            let mut seq = 0;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let _ = sys.submit(TaskId(seq % 2), seq as u64 / 2);
                seq += 1;
                std::thread::sleep(StdDuration::from_micros(200));
            }
            seq
        });
        for target in ["T_T_T", "J_J_J", "J_N_N"] {
            std::thread::sleep(StdDuration::from_millis(10));
            let report = system.reconfigure(target.parse().unwrap()).unwrap();
            assert_eq!(system.services().label(), target);
            assert!(report.jobs_in_flight >= 0);
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let submitted = submitter.join().unwrap();
        assert!(submitted > 0);
    });
    assert!(system.quiesce(QUIESCE), "all deferred decisions drained");
    let stats = system.shutdown();
    assert_eq!(stats.reconfig_swaps, 3);
    assert_eq!(
        stats.jobs_completed,
        stats.ratio.released_jobs(),
        "every released job completed; nothing was lost in a prepare window"
    );
    assert!(stats.jobs_completed > 0);
}

#[test]
fn reconfig_swap_is_observable_across_a_tcp_bridge() {
    // The paper's testbed spans hosts; bridging topics::RECONFIG through a
    // TCP gateway makes a swap visible to a remote federation in real
    // time: the observer sees prepare then commit with the target config.
    use rtcm_events::{remote, topics, Federation, Latency, NodeId};
    use rtcm_rt::ReconfigReport;

    let system = launch(
        "workload w\nprocessors 2\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    // Gateway on an app node (node 1 = processor 0): the manager (node 0)
    // publishes the reconfig events, so they are forwarded outward.
    let (addr, _server) =
        remote::listen(system.federation(), NodeId(1), "127.0.0.1:0", vec![topics::RECONFIG])
            .unwrap();
    let remote_host = Federation::new(2, Latency::None, 0);
    let _client = remote::connect(&remote_host, NodeId(0), addr, vec![topics::RECONFIG]).unwrap();
    let observer = remote_host.handle(NodeId(1)).unwrap().subscribe(topics::RECONFIG);

    let report: ReconfigReport = system.reconfigure("J_J_T".parse().unwrap()).unwrap();
    assert_eq!(report.handover.to.label(), "J_J_T");

    use rtcm_rt::proto::{ReconfigMsg, ReconfigPhase};
    let recv = StdDuration::from_secs(5);
    let prepare: ReconfigMsg =
        rtcm_rt::proto::decode(&observer.recv_timeout(recv).unwrap().payload);
    assert_eq!(prepare.phase, ReconfigPhase::Prepare);
    let commit: ReconfigMsg = rtcm_rt::proto::decode(&observer.recv_timeout(recv).unwrap().payload);
    assert_eq!(commit.phase, ReconfigPhase::Commit);
    assert_eq!(commit.services.label(), "J_J_T");
    assert_eq!(commit.epoch, prepare.epoch);
    let _ = system.shutdown();
}

#[test]
fn unacked_swap_aborts_without_partial_application() {
    // With a zero ack timeout no node can ack in time: the swap must
    // abort, report the failure (instead of silently half-applying), and
    // leave the old configuration fully in force.
    use rtcm_rt::ReconfigureError;
    let deployment = configure_with(
        &spec("workload w\nprocessors 1\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n"),
        "J_N_N".parse().unwrap(),
    )
    .unwrap();
    let mut options = RtOptions::fast();
    options.reconfig_ack_timeout = StdDuration::ZERO;
    let system = System::launch(&deployment, options).unwrap();

    let err = system.reconfigure("J_J_J".parse().unwrap()).unwrap_err();
    assert_eq!(err, ReconfigureError::NodesUnresponsive { acked: 0, expected: 1 });
    assert_eq!(system.services().label(), "J_N_N", "old configuration stays in force");

    // The fence was lifted by the abort: the system still serves traffic.
    for seq in 0..3 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let stats = system.shutdown();
    assert_eq!(stats.reconfig_aborts, 1);
    assert_eq!(stats.reconfig_swaps, 0);
    assert_eq!(stats.jobs_completed, 3);
    assert_eq!(stats.ir_reports, 0, "IR swap never applied anywhere");
}

#[test]
fn report_counts_are_consistent() {
    let system = launch(
        "workload w\nprocessors 2\n\
         task a periodic period=50ms\n  subtask exec=1ms proc=0 replicas=1\n\
         task b aperiodic deadline=100ms\n  subtask exec=1ms proc=1\n",
        "J_J_T",
    );
    for seq in 0..10 {
        system.submit(TaskId(0), seq).unwrap();
        system.submit(TaskId(1), seq).unwrap();
    }
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.ratio.arrived_jobs(), 20);
    assert_eq!(report.jobs_completed, report.ratio.released_jobs(), "every released job completes");
}
