//! End-to-end tests of the threaded runtime: configuration engine →
//! launcher → running system → report.

use std::time::Duration as StdDuration;

use rtcm_config::{configure_with, WorkloadSpec};
use rtcm_core::task::TaskId;
use rtcm_rt::{ExecMode, RtOptions, System};

const QUIESCE: StdDuration = StdDuration::from_secs(20);

fn spec(text: &str) -> WorkloadSpec {
    WorkloadSpec::parse(text).expect("test specs are valid")
}

fn launch(spec_text: &str, services: &str) -> System {
    let deployment =
        configure_with(&spec(spec_text), services.parse().expect("valid combo")).unwrap();
    System::launch(&deployment, RtOptions::fast()).unwrap()
}

#[test]
fn single_job_completes_end_to_end() {
    let system = launch(
        "workload w\nprocessors 2\n\
         task chain aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n  subtask exec=1ms proc=1\n",
        "J_N_N",
    );
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE), "job should drain");
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.ratio.released_jobs(), 1);
    assert!((report.ratio.ratio() - 1.0).abs() < 1e-9);
}

#[test]
fn submit_unknown_task_errors() {
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=100ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    assert!(system.submit(TaskId(9), 0).is_err());
    let _ = system.shutdown();
}

#[test]
fn per_task_ac_tests_only_once_then_fast_paths() {
    let system = launch(
        "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        "T_N_N",
    );
    for seq in 0..5 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 5);
    // Only the first job took the AC round-trip.
    assert_eq!(report.ac_test.count(), 1, "one admission test");
    assert_eq!(report.hold.count(), 1, "one hold");
}

#[test]
fn per_job_ac_tests_every_job() {
    let system = launch(
        "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    for seq in 0..5 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let report = system.shutdown();
    assert_eq!(report.ac_test.count(), 5);
    assert_eq!(report.jobs_completed, 5);
}

#[test]
fn overload_rejects_and_drops() {
    // Two heavy tasks on one processor: the second must be rejected, and
    // under per-task AC its later jobs are dropped locally.
    let system = launch(
        "workload w\nprocessors 1\n\
         task a periodic period=100ms\n  subtask exec=45ms proc=0\n\
         task b periodic period=100ms\n  subtask exec=45ms proc=0\n",
        "T_N_N",
    );
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    system.submit(TaskId(1), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    system.submit(TaskId(1), 1).unwrap(); // dropped at the TE, no AC trip
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.ac_test.count(), 2, "third job never reached the AC");
    assert_eq!(report.ratio.arrived_jobs(), 3);
    assert_eq!(report.ratio.released_jobs(), 1);
}

#[test]
fn load_balancing_reallocates_to_replica() {
    // P0 is occupied by a heavy reserved task; a replicated arrival should
    // release on its duplicate processor.
    let system = launch(
        "workload w\nprocessors 2\n\
         task hog periodic period=100ms\n  subtask exec=40ms proc=0\n\
         task flex periodic period=100ms\n  subtask exec=40ms proc=0 replicas=1\n",
        "T_N_T",
    );
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    system.submit(TaskId(1), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 2);
    assert_eq!(report.reallocations, 1);
    assert_eq!(report.total_realloc.count(), 1);
}

#[test]
fn idle_resetting_reports_flow_to_manager() {
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n",
        "J_J_N",
    );
    for seq in 0..3 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    // Give idle reports a moment to cross the channel.
    std::thread::sleep(StdDuration::from_millis(100));
    let report = system.shutdown();
    assert!(report.ir_reports > 0, "idle resets must reach the AC");
    assert!(report.ir_update.count() > 0);
}

#[test]
fn no_ir_configuration_sends_no_reports() {
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    for seq in 0..3 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(50));
    let report = system.shutdown();
    assert_eq!(report.ir_reports, 0);
}

#[test]
fn sleep_execution_takes_real_time_and_meets_deadlines() {
    let deployment = configure_with(
        &spec(
            "workload w\nprocessors 2\n\
             task chain aperiodic deadline=400ms\n  subtask exec=20ms proc=0\n  subtask exec=20ms proc=1\n",
        ),
        "J_N_N".parse().unwrap(),
    )
    .unwrap();
    let system =
        System::launch(&deployment, RtOptions { exec: ExecMode::Sleep, ..RtOptions::default() })
            .unwrap();
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.deadline_misses, 0);
    // Response covers both stages plus the AC round-trip.
    let resp = report.response.mean();
    assert!(resp.as_millis() >= 40, "response {resp}");
    assert!(resp.as_millis() < 400, "response {resp}");
    // Communication delay was measured in the paper's band.
    assert!(report.comm.count() >= 1);
    let comm = report.comm.mean();
    assert!(comm.as_micros() >= 280, "comm {comm}");
    assert!(comm.as_micros() < 3_000, "comm {comm}");
}

#[test]
fn edms_priority_preempts_lower_priority_work() {
    // A long low-priority job and a short urgent one on the same CPU: the
    // urgent one must finish first even though it arrives second.
    let deployment = configure_with(
        &spec(
            "workload w\nprocessors 1\n\
             task slow aperiodic deadline=2s\n  subtask exec=100ms proc=0\n\
             task urgent aperiodic deadline=200ms\n  subtask exec=5ms proc=0\n",
        ),
        "J_N_N".parse().unwrap(),
    )
    .unwrap();
    let system =
        System::launch(&deployment, RtOptions { exec: ExecMode::Sleep, ..RtOptions::default() })
            .unwrap();
    system.submit(TaskId(0), 0).unwrap();
    std::thread::sleep(StdDuration::from_millis(20));
    system.submit(TaskId(1), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 2);
    assert_eq!(report.deadline_misses, 0, "urgent job preempted the slow one");
}

#[test]
fn replay_submits_a_whole_trace() {
    use rtcm_core::time::Duration as CoreDuration;
    use rtcm_workload::{ArrivalConfig, ArrivalTrace, Phasing};

    let system = launch(
        "workload w\nprocessors 1\ntask t periodic period=50ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    let trace = ArrivalTrace::generate(
        system.tasks(),
        &ArrivalConfig {
            horizon: CoreDuration::from_millis(500),
            poisson_factor: 2.0,
            phasing: Phasing::Simultaneous,
        },
        1,
    );
    system.replay(&trace, 10.0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.ratio.arrived_jobs() as usize, trace.len());
    assert_eq!(report.jobs_completed as usize, trace.len());
}

#[test]
fn duplicate_submission_is_rejected_not_fatal() {
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    system.submit(TaskId(0), 0).unwrap();
    system.submit(TaskId(0), 0).unwrap(); // same job twice: caller mistake
    assert!(system.quiesce(QUIESCE), "the duplicate must not wedge the system");
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1, "only one copy runs");
    assert_eq!(report.ratio.arrived_jobs(), 2);
}

#[test]
fn lb_per_job_consults_manager_every_job_even_with_per_task_ac() {
    // T_N_J: per-task AC admits once, but per-job load balancing means the
    // TE cannot fast-path — every job needs a (possibly relocated) plan.
    let system = launch(
        "workload w\nprocessors 2\n\
         task t periodic period=100ms\n  subtask exec=1ms proc=0 replicas=1\n",
        "T_N_J",
    );
    for seq in 0..4 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 4);
    // One fresh admission + three pass-through relocations, all at the
    // manager: the TE held every job.
    assert_eq!(report.hold.count(), 4);
    assert_eq!(report.ac_test.count(), 4);
}

#[test]
fn ir_per_task_reports_only_aperiodic_completions() {
    // Periodic-only workload + IR per task: nothing to report.
    let periodic_only = launch(
        "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        "J_T_N",
    );
    for seq in 0..3 {
        periodic_only.submit(TaskId(0), seq).unwrap();
        assert!(periodic_only.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(50));
    let report = periodic_only.shutdown();
    assert_eq!(report.ir_reports, 0, "periodic completions are not reported per task");

    // The same configuration with an aperiodic task does report.
    let with_aperiodic = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=400ms\n  subtask exec=1ms proc=0\n",
        "J_T_N",
    );
    for seq in 0..3 {
        with_aperiodic.submit(TaskId(0), seq).unwrap();
        assert!(with_aperiodic.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(100));
    let report = with_aperiodic.shutdown();
    assert!(report.ir_reports > 0, "aperiodic completions are reported per task");
}

#[test]
fn ir_strategy_reconfigures_at_runtime() {
    use rtcm_core::strategy::IrStrategy;
    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=400ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    // Phase 1: no IR — no reports.
    for seq in 0..3 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(50));
    assert_eq!(system.stats().ir_reports, 0);

    // Hot-swap to IR per job.
    let new = system.reconfigure_ir(IrStrategy::PerJob).unwrap();
    assert_eq!(new.label(), "J_J_N");
    assert_eq!(system.services().ir, IrStrategy::PerJob);
    std::thread::sleep(StdDuration::from_millis(20)); // let nodes apply it

    // Phase 2: reports flow.
    for seq in 3..6 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(100));
    let report = system.shutdown();
    assert!(report.ir_reports > 0, "reports after reconfiguration");
}

#[test]
fn ir_reconfiguration_respects_validity_rule() {
    use rtcm_core::strategy::IrStrategy;
    let system = launch(
        "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        "T_T_T",
    );
    // AC per task + IR per job is the §4.5 contradiction.
    assert!(system.reconfigure_ir(IrStrategy::PerJob).is_err());
    assert_eq!(system.services().label(), "T_T_T", "unchanged after refusal");
    // Downgrading to no IR is fine.
    assert!(system.reconfigure_ir(IrStrategy::None).is_ok());
    assert_eq!(system.services().label(), "T_N_T");
    let _ = system.shutdown();
}

#[test]
fn full_config_swap_carries_reservations_mid_flight() {
    // A per-task system with a live reservation swaps to per-job: the
    // reservation is drained (not dropped), the sticky rejection clears,
    // and per-job semantics govern later arrivals — all without stopping
    // the system.
    let system = launch(
        "workload w\nprocessors 1\n\
         task a periodic period=100ms\n  subtask exec=1ms proc=0\n\
         task hog periodic period=100ms\n  subtask exec=60ms proc=0\n",
        "T_N_N",
    );
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    system.submit(TaskId(1), 0).unwrap(); // rejected: 0.01 + 0.6 breaks the bound
    assert!(system.quiesce(QUIESCE));

    let report = system.reconfigure("J_N_N".parse().unwrap()).unwrap();
    assert_eq!(report.handover.reservations_drained, 1);
    assert_eq!(report.handover.rejections_cleared, 1);
    assert_eq!(report.acked_nodes, 1);
    assert_eq!(system.services().label(), "J_N_N");

    // Under per-job AC the formerly sticky-rejected task is tested afresh
    // per arrival (and still rejected while the drained contribution
    // guards the old reservation's in-flight window, which is fine).
    for seq in 1..4 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let stats = system.shutdown();
    assert_eq!(stats.reconfig_swaps, 1);
    assert_eq!(stats.reconfig_latency.count(), 1);
    assert!(stats.jobs_completed >= 4, "jobs kept completing across the swap");
}

#[test]
fn swap_under_load_defers_but_loses_nothing() {
    // Fire arrivals while the swap runs: every job must still be decided
    // (accepted or rejected), none may be lost in the prepare window.
    let system = launch(
        "workload w\nprocessors 2\n\
         task a aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n\
         task b aperiodic deadline=500ms\n  subtask exec=1ms proc=1\n",
        "J_N_N",
    );
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let sys = &system;
        let stop = &stop;
        let submitter = scope.spawn(move || {
            let mut seq = 0;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let _ = sys.submit(TaskId(seq % 2), seq as u64 / 2);
                seq += 1;
                std::thread::sleep(StdDuration::from_micros(200));
            }
            seq
        });
        for target in ["T_T_T", "J_J_J", "J_N_N"] {
            std::thread::sleep(StdDuration::from_millis(10));
            let report = system.reconfigure(target.parse().unwrap()).unwrap();
            assert_eq!(system.services().label(), target);
            assert!(report.jobs_in_flight >= 0);
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let submitted = submitter.join().unwrap();
        assert!(submitted > 0);
    });
    assert!(system.quiesce(QUIESCE), "all deferred decisions drained");
    let stats = system.shutdown();
    assert_eq!(stats.reconfig_swaps, 3);
    assert_eq!(
        stats.jobs_completed,
        stats.ratio.released_jobs(),
        "every released job completed; nothing was lost in a prepare window"
    );
    assert!(stats.jobs_completed > 0);
}

#[test]
fn reconfig_swap_is_observable_across_a_tcp_bridge() {
    // The paper's testbed spans hosts; bridging topics::RECONFIG through a
    // TCP gateway makes a swap visible to a remote federation in real
    // time: the observer sees prepare then commit with the target config.
    use rtcm_events::{remote, topics, Federation, Latency, NodeId};
    use rtcm_rt::ReconfigReport;

    let system = launch(
        "workload w\nprocessors 2\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    // Gateway on an app node (node 1 = processor 0): the manager (node 0)
    // publishes the reconfig events, so they are forwarded outward.
    let (addr, _server) =
        remote::listen(system.federation(), NodeId(1), "127.0.0.1:0", vec![topics::RECONFIG])
            .unwrap();
    let remote_host = Federation::new(2, Latency::None, 0);
    let _client = remote::connect(&remote_host, NodeId(0), addr, vec![topics::RECONFIG]).unwrap();
    let observer = remote_host.handle(NodeId(1)).unwrap().subscribe(topics::RECONFIG);

    let report: ReconfigReport = system.reconfigure("J_J_T".parse().unwrap()).unwrap();
    assert_eq!(report.handover.to.label(), "J_J_T");

    use rtcm_rt::proto::{ReconfigMsg, ReconfigPhase};
    let recv = StdDuration::from_secs(5);
    let prepare: ReconfigMsg =
        rtcm_rt::proto::decode(&observer.recv_timeout(recv).unwrap().payload);
    assert_eq!(prepare.phase, ReconfigPhase::Prepare);
    let commit: ReconfigMsg = rtcm_rt::proto::decode(&observer.recv_timeout(recv).unwrap().payload);
    assert_eq!(commit.phase, ReconfigPhase::Commit);
    assert_eq!(commit.services.label(), "J_J_T");
    assert_eq!(commit.epoch, prepare.epoch);
    let _ = system.shutdown();
}

#[test]
fn unacked_swap_aborts_without_partial_application() {
    // With a zero ack timeout no node can ack in time: the swap must
    // abort, report the failure (instead of silently half-applying), and
    // leave the old configuration fully in force.
    use rtcm_rt::ReconfigureError;
    let deployment = configure_with(
        &spec("workload w\nprocessors 1\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n"),
        "J_N_N".parse().unwrap(),
    )
    .unwrap();
    let mut options = RtOptions::fast();
    options.reconfig_ack_timeout = StdDuration::ZERO;
    let system = System::launch(&deployment, options).unwrap();

    let err = system.reconfigure("J_J_J".parse().unwrap()).unwrap_err();
    assert_eq!(
        err,
        ReconfigureError::Aborted {
            reason: rtcm_rt::ReconfigAbortReason::AckTimeout,
            acked: 0,
            expected: 1
        }
    );
    assert_eq!(system.services().label(), "J_N_N", "old configuration stays in force");

    // The fence was lifted by the abort: the system still serves traffic.
    for seq in 0..3 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let stats = system.shutdown();
    assert_eq!(stats.reconfig_aborts, 1);
    assert_eq!(stats.reconfig_abort_reasons.ack_timeout, 1, "abort reason is diagnosable");
    assert_eq!(stats.reconfig_abort_reasons.total(), 1);
    assert_eq!(stats.reconfig_swaps, 0);
    assert_eq!(stats.jobs_completed, 3);
    assert_eq!(stats.ir_reports, 0, "IR swap never applied anywhere");
}

#[test]
fn bridge_fault_counters_surface_in_the_system_report() {
    // A corrupt frame on a bridge attached to the system's federation must
    // be observable from the SystemReport alone (the old reader broke the
    // loop silently with zero accounting).
    use rtcm_events::{remote, topics, NodeId};
    use std::io::Write;

    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    let (addr, server) =
        remote::listen(system.federation(), NodeId(1), "127.0.0.1:0", vec![topics::RECONFIG])
            .unwrap();
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    // Well-framed, but the body is neither binary (0x01) nor JSON ('{').
    raw.write_all(&3u32.to_be_bytes()).unwrap();
    raw.write_all(&[0xEE, 0xEE, 0xEE]).unwrap();

    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    while system.stats().bridge_rx_errors == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(StdDuration::from_millis(5));
    }
    assert!(!server.is_connected(), "corrupt frame closed the link");
    let report = system.shutdown();
    assert_eq!(report.bridge_rx_errors, 1);
    assert_eq!(report.bridge_disconnects, 1);
    assert_eq!(report.bridge_tx_dropped, 0);
}

/// Bridges RECONFIG out and RECONFIG_ACK back between a system and a
/// remote federation, returning the remote side and the bridge handles.
fn bridge_quorum(
    system: &System,
    gateway: rtcm_events::NodeId,
) -> (rtcm_events::Federation, rtcm_events::BridgeHandle, rtcm_events::BridgeHandle) {
    use rtcm_events::{remote, topics, Federation, Latency, NodeId};
    let topics = vec![topics::RECONFIG, topics::RECONFIG_ACK];
    let (addr, server) =
        remote::listen(system.federation(), gateway, "127.0.0.1:0", topics.clone()).unwrap();
    let remote_host = Federation::new(2, Latency::None, 0);
    let client = remote::connect(&remote_host, NodeId(0), addr, topics).unwrap();
    (remote_host, server, client)
}

#[test]
fn bridged_host_vote_is_required_and_sufficient_for_commit() {
    use rtcm_rt::{QuorumMember, QuorumOptions};

    let system = launch(
        "workload w\nprocessors 2\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    let (remote_host, _server, _client) = bridge_quorum(&system, rtcm_events::NodeId(1));
    let member =
        QuorumMember::attach(&remote_host, rtcm_events::NodeId(1), QuorumOptions::default())
            .unwrap();
    system.register_remote_voter(member.host_id());
    assert_eq!(system.remote_voter_count(), 1);

    let report = system.reconfigure("J_J_T".parse().unwrap()).unwrap();
    assert_eq!(report.acked_nodes, 2, "both local nodes acked");
    assert_eq!(report.acked_remote, 1, "the bridged federation voted");
    assert_eq!(system.services().label(), "J_J_T");
    assert_eq!(member.ack_count(), 1);
    // The commit still has to cross the bridge to the member.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    while member.is_fenced() {
        assert!(std::time::Instant::now() < deadline, "commit never released the fence");
        std::thread::sleep(StdDuration::from_millis(5));
    }
    assert_eq!(member.observed_commits(), vec!["J_J_T".parse().unwrap()]);

    // A departing host deregisters cleanly; the next swap no longer needs
    // its vote.
    system.deregister_remote_voter(member.host_id());
    let report = system.reconfigure("J_N_N".parse().unwrap()).unwrap();
    assert_eq!(report.acked_remote, 0);
    let _ = system.shutdown();
}

#[test]
fn withheld_bridged_vote_aborts_with_ack_timeout() {
    use rtcm_rt::{QuorumMember, QuorumOptions, ReconfigAbortReason, ReconfigureError};

    let deployment = configure_with(
        &spec("workload w\nprocessors 1\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n"),
        "J_N_N".parse().unwrap(),
    )
    .unwrap();
    let mut options = RtOptions::fast();
    options.reconfig_ack_timeout = StdDuration::from_millis(300);
    let system = System::launch(&deployment, options).unwrap();

    let (remote_host, _server, _client) = bridge_quorum(&system, rtcm_events::NodeId(1));
    let member =
        QuorumMember::attach(&remote_host, rtcm_events::NodeId(1), QuorumOptions::default())
            .unwrap();
    system.register_remote_voter(member.host_id());

    // Partition the member: it ignores prepares, so the quorum is one vote
    // short and the swap must abort cleanly at the deadline.
    member.set_holding(true);
    let err = system.reconfigure("T_T_T".parse().unwrap()).unwrap_err();
    assert_eq!(
        err,
        ReconfigureError::Aborted {
            reason: ReconfigAbortReason::AckTimeout,
            acked: 1,
            expected: 2
        }
    );
    assert_eq!(system.services().label(), "J_N_N", "no partial application");
    assert_eq!(member.ack_count(), 0);

    // Healing the partition restores the quorum.
    member.set_holding(false);
    assert!(system.reconfigure("T_T_T".parse().unwrap()).is_ok());
    assert_eq!(system.services().label(), "T_T_T");

    let stats = system.shutdown();
    assert_eq!(stats.reconfig_abort_reasons.ack_timeout, 1);
    assert_eq!(stats.reconfig_swaps, 1);
}

#[test]
fn foreign_fenced_member_vetoes_the_prepare() {
    use rtcm_rt::proto::{self, ReconfigMsg, ReconfigPhase};
    use rtcm_rt::{QuorumMember, QuorumOptions, ReconfigAbortReason, ReconfigureError};

    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    let (remote_host, _server, _client) = bridge_quorum(&system, rtcm_events::NodeId(1));
    let member =
        QuorumMember::attach(&remote_host, rtcm_events::NodeId(1), QuorumOptions::default())
            .unwrap();
    system.register_remote_voter(member.host_id());

    // A different coordinator (another host mid-swap) fences the member
    // first; publish its prepare directly into the remote federation.
    let foreign = ReconfigMsg {
        coordinator: 0xDEAD_BEEF,
        host: 0xBAD_0057,
        epoch: 1,
        phase: ReconfigPhase::Prepare,
        services: "T_T_T".parse().unwrap(),
        sent_ns: 0,
        trace: proto::swap_trace(0xDEAD_BEEF, 1),
    };
    remote_host
        .handle(rtcm_events::NodeId(0))
        .unwrap()
        .publish(rtcm_events::topics::RECONFIG, proto::encode(&foreign));
    let fenced_by = std::time::Instant::now() + StdDuration::from_secs(5);
    while !member.is_fenced() {
        assert!(std::time::Instant::now() < fenced_by, "member never fenced");
        std::thread::sleep(StdDuration::from_millis(5));
    }

    // Our swap now collides with the foreign fence: the member vetoes and
    // the coordinator aborts immediately with the carried reason.
    let err = system.reconfigure("J_J_J".parse().unwrap()).unwrap_err();
    assert!(
        matches!(
            err,
            ReconfigureError::Aborted { reason: ReconfigAbortReason::ForeignCoordinator, .. }
        ),
        "expected a foreign-coordinator abort, got {err}"
    );
    assert_eq!(member.nack_count(), 1);

    let stats = system.shutdown();
    assert_eq!(stats.reconfig_abort_reasons.foreign_coordinator, 1);
}

#[test]
fn validation_refusals_are_counted_in_the_breakdown() {
    let system = launch(
        "workload w\nprocessors 1\ntask t periodic period=100ms\n  subtask exec=1ms proc=0\n",
        "T_T_T",
    );
    // AC per task + IR per job is the §4.5 contradiction.
    assert!(system.reconfigure("T_J_N".parse().unwrap()).is_err());
    let stats = system.shutdown();
    assert_eq!(stats.reconfig_abort_reasons.validation, 1);
    assert_eq!(stats.reconfig_aborts, 0, "nothing was prepared, so no protocol abort");
}

#[test]
fn governor_swaps_an_overloaded_system_automatically() {
    use rtcm_core::govern::{GovernorPolicy, GovernorRule, Metric, Trigger};

    // One processor; a heavy aperiodic alert (0.8 utilization per job)
    // means only one job fits per deadline window — a flood collapses the
    // accepted ratio well below 0.5.
    let system = launch(
        "workload w\nprocessors 1\n\
         task scan periodic period=50ms\n  subtask exec=1ms proc=0\n\
         task alert aperiodic deadline=100ms\n  subtask exec=80ms proc=0\n",
        "J_N_N",
    );
    let policy = GovernorPolicy::new()
        .rule(
            GovernorRule::new(
                "collapse-defense",
                Metric::AcceptedRatio,
                Trigger::Below(0.5),
                2,
                "T_T_T".parse().unwrap(),
            )
            .min_arrivals(3),
        )
        .cooldown(3);
    let governor = system.spawn_governor(policy, StdDuration::from_millis(30)).unwrap();

    // Flood: the governor must detect the collapse and swap on its own.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    let mut seq = 0;
    while system.services().label() == "J_N_N" {
        assert!(std::time::Instant::now() < deadline, "governor never reacted");
        let _ = system.submit(TaskId(0), seq);
        let _ = system.submit(TaskId(1), seq);
        seq += 1;
        std::thread::sleep(StdDuration::from_millis(5));
    }
    assert_eq!(system.services().label(), "T_T_T", "defensive swap applied");

    let events = governor.stop();
    assert!(!events.is_empty());
    assert_eq!(events[0].decision.rule_name, "collapse-defense");
    assert!(events[0].outcome.is_ok(), "the swap committed");

    assert!(system.quiesce(QUIESCE));
    let stats = system.shutdown();
    assert!(stats.governor_windows > 0);
    assert_eq!(stats.governor_swaps, 1);
    assert_eq!(stats.reconfig_swaps, 1, "the governor's swap is an ordinary two-phase swap");
}

#[test]
fn governor_senses_slack_recovery_while_the_system_idles() {
    use rtcm_core::govern::{GovernorPolicy, GovernorRule, Metric, Trigger};

    // Utilization 0.5 per job: schedulable alone, but a flood collapses
    // the ratio. After the flood stops, *nothing arrives anymore* — the
    // slack-based relax rule can only fire if the governor's sensing
    // tracks ledger expiry without being driven by arrivals.
    let system = launch(
        "workload w\nprocessors 1\n\
         task alert aperiodic deadline=100ms\n  subtask exec=50ms proc=0\n",
        "J_N_N",
    );
    let policy = GovernorPolicy::new()
        .rule(
            GovernorRule::new(
                "defend",
                Metric::AcceptedRatio,
                Trigger::Below(0.5),
                2,
                "T_T_T".parse().unwrap(),
            )
            .min_arrivals(3),
        )
        .rule(GovernorRule::new(
            "relax",
            Metric::AubSlack,
            Trigger::Above(0.9),
            2,
            "J_N_N".parse().unwrap(),
        ))
        .cooldown(2);
    let governor = system.spawn_governor(policy, StdDuration::from_millis(30)).unwrap();

    // Flood until the defensive swap lands.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    let mut seq = 0;
    while system.services().label() != "T_T_T" {
        assert!(std::time::Instant::now() < deadline, "defend never fired");
        let _ = system.submit(TaskId(0), seq);
        seq += 1;
        std::thread::sleep(StdDuration::from_millis(5));
    }

    // Storm over: no further submissions. Entries expire within 100 ms;
    // the per-window gauge probe must observe the recovered slack and
    // relax — an arrival-driven gauge would stay stale forever here.
    assert!(system.quiesce(QUIESCE));
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    while system.services().label() != "J_N_N" {
        assert!(
            std::time::Instant::now() < deadline,
            "relax never fired: idle slack was not sensed"
        );
        std::thread::sleep(StdDuration::from_millis(10));
    }

    let events = governor.stop();
    assert!(events.iter().any(|e| e.decision.rule_name == "relax" && e.outcome.is_ok()));
    let stats = system.shutdown();
    assert!(stats.governor_swaps >= 2, "defend and relax both committed");
    assert!(stats.aub_slack > 0.9, "the probed gauge reflects the drained ledger");
}

#[test]
fn governor_with_never_firing_policy_is_inert() {
    use rtcm_core::govern::{GovernorPolicy, GovernorRule, Metric, Trigger};

    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    let policy = GovernorPolicy::new().rule(GovernorRule::new(
        "impossible",
        Metric::AcceptedRatio,
        Trigger::Below(-1.0),
        1,
        "T_T_T".parse().unwrap(),
    ));
    let governor = system.spawn_governor(policy, StdDuration::from_millis(10)).unwrap();
    for seq in 0..5 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    std::thread::sleep(StdDuration::from_millis(50));
    let events = governor.stop();
    assert!(events.is_empty(), "no rule fired");
    assert_eq!(system.services().label(), "J_N_N");
    let stats = system.shutdown();
    assert!(stats.governor_windows > 0, "the governor sensed windows");
    assert_eq!(stats.governor_swaps, 0);
    assert_eq!(stats.jobs_completed, 5);
}

#[test]
fn report_counts_are_consistent() {
    let system = launch(
        "workload w\nprocessors 2\n\
         task a periodic period=50ms\n  subtask exec=1ms proc=0 replicas=1\n\
         task b aperiodic deadline=100ms\n  subtask exec=1ms proc=1\n",
        "J_J_T",
    );
    for seq in 0..10 {
        system.submit(TaskId(0), seq).unwrap();
        system.submit(TaskId(1), seq).unwrap();
    }
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.ratio.arrived_jobs(), 20);
    assert_eq!(report.jobs_completed, report.ratio.released_jobs(), "every released job completes");
}

/// The event fast path's publish/fan-out counters surface in the system
/// report: every protocol message (including the injected submissions
/// themselves) crosses the channel, nothing is dropped by the runtime's
/// own unbounded mailboxes, and every publish lands in some mailbox.
#[test]
fn event_channel_counters_surface_in_the_report() {
    let system = launch(
        "workload w\nprocessors 2\n\
         task a periodic period=50ms\n  subtask exec=1ms proc=0 replicas=1\n\
         task b aperiodic deadline=100ms\n  subtask exec=1ms proc=1\n",
        "J_J_T",
    );
    for seq in 0..5 {
        system.submit(TaskId(0), seq).unwrap();
        system.submit(TaskId(1), seq).unwrap();
    }
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert!(
        report.events_published >= 30,
        "10 injects + 10 arrives + 10 decisions at least, got {}",
        report.events_published
    );
    // Deliveries track publishes (fan-out ≥ 1 per publish; a few parcels
    // may still sit in the network heap at snapshot time).
    assert!(
        report.events_delivered + 16 >= report.events_published,
        "{} delivered / {} published",
        report.events_delivered,
        report.events_published
    );
    assert_eq!(report.events_dropped, 0, "runtime mailboxes are unbounded");
    assert!(report.remote_parcels > 0, "TE↔AC traffic crosses nodes");
}

/// The tentpole's headline number: an idle system performs **zero** timer
/// wakeups. Before the reactor rework every node and the manager woke on
/// a 500 µs control poll (~2000 wakeups/s/node — ~128k/s for this spec);
/// now each thread blocks indefinitely on its merged mailbox whenever its
/// wheel is empty. The counter rides [`SystemReport::timer_wakeups`], so
/// any regression back toward polling shows up as a nonzero report here.
#[test]
fn idle_system_performs_zero_timer_wakeups() {
    let system = launch(
        "workload w\nprocessors 64\ntask t aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    // 64 node threads + the manager, all idle for a measured interval.
    std::thread::sleep(StdDuration::from_millis(300));
    assert_eq!(system.stats().timer_wakeups, 0, "idle threads must not wake on timers");

    // The system is not wedged: a submitted job still drains normally,
    // and under Noop execution no slice timers are armed either.
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.timer_wakeups, 0, "noop execution schedules no slices");
}

/// The zero-wakeup counter's positive control: in `ExecMode::Sleep` every
/// dispatcher slice boundary is a timer-wheel entry, so a multi-slice job
/// must record timer wakeups — proving the counter actually observes the
/// wheel and the idle test above isn't vacuously green.
#[test]
fn sleep_mode_slices_ride_the_timer_wheel() {
    let deployment = configure_with(
        &spec(
            "workload w\nprocessors 1\ntask t aperiodic deadline=500ms\n  subtask exec=5ms proc=0\n",
        ),
        "J_N_N".parse().unwrap(),
    )
    .unwrap();
    let system =
        System::launch(&deployment, RtOptions { exec: ExecMode::Sleep, ..RtOptions::default() })
            .unwrap();
    system.submit(TaskId(0), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 1);
    // 5 ms of execution at the default 200 µs slice is ~25 boundaries.
    assert!(
        report.timer_wakeups >= 1,
        "sleep slices must expire via the wheel, got {}",
        report.timer_wakeups
    );
}

/// A stale fence (prepare whose commit/abort never arrives) now drops *at*
/// its wheel deadline instead of up to a poll period later — and never
/// early. Pinned both ways: still fenced at 60% of the timeout, recovered
/// within a tight grace of it. The old design only re-checked expiry when
/// reconfiguration traffic or a 20 ms poll tick happened to arrive; with
/// no further traffic this test would then hang until the poll fired.
#[test]
fn stale_fence_recovers_at_the_wheel_deadline() {
    use rtcm_events::{Federation, Latency, NodeId};
    use rtcm_rt::proto::{self, ReconfigMsg, ReconfigPhase};
    use rtcm_rt::{QuorumMember, QuorumOptions};

    let fence_timeout = StdDuration::from_millis(400);
    let host = Federation::new(2, Latency::None, 7);
    let member = QuorumMember::attach(&host, NodeId(1), QuorumOptions { fence_timeout }).unwrap();

    // A foreign prepare whose commit will never arrive.
    let foreign = ReconfigMsg {
        coordinator: 0xDEAD_BEEF,
        host: 0xBAD_0057,
        epoch: 1,
        phase: ReconfigPhase::Prepare,
        services: "T_T_T".parse().unwrap(),
        sent_ns: 0,
        trace: proto::swap_trace(0xDEAD_BEEF, 1),
    };
    host.handle(NodeId(0)).unwrap().publish(rtcm_events::topics::RECONFIG, proto::encode(&foreign));

    let fenced_by = std::time::Instant::now() + StdDuration::from_secs(5);
    while !member.is_fenced() {
        assert!(std::time::Instant::now() < fenced_by, "member never fenced");
        std::thread::sleep(StdDuration::from_millis(1));
    }
    let fenced_at = std::time::Instant::now();

    // Never early: the wheel fires on `deadline_ns <= now`, so well short
    // of the timeout the fence must still stand.
    std::thread::sleep(fence_timeout.mul_f64(0.6));
    assert!(member.is_fenced(), "fence dropped before its deadline");

    // At the deadline (plus scheduler grace) the fence is gone — no
    // further traffic required, no 20 ms poll quantum added.
    let grace = StdDuration::from_millis(100);
    while member.is_fenced() {
        assert!(
            fenced_at.elapsed() < fence_timeout + grace,
            "fence outlived its wheel deadline by more than {grace:?}"
        );
        std::thread::sleep(StdDuration::from_millis(1));
    }
    let held = fenced_at.elapsed();
    // We first observed the fence at most a poll step after it was raised,
    // so the measured hold can undershoot the timeout only slightly.
    assert!(
        held + StdDuration::from_millis(50) >= fence_timeout,
        "fence dropped {held:?} after observation — far before its {fence_timeout:?} deadline"
    );
    member.shutdown();
}

// ---------------------------------------------------------------------
// Telemetry plane: OAM scrapes, job traces, governor wheel ticks
// ---------------------------------------------------------------------

/// Value of the single un-labelled sample line for `name` in an
/// exposition page.
fn metric(page: &str, name: &str) -> u64 {
    page.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} absent from exposition"))
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

#[test]
fn oam_scrape_matches_the_report_snapshot() {
    let system = launch(
        "workload w\nprocessors 2\n\
         task chain aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n  subtask exec=1ms proc=1\n",
        "J_N_N",
    );
    let oam = system.serve_oam("127.0.0.1:0").unwrap();

    for seq in 0..10 {
        system.submit(TaskId(0), seq).unwrap();
    }
    // Scraping mid-run is legal and lock-free; exact values race with the
    // jobs still flowing, so only sanity-check the page shape here.
    let live = rtcm_telemetry::scrape(oam.addr(), "/metrics").unwrap();
    assert!(live.contains("# TYPE rtcm_jobs_arrived_total counter"));
    assert!(live.contains("# TYPE rtcm_response_ns histogram"));

    assert!(system.quiesce(QUIESCE));
    let page = rtcm_telemetry::scrape(oam.addr(), "/metrics").unwrap();
    let report = system.stats();
    assert_eq!(metric(&page, "rtcm_jobs_arrived_total"), report.ratio.arrived_jobs());
    assert_eq!(metric(&page, "rtcm_jobs_completed_total"), report.jobs_completed);
    assert_eq!(metric(&page, "rtcm_deadline_misses_total"), report.deadline_misses);
    assert_eq!(metric(&page, "rtcm_ir_reports_total"), report.ir_reports);
    assert_eq!(metric(&page, "rtcm_reconfig_swaps_total"), report.reconfig_swaps);
    assert_eq!(metric(&page, "rtcm_events_published_total"), report.events_published);
    assert_eq!(metric(&page, "rtcm_response_ns_count"), report.response.count());
    assert_eq!(metric(&page, "rtcm_jobs_in_flight"), 0);

    // Per-shard admission counters: the default single-shard layout keeps
    // every decision on the local fast path.
    assert!(page.contains("# TYPE rtcm_admission_shard_local_total counter"));
    assert_eq!(metric(&page, "rtcm_admission_shard_local_total"), report.admission_shard_local);
    assert_eq!(metric(&page, "rtcm_admission_cross_shard_total"), report.admission_cross_shard);
    assert_eq!(
        metric(&page, "rtcm_admission_summary_refreshes_total"),
        report.admission_summary_refreshes
    );
    assert_eq!(report.admission_shard_local, 10, "every decision is single-homed");
    assert_eq!(report.admission_cross_shard, 0);

    // The trace route serves one JSON object per line, covering the runs.
    let trace = rtcm_telemetry::scrape(oam.addr(), "/trace").unwrap();
    assert!(trace.lines().count() >= 10, "at least one record per job");
    assert!(trace.lines().all(|l| l.starts_with('{') && l.ends_with('}')));

    oam.shutdown();
    let _ = system.shutdown();
}

#[test]
fn sharded_admission_plane_splits_local_and_cross_decisions() {
    let deployment = configure_with(
        &spec(
            "workload w\nprocessors 4\n\
             task left aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n\
             task right aperiodic deadline=500ms\n  subtask exec=1ms proc=2\n\
             task wide aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n  subtask exec=1ms proc=3\n",
        ),
        "J_N_N".parse().expect("valid combo"),
    )
    .unwrap();
    let options = RtOptions { admission_shards: 2, ..RtOptions::fast() };
    let system = System::launch(&deployment, options).unwrap();

    for seq in 0..4 {
        system.submit(TaskId(0), seq).unwrap();
        system.submit(TaskId(1), seq).unwrap();
        system.submit(TaskId(2), seq).unwrap();
    }
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 12);
    // `left` and `right` stay inside one processor group each; `wide`
    // spans both shards and must take the cross-shard reservation path.
    assert_eq!(report.admission_shard_local, 8, "single-group tasks decide locally");
    assert_eq!(report.admission_cross_shard, 4, "spanning tasks go cross-shard");
}

#[test]
fn job_trace_covers_the_lifecycle_with_a_deterministic_id() {
    let system = launch(
        "workload w\nprocessors 2\n\
         task chain aperiodic deadline=500ms\n  subtask exec=1ms proc=0\n  subtask exec=1ms proc=1\n",
        "J_N_N",
    );
    system.submit(TaskId(0), 7).unwrap();
    assert!(system.quiesce(QUIESCE));

    // The id is minted from (host, task, seq) — a reader who knows what
    // was submitted can compute it without scraping anything first.
    let expected = rtcm_rt::proto::mint_trace(system.host_id(), TaskId(0), 7);
    let stages: Vec<String> = system
        .telemetry()
        .trace
        .snapshot()
        .into_iter()
        .filter(|r| r.trace == expected)
        .map(|r| r.stage)
        .collect();
    for stage in ["arrival", "admission", "release", "completion"] {
        assert!(stages.contains(&stage.to_string()), "missing stage {stage} in {stages:?}");
    }
    let _ = system.shutdown();
}

#[test]
fn bridged_swap_trace_ids_correlate_across_hosts() {
    use rtcm_rt::{QuorumMember, QuorumOptions};

    let system = launch(
        "workload w\nprocessors 2\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    let (remote_host, _server, _client) = bridge_quorum(&system, rtcm_events::NodeId(1));
    let member =
        QuorumMember::attach(&remote_host, rtcm_events::NodeId(1), QuorumOptions::default())
            .unwrap();
    system.register_remote_voter(member.host_id());

    system.reconfigure("T_T_T".parse().unwrap()).unwrap();

    let local = system.telemetry().trace.snapshot();
    let commit =
        local.iter().find(|r| r.stage == "reconfig_commit").expect("coordinator traced its commit");
    assert!(
        local.iter().any(|r| r.stage == "reconfig_prepare" && r.trace == commit.trace),
        "prepare and commit share the swap's trace id"
    );

    // The member's dump carries the *same* id for the same swap — the
    // correlation needs no clock alignment and no extra wire traffic.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    loop {
        let remote = member.trace().snapshot();
        if remote.iter().any(|r| r.stage == "reconfig_commit" && r.trace == commit.trace) {
            assert!(
                remote.iter().any(|r| r.stage == "reconfig_prepare" && r.trace == commit.trace),
                "member traced the prepare it voted on"
            );
            break;
        }
        assert!(std::time::Instant::now() < deadline, "member never traced the commit");
        std::thread::sleep(StdDuration::from_millis(5));
    }
    member.shutdown();
    let _ = system.shutdown();
}

#[test]
fn governor_ticks_ride_the_timer_wheel() {
    use rtcm_core::govern::{GovernorPolicy, GovernorRule, Metric, Trigger};

    let system = launch(
        "workload w\nprocessors 1\ntask t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        "J_N_N",
    );
    let before = system.stats();
    let policy = GovernorPolicy::new().rule(GovernorRule::new(
        "impossible",
        Metric::AcceptedRatio,
        Trigger::Below(-1.0),
        1,
        "T_T_T".parse().unwrap(),
    ));
    let governor = system.spawn_governor(policy, StdDuration::from_millis(10)).unwrap();
    // No jobs are submitted: every window boundary the governor observes
    // is a pure timer-wheel wakeup, so the counter must track them.
    std::thread::sleep(StdDuration::from_millis(120));
    let _ = governor.stop();
    let after = system.stats();
    let windows = after.governor_windows - before.governor_windows;
    let wakeups = after.timer_wakeups - before.timer_wakeups;
    assert!(windows >= 3, "several windows elapsed (got {windows})");
    assert!(
        wakeups >= windows,
        "each governor window boundary is a wheel wakeup ({wakeups} < {windows})"
    );
    let _ = system.shutdown();
}

#[test]
fn governor_handle_notifies_instead_of_polling() {
    use rtcm_core::govern::{GovernorPolicy, GovernorRule, Metric, Trigger};

    let system = launch(
        "workload w\nprocessors 1\n\
         task alert aperiodic deadline=100ms\n  subtask exec=80ms proc=0\n",
        "J_N_N",
    );
    let policy = GovernorPolicy::new()
        .rule(
            GovernorRule::new(
                "collapse-defense",
                Metric::AcceptedRatio,
                Trigger::Below(0.5),
                2,
                "T_T_T".parse().unwrap(),
            )
            .min_arrivals(3),
        )
        .cooldown(3);
    let governor = system.spawn_governor(policy, StdDuration::from_millis(30)).unwrap();

    // Nothing has happened yet: a bounded wait must time out...
    assert!(!governor.wait_for_events(1, StdDuration::from_millis(50)));
    // ...and a zero-count wait is trivially satisfied.
    assert!(governor.wait_for_events(0, StdDuration::ZERO));

    // Flood in the background; the foreground blocks on the notification
    // rather than polling the log.
    let feeder = {
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&stop);
        let sys = &system;
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let mut seq = 0;
                while !flag.load(std::sync::atomic::Ordering::SeqCst) {
                    let _ = sys.submit(TaskId(0), seq);
                    seq += 1;
                    std::thread::sleep(StdDuration::from_millis(5));
                }
            });
            let woke = governor.wait_for_events(1, StdDuration::from_secs(10));
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            handle.join().unwrap();
            woke
        })
    };
    assert!(feeder, "the defensive swap was notified to the waiting launcher");
    let events = governor.stop();
    assert_eq!(events[0].decision.rule_name, "collapse-defense");
    assert!(system.quiesce(QUIESCE));
    let _ = system.shutdown();
}
