//! Wall-clock time source mapped onto the core [`Time`] axis.
//!
//! All nodes of a runtime [`crate::system::System`] share one `Clock`, so
//! one-way delays between threads are directly measurable — a luxury the
//! paper's distributed testbed lacked ("our experiment environment does not
//! provide sufficiently high resolution time synchronization among
//! processors", §7.3). Our substitution runs all "processors" in one
//! process, which makes the Figure 8 measurements simpler and *more*
//! precise; the trade-off is documented in DESIGN.md.

use std::time::Instant;

use rtcm_core::time::{Duration, Time};

/// A monotonic clock anchored at its creation instant.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    origin: Instant,
}

impl Clock {
    /// Creates a clock with `now()` starting at [`Time::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Clock { origin: Instant::now() }
    }

    /// Current time on the shared axis.
    #[must_use]
    pub fn now(&self) -> Time {
        Time::ZERO + Duration::from(self.origin.elapsed())
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let clock = Clock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_tracks_real_time() {
        let clock = Clock::new();
        let before = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let after = clock.now();
        let elapsed = after.elapsed_since(before);
        assert!(elapsed >= Duration::from_millis(9), "elapsed {elapsed}");
        assert!(elapsed < Duration::from_secs(1), "elapsed {elapsed}");
    }

    #[test]
    fn copies_share_the_origin() {
        let clock = Clock::new();
        let copy = clock;
        let a = clock.now();
        let b = copy.now();
        assert!(b.elapsed_since(a) < Duration::from_millis(5));
    }
}
