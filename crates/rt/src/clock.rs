//! Wall-clock time source mapped onto the core [`Time`] axis.
//!
//! All nodes of a runtime [`crate::system::System`] share one `Clock`, so
//! one-way delays between threads are directly measurable — a luxury the
//! paper's distributed testbed lacked ("our experiment environment does not
//! provide sufficiently high resolution time synchronization among
//! processors", §7.3). Our substitution runs all "processors" in one
//! process, which makes the Figure 8 measurements simpler and *more*
//! precise; the trade-off is documented in DESIGN.md.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rtcm_core::time::{Duration, Time};

/// A monotonic nanosecond source that can drive a
/// [`crate::reactor::TimerWheel`].
///
/// The threaded runtime implements this with the wall [`Clock`]; tests and
/// the deterministic simulator implement it with [`ManualClock`], whose time
/// only moves when explicitly advanced — the wheel then fires the exact same
/// entries in the exact same order on every run.
pub trait TimerDriver {
    /// Nanoseconds elapsed on this driver's time axis (monotone).
    fn now_ns(&self) -> u64;
}

/// A monotonic clock anchored at its creation instant.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    origin: Instant,
}

impl Clock {
    /// Creates a clock with `now()` starting at [`Time::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Clock { origin: Instant::now() }
    }

    /// Current time on the shared axis.
    #[must_use]
    pub fn now(&self) -> Time {
        Time::ZERO + Duration::from(self.origin.elapsed())
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

impl TimerDriver for Clock {
    fn now_ns(&self) -> u64 {
        self.now().as_nanos()
    }
}

/// A hand-cranked [`TimerDriver`]: time stands still until someone calls
/// [`ManualClock::advance_by`] / [`ManualClock::set_ns`].
///
/// Clones share the same axis, so a test can hold one handle while the
/// reactor under test holds another. This is the determinism contract the
/// sim relies on: with a `ManualClock`, wheel firing depends only on the
/// sequence of schedule/cancel/advance calls, never on host scheduling.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    ns: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock frozen at t = 0.
    #[must_use]
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves time forward by `delta` nanoseconds.
    pub fn advance_by(&self, delta_ns: u64) {
        self.ns.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Jumps time to an absolute nanosecond reading (must be monotone).
    pub fn set_ns(&self, ns: u64) {
        self.ns.fetch_max(ns, Ordering::SeqCst);
    }
}

impl TimerDriver for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let clock = Clock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_tracks_real_time() {
        let clock = Clock::new();
        let before = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let after = clock.now();
        let elapsed = after.elapsed_since(before);
        assert!(elapsed >= Duration::from_millis(9), "elapsed {elapsed}");
        assert!(elapsed < Duration::from_secs(1), "elapsed {elapsed}");
    }

    #[test]
    fn copies_share_the_origin() {
        let clock = Clock::new();
        let copy = clock;
        let a = clock.now();
        let b = copy.now();
        assert!(b.elapsed_since(a) < Duration::from_millis(5));
    }
}
