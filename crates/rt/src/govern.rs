//! The runtime half of the adaptation governor: a background task that
//! closes the sensing → policy → actuation loop over a live [`System`].
//!
//! Sensing reads one [`SystemReport`](crate::stats::SystemReport) snapshot
//! per window and turns it into per-window metrics through
//! [`rtcm_core::govern::WindowSensor`] — an O(1) delta of counters the
//! runtime maintains on its normal paths anyway. The AUB slack and
//! imbalance gauges come from a once-per-window manager probe
//! (`ManagerCtl::SenseGauges`), which expires the current set before
//! reading the ledger's maintained totals — so an *idle* system's slack
//! still tracks entry expiry (exactly the simulator's per-tick
//! semantics) and the admission hot path pays nothing for sensing.
//! Policy evaluation is the pure
//! [`rtcm_core::govern::Governor`]; actuation is the same two-phase
//! protocol `System::reconfigure` runs, serialized on the same lock, so a
//! governor and an operator can coexist without racing each other.
//!
//! Windows close on **absolute deadlines** (`next += window`): slow
//! actuation delays at most its own boundary, never the cadence, and any
//! boundary it overruns entirely is skipped and counted in
//! [`SystemReport::governor_overruns`](crate::stats::SystemReport::governor_overruns).

use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use rtcm_core::govern::{
    CumulativeLoad, Governor, GovernorDecision, GovernorPolicy, PolicyError, WindowSensor,
};

use crate::clock::Clock;
use crate::stats::SharedStats;
use crate::system::{ReconfigReport, ReconfigureError, SwapClient};

/// One governor actuation, as logged by [`GovernorHandle`].
#[derive(Debug, Clone)]
pub struct GovernorEvent {
    /// When the decision was taken (shared-clock ns).
    pub at_ns: u64,
    /// The policy decision (rule, streak, target).
    pub decision: GovernorDecision,
    /// What the two-phase protocol did with it — a committed swap's
    /// transition cost, or the abort/closure it ran into.
    pub outcome: Result<ReconfigReport, ReconfigureError>,
}

/// A running governor attached to a [`System`](crate::System). Dropping
/// the handle (or calling [`GovernorHandle::stop`]) detaches the governor;
/// the system itself is unaffected either way.
pub struct GovernorHandle {
    stop: Sender<()>,
    thread: Option<std::thread::JoinHandle<()>>,
    log: Arc<Mutex<Vec<GovernorEvent>>>,
}

impl std::fmt::Debug for GovernorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GovernorHandle").field("events", &self.log.lock().len()).finish()
    }
}

impl GovernorHandle {
    /// Snapshot of the decisions taken so far (oldest first).
    #[must_use]
    pub fn events(&self) -> Vec<GovernorEvent> {
        self.log.lock().clone()
    }

    /// Stops the governor and returns its full decision log.
    #[must_use]
    pub fn stop(mut self) -> Vec<GovernorEvent> {
        self.halt();
        let log = self.log.lock().clone();
        log
    }

    fn halt(&mut self) {
        let _ = self.stop.send(());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for GovernorHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Spawns the governor loop (used by `System::spawn_governor`).
pub(crate) fn spawn_governor_thread(
    policy: GovernorPolicy,
    window: StdDuration,
    stats: Arc<SharedStats>,
    swap: SwapClient,
    clock: Clock,
) -> Result<GovernorHandle, PolicyError> {
    let mut governor = Governor::new(policy)?;
    let (stop_tx, stop_rx) = unbounded();
    let log: Arc<Mutex<Vec<GovernorEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let thread_log = Arc::clone(&log);
    let thread = std::thread::Builder::new()
        .name("rtcm-governor".into())
        .spawn(move || {
            let mut sensor = WindowSensor::new();
            // An untouched system is fully slack; thereafter the manager's
            // per-window probe keeps the gauges fresh even while the
            // system idles (expiry is applied before every read, matching
            // the simulator's per-tick semantics exactly).
            let mut gauges = (1.0, 0.0);
            // Window boundaries are *absolute* deadlines (`next += window`),
            // so a slow sense/actuate cycle — a reconfigure can block up to
            // a full ack timeout — delays one boundary without stretching
            // every later one. The old relative wait (`recv_timeout(window)`
            // after the work) accumulated that drift into the WindowSensor's
            // rate deltas. A cycle that overruns whole boundaries skips
            // them (counted in `governor_overruns`) rather than firing a
            // burst of zero-length windows.
            let mut next = Instant::now() + window;
            loop {
                let wait = next.saturating_duration_since(Instant::now());
                match stop_rx.recv_timeout(wait) {
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                    Err(RecvTimeoutError::Timeout) => {}
                }
                next += window;
                let now = Instant::now();
                let mut overrun = 0u64;
                while next <= now {
                    next += window;
                    overrun += 1;
                }
                if overrun > 0 {
                    stats.with(|r| r.governor_overruns += overrun);
                }
                match swap.sense_gauges(window) {
                    Ok(Some(fresh)) => gauges = fresh,
                    Ok(None) => {}    // manager busy (mid-prepare): keep last
                    Err(_) => return, // system shut down
                }
                let report = stats.snapshot();
                let cum = CumulativeLoad {
                    arrived_jobs: report.ratio.arrived_jobs(),
                    arrived_utilization: report.ratio.arrived_utilization(),
                    released_utilization: report.ratio.released_utilization(),
                    ir_reports: report.ir_reports,
                    deferred: report.reconfig_deferred,
                };
                let metrics = sensor.sample(cum, gauges.0, gauges.1);
                stats.with(|r| r.governor_windows += 1);
                let Some(decision) = governor.observe(swap.services(), &metrics) else {
                    continue;
                };
                let at_ns = clock.now().as_nanos();
                let outcome = swap.reconfigure(decision.target);
                let closed = matches!(outcome, Err(ReconfigureError::Closed));
                if outcome.is_ok() {
                    stats.with(|r| r.governor_swaps += 1);
                }
                thread_log.lock().push(GovernorEvent { at_ns, decision, outcome });
                if closed {
                    return;
                }
            }
        })
        .expect("spawn governor thread");
    Ok(GovernorHandle { stop: stop_tx, thread: Some(thread), log })
}
