//! The runtime half of the adaptation governor: a background task that
//! closes the sensing → policy → actuation loop over a live [`System`].
//!
//! Sensing reads one [`SystemReport`](crate::stats::SystemReport) snapshot
//! per window and turns it into per-window metrics through
//! [`rtcm_core::govern::WindowSensor`] — an O(1) delta of counters the
//! runtime maintains on its normal paths anyway. The AUB slack and
//! imbalance gauges come from a once-per-window manager probe
//! (`ManagerCtl::SenseGauges`), which expires the current set before
//! reading the ledger's maintained totals — so an *idle* system's slack
//! still tracks entry expiry (exactly the simulator's per-tick
//! semantics) and the admission hot path pays nothing for sensing.
//! Policy evaluation is the pure
//! [`rtcm_core::govern::Governor`]; actuation is the same two-phase
//! protocol `System::reconfigure` runs, serialized on the same lock, so a
//! governor and an operator can coexist without racing each other.
//!
//! The sensing tick is a **timer-wheel entry** on the governor's own
//! reactor, not a `recv_timeout` poll: the thread parks on its mailbox
//! (which only ever carries the `topics::GOVERNOR_CTL` stop kick) until
//! the window deadline fires, and every boundary fire is counted in
//! [`SystemReport::timer_wakeups`](crate::stats::SystemReport::timer_wakeups)
//! alongside the dispatcher's and idle-detector's wheel wakeups.
//!
//! Windows close on **absolute deadlines** (`next += window`): slow
//! actuation delays at most its own boundary, never the cadence, and any
//! boundary it overruns entirely is skipped and counted in
//! [`SystemReport::governor_overruns`](crate::stats::SystemReport::governor_overruns).

use std::sync::Arc;
use std::time::Duration as StdDuration;

use crossbeam::channel::{unbounded, Sender, TryRecvError};

use rtcm_core::govern::{
    CumulativeLoad, Governor, GovernorDecision, GovernorPolicy, PolicyError, WindowSensor,
};
use rtcm_events::{topics, ChannelHandle};

use crate::clock::Clock;
use crate::reactor::{Reactor, Wake, DEFAULT_TICK};
use crate::stats::SharedStats;
use crate::system::{ReconfigReport, ReconfigureError, SwapClient};

/// One governor actuation, as logged by [`GovernorHandle`].
#[derive(Debug, Clone)]
pub struct GovernorEvent {
    /// When the decision was taken (shared-clock ns).
    pub at_ns: u64,
    /// The policy decision (rule, streak, target).
    pub decision: GovernorDecision,
    /// What the two-phase protocol did with it — a committed swap's
    /// transition cost, or the abort/closure it ran into.
    pub outcome: Result<ReconfigReport, ReconfigureError>,
}

/// The decision log plus the condvar that announces every append, so
/// launchers block on "the governor has acted" instead of polling
/// [`GovernorHandle::events`] in a sleep loop.
struct GovernorLog {
    events: std::sync::Mutex<Vec<GovernorEvent>>,
    appended: std::sync::Condvar,
}

impl GovernorLog {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<GovernorEvent>> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push(&self, event: GovernorEvent) {
        self.lock().push(event);
        self.appended.notify_all();
    }
}

/// A running governor attached to a [`System`](crate::System). Dropping
/// the handle (or calling [`GovernorHandle::stop`]) detaches the governor;
/// the system itself is unaffected either way.
pub struct GovernorHandle {
    stop: Sender<()>,
    /// Publishes the `topics::GOVERNOR_CTL` kick that wakes the governor's
    /// blocking mailbox wait after a stop request is enqueued.
    wake: ChannelHandle,
    thread: Option<std::thread::JoinHandle<()>>,
    log: Arc<GovernorLog>,
}

impl std::fmt::Debug for GovernorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GovernorHandle").field("events", &self.log.lock().len()).finish()
    }
}

impl GovernorHandle {
    /// Snapshot of the decisions taken so far (oldest first).
    #[must_use]
    pub fn events(&self) -> Vec<GovernorEvent> {
        self.log.lock().clone()
    }

    /// Blocks until the governor has logged at least `count` decisions,
    /// waking *at* the append (no polling). Returns false on timeout.
    #[must_use]
    pub fn wait_for_events(&self, count: usize, timeout: StdDuration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut events = self.log.lock();
        while events.len() < count {
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .log
                .appended
                .wait_timeout(events, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            events = guard;
        }
        true
    }

    /// Stops the governor and returns its full decision log.
    #[must_use]
    pub fn stop(mut self) -> Vec<GovernorEvent> {
        self.halt();
        let log = self.log.lock().clone();
        log
    }

    fn halt(&mut self) {
        let _ = self.stop.send(());
        // Kick the mailbox *after* the stop request is visible, so the
        // governor's indefinite block wakes and observes it.
        self.wake.publish(topics::GOVERNOR_CTL, Vec::new());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for GovernorHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Spawns the governor loop (used by `System::spawn_governor`).
pub(crate) fn spawn_governor_thread(
    policy: GovernorPolicy,
    window: StdDuration,
    stats: Arc<SharedStats>,
    swap: SwapClient,
    clock: Clock,
) -> Result<GovernorHandle, PolicyError> {
    let mut governor = Governor::new(policy)?;
    let (stop_tx, stop_rx) = unbounded();
    let log = Arc::new(GovernorLog {
        events: std::sync::Mutex::new(Vec::new()),
        appended: std::sync::Condvar::new(),
    });
    let thread_log = Arc::clone(&log);
    let wake = swap.ctl_channel().clone();
    // Subscribe on the caller's thread, before the governor runs, so a
    // stop kick published immediately after spawn cannot be missed.
    let mailbox = wake.subscribe(topics::GOVERNOR_CTL);
    let window_ns = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX).max(1);
    let thread = std::thread::Builder::new()
        .name("rtcm-governor".into())
        .spawn(move || {
            let mut sensor = WindowSensor::new();
            // An untouched system is fully slack; thereafter the manager's
            // per-window probe keeps the gauges fresh even while the
            // system idles (expiry is applied before every read, matching
            // the simulator's per-tick semantics exactly).
            let mut gauges = (1.0, 0.0);
            // The sensing tick is a wheel entry with an *absolute*
            // deadline (`next_ns += window_ns`): a slow sense/actuate
            // cycle — a reconfigure can block up to a full ack timeout —
            // delays one boundary without stretching every later one, and
            // a cycle that overruns whole boundaries skips them (counted
            // in `governor_overruns`) rather than firing a burst of
            // zero-length windows.
            let mut reactor: Reactor<Clock, ()> = Reactor::new(clock, DEFAULT_TICK);
            let mut next_ns = clock.now().as_nanos().saturating_add(window_ns);
            reactor.schedule_at(next_ns, ());
            let mut fired: Vec<(crate::reactor::TimerId, ())> = Vec::new();
            loop {
                match stop_rx.try_recv() {
                    Ok(()) | Err(TryRecvError::Disconnected) => return,
                    Err(TryRecvError::Empty) => {}
                }
                match reactor.wait(&mailbox) {
                    // A GOVERNOR_CTL kick: loop back to the stop check.
                    Wake::Event(_) => continue,
                    Wake::Closed => return,
                    Wake::Timer => {}
                }
                fired.clear();
                reactor.poll(&mut fired);
                if fired.is_empty() {
                    continue; // intermediate cascade wake, not a boundary
                }
                stats.timer_wakeup();
                next_ns += window_ns;
                let now_ns = clock.now().as_nanos();
                let mut overrun = 0u64;
                while next_ns <= now_ns {
                    next_ns += window_ns;
                    overrun += 1;
                }
                if overrun > 0 {
                    stats.with(|r| r.governor_overruns += overrun);
                }
                reactor.schedule_at(next_ns, ());
                match swap.sense_gauges(window) {
                    Ok(Some(fresh)) => gauges = fresh,
                    Ok(None) => {}    // manager busy (mid-prepare): keep last
                    Err(_) => return, // system shut down
                }
                let report = stats.snapshot();
                let cum = CumulativeLoad {
                    arrived_jobs: report.ratio.arrived_jobs(),
                    arrived_utilization: report.ratio.arrived_utilization(),
                    released_utilization: report.ratio.released_utilization(),
                    ir_reports: report.ir_reports,
                    deferred: report.reconfig_deferred,
                };
                let metrics = sensor.sample(cum, gauges.0, gauges.1);
                stats.with(|r| r.governor_windows += 1);
                let Some(decision) = governor.observe(swap.services(), &metrics) else {
                    continue;
                };
                let at_ns = clock.now().as_nanos();
                let outcome = swap.reconfigure(decision.target);
                let closed = matches!(outcome, Err(ReconfigureError::Closed));
                if outcome.is_ok() {
                    stats.with(|r| r.governor_swaps += 1);
                }
                thread_log.push(GovernorEvent { at_ns, decision, outcome });
                if closed {
                    return;
                }
            }
        })
        .expect("spawn governor thread");
    Ok(GovernorHandle { stop: stop_tx, wake, thread: Some(thread), log })
}
