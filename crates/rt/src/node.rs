//! An application-processor node: one thread hosting the task effector,
//! the idle resetter, and the prioritized subtask dispatcher (the F/I and
//! Last Subtask components of Figure 3).
//!
//! Subjobs execute in **time slices** (default 200 µs): the dispatcher
//! checks for more-urgent ready work at every slice boundary, giving
//! quasi-preemptive EDMS scheduling without relying on OS real-time
//! priorities (see DESIGN.md for this substitution). Execution itself is
//! simulated by sleeping or spinning for the subtask's execution time
//! ([`ExecMode`]).
//!
//! The loop is reactor-driven: in [`ExecMode::Sleep`] a slice boundary is a
//! timer-wheel entry and the thread parks on `min(slice deadline, mailbox)`
//! — mid-slice events are enqueued immediately but preemption still only
//! happens at the boundary. An idle node holds no wheel entries and blocks
//! on its mailbox indefinitely: **zero wakeups while idle**, where the old
//! design paid a 500 µs `recv_timeout` poll (~2000 wakeups/s/node).

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use rtcm_core::ledger::ContributionKey;
use rtcm_core::priority::Priority;
use rtcm_core::reset::IdleResetter;
use rtcm_core::strategy::{AcStrategy, LbStrategy, ServiceConfig};
use rtcm_core::task::{JobId, ProcessorId, TaskId, TaskSet};
use rtcm_core::time::{Duration, Time};
use rtcm_events::{topics, ChannelHandle, Event, EventReceiver, Topic};

use crate::clock::Clock;
use crate::proto::{
    self, AcceptMsg, ArriveMsg, IdleResetMsg, InjectMsg, ReconfigAckMsg, ReconfigMsg,
    ReconfigPhase, RejectMsg, TriggerMsg,
};
use crate::reactor::{Reactor, TimerId, Wake, DEFAULT_TICK};
use crate::stats::SharedStats;

/// How subtask execution consumes time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Sleep for the execution time (cooperative; default).
    #[default]
    Sleep,
    /// Busy-spin for the execution time (burns CPU; closest to real work).
    Spin,
    /// Complete instantly (control-plane tests).
    Noop,
}

#[derive(Debug, Clone)]
enum TeDecision {
    Admitted(Vec<u16>),
    Rejected,
}

/// Wheel tags for the node's reactor.
#[derive(Debug, Clone, Copy)]
enum NodeTimer {
    /// The current execution slice reached its boundary.
    SliceEnd,
}

#[derive(Debug)]
struct ReadySubjob {
    priority: Priority,
    enqueue_seq: u64,
    job: JobId,
    subtask: usize,
    remaining: StdDuration,
    assignment: Vec<u16>,
    arrival_ns: u64,
    deadline_ns: u64,
    trace: u64,
}

impl PartialEq for ReadySubjob {
    fn eq(&self, other: &Self) -> bool {
        self.enqueue_seq == other.enqueue_seq
    }
}
impl Eq for ReadySubjob {}
impl PartialOrd for ReadySubjob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadySubjob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp_urgency(other.priority)
            .then_with(|| other.enqueue_seq.cmp(&self.enqueue_seq))
    }
}

/// Everything a node thread needs at spawn time.
///
/// The **mailbox** is the node's single inbox: one subscription merging
/// accept/reject/trigger/reconfig traffic with this processor's reserved
/// inject and control topics, created by the *launcher* before any thread
/// starts, so no publication can race past an unsubscribed consumer. One
/// queue means one wait point and a global FIFO over everything the node
/// reacts to.
pub(crate) struct NodeConfig {
    pub processor: u16,
    pub services: ServiceConfig,
    pub tasks: Arc<TaskSet>,
    pub priorities: Arc<std::collections::HashMap<TaskId, Priority>>,
    pub channel: ChannelHandle,
    pub clock: Clock,
    pub stats: Arc<SharedStats>,
    pub exec: ExecMode,
    pub slice: StdDuration,
    pub mailbox: EventReceiver,
}

/// Runs the node loop until shutdown. Spawned by `System::launch`.
pub(crate) fn run_node(cfg: NodeConfig) {
    let mut node = Node::new(cfg);
    node.run();
}

struct Node {
    cfg: NodeConfig,
    inject_topic: Topic,
    ctl_topic: Topic,
    te_cache: std::collections::HashMap<TaskId, TeDecision>,
    resetter: IdleResetter,
    ready: BinaryHeap<ReadySubjob>,
    current: Option<ReadySubjob>,
    next_seq: u64,
    /// Set between a reconfiguration *prepare* and its *commit*/*abort*,
    /// keyed by `(coordinator, epoch)`: while fenced, the TE fast path is
    /// disabled so every arrival routes through the AC and no local
    /// decision can straddle the swap. A commit is adopted only under its
    /// matching fence, so an unrelated (e.g. bridged-in foreign) commit
    /// can never half-apply.
    fence: Option<(u64, u64)>,
    running: bool,
    /// Timer wheel + single-wait loop. In [`ExecMode::Sleep`] the pending
    /// slice boundary is the only steady-state entry.
    reactor: Reactor<Clock, NodeTimer>,
    /// Wheel entry for the in-flight slice; `Some` exactly while `current`
    /// holds a subjob mid-slice.
    slice_timer: Option<TimerId>,
    /// Wall instant the in-flight slice started (for consumed-time
    /// compensation on kernels with coarse timers).
    slice_started: Instant,
    /// Nominal length of the in-flight slice.
    slice_len: StdDuration,
    /// Scratch buffer for fired timers (avoids per-wake allocation).
    fired: Vec<(TimerId, NodeTimer)>,
}

impl Node {
    fn new(cfg: NodeConfig) -> Self {
        let resetter = IdleResetter::new(cfg.services.ir, ProcessorId(cfg.processor));
        Node {
            inject_topic: topics::inject(cfg.processor),
            ctl_topic: topics::node_ctl(cfg.processor),
            te_cache: std::collections::HashMap::new(),
            resetter,
            ready: BinaryHeap::new(),
            current: None,
            next_seq: 0,
            fence: None,
            running: true,
            reactor: Reactor::new(cfg.clock, DEFAULT_TICK),
            slice_timer: None,
            slice_started: Instant::now(),
            slice_len: StdDuration::ZERO,
            fired: Vec::new(),
            cfg,
        }
    }

    fn run(&mut self) {
        while self.running {
            let mut fired = std::mem::take(&mut self.fired);
            fired.clear();
            self.reactor.poll(&mut fired);
            for (_, timer) in fired.drain(..) {
                self.on_timer(timer);
            }
            self.fired = fired;
            self.drain_messages();
            if !self.running {
                break;
            }
            self.pump();
            if !self.running {
                break;
            }
            match self.reactor.wait(&self.cfg.mailbox) {
                Wake::Event(ev) => self.dispatch(&ev),
                Wake::Timer => self.cfg.stats.timer_wakeup(),
                // Federation gone (launcher dropped without a shutdown
                // event): nothing can ever arrive again, so stop instead
                // of spinning.
                Wake::Closed => self.running = false,
            }
        }
    }

    /// Routes one mailbox event to its handler. All node input — protocol
    /// events, injected arrivals, shutdown — arrives through the single
    /// mailbox in publish order.
    fn dispatch(&mut self, ev: &Event) {
        let topic = ev.topic;
        if topic == topics::ACCEPT {
            self.on_accept(proto::decode(&ev.payload));
        } else if topic == topics::REJECT {
            self.on_reject(&proto::decode(&ev.payload));
        } else if topic == topics::TRIGGER {
            self.on_trigger(proto::decode(&ev.payload));
        } else if topic == topics::RECONFIG {
            self.on_reconfig(proto::decode(&ev.payload));
        } else if topic == self.inject_topic {
            self.on_inject(proto::decode(&ev.payload));
        } else if topic == self.ctl_topic {
            self.running = false;
        }
    }

    /// One phase of a live reconfiguration (published by the AC on the
    /// event channel — and possibly bridged in from a remote host). Phases
    /// whose coordinator lives on a *foreign* federation are ignored
    /// outright: a bridged-in foreign swap concerns that host's nodes (and
    /// this host's `QuorumMember`, if one is attached), never this node's
    /// local configuration — so it can neither poison the fence nor
    /// half-apply.
    fn on_reconfig(&mut self, msg: ReconfigMsg) {
        if msg.host != self.cfg.channel.host_id() {
            return;
        }
        match msg.phase {
            ReconfigPhase::Prepare => {
                self.fence = Some((msg.coordinator, msg.epoch));
                let ack = ReconfigAckMsg {
                    coordinator: msg.coordinator,
                    epoch: msg.epoch,
                    host: self.cfg.channel.host_id(),
                    processor: self.cfg.processor,
                    vote: proto::ReconfigVote::Ack,
                    sent_ns: self.cfg.clock.now().as_nanos(),
                    trace: msg.trace,
                };
                self.cfg.channel.publish(topics::RECONFIG_ACK, proto::encode(&ack));
            }
            ReconfigPhase::Abort => {
                if self.fence == Some((msg.coordinator, msg.epoch)) {
                    self.fence = None;
                }
            }
            ReconfigPhase::Commit => {
                // Only the swap this node actually fenced for may commit;
                // anything else (a foreign coordinator's commit bridged in
                // without its prepare, a stale epoch) is ignored rather
                // than half-applied.
                if self.fence != Some((msg.coordinator, msg.epoch)) {
                    return;
                }
                // Adopt the committed configuration: swap the resetter
                // strategy in place and drop cached TE decisions — they
                // were taken under the old configuration (a drained
                // reservation must not keep fast-path releasing).
                self.cfg.services = msg.services;
                self.resetter.set_strategy(msg.services.ir);
                self.te_cache.clear();
                self.fence = None;
            }
        }
    }

    fn drain_messages(&mut self) {
        while let Ok(ev) = self.cfg.mailbox.try_recv() {
            self.dispatch(&ev);
            if !self.running {
                return;
            }
        }
    }

    /// The TE component: record the arrival, fast-path per-task decisions,
    /// otherwise hold and push "Task Arrive" to the AC (ops 1–2).
    fn on_inject(&mut self, inj: InjectMsg) {
        // `System::submit` already counted the job in (so quiesce() sees it
        // immediately); this thread only records the arrival weight.
        let Some(task) = self.cfg.tasks.get(inj.task) else {
            self.cfg.stats.job_out();
            return;
        };
        let m = self.cfg.stats.metrics();
        m.arrived_utilization.add(task.job_utilization());
        m.arrived_jobs.inc();
        m.trace.record(
            inj.trace,
            self.cfg.clock.now().as_nanos(),
            self.cfg.channel.host_id(),
            "arrival",
            format!("{} at proc {}", JobId::new(inj.task, inj.seq), self.cfg.processor),
        );

        // While fenced for a pending reconfiguration, the fast path is
        // disabled: every arrival routes through the AC, which defers it
        // to whichever configuration wins the swap.
        let per_task = self.fence.is_none()
            && self.cfg.services.ac == AcStrategy::PerTask
            && task.is_periodic();
        if per_task {
            match self.te_cache.get(&inj.task) {
                Some(TeDecision::Admitted(assignment))
                    if self.cfg.services.lb != LbStrategy::PerJob =>
                {
                    let assignment = assignment.clone();
                    let now = self.cfg.clock.now().as_nanos();
                    let deadline = now + task.deadline().as_nanos();
                    let job = JobId::new(inj.task, inj.seq);
                    m.released_utilization.add(task.job_utilization());
                    m.released_jobs.inc();
                    m.trace.record(
                        inj.trace,
                        now,
                        self.cfg.channel.host_id(),
                        "release",
                        format!("{job} fast path, proc {}", assignment[0]),
                    );
                    if assignment[0] == self.cfg.processor {
                        self.enqueue(job, 0, assignment, now, deadline, inj.trace);
                    } else {
                        // Release the duplicate on its processor via a
                        // trigger-style handoff.
                        let msg = TriggerMsg {
                            job,
                            next_subtask: 0,
                            assignment,
                            arrival_ns: now,
                            deadline_ns: deadline,
                            sent_ns: now,
                            trace: inj.trace,
                        };
                        self.cfg.channel.publish(topics::TRIGGER, proto::encode(&msg));
                    }
                    return;
                }
                Some(TeDecision::Rejected) => {
                    self.cfg.stats.job_out();
                    return;
                }
                _ => {}
            }
        }

        let hold_start = Instant::now();
        let arrival_ns = self.cfg.clock.now().as_nanos();
        let msg = ArriveMsg {
            job: JobId::new(inj.task, inj.seq),
            arrival_proc: self.cfg.processor,
            arrival_ns,
            sent_ns: self.cfg.clock.now().as_nanos(),
            trace: inj.trace,
        };
        self.cfg.channel.publish(topics::TASK_ARRIVE, proto::encode(&msg));
        let hold = Duration::from(hold_start.elapsed());
        self.cfg.stats.metrics().hold.record(hold.as_nanos());
    }

    /// "Accept" from the AC: the arrival TE learns the decision; the
    /// releasing TE performs the release (op 5/6).
    fn on_accept(&mut self, msg: AcceptMsg) {
        let Some(task) = self.cfg.tasks.get(msg.job.task) else { return };
        let arrival_proc = task.subtasks()[0].primary.0;

        if arrival_proc == self.cfg.processor
            && task.is_periodic()
            && self.cfg.services.ac == AcStrategy::PerTask
            && self.cfg.services.lb != LbStrategy::PerJob
        {
            self.te_cache.insert(msg.job.task, TeDecision::Admitted(msg.assignment.clone()));
        }

        if msg.release_proc != self.cfg.processor {
            return;
        }
        let release_start = Instant::now();
        let now = self.cfg.clock.now();
        let total = now.elapsed_since(Time::from_nanos(msg.arrival_ns));
        let m = self.cfg.stats.metrics();
        m.released_utilization.add(task.job_utilization());
        m.released_jobs.inc();
        if msg.release_proc == arrival_proc {
            m.total_no_realloc.record(total.as_nanos());
        } else {
            m.total_realloc.record(total.as_nanos());
        }
        if msg.assignment.iter().zip(task.subtasks()).any(|(c, s)| *c != s.primary.0) {
            m.reallocations.inc();
        }
        m.trace.record(
            msg.trace,
            now.as_nanos(),
            self.cfg.channel.host_id(),
            "release",
            format!("{} on proc {}", msg.job, msg.release_proc),
        );
        self.enqueue(msg.job, 0, msg.assignment, msg.arrival_ns, msg.deadline_ns, msg.trace);
        let release = Duration::from(release_start.elapsed());
        self.cfg.stats.metrics().release.record(release.as_nanos());
    }

    fn on_reject(&mut self, msg: &RejectMsg) {
        if msg.arrival_proc != self.cfg.processor {
            return;
        }
        if msg.task_rejected {
            self.te_cache.insert(msg.job.task, TeDecision::Rejected);
        }
        self.cfg.stats.job_out();
    }

    fn on_trigger(&mut self, msg: TriggerMsg) {
        let subtask = msg.next_subtask as usize;
        if msg.assignment.get(subtask).copied() != Some(self.cfg.processor) {
            return;
        }
        self.enqueue(msg.job, subtask, msg.assignment, msg.arrival_ns, msg.deadline_ns, msg.trace);
    }

    fn enqueue(
        &mut self,
        job: JobId,
        subtask: usize,
        assignment: Vec<u16>,
        arrival_ns: u64,
        deadline_ns: u64,
        trace: u64,
    ) {
        let Some(task) = self.cfg.tasks.get(job.task) else { return };
        let exec: StdDuration = task.subtasks()[subtask].execution_time.into();
        let remaining = match self.cfg.exec {
            ExecMode::Noop => StdDuration::ZERO,
            ExecMode::Sleep | ExecMode::Spin => exec,
        };
        let priority = self.cfg.priorities[&job.task];
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ready.push(ReadySubjob {
            priority,
            enqueue_seq: seq,
            job,
            subtask,
            remaining,
            assignment,
            arrival_ns,
            deadline_ns,
            trace,
        });
    }

    /// At slice boundaries, a more urgent ready subjob preempts the current
    /// one.
    fn maybe_preempt(&mut self) {
        let preempt = match (&self.current, self.ready.peek()) {
            (Some(cur), Some(head)) => head.priority.is_higher_than(cur.priority),
            _ => false,
        };
        if preempt {
            let cur = self.current.take().expect("checked above");
            self.ready.push(cur);
        }
    }

    /// Advances execution until the node either goes mid-slice (Sleep mode:
    /// a `SliceEnd` wheel entry stands and the thread can park) or runs out
    /// of ready work. Spin and Noop modes execute inline — a spinning slice
    /// cannot park, and a no-op one completes instantly — draining the
    /// mailbox between slices exactly like the boundary discipline.
    fn pump(&mut self) {
        if self.slice_timer.is_some() {
            // Mid-slice: the boundary lives on the wheel; events are only
            // enqueued until it fires (preemption stays slice-granular).
            return;
        }
        loop {
            self.maybe_preempt();
            if self.current.is_none() {
                self.current = self.ready.pop();
            }
            let Some(mut run) = self.current.take() else {
                self.report_idle();
                return;
            };
            if run.remaining.is_zero() {
                self.complete(run);
            } else {
                let slice = run.remaining.min(self.cfg.slice);
                match self.cfg.exec {
                    ExecMode::Sleep => {
                        // Park until the boundary: the slice becomes a
                        // wheel entry and run() waits on
                        // min(boundary, mailbox).
                        self.slice_started = Instant::now();
                        self.slice_len = slice;
                        let deadline = self.cfg.clock.now().as_nanos() + slice.as_nanos() as u64;
                        self.slice_timer =
                            Some(self.reactor.schedule_at(deadline, NodeTimer::SliceEnd));
                        self.current = Some(run);
                        return;
                    }
                    ExecMode::Spin => {
                        let started = Instant::now();
                        let until = started + slice;
                        while Instant::now() < until {
                            std::hint::spin_loop();
                        }
                        // Charge the time that actually passed (see
                        // finish_slice).
                        run.remaining = run.remaining.saturating_sub(started.elapsed().max(slice));
                        if run.remaining.is_zero() {
                            self.complete(run);
                        } else {
                            self.current = Some(run);
                        }
                    }
                    ExecMode::Noop => {
                        run.remaining = StdDuration::ZERO;
                        self.complete(run);
                    }
                }
            }
            self.drain_messages();
            if !self.running {
                return;
            }
        }
    }

    /// A `SliceEnd` wheel entry fired: charge the in-flight subjob and
    /// return to the boundary state.
    fn on_timer(&mut self, timer: NodeTimer) {
        match timer {
            NodeTimer::SliceEnd => {
                self.slice_timer = None;
                if let Some(mut run) = self.current.take() {
                    // Charge the subjob for the time that actually passed:
                    // on kernels with coarse timers a 200 µs slice can
                    // overshoot past a millisecond, and without this
                    // compensation total execution would silently exceed
                    // the declared C and break deadlines the admission
                    // test guaranteed.
                    let consumed = self.slice_started.elapsed().max(self.slice_len);
                    run.remaining = run.remaining.saturating_sub(consumed);
                    if run.remaining.is_zero() {
                        self.complete(run);
                    } else {
                        self.current = Some(run);
                    }
                }
            }
        }
    }

    fn complete(&mut self, run: ReadySubjob) {
        let Some(task) = self.cfg.tasks.get(run.job.task) else { return };
        let now = self.cfg.clock.now();
        self.resetter.record_completion(
            ContributionKey::new(run.job, run.subtask),
            Time::from_nanos(run.deadline_ns),
            task.is_periodic(),
        );
        if run.subtask + 1 == task.subtasks().len() {
            let response = now.elapsed_since(Time::from_nanos(run.arrival_ns));
            let missed = now.as_nanos() > run.deadline_ns;
            let m = self.cfg.stats.metrics();
            m.response.record(response.as_nanos());
            m.jobs_completed.inc();
            if missed {
                m.deadline_misses.inc();
            }
            m.trace.record(
                run.trace,
                now.as_nanos(),
                self.cfg.channel.host_id(),
                "completion",
                format!(
                    "{} on proc {}, deadline {}",
                    run.job,
                    self.cfg.processor,
                    if missed { "missed" } else { "met" }
                ),
            );
            self.cfg.stats.job_out();
        } else {
            let msg = TriggerMsg {
                job: run.job,
                next_subtask: (run.subtask + 1) as u32,
                assignment: run.assignment,
                arrival_ns: run.arrival_ns,
                deadline_ns: run.deadline_ns,
                sent_ns: now.as_nanos(),
                trace: run.trace,
            };
            self.cfg.channel.publish(topics::TRIGGER, proto::encode(&msg));
        }
    }

    /// Idle transition: run the idle detector (op 7) once. `on_idle` drains
    /// every pending completion in one call, so no periodic probe is
    /// needed — the node then parks on its mailbox with an empty wheel
    /// until the next event arrives.
    fn report_idle(&mut self) {
        if let Some(report) = self.resetter.on_idle(self.cfg.clock.now()) {
            let started_ns = self.cfg.clock.now().as_nanos();
            let msg = IdleResetMsg {
                processor: self.cfg.processor,
                completed: report.completed.iter().map(|k| (k.job, k.subtask as u32)).collect(),
                started_ns,
            };
            self.cfg.channel.publish(topics::IDLE_RESET, proto::encode(&msg));
        }
    }
}
