//! Shared runtime statistics, including the per-operation delay
//! accounting behind the paper's Figure 8.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use rtcm_core::metrics::{DelayStats, UtilizationRatio};

use crate::proto::ReconfigAbortReason;

/// Per-reason counts of abandoned reconfigurations, so a governor's
/// failed actuations are diagnosable from the report alone: `ack_timeout`
/// and `foreign_coordinator` count protocol aborts (a prepare was
/// published and rolled back — these also increment
/// [`SystemReport::reconfig_aborts`]); `validation` counts targets
/// refused before any phase was published.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigAbortBreakdown {
    /// Prepare quorum incomplete at the ack deadline (a node or a
    /// registered bridged host never voted).
    pub ack_timeout: u64,
    /// Target failed the §4.5 validity rule.
    pub validation: u64,
    /// A quorum member refused the prepare because it was fenced for a
    /// different coordinator's in-flight swap.
    pub foreign_coordinator: u64,
}

impl ReconfigAbortBreakdown {
    /// Counts one abort of the given reason.
    pub fn record(&mut self, reason: ReconfigAbortReason) {
        match reason {
            ReconfigAbortReason::AckTimeout => self.ack_timeout += 1,
            ReconfigAbortReason::Validation => self.validation += 1,
            ReconfigAbortReason::ForeignCoordinator => self.foreign_coordinator += 1,
        }
    }

    /// Total failed reconfiguration attempts across all reasons.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ack_timeout + self.validation + self.foreign_coordinator
    }
}

/// Snapshot of everything the runtime measured.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Accepted utilization ratio (arrivals weighted by `Σ C/D`).
    pub ratio: UtilizationRatio,
    /// End-to-end response times of completed jobs.
    pub response: DelayStats,
    /// Jobs that completed their last subtask.
    pub jobs_completed: u64,
    /// Completed jobs that missed their end-to-end deadline.
    pub deadline_misses: u64,
    /// Accepted jobs released on a non-primary placement.
    pub reallocations: u64,
    /// Idle-reset reports applied by the manager.
    pub ir_reports: u64,

    /// Op 1: TE hold + "Task Arrive" publish cost.
    pub hold: DelayStats,
    /// Op 2: one-way event-channel delay (TE → AC), measured directly on
    /// the shared clock.
    pub comm: DelayStats,
    /// Op 3: LB plan generation.
    pub lb_plan: DelayStats,
    /// Op 4: admission test.
    pub ac_test: DelayStats,
    /// Op 5/6: release of the first subjob at the TE.
    pub release: DelayStats,
    /// Op 7 + comm: idle-report assembly and delivery (app side; runs in
    /// idle time).
    pub ir_path: DelayStats,
    /// Op 8: synthetic-utilization update at the AC.
    pub ir_update: DelayStats,
    /// Total arrival→release delay when the job ran on its arrival
    /// processor (AC path without re-allocation).
    pub total_no_realloc: DelayStats,
    /// Total arrival→release delay when the first stage was re-allocated to
    /// a duplicate on another processor.
    pub total_realloc: DelayStats,

    /// Completed live `ServiceConfig` swaps (two-phase protocol runs that
    /// reached commit).
    pub reconfig_swaps: u64,
    /// Swaps abandoned because a node never acknowledged the prepare
    /// phase.
    pub reconfig_aborts: u64,
    /// End-to-end swap latency: reconfigure request at the AC → commit
    /// published (one sample per completed swap).
    pub reconfig_latency: DelayStats,
    /// Admission decisions deferred during prepare windows (arrivals held
    /// at the AC and decided under the new configuration after commit).
    pub reconfig_deferred: u64,
    /// Largest number of jobs in flight observed at the commit point of
    /// any swap — how much live work each handover carried.
    pub reconfig_max_inflight: i64,
    /// Per-reason breakdown of failed reconfiguration attempts (ack
    /// timeout vs. validation vs. foreign coordinator).
    pub reconfig_abort_reasons: ReconfigAbortBreakdown,

    /// Gauge: AUB headroom `1 − max_p U_p` over the admission ledger's
    /// per-processor synthetic utilizations. Refreshed by the manager once
    /// per governor sensing window (after expiring the current set), so
    /// the decision hot paths pay nothing for sensing; 0 until a governor
    /// attaches and probes.
    pub aub_slack: f64,
    /// Gauge: synthetic-utilization spread `max_p U_p − min_p U_p`,
    /// refreshed alongside [`SystemReport::aub_slack`].
    pub util_imbalance: f64,
    /// Sensing windows closed by an attached adaptation governor.
    pub governor_windows: u64,
    /// Committed swaps initiated by the governor (a subset of
    /// [`SystemReport::reconfig_swaps`]).
    pub governor_swaps: u64,
    /// Governor windows whose sense+actuate work overran one or more
    /// absolute window deadlines (each skipped boundary counts once).
    /// Windows are scheduled on absolute deadlines, so an overrun shifts
    /// no subsequent boundary — it is counted here instead of silently
    /// stretching the window like the pre-reactor loop did.
    pub governor_overruns: u64,

    /// Events published through the federation (every protocol message —
    /// arrivals, decisions, triggers, IR reports, reconfig phases,
    /// injected submissions — crosses the event fast path once).
    pub events_published: u64,
    /// Per-subscriber fan-out deliveries (local pushes plus delivered
    /// remote parcels).
    pub events_delivered: u64,
    /// Events dropped at bounded subscribers under backpressure
    /// (drop-oldest; 0 for the runtime's own unbounded mailboxes).
    pub events_dropped: u64,
    /// Parcels handed to the in-process network for cross-node delivery.
    pub remote_parcels: u64,
    /// Corrupt or undecodable frames received on this host's TCP bridges
    /// (each one closes its link).
    pub bridge_rx_errors: u64,
    /// TCP bridge links torn down for any reason (peer loss, write
    /// failure, corrupt frame, or local shutdown).
    pub bridge_disconnects: u64,
    /// Outbound events a bridge dropped for exceeding the wire frame
    /// limit.
    pub bridge_tx_dropped: u64,

    /// Timer-deadline wakeups performed by reactor threads (slice
    /// boundaries, prepare-fence deadlines, intermediate wheel cascades).
    /// An **idle** system records none: every thread parks on its mailbox
    /// with an empty wheel, where the polling design paid ~2000
    /// wakeups/s/node. Pinned by the zero-wakeup runtime test.
    pub timer_wakeups: u64,
}

/// Thread-shared accumulator handed to every node.
#[derive(Debug, Default)]
pub struct SharedStats {
    report: Mutex<SystemReport>,
    in_flight: AtomicI64,
    /// Lock-free tally behind [`SystemReport::timer_wakeups`]: bumped on
    /// every timer wake, so it must not take the report mutex.
    timer_wakeups: AtomicU64,
}

impl SharedStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(SharedStats::default())
    }

    /// Runs `f` with exclusive access to the report.
    pub fn with<R>(&self, f: impl FnOnce(&mut SystemReport) -> R) -> R {
        f(&mut self.report.lock())
    }

    /// Clones the current snapshot (folding in the atomic counters).
    #[must_use]
    pub fn snapshot(&self) -> SystemReport {
        let mut report = self.report.lock().clone();
        report.timer_wakeups = self.timer_wakeups.load(Ordering::Relaxed);
        report
    }

    /// A reactor thread woke for a timer deadline.
    pub fn timer_wakeup(&self) {
        self.timer_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// A job entered the system (arrived at a TE).
    pub fn job_in(&self) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// A job left the system (completed, rejected or dropped).
    pub fn job_out(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Jobs currently somewhere between arrival and completion.
    #[must_use]
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcm_core::time::Duration;

    #[test]
    fn with_and_snapshot() {
        let stats = SharedStats::new();
        stats.with(|r| {
            r.jobs_completed = 3;
            r.comm.record(Duration::from_micros(100));
        });
        let snap = stats.snapshot();
        assert_eq!(snap.jobs_completed, 3);
        assert_eq!(snap.comm.count(), 1);
    }

    #[test]
    fn in_flight_counts() {
        let stats = SharedStats::new();
        stats.job_in();
        stats.job_in();
        stats.job_out();
        assert_eq!(stats.in_flight(), 1);
    }

    #[test]
    fn report_serializes() {
        let stats = SharedStats::new();
        let json = serde_json::to_string(&stats.snapshot()).unwrap();
        assert!(json.contains("jobs_completed"));
    }
}
