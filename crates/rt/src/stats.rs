//! Shared runtime statistics, including the per-operation delay
//! accounting behind the paper's Figure 8.
//!
//! The accumulator is split along the hot/cold line:
//!
//! * **Hot-path metrics** — per-job counters, the utilization ratio parts
//!   and every per-operation delay series — live in the lock-free
//!   [`RtMetrics`] registry (`rtcm-telemetry`): recording a sample is a
//!   couple of relaxed atomic adds into a log2 histogram, so nodes, the
//!   manager, and reactor threads never touch the report mutex while
//!   jobs flow. The histograms keep exact counts/sums/extremes, so
//!   [`SharedStats::snapshot`] reconstructs the familiar
//!   [`DelayStats`] mean/min/max rows losslessly — and additionally
//!   serves p50/p90/p99/p999 within log2-bucket resolution.
//! * **Cold fields** — once-per-swap and once-per-window accounting
//!   (reconfiguration outcomes, governor gauges) — stay under the report
//!   mutex via [`SharedStats::with`], where contention is structurally
//!   impossible.
//!
//! [`SharedStats::render_exposition`] turns a report plus the live
//! registry into one Prometheus-style text page for the OAM endpoint.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use rtcm_core::metrics::{DelayStats, UtilizationRatio};
use rtcm_core::time::Duration;
use rtcm_telemetry::{
    Counter, Exposition, Gauge, Histogram, HistogramSnapshot, Registry, TraceBuffer,
};

use crate::proto::ReconfigAbortReason;

/// Per-reason counts of abandoned reconfigurations, so a governor's
/// failed actuations are diagnosable from the report alone: `ack_timeout`
/// and `foreign_coordinator` count protocol aborts (a prepare was
/// published and rolled back — these also increment
/// [`SystemReport::reconfig_aborts`]); `validation` counts targets
/// refused before any phase was published.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigAbortBreakdown {
    /// Prepare quorum incomplete at the ack deadline (a node or a
    /// registered bridged host never voted).
    pub ack_timeout: u64,
    /// Target failed the §4.5 validity rule.
    pub validation: u64,
    /// A quorum member refused the prepare because it was fenced for a
    /// different coordinator's in-flight swap.
    pub foreign_coordinator: u64,
}

impl ReconfigAbortBreakdown {
    /// Counts one abort of the given reason.
    pub fn record(&mut self, reason: ReconfigAbortReason) {
        match reason {
            ReconfigAbortReason::AckTimeout => self.ack_timeout += 1,
            ReconfigAbortReason::Validation => self.validation += 1,
            ReconfigAbortReason::ForeignCoordinator => self.foreign_coordinator += 1,
        }
    }

    /// Total failed reconfiguration attempts across all reasons.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ack_timeout + self.validation + self.foreign_coordinator
    }
}

/// Snapshot of everything the runtime measured.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Accepted utilization ratio (arrivals weighted by `Σ C/D`).
    pub ratio: UtilizationRatio,
    /// End-to-end response times of completed jobs.
    pub response: DelayStats,
    /// Jobs that completed their last subtask.
    pub jobs_completed: u64,
    /// Completed jobs that missed their end-to-end deadline.
    pub deadline_misses: u64,
    /// Accepted jobs released on a non-primary placement.
    pub reallocations: u64,
    /// Idle-reset reports applied by the manager.
    pub ir_reports: u64,

    /// Op 1: TE hold + "Task Arrive" publish cost.
    pub hold: DelayStats,
    /// Op 2: one-way event-channel delay (TE → AC), measured directly on
    /// the shared clock.
    pub comm: DelayStats,
    /// Op 3: LB plan generation.
    pub lb_plan: DelayStats,
    /// Op 4: admission test.
    pub ac_test: DelayStats,
    /// Op 5/6: release of the first subjob at the TE.
    pub release: DelayStats,
    /// Op 7 + comm: idle-report assembly and delivery (app side; runs in
    /// idle time).
    pub ir_path: DelayStats,
    /// Op 8: synthetic-utilization update at the AC.
    pub ir_update: DelayStats,
    /// Total arrival→release delay when the job ran on its arrival
    /// processor (AC path without re-allocation).
    pub total_no_realloc: DelayStats,
    /// Total arrival→release delay when the first stage was re-allocated to
    /// a duplicate on another processor.
    pub total_realloc: DelayStats,

    /// Completed live `ServiceConfig` swaps (two-phase protocol runs that
    /// reached commit).
    pub reconfig_swaps: u64,
    /// Swaps abandoned because a node never acknowledged the prepare
    /// phase.
    pub reconfig_aborts: u64,
    /// End-to-end swap latency: reconfigure request at the AC → commit
    /// published (one sample per completed swap).
    pub reconfig_latency: DelayStats,
    /// Admission decisions deferred during prepare windows (arrivals held
    /// at the AC and decided under the new configuration after commit).
    pub reconfig_deferred: u64,
    /// Largest number of jobs in flight observed at the commit point of
    /// any swap — how much live work each handover carried.
    pub reconfig_max_inflight: i64,
    /// Per-reason breakdown of failed reconfiguration attempts (ack
    /// timeout vs. validation vs. foreign coordinator).
    pub reconfig_abort_reasons: ReconfigAbortBreakdown,

    /// Gauge: AUB headroom `1 − max_p U_p` over the admission ledger's
    /// per-processor synthetic utilizations. Refreshed by the manager once
    /// per governor sensing window (after expiring the current set), so
    /// the decision hot paths pay nothing for sensing; 0 until a governor
    /// attaches and probes.
    pub aub_slack: f64,
    /// Gauge: synthetic-utilization spread `max_p U_p − min_p U_p`,
    /// refreshed alongside [`SystemReport::aub_slack`].
    pub util_imbalance: f64,
    /// Sensing windows closed by an attached adaptation governor.
    pub governor_windows: u64,
    /// Committed swaps initiated by the governor (a subset of
    /// [`SystemReport::reconfig_swaps`]).
    pub governor_swaps: u64,
    /// Governor windows whose sense+actuate work overran one or more
    /// absolute window deadlines (each skipped boundary counts once).
    /// Windows are scheduled on absolute deadlines, so an overrun shifts
    /// no subsequent boundary — it is counted here instead of silently
    /// stretching the window like the pre-reactor loop did.
    pub governor_overruns: u64,

    /// Events published through the federation (every protocol message —
    /// arrivals, decisions, triggers, IR reports, reconfig phases,
    /// injected submissions — crosses the event fast path once).
    pub events_published: u64,
    /// Per-subscriber fan-out deliveries (local pushes plus delivered
    /// remote parcels).
    pub events_delivered: u64,
    /// Events dropped at bounded subscribers under backpressure
    /// (drop-oldest; 0 for the runtime's own unbounded mailboxes).
    pub events_dropped: u64,
    /// Parcels handed to the in-process network for cross-node delivery.
    pub remote_parcels: u64,
    /// Corrupt or undecodable frames received on this host's TCP bridges
    /// (each one closes its link).
    pub bridge_rx_errors: u64,
    /// TCP bridge links torn down for any reason (peer loss, write
    /// failure, corrupt frame, or local shutdown).
    pub bridge_disconnects: u64,
    /// Outbound events a bridge dropped for exceeding the wire frame
    /// limit.
    pub bridge_tx_dropped: u64,

    /// Timer-deadline wakeups performed by reactor threads (slice
    /// boundaries, prepare-fence deadlines, governor window boundaries,
    /// intermediate wheel cascades). An **idle** system records none:
    /// every thread parks on its mailbox with an empty wheel, where the
    /// polling design paid ~2000 wakeups/s/node. Pinned by the
    /// zero-wakeup runtime test.
    pub timer_wakeups: u64,

    /// Admission decisions that stayed on one shard's lock-free fast path
    /// (single-group candidate sets under the sharded admission plane).
    pub admission_shard_local: u64,
    /// Admission decisions that took the cross-shard reservation path
    /// (multi-group candidate sets, or brute-force mode).
    pub admission_cross_shard: u64,
    /// Targeted shard-summary refreshes performed when a published
    /// `(sum, violating, epoch)` summary could not answer the system-wide
    /// AUB check on its own.
    pub admission_summary_refreshes: u64,
}

/// The lock-free half of the runtime's accounting: every metric a hot
/// path records lives here as an atomic counter, gauge or log2 latency
/// histogram from `rtcm-telemetry`, registered under stable
/// `rtcm_*` exposition names. [`SharedStats::snapshot`] folds these back
/// into the [`SystemReport`] rows; the OAM endpoint renders them (with
/// full bucket distributions) straight from the registry.
#[derive(Debug)]
pub struct RtMetrics {
    registry: Arc<Registry>,
    /// The bounded job/reconfig tracer shared by every thread of one
    /// system (arrival → admission → (re)allocation → release →
    /// completion, plus reconfiguration phases).
    pub trace: Arc<TraceBuffer>,

    /// Σ C/D of arrived jobs ([`UtilizationRatio`] numerator part).
    pub arrived_utilization: Arc<Gauge>,
    /// Σ C/D of released (admitted) jobs.
    pub released_utilization: Arc<Gauge>,
    /// Jobs arrived (count behind the ratio).
    pub arrived_jobs: Arc<Counter>,
    /// Jobs released (count behind the ratio).
    pub released_jobs: Arc<Counter>,
    /// Jobs that completed their last subtask.
    pub jobs_completed: Arc<Counter>,
    /// Completed jobs that missed their end-to-end deadline.
    pub deadline_misses: Arc<Counter>,
    /// Accepted jobs released on a non-primary placement.
    pub reallocations: Arc<Counter>,
    /// Idle-reset reports applied by the manager.
    pub ir_reports: Arc<Counter>,
    /// Timer-deadline wakeups performed by reactor threads.
    pub timer_wakeups: Arc<Counter>,
    /// Admission decisions kept on a single shard's fast path.
    pub admission_shard_local: Arc<Counter>,
    /// Admission decisions through the cross-shard reservation path.
    pub admission_cross_shard: Arc<Counter>,
    /// Targeted shard-summary refreshes during admission checks.
    pub admission_summary_refreshes: Arc<Counter>,

    /// End-to-end response times (ns).
    pub response: Arc<Histogram>,
    /// Op 1: TE hold + publish cost (ns).
    pub hold: Arc<Histogram>,
    /// Op 2: one-way TE → AC event delay (ns).
    pub comm: Arc<Histogram>,
    /// Op 3: LB plan generation (ns).
    pub lb_plan: Arc<Histogram>,
    /// Op 4: admission test (ns).
    pub ac_test: Arc<Histogram>,
    /// Op 5/6: first-subjob release at the TE (ns).
    pub release: Arc<Histogram>,
    /// Op 7 + comm: idle-report assembly and delivery (ns).
    pub ir_path: Arc<Histogram>,
    /// Op 8: synthetic-utilization update (ns).
    pub ir_update: Arc<Histogram>,
    /// Arrival→release total, no re-allocation (ns).
    pub total_no_realloc: Arc<Histogram>,
    /// Arrival→release total with re-allocation (ns).
    pub total_realloc: Arc<Histogram>,
    /// End-to-end two-phase swap latency (ns).
    pub reconfig_latency: Arc<Histogram>,
}

impl Default for RtMetrics {
    fn default() -> Self {
        RtMetrics::new()
    }
}

impl RtMetrics {
    /// Builds the registry with every runtime metric registered under its
    /// exposition name. Registration order is the scrape order (pinned by
    /// the golden exposition test).
    #[must_use]
    pub fn new() -> Self {
        RtMetrics::with_trace_sampling(1)
    }

    /// Like [`RtMetrics::new`] but the job tracer keeps only 1-in-N
    /// traces (per trace id, so jobs keep all stages or none).
    #[must_use]
    pub fn with_trace_sampling(sample_every: u64) -> Self {
        let r = Registry::new();
        RtMetrics {
            arrived_jobs: r.counter("rtcm_jobs_arrived_total", "Jobs injected at task effectors."),
            released_jobs: r
                .counter("rtcm_jobs_released_total", "Admitted jobs released for execution."),
            jobs_completed: r
                .counter("rtcm_jobs_completed_total", "Jobs that completed their last subtask."),
            deadline_misses: r.counter(
                "rtcm_deadline_misses_total",
                "Completed jobs that missed their end-to-end deadline.",
            ),
            reallocations: r.counter(
                "rtcm_reallocations_total",
                "Accepted jobs released on a non-primary placement.",
            ),
            ir_reports: r
                .counter("rtcm_ir_reports_total", "Idle-reset reports applied by the manager."),
            timer_wakeups: r.counter(
                "rtcm_timer_wakeups_total",
                "Timer-deadline wakeups performed by reactor threads.",
            ),
            admission_shard_local: r.counter(
                "rtcm_admission_shard_local_total",
                "Admission decisions kept on a single shard's fast path.",
            ),
            admission_cross_shard: r.counter(
                "rtcm_admission_cross_shard_total",
                "Admission decisions through the cross-shard reservation path.",
            ),
            admission_summary_refreshes: r.counter(
                "rtcm_admission_summary_refreshes_total",
                "Targeted shard-summary refreshes during admission checks.",
            ),
            arrived_utilization: r.gauge(
                "rtcm_arrived_utilization",
                "Cumulative utilization weight (sum C/D) of arrived jobs.",
            ),
            released_utilization: r.gauge(
                "rtcm_released_utilization",
                "Cumulative utilization weight (sum C/D) of released jobs.",
            ),
            response: r
                .histogram("rtcm_response_ns", "End-to-end response time of completed jobs."),
            hold: r.histogram("rtcm_op_hold_ns", "Op 1: TE hold plus Task-Arrive publish cost."),
            comm: r.histogram("rtcm_op_comm_ns", "Op 2: one-way TE to AC event-channel delay."),
            lb_plan: r.histogram("rtcm_op_lb_plan_ns", "Op 3: LB plan generation."),
            ac_test: r.histogram("rtcm_op_ac_test_ns", "Op 4: admission test."),
            release: r.histogram("rtcm_op_release_ns", "Op 5/6: first-subjob release at the TE."),
            ir_path: r
                .histogram("rtcm_op_ir_path_ns", "Op 7 plus comm: idle-report assembly/delivery."),
            ir_update: r.histogram("rtcm_op_ir_update_ns", "Op 8: synthetic-utilization update."),
            total_no_realloc: r.histogram(
                "rtcm_total_no_realloc_ns",
                "Arrival-to-release total without re-allocation.",
            ),
            total_realloc: r
                .histogram("rtcm_total_realloc_ns", "Arrival-to-release total with re-allocation."),
            reconfig_latency: r
                .histogram("rtcm_reconfig_latency_ns", "End-to-end two-phase swap latency."),
            trace: Arc::new(TraceBuffer::sampled(
                rtcm_telemetry::DEFAULT_TRACE_CAPACITY,
                sample_every,
            )),
            registry: Arc::new(r),
        }
    }

    /// The underlying registry (for build-info labels and rendering).
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records a core [`Duration`] into a nanosecond histogram.
    #[inline]
    pub fn record_delay(hist: &Histogram, delay: Duration) {
        hist.record(delay.as_nanos());
    }
}

/// Reconstructs a [`DelayStats`] row from a histogram's exact parts,
/// refilling the caller's pooled snapshot instead of allocating one.
fn delay_from(hist: &Histogram, scratch: &mut HistogramSnapshot) -> DelayStats {
    hist.snapshot_into(scratch);
    DelayStats::from_parts(
        scratch.count,
        u128::from(scratch.sum),
        Duration::from_nanos(scratch.min),
        Duration::from_nanos(scratch.max),
    )
}

/// Thread-shared accumulator handed to every node.
#[derive(Debug, Default)]
pub struct SharedStats {
    /// Cold fields only (reconfiguration outcomes, governor gauges); hot
    /// paths record into [`SharedStats::metrics`] instead.
    report: Mutex<SystemReport>,
    in_flight: AtomicI64,
    metrics: RtMetrics,
    /// Completion notification: `job_out` reaching zero in-flight jobs
    /// notifies here, so `wait_quiet` blocks instead of polling.
    quiet: std::sync::Mutex<()>,
    quiet_cv: std::sync::Condvar,
}

impl SharedStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(SharedStats::default())
    }

    /// Creates an empty accumulator whose job tracer keeps 1-in-N traces
    /// (see [`RtMetrics::with_trace_sampling`]).
    #[must_use]
    pub fn with_trace_sampling(sample_every: u64) -> Arc<Self> {
        Arc::new(SharedStats {
            metrics: RtMetrics::with_trace_sampling(sample_every),
            ..SharedStats::default()
        })
    }

    /// The lock-free telemetry registry (hot-path metric handles, job
    /// tracer).
    #[must_use]
    pub fn metrics(&self) -> &RtMetrics {
        &self.metrics
    }

    /// Runs `f` with exclusive access to the report's **cold** fields.
    /// Hot fields (per-job counters, delay series) are overwritten from
    /// the registry at snapshot time — mutate them through
    /// [`SharedStats::metrics`] instead.
    pub fn with<R>(&self, f: impl FnOnce(&mut SystemReport) -> R) -> R {
        f(&mut self.report.lock())
    }

    /// Clones the current snapshot, folding the lock-free registry back
    /// into the report's rows (delay series reconstructed from exact
    /// histogram parts).
    #[must_use]
    pub fn snapshot(&self) -> SystemReport {
        let mut report = self.report.lock().clone();
        let m = &self.metrics;
        report.ratio = UtilizationRatio::from_parts(
            m.arrived_utilization.get(),
            m.released_utilization.get(),
            m.arrived_jobs.get(),
            m.released_jobs.get(),
        );
        report.jobs_completed = m.jobs_completed.get();
        report.deadline_misses = m.deadline_misses.get();
        report.reallocations = m.reallocations.get();
        report.ir_reports = m.ir_reports.get();
        report.timer_wakeups = m.timer_wakeups.get();
        report.admission_shard_local = m.admission_shard_local.get();
        report.admission_cross_shard = m.admission_cross_shard.get();
        report.admission_summary_refreshes = m.admission_summary_refreshes.get();
        let mut scratch = HistogramSnapshot::default();
        report.response = delay_from(&m.response, &mut scratch);
        report.hold = delay_from(&m.hold, &mut scratch);
        report.comm = delay_from(&m.comm, &mut scratch);
        report.lb_plan = delay_from(&m.lb_plan, &mut scratch);
        report.ac_test = delay_from(&m.ac_test, &mut scratch);
        report.release = delay_from(&m.release, &mut scratch);
        report.ir_path = delay_from(&m.ir_path, &mut scratch);
        report.ir_update = delay_from(&m.ir_update, &mut scratch);
        report.total_no_realloc = delay_from(&m.total_no_realloc, &mut scratch);
        report.total_realloc = delay_from(&m.total_realloc, &mut scratch);
        report.reconfig_latency = delay_from(&m.reconfig_latency, &mut scratch);
        report
    }

    /// A reactor thread woke for a timer deadline.
    pub fn timer_wakeup(&self) {
        self.metrics.timer_wakeups.inc();
    }

    /// A job entered the system (arrived at a TE).
    pub fn job_in(&self) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// A job left the system (completed, rejected or dropped). Reaching
    /// zero in-flight jobs notifies [`SharedStats::wait_quiet`] blockers.
    pub fn job_out(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) <= 1 {
            // Take the lock so the notification cannot slip between a
            // waiter's counter check and its wait.
            drop(self.quiet.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
            self.quiet_cv.notify_all();
        }
    }

    /// Jobs currently somewhere between arrival and completion.
    #[must_use]
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Blocks until no jobs are in flight (completion notification from
    /// [`SharedStats::job_out`] — no polling). Returns false on timeout.
    #[must_use]
    pub fn wait_quiet(&self, timeout: StdDuration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.quiet.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while self.in_flight() > 0 {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (g, _) = self
                .quiet_cv
                .wait_timeout(guard, left)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard = g;
        }
        true
    }

    /// Renders `report` plus the live registry as one Prometheus-style
    /// text page (exposition format v0.0.4): the lock-free metrics with
    /// their full bucket distributions first, then every remaining
    /// [`SystemReport`] counter and gauge. Pass the *merged* report (with
    /// federation counters folded in) so the bridge rows are live.
    #[must_use]
    pub fn render_exposition(&self, report: &SystemReport) -> String {
        let mut e = Exposition::new();
        self.metrics.registry().render(&mut e);
        e.gauge(
            "rtcm_accepted_ratio",
            "Accepted utilization ratio (released / arrived weight).",
            report.ratio.ratio(),
        );
        e.gauge(
            "rtcm_jobs_in_flight",
            "Jobs currently between arrival and completion.",
            self.in_flight() as f64,
        );
        e.counter(
            "rtcm_reconfig_swaps_total",
            "Committed two-phase configuration swaps.",
            report.reconfig_swaps,
        );
        e.counter(
            "rtcm_reconfig_aborts_total",
            "Two-phase swaps abandoned mid-protocol.",
            report.reconfig_aborts,
        );
        e.counter(
            "rtcm_reconfig_aborts_ack_timeout_total",
            "Aborts: prepare quorum incomplete at the ack deadline.",
            report.reconfig_abort_reasons.ack_timeout,
        );
        e.counter(
            "rtcm_reconfig_aborts_validation_total",
            "Aborts: target refused by the validity rule.",
            report.reconfig_abort_reasons.validation,
        );
        e.counter(
            "rtcm_reconfig_aborts_foreign_coordinator_total",
            "Aborts: a quorum member was fenced for another coordinator.",
            report.reconfig_abort_reasons.foreign_coordinator,
        );
        e.counter(
            "rtcm_reconfig_deferred_total",
            "Admission decisions deferred during prepare windows.",
            report.reconfig_deferred,
        );
        e.gauge(
            "rtcm_reconfig_max_inflight",
            "Largest in-flight job count observed at any commit point.",
            report.reconfig_max_inflight as f64,
        );
        e.gauge(
            "rtcm_aub_slack",
            "AUB headroom (1 - max synthetic utilization).",
            report.aub_slack,
        );
        e.gauge(
            "rtcm_util_imbalance",
            "Synthetic-utilization spread across processors.",
            report.util_imbalance,
        );
        e.counter(
            "rtcm_governor_windows_total",
            "Sensing windows closed by the adaptation governor.",
            report.governor_windows,
        );
        e.counter(
            "rtcm_governor_swaps_total",
            "Committed swaps initiated by the governor.",
            report.governor_swaps,
        );
        e.counter(
            "rtcm_governor_overruns_total",
            "Governor window boundaries overrun by sense+actuate work.",
            report.governor_overruns,
        );
        e.counter(
            "rtcm_events_published_total",
            "Events published through the federation.",
            report.events_published,
        );
        e.counter(
            "rtcm_events_delivered_total",
            "Per-subscriber fan-out deliveries.",
            report.events_delivered,
        );
        e.counter(
            "rtcm_events_dropped_total",
            "Events dropped at bounded subscribers under backpressure.",
            report.events_dropped,
        );
        e.counter(
            "rtcm_remote_parcels_total",
            "Parcels handed to the in-process network for cross-node delivery.",
            report.remote_parcels,
        );
        e.counter(
            "rtcm_bridge_rx_errors_total",
            "Corrupt or undecodable frames received on TCP bridges.",
            report.bridge_rx_errors,
        );
        e.counter(
            "rtcm_bridge_disconnects_total",
            "TCP bridge links torn down for any reason.",
            report.bridge_disconnects,
        );
        e.counter(
            "rtcm_bridge_tx_dropped_total",
            "Outbound events dropped for exceeding the wire frame limit.",
            report.bridge_tx_dropped,
        );
        e.counter(
            "rtcm_trace_records_dropped_total",
            "Trace records evicted from the bounded ring.",
            self.metrics.trace.dropped(),
        );
        e.counter(
            "rtcm_trace_records_sampled_out_total",
            "Trace records discarded by the 1-in-N trace sampler.",
            self.metrics.trace.sampled_out(),
        );
        e.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcm_core::time::Duration;

    #[test]
    fn trace_sampling_knob_reaches_the_tracer() {
        let stats = SharedStats::with_trace_sampling(8);
        assert_eq!(stats.metrics().trace.sample_every(), 8);
        assert_eq!(SharedStats::new().metrics().trace.sample_every(), 1);
    }

    #[test]
    fn metrics_fold_into_snapshot() {
        let stats = SharedStats::new();
        let m = stats.metrics();
        m.jobs_completed.add(3);
        RtMetrics::record_delay(&m.comm, Duration::from_micros(100));
        let snap = stats.snapshot();
        assert_eq!(snap.jobs_completed, 3);
        assert_eq!(snap.comm.count(), 1);
        assert_eq!(snap.comm.min(), Duration::from_micros(100));
        assert_eq!(snap.comm.max(), Duration::from_micros(100));
    }

    #[test]
    fn cold_fields_still_go_through_with() {
        let stats = SharedStats::new();
        stats.with(|r| r.governor_windows = 7);
        assert_eq!(stats.snapshot().governor_windows, 7);
    }

    #[test]
    fn ratio_reconstructs_from_parts() {
        let stats = SharedStats::new();
        let m = stats.metrics();
        m.arrived_utilization.add(0.5);
        m.arrived_jobs.inc();
        m.arrived_utilization.add(0.25);
        m.arrived_jobs.inc();
        m.released_utilization.add(0.5);
        m.released_jobs.inc();
        let ratio = stats.snapshot().ratio;
        assert_eq!(ratio.arrived_jobs(), 2);
        assert!((ratio.ratio() - (0.5 / 0.75)).abs() < 1e-12);
    }

    #[test]
    fn in_flight_counts() {
        let stats = SharedStats::new();
        stats.job_in();
        stats.job_in();
        stats.job_out();
        assert_eq!(stats.in_flight(), 1);
    }

    #[test]
    fn wait_quiet_blocks_until_drained() {
        let stats = SharedStats::new();
        assert!(stats.wait_quiet(StdDuration::from_millis(1)), "empty system is quiet");
        stats.job_in();
        assert!(!stats.wait_quiet(StdDuration::from_millis(5)), "in-flight job times out");
        let s2 = Arc::clone(&stats);
        let t = std::thread::spawn(move || {
            std::thread::sleep(StdDuration::from_millis(10));
            s2.job_out();
        });
        assert!(stats.wait_quiet(StdDuration::from_secs(5)), "notified on drain");
        t.join().unwrap();
    }

    #[test]
    fn report_serializes() {
        let stats = SharedStats::new();
        let json = serde_json::to_string(&stats.snapshot()).unwrap();
        assert!(json.contains("jobs_completed"));
    }

    #[test]
    fn exposition_covers_registry_and_report() {
        let stats = SharedStats::new();
        stats.metrics().jobs_completed.inc();
        RtMetrics::record_delay(&stats.metrics().response, Duration::from_micros(250));
        let mut report = stats.snapshot();
        report.events_published = 42;
        let page = stats.render_exposition(&report);
        assert!(page.contains("rtcm_jobs_completed_total 1"));
        assert!(page.contains("# TYPE rtcm_response_ns histogram"));
        assert!(page.contains("rtcm_response_ns_count 1"));
        assert!(page.contains("rtcm_events_published_total 42"));
    }
}
