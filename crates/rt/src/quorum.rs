//! Bridged-host quorum membership: the voting delegate that makes a
//! TCP-bridged federation a **full member** of the reconfiguration
//! prepare quorum instead of a passive observer.
//!
//! Topology (the paper's multi-host testbed, upgraded from §5's
//! observation to participation):
//!
//! 1. the coordinator host bridges `topics::RECONFIG` *out* and
//!    `topics::RECONFIG_ACK` *back* over a `rtcm_events::remote` gateway;
//! 2. the remote host attaches a [`QuorumMember`] to its federation and
//!    the coordinator registers the member's host id via
//!    `System::register_remote_voter`;
//! 3. every subsequent swap's prepare now *requires* the member's vote:
//!    it acks foreign prepares (fencing itself for exactly one coordinator
//!    at a time), vetoes prepares that collide with a different
//!    coordinator's in-flight swap (`ReconfigVote::Nack` with
//!    [`ForeignCoordinator`](crate::proto::ReconfigAbortReason::ForeignCoordinator)),
//!    and releases its fence on the matching commit/abort.
//!
//! Partition safety is timeout-symmetric: a member that cannot reach the
//! coordinator simply never acks, and the coordinator aborts at its ack
//! deadline with [`AckTimeout`](crate::proto::ReconfigAbortReason::AckTimeout); a member whose
//! commit/abort was lost drops its stale fence after
//! [`QuorumOptions::fence_timeout`] so one lost packet can never wedge the
//! host out of all future quorums.
//!
//! The voting/fencing logic itself lives in the pure
//! [`MemberSm`](crate::quorum_sm::MemberSm) state machine (shared with the
//! deterministic federation simulator); this module is only the threaded
//! shell around it. All fence timestamps are read off the member's
//! [`TimerDriver`] clock — never `Instant` — so the identical machine runs
//! under a skewed virtual clock in `rtcm-sim`.
//!
//! The delegate thread is reactor-driven: a standing fence's expiry
//! deadline is a timer-wheel entry, so recovery happens *at* the deadline
//! instead of up to a 20 ms poll period late, and an unfenced idle member
//! blocks on its mailbox without any wakeups. Stop requests publish a
//! `topics::QUORUM_CTL` kick so the indefinite block stays interruptible.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use crossbeam::channel::{unbounded, Sender, TryRecvError};
use parking_lot::Mutex;

use rtcm_core::strategy::ServiceConfig;
use rtcm_events::{topics, ChannelHandle, Federation, NodeId, UnknownNodeError};
use rtcm_telemetry::{TraceBuffer, DEFAULT_TRACE_CAPACITY};

use crate::clock::{Clock, TimerDriver};
use crate::proto::{self, ReconfigMsg, ReconfigVote};
use crate::quorum_sm::{MemberReaction, MemberSm};
use crate::reactor::{Reactor, TimerId, Wake, DEFAULT_TICK};

/// Tunables for a [`QuorumMember`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumOptions {
    /// How long a fence may stand without its commit/abort arriving before
    /// the member forgets it (lost-packet / partition recovery).
    pub fence_timeout: StdDuration,
}

impl Default for QuorumOptions {
    fn default() -> Self {
        QuorumOptions { fence_timeout: StdDuration::from_secs(5) }
    }
}

/// A federation's voting delegate in foreign reconfiguration quorums.
/// Dropping it stops voting (the coordinator will then abort on timeout —
/// deregister the host first for a clean departure).
pub struct QuorumMember {
    host: u64,
    hold: Arc<AtomicBool>,
    state: Arc<Mutex<MemberSm>>,
    trace: Arc<TraceBuffer>,
    stop: Sender<()>,
    /// Publishes the `topics::QUORUM_CTL` kick that wakes the delegate's
    /// blocking mailbox wait after a stop request is enqueued.
    wake: ChannelHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for QuorumMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuorumMember").field("host", &self.host).finish()
    }
}

impl QuorumMember {
    /// Attaches a voting member to `federation`, publishing and consuming
    /// through `node` (use a dedicated gateway-side node). Register the
    /// returned [`QuorumMember::host_id`] at the coordinator to make this
    /// host's vote required.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNodeError`] if `node` is outside the federation.
    pub fn attach(
        federation: &Federation,
        node: NodeId,
        options: QuorumOptions,
    ) -> Result<Self, UnknownNodeError> {
        let handle = federation.handle(node)?;
        let wake = handle.clone();
        let host = federation.host_id();
        // One merged mailbox: reconfiguration phases plus the stop kick.
        let mailbox = handle.subscribe_many(&[topics::RECONFIG, topics::QUORUM_CTL]);
        let hold = Arc::new(AtomicBool::new(false));
        let state: Arc<Mutex<MemberSm>> = Arc::new(Mutex::new(MemberSm::new()));
        let trace = Arc::new(TraceBuffer::new(DEFAULT_TRACE_CAPACITY));
        let (stop_tx, stop_rx) = unbounded::<()>();
        let clock = Clock::new();
        let fence_timeout_ns = options.fence_timeout.as_nanos() as u64;
        let thread_hold = Arc::clone(&hold);
        let thread_state = Arc::clone(&state);
        let thread_trace = Arc::clone(&trace);
        let thread = std::thread::Builder::new()
            .name("rtcm-quorum-member".into())
            .spawn(move || {
                let mut reactor: Reactor<Clock, ()> = Reactor::new(clock, DEFAULT_TICK);
                // Wheel entry mirroring the standing fence, keyed by
                // `(coordinator, epoch)` so a superseding prepare reslots
                // the deadline.
                let mut fence_timer: Option<(TimerId, (u64, u64))> = None;
                let mut fired: Vec<(TimerId, ())> = Vec::new();
                loop {
                    match stop_rx.try_recv() {
                        Ok(()) | Err(TryRecvError::Disconnected) => return,
                        Err(TryRecvError::Empty) => {}
                    }
                    fired.clear();
                    reactor.poll(&mut fired);
                    if !fired.is_empty() {
                        // The fence deadline fired (the only entry this
                        // wheel ever holds; intermediate cascade wakes fire
                        // nothing) — drop the stale fence *at* the
                        // deadline, not up to a poll period later.
                        fence_timer = None;
                        thread_state.lock().expire_fence(clock.now_ns(), fence_timeout_ns);
                    }
                    // Re-sync the wheel with the current fence.
                    let fence = thread_state.lock().fence();
                    match fence {
                        Some(f) => {
                            let key = (f.coordinator, f.epoch);
                            let stale = fence_timer.is_none_or(|(_, k)| k != key);
                            if stale {
                                if let Some((id, _)) = fence_timer.take() {
                                    reactor.cancel(id);
                                }
                                let deadline_ns = f.raised_ns + fence_timeout_ns;
                                let id = reactor.schedule_at(deadline_ns, ());
                                fence_timer = Some((id, key));
                            }
                        }
                        None => {
                            if let Some((id, _)) = fence_timer.take() {
                                reactor.cancel(id);
                            }
                        }
                    }
                    match reactor.wait(&mailbox) {
                        Wake::Event(ev) if ev.topic == topics::RECONFIG => {
                            let msg: ReconfigMsg = proto::decode(&ev.payload);
                            let holding = thread_hold.load(Ordering::SeqCst);
                            let reaction = thread_state.lock().on_phase(
                                &msg,
                                host,
                                clock.now_ns(),
                                fence_timeout_ns,
                                holding,
                            );
                            react(&msg, host, &handle, clock, &thread_trace, reaction);
                        }
                        // A QUORUM_CTL kick: loop back to the stop check.
                        Wake::Event(_) | Wake::Timer => {}
                        Wake::Closed => return,
                    }
                }
            })
            .expect("spawn quorum member");
        Ok(QuorumMember { host, hold, state, trace, stop: stop_tx, wake, thread: Some(thread) })
    }

    /// The host identity this member votes as (its federation's id).
    #[must_use]
    pub fn host_id(&self) -> u64 {
        self.host
    }

    /// While holding, the member ignores prepares entirely — it neither
    /// fences nor votes, simulating a partitioned or crashed host. The
    /// coordinator's swap then aborts at the ack deadline.
    pub fn set_holding(&self, hold: bool) {
        self.hold.store(hold, Ordering::SeqCst);
    }

    /// Configurations whose commits this member witnessed, in order.
    #[must_use]
    pub fn observed_commits(&self) -> Vec<ServiceConfig> {
        self.state.lock().commits().to_vec()
    }

    /// Prepares acked so far.
    #[must_use]
    pub fn ack_count(&self) -> u64 {
        self.state.lock().acks()
    }

    /// Prepares vetoed so far (foreign-coordinator collisions).
    #[must_use]
    pub fn nack_count(&self) -> u64 {
        self.state.lock().nacks()
    }

    /// True while the member is fenced for a pending foreign swap.
    #[must_use]
    pub fn is_fenced(&self) -> bool {
        self.state.lock().fence().is_some()
    }

    /// The member's trace buffer: every foreign reconfiguration phase it
    /// witnessed, keyed by the coordinator's deterministic swap trace id so
    /// dumps from both hosts correlate without extra wire traffic.
    #[must_use]
    pub fn trace(&self) -> &Arc<TraceBuffer> {
        &self.trace
    }

    /// Detaches the member, joining its thread.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        let _ = self.stop.send(());
        // Kick the mailbox *after* the stop request is visible, so the
        // delegate's indefinite block wakes and observes it. Other members
        // sharing the federation just re-check their own stop channel.
        self.wake.publish(topics::QUORUM_CTL, Vec::new());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for QuorumMember {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Carries a [`MemberReaction`] out into the world: publishes the vote
/// and records the witnessed phase in the member's trace ring.
fn react(
    msg: &ReconfigMsg,
    host: u64,
    handle: &ChannelHandle,
    clock: Clock,
    trace: &Arc<TraceBuffer>,
    reaction: MemberReaction,
) {
    match reaction {
        MemberReaction::Ignored => {}
        MemberReaction::Vote(ack) => {
            trace.record(
                msg.trace,
                clock.now_ns(),
                host,
                "reconfig_prepare",
                format!(
                    "foreign epoch {} from coordinator {}, voted {}",
                    msg.epoch,
                    msg.coordinator,
                    if matches!(ack.vote, ReconfigVote::Ack) { "ack" } else { "nack" }
                ),
            );
            handle.publish(topics::RECONFIG_ACK, proto::encode(&ack));
        }
        MemberReaction::Committed(services) => {
            trace.record(
                msg.trace,
                clock.now_ns(),
                host,
                "reconfig_commit",
                format!("foreign epoch {} committed {}", msg.epoch, services.label()),
            );
        }
        MemberReaction::Aborted => {
            trace.record(
                msg.trace,
                clock.now_ns(),
                host,
                "reconfig_abort",
                format!("foreign epoch {} aborted", msg.epoch),
            );
        }
    }
}
