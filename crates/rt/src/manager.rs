//! The central task manager node: the Admission Control and Load Balancing
//! components (§3's centralized architecture — "one AC component and one LB
//! component on a central task manager processor").
//!
//! The manager consumes "Task Arrive" and "Idle Resetting" events, runs the
//! core [`AdmissionController`] (which hosts the load balancer), and
//! publishes "Accept"/"Reject" events back to the task effectors. Each
//! operation is timed for the Figure 8 overhead table: op 3 (plan
//! generation), op 4 (admission test), op 8 (utilization update), and the
//! one-way communication delay of incoming events (op 2) measured on the
//! shared clock.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Receiver;

use rtcm_core::admission::{AdmissionController, Decision};
use rtcm_core::balance::Assignment;
use rtcm_core::ledger::ContributionKey;
use rtcm_core::strategy::AcStrategy;
use rtcm_core::task::{ProcessorId, TaskSet};
use rtcm_core::time::{Duration, Time};
use rtcm_events::{topics, ChannelHandle};

use crate::clock::Clock;
use crate::proto::{self, AcceptMsg, ArriveMsg, IdleResetMsg, RejectMsg};
use crate::stats::SharedStats;

pub(crate) struct ManagerConfig {
    pub ac: AdmissionController,
    pub tasks: Arc<TaskSet>,
    pub channel: ChannelHandle,
    pub clock: Clock,
    pub stats: Arc<SharedStats>,
    pub shutdown_rx: Receiver<()>,
    /// Subscribed by the launcher before any thread starts (no startup
    /// race).
    pub arrive_rx: Receiver<rtcm_events::Event>,
    pub reset_rx: Receiver<rtcm_events::Event>,
}

/// Runs the manager loop until shutdown. Spawned by `System::launch`.
pub(crate) fn run_manager(cfg: ManagerConfig) {
    let arrive_rx = cfg.arrive_rx.clone();
    let reset_rx = cfg.reset_rx.clone();
    let mut manager = Manager { cfg, arrive_rx, reset_rx };
    manager.run();
}

struct Manager {
    cfg: ManagerConfig,
    arrive_rx: Receiver<rtcm_events::Event>,
    reset_rx: Receiver<rtcm_events::Event>,
}

impl Manager {
    fn run(&mut self) {
        loop {
            crossbeam::channel::select! {
                recv(self.arrive_rx) -> m => {
                    let Ok(ev) = m else { return };
                    self.on_arrive(&proto::decode(&ev.payload));
                }
                recv(self.reset_rx) -> m => {
                    let Ok(ev) = m else { return };
                    self.on_reset(&proto::decode(&ev.payload));
                }
                recv(self.cfg.shutdown_rx) -> _ => { return }
            }
        }
    }

    fn on_arrive(&mut self, msg: &ArriveMsg) {
        let now = self.cfg.clock.now();
        self.cfg.stats.with(|r| r.comm.record(now.elapsed_since(Time::from_nanos(msg.sent_ns))));

        let Some(task) = self.cfg.tasks.get(msg.job.task) else { return };
        self.cfg.ac.expire(now);

        // Op 3: generate an acceptable deployment plan (the "Location"
        // call on the LB component).
        let lb_enabled = self.cfg.ac.config().lb.is_enabled();
        let lb_start = Instant::now();
        let assignment = if lb_enabled {
            self.cfg.ac.propose_assignment(task)
        } else {
            Assignment::primaries(task)
        };
        let lb_elapsed = Duration::from(lb_start.elapsed());
        if lb_enabled {
            self.cfg.stats.with(|r| r.lb_plan.record(lb_elapsed));
        }

        // Op 4: the admission test against the job's true arrival-based
        // deadline.
        let ac_start = Instant::now();
        let decision =
            self.cfg.ac.admit_with(task, msg.job.seq, Time::from_nanos(msg.arrival_ns), assignment);
        let ac_elapsed = Duration::from(ac_start.elapsed());
        self.cfg.stats.with(|r| r.ac_test.record(ac_elapsed));

        match decision {
            Ok(Decision::Accept { assignment, newly_admitted }) => {
                let reply = AcceptMsg {
                    job: msg.job,
                    release_proc: assignment.processor(0).0,
                    assignment: assignment.as_slice().iter().map(|p| p.0).collect(),
                    arrival_ns: msg.arrival_ns,
                    deadline_ns: msg.arrival_ns + task.deadline().as_nanos(),
                    newly_admitted,
                    sent_ns: self.cfg.clock.now().as_nanos(),
                };
                self.cfg.channel.publish(topics::ACCEPT, proto::encode(&reply));
            }
            Ok(Decision::Reject { .. }) => {
                let task_rejected =
                    task.is_periodic() && self.cfg.ac.config().ac == AcStrategy::PerTask;
                let reply =
                    RejectMsg { job: msg.job, arrival_proc: msg.arrival_proc, task_rejected };
                self.cfg.channel.publish(topics::REJECT, proto::encode(&reply));
            }
            Err(_duplicate_or_misroute) => {
                // Duplicate submissions (same task, same sequence) are
                // caller mistakes; reject the extra copy so the arrival TE
                // releases its bookkeeping and the system stays live.
                let reply = RejectMsg {
                    job: msg.job,
                    arrival_proc: msg.arrival_proc,
                    task_rejected: false,
                };
                self.cfg.channel.publish(topics::REJECT, proto::encode(&reply));
            }
        }
    }

    fn on_reset(&mut self, msg: &IdleResetMsg) {
        let now = self.cfg.clock.now();
        let keys: Vec<ContributionKey> = msg
            .completed
            .iter()
            .map(|(job, subtask)| ContributionKey::new(*job, *subtask as usize))
            .collect();
        // Op 8: remove the contributions from the synthetic utilization.
        let update_start = Instant::now();
        self.cfg.ac.apply_idle_reset(ProcessorId(msg.processor), &keys);
        let update = Duration::from(update_start.elapsed());
        self.cfg.stats.with(|r| {
            r.ir_update.record(update);
            r.ir_path.record(now.elapsed_since(Time::from_nanos(msg.started_ns)));
            r.ir_reports += 1;
        });
    }
}
