//! The central task manager node: the Admission Control and Load Balancing
//! components (§3's centralized architecture — "one AC component and one LB
//! component on a central task manager processor").
//!
//! The manager consumes "Task Arrive" and "Idle Resetting" events, runs the
//! core [`AdmissionController`] (which hosts the load balancer), and
//! publishes "Accept"/"Reject" events back to the task effectors. Each
//! operation is timed for the Figure 8 overhead table: op 3 (plan
//! generation), op 4 (admission test), op 8 (utilization update), and the
//! one-way communication delay of incoming events (op 2) measured on the
//! shared clock.
//!
//! The manager is also the coordinator of the **two-phase live
//! reconfiguration protocol** (see DESIGN.md "Live reconfiguration"):
//! on a [`ManagerCtl::Reconfigure`] request it publishes a *prepare*
//! event fencing every task effector's local fast path, defers incoming
//! admission decisions while collecting acks, executes the admission
//! controller's ledger handover, and publishes *commit* — or *abort*,
//! restoring the old configuration, if a node never acks.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use rtcm_core::admission::Decision;
use rtcm_core::balance::Assignment;
use rtcm_core::govern::slack_and_imbalance;
use rtcm_core::ledger::ContributionKey;
use rtcm_core::shard::{AdmissionPlaneStats, ShardedAdmissionController};
use rtcm_core::strategy::{AcStrategy, ServiceConfig};
use rtcm_core::task::{ProcessorId, TaskSet};
use rtcm_core::time::{Duration, Time};
use rtcm_events::{topics, ChannelHandle, Event, EventReceiver};

use crate::clock::Clock;
use crate::proto::{
    self, AcceptMsg, ArriveMsg, IdleResetMsg, ReconfigAbortReason, ReconfigAckMsg, ReconfigMsg,
    ReconfigPhase, RejectMsg,
};
use crate::quorum_sm::{CoordinatorSm, QuorumStatus};
use crate::reactor::{Reactor, TimerId, Wake, DEFAULT_TICK};
use crate::stats::SharedStats;
use crate::system::{ReconfigReport, ReconfigureError};

/// Control requests from the launcher to the manager thread.
pub(crate) enum ManagerCtl {
    /// Run the two-phase swap to `target` and reply with the outcome.
    Reconfigure { target: ServiceConfig, reply: Sender<Result<ReconfigReport, ReconfigureError>> },
    /// Expire the current set up to *now* and reply with fresh
    /// `(aub_slack, imbalance)` gauges from the ledger's maintained
    /// totals. Sent once per governor sensing window, so an idle system's
    /// gauges still track entry expiry — exactly the semantics of the
    /// simulator's per-tick `expire` + ledger read.
    SenseGauges { reply: Sender<(f64, f64)> },
}

pub(crate) struct ManagerConfig {
    pub ac: ShardedAdmissionController,
    pub tasks: Arc<TaskSet>,
    pub channel: ChannelHandle,
    pub clock: Clock,
    pub stats: Arc<SharedStats>,
    pub processors: u16,
    /// How long the prepare phase waits for node acks before aborting.
    pub ack_timeout: StdDuration,
    /// Host ids of TCP-bridged federations whose vote is *required* for a
    /// prepare quorum (shared with `System::register_remote_voter`; read
    /// once per swap, so (de)registration never races a running prepare).
    pub remote_voters: Arc<Mutex<HashSet<u64>>>,
    pub shutdown_rx: Receiver<()>,
    pub ctl_rx: Receiver<ManagerCtl>,
    /// The manager's single inbox — "Task Arrive", "Idle Resetting",
    /// reconfiguration acks and `topics::MANAGER_WAKE` kicks merged in
    /// publish order. Subscribed by the launcher before any thread starts
    /// (no startup race).
    pub mailbox: EventReceiver,
}

/// Most mailbox events handled between control polls, so a saturating
/// event flood cannot starve reconfigure or shutdown requests.
const DRAIN_BATCH: usize = 256;

/// Source of manager-instance coordinator ids (see
/// [`crate::proto::ReconfigMsg::coordinator`]); process-qualified so two
/// bridged hosts can never mint the same identity.
static NEXT_COORDINATOR: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Runs the manager loop until shutdown. Spawned by `System::launch`.
pub(crate) fn run_manager(cfg: ManagerConfig) {
    let coordinator = (u64::from(std::process::id()) << 32)
        | NEXT_COORDINATOR.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let reactor = Reactor::new(cfg.clock, DEFAULT_TICK);
    let mut manager =
        Manager { cfg, coordinator, epoch: 0, reactor, plane_seen: AdmissionPlaneStats::default() };
    manager.run();
}

/// Wheel tags for the manager's reactor. The prepare-fence deadline is the
/// only entry the manager ever schedules; in steady state its wheel is
/// empty and the thread blocks on the mailbox indefinitely.
#[derive(Debug, Clone, Copy)]
enum MgrTimer {
    /// The prepare phase's ack deadline passed — abort the swap.
    PrepareDeadline,
}

struct Manager {
    cfg: ManagerConfig,
    /// This manager's protocol identity; acks not bearing it are ignored,
    /// so a bridged-in foreign reconfiguration can never pre-satisfy a
    /// local prepare quorum.
    coordinator: u64,
    /// Monotone reconfiguration epoch (acks echo it).
    epoch: u64,
    /// Timer wheel + single-wait loop (see [`MgrTimer`]).
    reactor: Reactor<Clock, MgrTimer>,
    /// Plane counters already folded into the metrics registry; the
    /// sharded controller reports cumulative values, the registry wants
    /// monotone increments.
    plane_seen: AdmissionPlaneStats,
}

/// What the manager loop should do after a control-channel poll.
enum CtlFlow {
    Continue,
    Exit,
}

impl Manager {
    fn run(&mut self) {
        loop {
            if matches!(self.poll_ctl(), CtlFlow::Exit) {
                return;
            }
            // Park on the mailbox. Every control sender (reconfigure
            // requests, gauge probes, shutdown) publishes a
            // `topics::MANAGER_WAKE` kick after enqueueing, so this wait
            // needs no poll cadence: with an empty wheel it blocks until
            // something actually happens — zero wakeups while idle.
            match self.reactor.wait(&self.cfg.mailbox) {
                Wake::Event(ev) => {
                    self.on_event(&ev);
                    // Drain a *bounded* backlog batch before the next
                    // control poll: a sustained arrival flood must not
                    // starve reconfigure/shutdown requests (the fairness
                    // the old multi-channel select! provided).
                    for _ in 0..DRAIN_BATCH {
                        match self.cfg.mailbox.try_recv() {
                            Ok(ev) => self.on_event(&ev),
                            Err(_) => break,
                        }
                    }
                }
                Wake::Timer => {
                    // No steady-state wheel entries exist; reap anything
                    // stale (e.g. a prepare deadline that raced its cancel).
                    self.cfg.stats.timer_wakeup();
                    let mut fired = Vec::new();
                    self.reactor.poll(&mut fired);
                }
                Wake::Closed => return,
            }
        }
    }

    /// Steady-state event dispatch. Reconfiguration acks arriving outside
    /// a prepare window are stale (the swap they voted on is decided) and
    /// are dropped, exactly as the ack check inside the prepare loop would.
    fn on_event(&mut self, ev: &Event) {
        if ev.topic == topics::TASK_ARRIVE {
            self.on_arrive(&proto::decode(&ev.payload));
        } else if ev.topic == topics::IDLE_RESET {
            self.on_reset(&proto::decode(&ev.payload));
        }
    }

    /// Polls the launcher's control channels without blocking.
    fn poll_ctl(&mut self) -> CtlFlow {
        match self.cfg.shutdown_rx.try_recv() {
            Ok(()) | Err(TryRecvError::Disconnected) => return CtlFlow::Exit,
            Err(TryRecvError::Empty) => {}
        }
        loop {
            match self.cfg.ctl_rx.try_recv() {
                Ok(ManagerCtl::Reconfigure { target, reply }) => {
                    if !self.on_reconfigure(target, &reply) {
                        return CtlFlow::Exit;
                    }
                }
                Ok(ManagerCtl::SenseGauges { reply }) => {
                    self.cfg.ac.expire(self.cfg.clock.now());
                    let gauges = self.gauges();
                    self.cfg.stats.with(|r| {
                        r.aub_slack = gauges.0;
                        r.util_imbalance = gauges.1;
                    });
                    let _ = reply.send(gauges);
                }
                Err(TryRecvError::Empty) => return CtlFlow::Continue,
                Err(TryRecvError::Disconnected) => return CtlFlow::Exit,
            }
        }
    }

    /// The two-phase swap. Returns false if shutdown arrived mid-protocol
    /// (the manager loop must exit).
    fn on_reconfigure(
        &mut self,
        target: ServiceConfig,
        reply: &Sender<Result<ReconfigReport, ReconfigureError>>,
    ) -> bool {
        let started_ns = self.cfg.clock.now().as_nanos();
        if let Err(e) = target.validate() {
            self.cfg
                .stats
                .with(|r| r.reconfig_abort_reasons.record(ReconfigAbortReason::Validation));
            let _ = reply.send(Err(ReconfigureError::InvalidConfig(e)));
            return true;
        }
        self.epoch += 1;
        let epoch = self.epoch;

        // Phase 1 (prepare): fence every task effector's local fast path.
        // Quiesce-free — running subjobs continue; only *new admission
        // decisions* are deferred until commit so no decision straddles
        // the handover. The prepare quorum is every local processor *plus*
        // every registered TCP-bridged federation: bridged hosts are
        // voting members, not observers, and their silence (partition,
        // crash) aborts the swap at the same deadline a silent local node
        // would. The vote bookkeeping is the pure [`CoordinatorSm`] —
        // the same machine the federation simulator drives in virtual
        // time — so this loop only moves messages and timers.
        let remote: HashSet<u64> = self.cfg.remote_voters.lock().clone();
        self.publish_phase(epoch, ReconfigPhase::Prepare, target);
        let mut quorum = CoordinatorSm::begin(
            self.coordinator,
            epoch,
            self.cfg.channel.host_id(),
            self.cfg.processors,
            remote,
        );
        // The ack deadline is a wheel entry, not a poll cadence: the loop
        // parks on min(deadline, mailbox) and wakes exactly when an ack
        // arrives, the deadline passes, or a shutdown kick is published.
        let deadline_ns = self.cfg.clock.now().as_nanos() + self.cfg.ack_timeout.as_nanos() as u64;
        let fence_timer = self.reactor.schedule_at(deadline_ns, MgrTimer::PrepareDeadline);
        let mut timed_out = false;
        let mut fired: Vec<(TimerId, MgrTimer)> = Vec::new();
        let mut deferred: Vec<ArriveMsg> = Vec::new();
        while matches!(quorum.status(), QuorumStatus::Pending) && !timed_out {
            match self.cfg.shutdown_rx.try_recv() {
                Ok(()) | Err(TryRecvError::Disconnected) => {
                    self.reactor.cancel(fence_timer);
                    let _ = reply.send(Err(ReconfigureError::Closed));
                    return false;
                }
                Err(TryRecvError::Empty) => {}
            }
            match self.reactor.wait(&self.cfg.mailbox) {
                Wake::Event(ev) => {
                    if ev.topic == topics::RECONFIG_ACK {
                        let ack: ReconfigAckMsg = proto::decode(&ev.payload);
                        quorum.on_ack(&ack);
                    } else if ev.topic == topics::TASK_ARRIVE {
                        deferred.push(proto::decode(&ev.payload));
                    } else if ev.topic == topics::IDLE_RESET {
                        // Idle resets carry no decision; apply immediately.
                        self.on_reset(&proto::decode(&ev.payload));
                    }
                }
                Wake::Timer => {
                    // Either the ack deadline or an intermediate cascade
                    // boundary; only the former ends the wait.
                    self.cfg.stats.timer_wakeup();
                    fired.clear();
                    self.reactor.poll(&mut fired);
                    if fired.iter().any(|(_, t)| matches!(t, MgrTimer::PrepareDeadline)) {
                        timed_out = true;
                    }
                }
                Wake::Closed => break,
            }
        }
        self.reactor.cancel(fence_timer);

        let (acked, expected) = (quorum.acked(), quorum.expected());
        let verdict = quorum.status();
        if !matches!(verdict, QuorumStatus::Satisfied) {
            // Abort: lift the fences, keep the old configuration, decide
            // the deferred arrivals under it. Nothing was applied anywhere,
            // so the rollback is exactly "publish abort".
            let reason = match verdict {
                QuorumStatus::Vetoed(reason) => reason,
                _ => ReconfigAbortReason::AckTimeout,
            };
            let old = self.cfg.ac.config();
            self.publish_phase(epoch, ReconfigPhase::Abort, old);
            self.cfg.stats.with(|r| {
                r.reconfig_aborts += 1;
                r.reconfig_abort_reasons.record(reason);
            });
            for msg in &deferred {
                self.on_arrive(msg);
            }
            let _ = reply.send(Err(ReconfigureError::Aborted { reason, acked, expected }));
            return true;
        }

        // Phase 2 (commit): every fast path is fenced, so the ledger
        // handover runs race-free while jobs keep executing.
        let now = self.cfg.clock.now();
        let handover =
            self.cfg.ac.reconfigure(target, now, &self.cfg.tasks).expect("target validated above");
        self.publish_phase(epoch, ReconfigPhase::Commit, target);

        let swap_latency =
            Duration::from_nanos(self.cfg.clock.now().as_nanos().saturating_sub(started_ns));
        let jobs_in_flight = self.cfg.stats.in_flight();
        let decisions_deferred = deferred.len() as u64;
        self.cfg.stats.metrics().reconfig_latency.record(swap_latency.as_nanos());
        self.cfg.stats.with(|r| {
            r.reconfig_swaps += 1;
            r.reconfig_deferred += decisions_deferred;
            r.reconfig_max_inflight = r.reconfig_max_inflight.max(jobs_in_flight);
        });
        // Deferred arrivals are decided now, under the new configuration.
        for msg in &deferred {
            self.on_arrive(msg);
        }
        let _ = reply.send(Ok(ReconfigReport {
            epoch,
            handover,
            swap_latency,
            decisions_deferred,
            jobs_in_flight,
            acked_nodes: usize::from(self.cfg.processors),
            acked_remote: expected - usize::from(self.cfg.processors),
        }));
        true
    }

    fn publish_phase(&self, epoch: u64, phase: ReconfigPhase, services: ServiceConfig) {
        let trace = proto::swap_trace(self.coordinator, epoch);
        let now = self.cfg.clock.now().as_nanos();
        let msg = ReconfigMsg {
            coordinator: self.coordinator,
            host: self.cfg.channel.host_id(),
            epoch,
            phase,
            services,
            sent_ns: now,
            trace,
        };
        let stage = match phase {
            ReconfigPhase::Prepare => "reconfig_prepare",
            ReconfigPhase::Commit => "reconfig_commit",
            ReconfigPhase::Abort => "reconfig_abort",
        };
        self.cfg.stats.metrics().trace.record(
            trace,
            now,
            self.cfg.channel.host_id(),
            stage,
            format!("epoch {epoch}, target {}", services.label()),
        );
        self.cfg.channel.publish(topics::RECONFIG, proto::encode(&msg));
    }

    /// The governor's boundary gauges, read from the ledger's
    /// incrementally maintained per-processor totals. Computed only on a
    /// [`ManagerCtl::SenseGauges`] probe (once per governor window) — the
    /// admission and idle-reset hot paths pay nothing for sensing.
    fn gauges(&self) -> (f64, f64) {
        slack_and_imbalance(&self.cfg.ac.utilizations())
    }

    /// Folds the sharded plane's decision-path counters into the metrics
    /// registry (delta against the last fold, so counters stay monotone).
    fn sync_plane_stats(&mut self) {
        let plane = self.cfg.ac.plane_stats();
        let m = self.cfg.stats.metrics();
        m.admission_shard_local.add(plane.local_decisions - self.plane_seen.local_decisions);
        m.admission_cross_shard.add(plane.cross_decisions - self.plane_seen.cross_decisions);
        m.admission_summary_refreshes
            .add(plane.summary_refreshes - self.plane_seen.summary_refreshes);
        self.plane_seen = plane;
    }

    fn on_arrive(&mut self, msg: &ArriveMsg) {
        let now = self.cfg.clock.now();
        self.cfg
            .stats
            .metrics()
            .comm
            .record(now.elapsed_since(Time::from_nanos(msg.sent_ns)).as_nanos());

        let Some(task) = self.cfg.tasks.get(msg.job.task) else { return };
        self.cfg.ac.expire(now);

        // Op 3: generate an acceptable deployment plan (the "Location"
        // call on the LB component).
        let lb_enabled = self.cfg.ac.config().lb.is_enabled();
        let lb_start = Instant::now();
        let assignment = if lb_enabled {
            self.cfg.ac.propose_assignment(task)
        } else {
            Assignment::primaries(task)
        };
        let lb_elapsed = Duration::from(lb_start.elapsed());
        if lb_enabled {
            self.cfg.stats.metrics().lb_plan.record(lb_elapsed.as_nanos());
        }

        // Op 4: the admission test against the job's true arrival-based
        // deadline.
        let ac_start = Instant::now();
        let decision =
            self.cfg.ac.admit_with(task, msg.job.seq, Time::from_nanos(msg.arrival_ns), assignment);
        let ac_elapsed = Duration::from(ac_start.elapsed());
        let metrics = self.cfg.stats.metrics();
        metrics.ac_test.record(ac_elapsed.as_nanos());

        let host = self.cfg.channel.host_id();
        match decision {
            Ok(Decision::Accept { assignment, newly_admitted }) => {
                metrics.trace.record(
                    msg.trace,
                    self.cfg.clock.now().as_nanos(),
                    host,
                    "admission",
                    format!("{} accepted (fresh test: {newly_admitted})", msg.job),
                );
                let reallocated =
                    assignment.as_slice().iter().zip(task.subtasks()).any(|(c, s)| *c != s.primary);
                if reallocated {
                    metrics.trace.record(
                        msg.trace,
                        self.cfg.clock.now().as_nanos(),
                        host,
                        "reallocation",
                        format!(
                            "{} placed {:?}",
                            msg.job,
                            assignment.as_slice().iter().map(|p| p.0).collect::<Vec<_>>()
                        ),
                    );
                }
                let reply = AcceptMsg {
                    job: msg.job,
                    release_proc: assignment.processor(0).0,
                    assignment: assignment.as_slice().iter().map(|p| p.0).collect(),
                    arrival_ns: msg.arrival_ns,
                    deadline_ns: msg.arrival_ns + task.deadline().as_nanos(),
                    newly_admitted,
                    sent_ns: self.cfg.clock.now().as_nanos(),
                    trace: msg.trace,
                };
                self.cfg.channel.publish(topics::ACCEPT, proto::encode(&reply));
            }
            Ok(Decision::Reject { .. }) => {
                let task_rejected =
                    task.is_periodic() && self.cfg.ac.config().ac == AcStrategy::PerTask;
                metrics.trace.record(
                    msg.trace,
                    self.cfg.clock.now().as_nanos(),
                    host,
                    "admission",
                    format!("{} rejected (task rejected: {task_rejected})", msg.job),
                );
                let reply = RejectMsg {
                    job: msg.job,
                    arrival_proc: msg.arrival_proc,
                    task_rejected,
                    trace: msg.trace,
                };
                self.cfg.channel.publish(topics::REJECT, proto::encode(&reply));
            }
            Err(_duplicate_or_misroute) => {
                // Duplicate submissions (same task, same sequence) are
                // caller mistakes; reject the extra copy so the arrival TE
                // releases its bookkeeping and the system stays live.
                metrics.trace.record(
                    msg.trace,
                    self.cfg.clock.now().as_nanos(),
                    host,
                    "admission",
                    format!("{} rejected (duplicate)", msg.job),
                );
                let reply = RejectMsg {
                    job: msg.job,
                    arrival_proc: msg.arrival_proc,
                    task_rejected: false,
                    trace: msg.trace,
                };
                self.cfg.channel.publish(topics::REJECT, proto::encode(&reply));
            }
        }
        self.sync_plane_stats();
    }

    fn on_reset(&mut self, msg: &IdleResetMsg) {
        let now = self.cfg.clock.now();
        let keys: Vec<ContributionKey> = msg
            .completed
            .iter()
            .map(|(job, subtask)| ContributionKey::new(*job, *subtask as usize))
            .collect();
        // Op 8: remove the contributions from the synthetic utilization.
        let update_start = Instant::now();
        self.cfg.ac.apply_idle_reset(ProcessorId(msg.processor), &keys);
        let update = Duration::from(update_start.elapsed());
        let m = self.cfg.stats.metrics();
        m.ir_update.record(update.as_nanos());
        m.ir_path.record(now.elapsed_since(Time::from_nanos(msg.started_ns)).as_nanos());
        m.ir_reports.inc();
    }
}
