//! The runtime system: the DAnCE-style launcher that turns a
//! [`Deployment`] into running threads — one task-manager node plus one
//! node per application processor, wired by the federated event channel.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use rtcm_config::Deployment;
use rtcm_core::govern::GovernorPolicy;
use rtcm_core::priority::Priority;
use rtcm_core::reconfig::HandoverReport;
use rtcm_core::shard::ShardedAdmissionController;
use rtcm_core::strategy::{InvalidConfigError, ServiceConfig};
use rtcm_core::task::{TaskId, TaskSet};
use rtcm_core::time::Duration;
use rtcm_events::{topics, ChannelHandle, Federation, FederationStats, Latency, NodeId};
use rtcm_telemetry::{OamRoutes, OamServer};

use crate::clock::Clock;
use crate::govern::{spawn_governor_thread, GovernorHandle};
use crate::manager::{run_manager, ManagerConfig, ManagerCtl};
use crate::node::{run_node, ExecMode, NodeConfig};
use crate::proto::{self, ReconfigAbortReason};
use crate::stats::{RtMetrics, SharedStats, SystemReport};

/// Runtime options.
#[derive(Debug, Clone, Copy)]
pub struct RtOptions {
    /// One-way network latency between nodes. Defaults to the paper's
    /// measured 283–361 µs band.
    pub latency: Latency,
    /// How subtask execution consumes time.
    pub exec: ExecMode,
    /// Dispatcher slice length (preemption granularity).
    pub slice: StdDuration,
    /// Seed for latency jitter.
    pub seed: u64,
    /// How long a reconfiguration's prepare phase waits for node acks
    /// before aborting the swap (see [`System::reconfigure`]).
    pub reconfig_ack_timeout: StdDuration,
    /// Keep 1-in-N job traces in the bounded tracer (1 = trace every
    /// job). Sampling is per trace id, so a sampled job keeps all of its
    /// lifecycle stages and an unsampled one records nothing.
    pub trace_sample_every: u64,
    /// Shard count for the sharded admission plane: processors are split
    /// into this many contiguous groups, and arrivals whose candidate
    /// placements stay inside one group admit without touching the other
    /// shards. 1 (the default) reproduces the monolithic controller's
    /// behavior exactly; values are clamped to the processor count.
    pub admission_shards: usize,
}

impl Default for RtOptions {
    fn default() -> Self {
        RtOptions {
            latency: Latency::Uniform {
                lo: StdDuration::from_micros(283),
                hi: StdDuration::from_micros(361),
            },
            exec: ExecMode::Sleep,
            slice: StdDuration::from_micros(200),
            seed: 0,
            reconfig_ack_timeout: StdDuration::from_secs(2),
            trace_sample_every: 1,
            admission_shards: 1,
        }
    }
}

impl RtOptions {
    /// Options for control-plane tests: no network latency, instant
    /// execution.
    #[must_use]
    pub fn fast() -> Self {
        RtOptions { latency: Latency::None, exec: ExecMode::Noop, ..RtOptions::default() }
    }
}

/// Errors from [`System::launch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The deployment carries an invalid strategy combination (cannot occur
    /// for engine-built deployments).
    InvalidConfig(InvalidConfigError),
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::InvalidConfig(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Errors from [`System::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The task is not part of the deployment.
    UnknownTask {
        /// The offending id.
        task: TaskId,
    },
    /// The system is shutting down.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownTask { task } => write!(f, "unknown task {task}"),
            SubmitError::Closed => f.write_str("system is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Errors from [`System::reconfigure`]. A failed reconfiguration never
/// partially applies: either every node committed the new configuration,
/// or the system still runs the old one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigureError {
    /// The target combination violates the §4.5 validity rule.
    InvalidConfig(InvalidConfigError),
    /// The two-phase protocol aborted: the prepare quorum (every local
    /// node plus every registered bridged host) was not satisfied — a
    /// member stayed silent past the ack timeout, or vetoed the prepare.
    /// The old configuration stays in force everywhere.
    Aborted {
        /// Why the swap was abandoned.
        reason: ReconfigAbortReason,
        /// Quorum members (local nodes + remote hosts) that acked in time.
        acked: usize,
        /// Quorum members expected to ack.
        expected: usize,
    },
    /// The system is shutting down.
    Closed,
}

impl fmt::Display for ReconfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigureError::InvalidConfig(e) => write!(f, "{e}"),
            ReconfigureError::Aborted { reason, acked, expected } => write!(
                f,
                "reconfiguration aborted ({reason}): {acked} of {expected} quorum members \
                 acknowledged the prepare phase"
            ),
            ReconfigureError::Closed => f.write_str("system is shut down"),
        }
    }
}

impl std::error::Error for ReconfigureError {}

/// Outcome of one completed [`System::reconfigure`] call — the transition
/// cost of the swap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigReport {
    /// The protocol epoch of this swap.
    pub epoch: u64,
    /// What the admission-state handover did (entries carried,
    /// reservations drained/reseeded, ...).
    pub handover: HandoverReport,
    /// Reconfigure request at the AC → commit published.
    pub swap_latency: Duration,
    /// Admission decisions deferred during the prepare window and decided
    /// under the new configuration after commit.
    pub decisions_deferred: u64,
    /// Jobs somewhere between arrival and completion at the commit point —
    /// all carried across the swap with their guarantees intact.
    pub jobs_in_flight: i64,
    /// Local nodes that acknowledged the prepare phase (always all of them
    /// for a committed swap).
    pub acked_nodes: usize,
    /// Registered bridged hosts that acknowledged the prepare phase
    /// (always all of them for a committed swap).
    pub acked_remote: usize,
}

impl fmt::Display for ReconfigReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "swap #{} ({}) in {}: {} decisions deferred, {} jobs in flight",
            self.epoch,
            self.handover,
            self.swap_latency,
            self.decisions_deferred,
            self.jobs_in_flight
        )
    }
}

/// A running middleware system.
///
/// # Examples
///
/// ```
/// use rtcm_config::{configure, CpsCharacteristics, WorkloadSpec};
/// use rtcm_rt::{RtOptions, System};
/// use rtcm_core::task::TaskId;
///
/// let spec = WorkloadSpec::parse(
///     "workload demo\nprocessors 2\n\
///      task scan periodic period=50ms\n  subtask exec=1ms proc=0 replicas=1\n",
/// )?;
/// let deployment = configure(&spec, &CpsCharacteristics::default())?;
/// let system = System::launch(&deployment, RtOptions::fast())?;
///
/// system.submit(TaskId(0), 0)?;
/// assert!(system.quiesce(std::time::Duration::from_secs(5)));
/// let report = system.shutdown();
/// assert_eq!(report.jobs_completed, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct System {
    tasks: Arc<TaskSet>,
    swap: SwapClient,
    stats: Arc<SharedStats>,
    clock: Clock,
    federation: Federation,
    remote_voters: Arc<Mutex<HashSet<u64>>>,
    /// One channel handle per application processor: `submit` publishes
    /// injected arrivals on the processor's reserved inject topic, and
    /// shutdown publishes its control topic — launcher↔node traffic rides
    /// the same event fast path as everything else.
    node_handles: Vec<ChannelHandle>,
    mgr_shutdown: Sender<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// The reconfiguration endpoint shared by [`System::reconfigure`] and the
/// governor thread: the cached active configuration (whose lock doubles as
/// the caller-serialization token) plus the manager control channel.
#[derive(Clone)]
pub(crate) struct SwapClient {
    services: Arc<Mutex<ServiceConfig>>,
    mgr_ctl: Sender<ManagerCtl>,
    /// Publishes `topics::MANAGER_WAKE` after every control-channel send,
    /// so the manager parks on its mailbox instead of polling.
    wake: ChannelHandle,
}

impl SwapClient {
    /// The active configuration.
    pub(crate) fn services(&self) -> ServiceConfig {
        *self.services.lock()
    }

    /// Runs the two-phase protocol with the services lock held (concurrent
    /// reconfigurers — callers and the governor — queue here, so the
    /// cached value can never lag the manager's configuration).
    pub(crate) fn reconfigure(
        &self,
        target: ServiceConfig,
    ) -> Result<ReconfigReport, ReconfigureError> {
        let mut services = self.services.lock();
        self.run_swap(&mut services, target)
    }

    /// Asks the manager for fresh `(aub_slack, imbalance)` gauges (the
    /// manager expires the current set first, so an idle system's gauges
    /// still track entry expiry). `Err` once the system has shut down;
    /// `Ok(None)` if the manager is tied up past `timeout` (e.g.
    /// mid-prepare) — the caller keeps its previous gauges for that
    /// window.
    pub(crate) fn sense_gauges(
        &self,
        timeout: StdDuration,
    ) -> Result<Option<(f64, f64)>, ReconfigureError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.mgr_ctl
            .send(ManagerCtl::SenseGauges { reply: reply_tx })
            .map_err(|_| ReconfigureError::Closed)?;
        self.kick();
        Ok(reply_rx.recv_timeout(timeout).ok())
    }

    /// Wakes the manager's mailbox after a control-channel send.
    fn kick(&self) {
        let _ = self.wake.publish(topics::MANAGER_WAKE, &b""[..]);
    }

    /// The channel handle control-plane threads (the governor) subscribe
    /// and publish their wake kicks on.
    pub(crate) fn ctl_channel(&self) -> &ChannelHandle {
        &self.wake
    }

    /// Validation (and its abort-reason accounting) lives in exactly one
    /// place: the manager, which every reconfigure path funnels through.
    fn run_swap(
        &self,
        services: &mut ServiceConfig,
        target: ServiceConfig,
    ) -> Result<ReconfigReport, ReconfigureError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.mgr_ctl
            .send(ManagerCtl::Reconfigure { target, reply: reply_tx })
            .map_err(|_| ReconfigureError::Closed)?;
        self.kick();
        let report = reply_rx.recv().map_err(|_| ReconfigureError::Closed)??;
        *services = target;
        Ok(report)
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("services", &self.swap.services().label())
            .field("processors", &self.node_handles.len())
            .finish()
    }
}

impl System {
    /// Launches all nodes of `deployment` (the runtime half of DAnCE's
    /// plan-launcher → node-application pipeline).
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::InvalidConfig`] if the deployment's strategy
    /// combination is invalid — impossible for deployments built by
    /// `rtcm-config`, which validates first.
    pub fn launch(deployment: &Deployment, options: RtOptions) -> Result<Self, LaunchError> {
        let procs = deployment.processors;
        let tasks = Arc::new(deployment.tasks.clone());
        let priorities: Arc<HashMap<TaskId, Priority>> = Arc::new(deployment.priorities.clone());
        let services = deployment.services;
        let ac =
            ShardedAdmissionController::new(services, procs as usize, options.admission_shards)
                .map_err(LaunchError::InvalidConfig)?;

        let clock = Clock::new();
        let stats = SharedStats::with_trace_sampling(options.trace_sample_every);
        // Node 0 is the task manager; app processor p is node p + 1.
        let federation = Federation::new(procs + 1, options.latency, options.seed);

        let mut handles = Vec::with_capacity(procs as usize + 1);

        let (mgr_shutdown_tx, mgr_shutdown_rx) = unbounded();
        let (mgr_ctl_tx, mgr_ctl_rx) = unbounded();
        let remote_voters: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
        // Subscribe every consumer on this thread, before any node runs, so
        // no early publication can be dropped for lack of subscribers.
        let mgr_channel = federation.handle(NodeId(0)).expect("node 0 exists");
        let mgr_mailbox = mgr_channel.subscribe_many(&[
            topics::TASK_ARRIVE,
            topics::IDLE_RESET,
            topics::RECONFIG_ACK,
            topics::MANAGER_WAKE,
        ]);
        let mgr_wake = mgr_channel.clone();
        let mgr_cfg = ManagerConfig {
            ac,
            tasks: Arc::clone(&tasks),
            channel: mgr_channel,
            clock,
            stats: Arc::clone(&stats),
            processors: procs,
            ack_timeout: options.reconfig_ack_timeout,
            remote_voters: Arc::clone(&remote_voters),
            shutdown_rx: mgr_shutdown_rx,
            ctl_rx: mgr_ctl_rx,
            mailbox: mgr_mailbox,
        };
        handles.push(
            std::thread::Builder::new()
                .name("rtcm-manager".into())
                .spawn(move || run_manager(mgr_cfg))
                .expect("spawn manager thread"),
        );

        let mut node_handles = Vec::with_capacity(procs as usize);
        for p in 0..procs {
            let channel = federation.handle(NodeId(p + 1)).expect("app nodes exist");
            let mailbox = channel.subscribe_many(&[
                topics::ACCEPT,
                topics::REJECT,
                topics::TRIGGER,
                topics::RECONFIG,
                topics::inject(p),
                topics::node_ctl(p),
            ]);
            node_handles.push(channel.clone());
            let cfg = NodeConfig {
                processor: p,
                services,
                tasks: Arc::clone(&tasks),
                priorities: Arc::clone(&priorities),
                channel,
                clock,
                stats: Arc::clone(&stats),
                exec: options.exec,
                slice: options.slice,
                mailbox,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rtcm-app-{p}"))
                    .spawn(move || run_node(cfg))
                    .expect("spawn node thread"),
            );
        }

        Ok(System {
            tasks,
            swap: SwapClient {
                services: Arc::new(Mutex::new(services)),
                mgr_ctl: mgr_ctl_tx,
                wake: mgr_wake,
            },
            stats,
            clock,
            federation,
            remote_voters,
            node_handles,
            mgr_shutdown: mgr_shutdown_tx,
            handles,
        })
    }

    /// The active strategy combination (reflects runtime reconfiguration).
    #[must_use]
    pub fn services(&self) -> ServiceConfig {
        self.swap.services()
    }

    /// Hot-swaps the **full service configuration** of the running system
    /// — the paper's §5 run-time attribute modification generalized from
    /// the IR axis to all three — via a quiesce-free two-phase protocol
    /// over the federated event channel (see DESIGN.md "Live
    /// reconfiguration"):
    ///
    /// 1. **Prepare**: the AC publishes a fence on `topics::RECONFIG`;
    ///    every node disables its task-effector fast path and acks.
    ///    Arrivals keep flowing (they are deferred at the AC), running
    ///    subjobs keep executing — nothing quiesces.
    /// 2. **Commit**: once all nodes acked, the admission controller
    ///    executes the ledger handover (reservations drained/reseeded,
    ///    every admitted job's contributions — and guarantee — carried),
    ///    the commit is published, nodes adopt the new configuration, and
    ///    deferred decisions are made under it.
    ///
    /// If a quorum member fails to ack within
    /// `RtOptions::reconfig_ack_timeout` (or vetoes the prepare), the swap
    /// **aborts**: an abort event lifts the fences, the old configuration
    /// stays in force everywhere, and [`ReconfigureError::Aborted`] is
    /// returned with the reason — there is no partially applied state.
    ///
    /// Bridging `topics::RECONFIG` through a TCP gateway
    /// (`rtcm_events::remote`) makes the swap observable on remote
    /// federations, the paper's multi-host testbed topology. Bridging
    /// `topics::RECONFIG_ACK` *back* and registering the remote host via
    /// [`System::register_remote_voter`] upgrades that host from observer
    /// to **voting prepare-quorum member** (see `rtcm_rt::quorum`): its
    /// ack becomes required for commit, and withholding it aborts the
    /// swap with [`ReconfigAbortReason::AckTimeout`].
    ///
    /// # Errors
    ///
    /// [`ReconfigureError::InvalidConfig`] for §4.5-invalid targets
    /// (checked before anything is touched),
    /// [`ReconfigureError::Aborted`] for aborted swaps,
    /// [`ReconfigureError::Closed`] after shutdown began.
    pub fn reconfigure(&self, target: ServiceConfig) -> Result<ReconfigReport, ReconfigureError> {
        self.swap.reconfigure(target)
    }

    /// Hot-swaps only the idle-resetting strategy — a thin wrapper over
    /// the same protocol kept for the common single-axis case. The target
    /// is derived from the current configuration *under the services
    /// lock*, so a concurrent [`System::reconfigure`] can never be
    /// silently reverted by a stale read-modify-write. The §4.5 validity
    /// rule still applies: switching to IR-per-job under per-task
    /// admission control is refused.
    ///
    /// # Errors
    ///
    /// As [`System::reconfigure`] — in particular, a swap no node
    /// acknowledged reports [`ReconfigureError::Aborted`] instead of
    /// silently half-applying.
    pub fn reconfigure_ir(
        &self,
        ir: rtcm_core::strategy::IrStrategy,
    ) -> Result<ServiceConfig, ReconfigureError> {
        let mut services = self.swap.services.lock();
        let target = ServiceConfig::new(services.ac, ir, services.lb);
        self.swap.run_swap(&mut services, target)?;
        Ok(target)
    }

    /// Attaches an **adaptation governor**: a background task that closes
    /// the sensing → policy → actuation loop every `window` by sampling
    /// this system's report (accepted ratio, AUB slack, idle-reset and
    /// deferral counters, per-processor imbalance — all maintained
    /// incrementally on paths the runtime takes anyway), evaluating
    /// `policy`, and actuating decisions through the same two-phase
    /// protocol as [`System::reconfigure`]. The governor and manual
    /// reconfigurers serialize on the same lock, so they can coexist.
    ///
    /// The returned [`GovernorHandle`] logs every decision with its
    /// outcome; dropping it (or calling [`GovernorHandle::stop`]) detaches
    /// the governor. The governor survives nothing it shouldn't: once the
    /// system shuts down, its next actuation observes `Closed` and the
    /// thread exits.
    ///
    /// # Errors
    ///
    /// Returns [`rtcm_core::govern::PolicyError`] for unusable policies
    /// (invalid targets, zero hysteresis, non-finite thresholds).
    pub fn spawn_governor(
        &self,
        policy: GovernorPolicy,
        window: StdDuration,
    ) -> Result<GovernorHandle, rtcm_core::govern::PolicyError> {
        spawn_governor_thread(
            policy,
            window,
            Arc::clone(&self.stats),
            self.swap.clone(),
            self.clock,
        )
    }

    /// Registers a TCP-bridged federation (by its `Federation::host_id`)
    /// as a **required voting member** of every subsequent
    /// reconfiguration's prepare quorum. The bridge must forward
    /// `topics::RECONFIG` out and `topics::RECONFIG_ACK` back, and the
    /// remote side must run a `rtcm_rt::quorum::QuorumMember` (or a full
    /// system's equivalent) to cast the vote. A swap already in its
    /// prepare window keeps the voter set it started with.
    ///
    /// # Panics
    ///
    /// Panics if `host` is this system's own host id: local nodes already
    /// vote under it (and a same-federation `QuorumMember` ignores
    /// own-host prepares), so registering it could never be satisfied and
    /// would wedge every subsequent swap into an ack-timeout abort.
    pub fn register_remote_voter(&self, host: u64) {
        assert_ne!(
            host,
            self.host_id(),
            "register_remote_voter takes a *remote* federation's host id; this system's own \
             nodes already vote under {host}"
        );
        self.remote_voters.lock().insert(host);
    }

    /// Removes a bridged federation from the prepare quorum (e.g. after a
    /// planned partition). Unknown ids are ignored.
    pub fn deregister_remote_voter(&self, host: u64) {
        self.remote_voters.lock().remove(&host);
    }

    /// Registered remote voting hosts.
    #[must_use]
    pub fn remote_voter_count(&self) -> usize {
        self.remote_voters.lock().len()
    }

    /// This system's federation host identity (convenience for wiring
    /// cross-host quorums).
    #[must_use]
    pub fn host_id(&self) -> u64 {
        self.federation.host_id()
    }

    /// The federated event channel this system runs on. Exposed so callers
    /// can bridge topics (e.g. `topics::RECONFIG`) to other hosts over TCP
    /// via `rtcm_events::remote`.
    #[must_use]
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// The deployed task set.
    #[must_use]
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// The shared runtime clock.
    #[must_use]
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Injects job `seq` of `task` at the task effector of its arrival
    /// processor (its first subtask's primary).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownTask`] if the task is not deployed;
    /// [`SubmitError::Closed`] after shutdown began.
    pub fn submit(&self, task: TaskId, seq: u64) -> Result<(), SubmitError> {
        let spec = self.tasks.get(task).ok_or(SubmitError::UnknownTask { task })?;
        let proc = spec.subtasks()[0].primary.index();
        let handle = self.node_handles.get(proc).ok_or(SubmitError::Closed)?;
        // Count the job in *before* handing it to the node thread so that
        // quiesce() cannot observe a spuriously empty system.
        self.stats.job_in();
        // One deterministic trace id follows the job through every stage
        // (arrival, admission, release, completion) on every host.
        let msg = proto::InjectMsg {
            task,
            seq,
            trace: proto::mint_trace(self.federation.host_id(), task, seq),
        };
        // Delivered count 0 means the node's mailbox is gone (thread
        // exited): the system is shutting down.
        if handle.publish(topics::inject(proc as u16), proto::encode(&msg)) > 0 {
            Ok(())
        } else {
            self.stats.job_out();
            Err(SubmitError::Closed)
        }
    }

    /// Replays an arrival trace against wall-clock time, sped up by
    /// `speed` (1.0 = real time, 10.0 = ten times faster). Blocks until the
    /// last arrival has been submitted; call [`System::quiesce`] afterwards
    /// to wait for completions.
    ///
    /// Note that speeding up a trace compresses interarrival gaps but not
    /// execution times or deadlines, so high speed factors overload the
    /// system — useful deliberately, e.g. for stress tests.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SubmitError`]; already-submitted arrivals
    /// keep running.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    pub fn replay(
        &self,
        trace: &rtcm_workload::ArrivalTrace,
        speed: f64,
    ) -> Result<(), SubmitError> {
        assert!(speed.is_finite() && speed > 0.0, "replay speed must be positive");
        let start = Instant::now();
        for arrival in trace.iter() {
            let due = StdDuration::from_nanos(replay_due_ns(arrival.time.as_nanos(), speed));
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            self.submit(arrival.task, arrival.seq)?;
        }
        Ok(())
    }

    /// Jobs currently between arrival and completion/rejection.
    #[must_use]
    pub fn in_flight(&self) -> i64 {
        self.stats.in_flight()
    }

    /// Waits until no jobs are in flight. Returns false on timeout.
    ///
    /// This blocks on the drained-notification from the last completing
    /// job (no polling): the caller wakes *at* the completion, not up to a
    /// poll period later.
    #[must_use]
    pub fn quiesce(&self, timeout: StdDuration) -> bool {
        self.stats.wait_quiet(timeout)
    }

    /// Snapshot of the statistics so far, with the federation's
    /// event-path counters (publishes, fan-out deliveries, backpressure
    /// drops, remote parcels, bridge errors/disconnects) merged in.
    #[must_use]
    pub fn stats(&self) -> SystemReport {
        self.merged_report()
    }

    /// The live telemetry plane: the lock-free counters, gauges and
    /// histograms the hot paths record into, plus the job trace buffer.
    /// Reading them never touches the report mutex.
    #[must_use]
    pub fn telemetry(&self) -> &RtMetrics {
        self.stats.metrics()
    }

    /// Mounts the OAM scrape endpoint on `addr` (port 0 for an
    /// OS-assigned port): `GET /metrics` serves the Prometheus-style text
    /// exposition of the full merged report — registry metrics plus
    /// federation event-path counters — and `GET /trace` serves the job
    /// tracer's JSON-lines dump. The endpoint outlives this system
    /// gracefully: scrapes after shutdown serve the final counters.
    ///
    /// # Errors
    ///
    /// I/O errors from binding `addr`.
    pub fn serve_oam(&self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<OamServer> {
        self.stats.metrics().registry().set_build_info(vec![
            ("version".to_string(), env!("CARGO_PKG_VERSION").to_string()),
            ("config".to_string(), self.services().label()),
            ("host".to_string(), self.host_id().to_string()),
        ]);
        let stats = Arc::clone(&self.stats);
        let channel = self.swap.wake.clone();
        let trace_stats = Arc::clone(&self.stats);
        OamServer::start(
            addr,
            OamRoutes {
                metrics: Arc::new(move || {
                    let mut report = stats.snapshot();
                    fold_federation(&mut report, &channel.federation_stats());
                    stats.render_exposition(&report)
                }),
                trace: Arc::new(move || trace_stats.metrics().trace.dump_json_lines()),
            },
        )
    }

    /// Stops all node threads and returns the final report.
    #[must_use]
    pub fn shutdown(mut self) -> SystemReport {
        self.stop_threads();
        self.merged_report()
    }

    fn merged_report(&self) -> SystemReport {
        let mut report = self.stats.snapshot();
        fold_federation(&mut report, &self.federation.stats());
        report
    }

    fn stop_threads(&mut self) {
        let _ = self.mgr_shutdown.send(());
        self.swap.kick();
        for (p, handle) in self.node_handles.iter().enumerate() {
            let _ = handle.publish(topics::node_ctl(p as u16), &b""[..]);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for System {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Merges the federation's event-path counters into a report snapshot.
fn fold_federation(report: &mut SystemReport, events: &FederationStats) {
    report.events_published = events.events_published;
    report.events_delivered = events.local_deliveries;
    report.events_dropped = events.events_dropped;
    report.remote_parcels = events.remote_parcels;
    report.bridge_rx_errors = events.bridge_rx_errors;
    report.bridge_disconnects = events.bridge_disconnects;
    report.bridge_tx_dropped = events.bridge_tx_dropped;
}

/// Scaled due time for a replayed arrival: `nanos / speed` in u128 integer
/// math. The speed factor is held as the rational `num / 1e9`, so every
/// nanosecond timestamp divides exactly — the old `as f64 / speed` path
/// lost nanosecond precision above 2^53 ns (~104 days of trace time) and
/// let long-trace arrival schedules drift.
fn replay_due_ns(nanos: u64, speed: f64) -> u64 {
    const SCALE: u128 = 1_000_000_000;
    // speed > 0 is asserted by the caller; max(1) guards sub-1e-9 factors.
    let num = ((speed * SCALE as f64).round() as u128).max(1);
    let due = (u128::from(nanos) * SCALE + num / 2) / num;
    u64::try_from(due).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::replay_due_ns;

    #[test]
    fn replay_due_matches_plain_division_at_small_scales() {
        assert_eq!(replay_due_ns(1_000, 10.0), 100);
        assert_eq!(replay_due_ns(1_000, 0.5), 2_000);
        assert_eq!(replay_due_ns(999, 1.0), 999);
        assert_eq!(replay_due_ns(0, 3.0), 0);
    }

    #[test]
    fn replay_due_is_exact_beyond_f64_precision() {
        // 2^60 + 12345 ns ≈ 36 years of trace time. f64 has a 53-bit
        // mantissa, so the old float path quantized this to a multiple of
        // 128 ns; integer math must not.
        let t = (1u64 << 60) + 12_345;
        assert_eq!(replay_due_ns(t, 1.0), t);
        let drifted = (t as f64 / 1.0).round() as u64;
        assert_ne!(drifted, t, "float path demonstrably drifts at this scale");
    }

    #[test]
    fn replay_due_keeps_large_interarrival_gaps_distinct() {
        // Two arrivals 10 ns apart at a large offset must stay distinct
        // and ordered after scaling — the float path collapsed them.
        let base = (1u64 << 59) + 7;
        let a = replay_due_ns(base, 2.0);
        let b = replay_due_ns(base + 10, 2.0);
        assert_eq!(b - a, 5);
    }

    #[test]
    fn replay_due_saturates_rather_than_wrapping() {
        assert_eq!(replay_due_ns(u64::MAX, 1e-9), u64::MAX);
    }
}
