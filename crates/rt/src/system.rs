//! The runtime system: the DAnCE-style launcher that turns a
//! [`Deployment`] into running threads — one task-manager node plus one
//! node per application processor, wired by the federated event channel.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{unbounded, Sender};

use rtcm_config::Deployment;
use rtcm_core::admission::AdmissionController;
use rtcm_core::priority::Priority;
use rtcm_core::strategy::{InvalidConfigError, ServiceConfig};
use rtcm_core::task::{TaskId, TaskSet};
use rtcm_events::{Federation, Latency, NodeId};

use crate::clock::Clock;
use crate::manager::{run_manager, ManagerConfig};
use crate::node::{inject, run_node, ExecMode, Injected, NodeConfig, NodeCtl};
use crate::stats::{SharedStats, SystemReport};

/// Runtime options.
#[derive(Debug, Clone, Copy)]
pub struct RtOptions {
    /// One-way network latency between nodes. Defaults to the paper's
    /// measured 283–361 µs band.
    pub latency: Latency,
    /// How subtask execution consumes time.
    pub exec: ExecMode,
    /// Dispatcher slice length (preemption granularity).
    pub slice: StdDuration,
    /// Seed for latency jitter.
    pub seed: u64,
}

impl Default for RtOptions {
    fn default() -> Self {
        RtOptions {
            latency: Latency::Uniform {
                lo: StdDuration::from_micros(283),
                hi: StdDuration::from_micros(361),
            },
            exec: ExecMode::Sleep,
            slice: StdDuration::from_micros(200),
            seed: 0,
        }
    }
}

impl RtOptions {
    /// Options for control-plane tests: no network latency, instant
    /// execution.
    #[must_use]
    pub fn fast() -> Self {
        RtOptions { latency: Latency::None, exec: ExecMode::Noop, ..RtOptions::default() }
    }
}

/// Errors from [`System::launch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The deployment carries an invalid strategy combination (cannot occur
    /// for engine-built deployments).
    InvalidConfig(InvalidConfigError),
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::InvalidConfig(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Errors from [`System::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The task is not part of the deployment.
    UnknownTask {
        /// The offending id.
        task: TaskId,
    },
    /// The system is shutting down.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownTask { task } => write!(f, "unknown task {task}"),
            SubmitError::Closed => f.write_str("system is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A running middleware system.
///
/// # Examples
///
/// ```
/// use rtcm_config::{configure, CpsCharacteristics, WorkloadSpec};
/// use rtcm_rt::{RtOptions, System};
/// use rtcm_core::task::TaskId;
///
/// let spec = WorkloadSpec::parse(
///     "workload demo\nprocessors 2\n\
///      task scan periodic period=50ms\n  subtask exec=1ms proc=0 replicas=1\n",
/// )?;
/// let deployment = configure(&spec, &CpsCharacteristics::default())?;
/// let system = System::launch(&deployment, RtOptions::fast())?;
///
/// system.submit(TaskId(0), 0)?;
/// assert!(system.quiesce(std::time::Duration::from_secs(5)));
/// let report = system.shutdown();
/// assert_eq!(report.jobs_completed, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct System {
    tasks: Arc<TaskSet>,
    services: parking_lot::Mutex<ServiceConfig>,
    stats: Arc<SharedStats>,
    clock: Clock,
    _federation: Federation,
    injectors: Vec<Sender<Injected>>,
    mgr_shutdown: Sender<()>,
    node_ctls: Vec<Sender<NodeCtl>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("services", &self.services.lock().label())
            .field("processors", &self.injectors.len())
            .finish()
    }
}

impl System {
    /// Launches all nodes of `deployment` (the runtime half of DAnCE's
    /// plan-launcher → node-application pipeline).
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::InvalidConfig`] if the deployment's strategy
    /// combination is invalid — impossible for deployments built by
    /// `rtcm-config`, which validates first.
    pub fn launch(deployment: &Deployment, options: RtOptions) -> Result<Self, LaunchError> {
        let procs = deployment.processors;
        let tasks = Arc::new(deployment.tasks.clone());
        let priorities: Arc<HashMap<TaskId, Priority>> = Arc::new(deployment.priorities.clone());
        let services = deployment.services;
        let ac = AdmissionController::new(services, procs as usize)
            .map_err(LaunchError::InvalidConfig)?;

        let clock = Clock::new();
        let stats = SharedStats::new();
        // Node 0 is the task manager; app processor p is node p + 1.
        let federation = Federation::new(procs + 1, options.latency, options.seed);

        let mut node_ctls = Vec::with_capacity(procs as usize);
        let mut handles = Vec::with_capacity(procs as usize + 1);

        let (mgr_shutdown_tx, mgr_shutdown_rx) = unbounded();
        // Subscribe every consumer on this thread, before any node runs, so
        // no early publication can be dropped for lack of subscribers.
        let mgr_channel = federation.handle(NodeId(0)).expect("node 0 exists");
        let mgr_arrive_rx = mgr_channel.subscribe(rtcm_events::topics::TASK_ARRIVE);
        let mgr_reset_rx = mgr_channel.subscribe(rtcm_events::topics::IDLE_RESET);
        let mgr_cfg = ManagerConfig {
            ac,
            tasks: Arc::clone(&tasks),
            channel: mgr_channel,
            clock,
            stats: Arc::clone(&stats),
            shutdown_rx: mgr_shutdown_rx,
            arrive_rx: mgr_arrive_rx,
            reset_rx: mgr_reset_rx,
        };
        handles.push(
            std::thread::Builder::new()
                .name("rtcm-manager".into())
                .spawn(move || run_manager(mgr_cfg))
                .expect("spawn manager thread"),
        );

        let mut injectors = Vec::with_capacity(procs as usize);
        for p in 0..procs {
            let (inject_tx, inject_rx) = unbounded();
            let (ctl_tx, ctl_rx) = unbounded();
            injectors.push(inject_tx);
            node_ctls.push(ctl_tx);
            let channel = federation.handle(NodeId(p + 1)).expect("app nodes exist");
            let accept_rx = channel.subscribe(rtcm_events::topics::ACCEPT);
            let reject_rx = channel.subscribe(rtcm_events::topics::REJECT);
            let trigger_rx = channel.subscribe(rtcm_events::topics::TRIGGER);
            let cfg = NodeConfig {
                processor: p,
                services,
                tasks: Arc::clone(&tasks),
                priorities: Arc::clone(&priorities),
                channel,
                clock,
                stats: Arc::clone(&stats),
                exec: options.exec,
                slice: options.slice,
                inject_rx,
                ctl_rx,
                accept_rx,
                reject_rx,
                trigger_rx,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rtcm-app-{p}"))
                    .spawn(move || run_node(cfg))
                    .expect("spawn node thread"),
            );
        }

        Ok(System {
            tasks,
            services: parking_lot::Mutex::new(services),
            stats,
            clock,
            _federation: federation,
            injectors,
            mgr_shutdown: mgr_shutdown_tx,
            node_ctls,
            handles,
        })
    }

    /// The active strategy combination (reflects runtime reconfiguration).
    #[must_use]
    pub fn services(&self) -> ServiceConfig {
        *self.services.lock()
    }

    /// Hot-swaps the idle-resetting strategy on every application
    /// processor — the paper's run-time attribute modification (§5). The
    /// §4.5 validity rule still applies: switching to IR-per-job under
    /// per-task admission control is refused.
    ///
    /// Note: the admission controller's ledger semantics are unaffected —
    /// IR only changes *which completions are reported*, so a swap is safe
    /// mid-flight; completions recorded under the old strategy may still be
    /// reported once.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] if the resulting combination would be
    /// invalid.
    pub fn reconfigure_ir(
        &self,
        ir: rtcm_core::strategy::IrStrategy,
    ) -> Result<ServiceConfig, InvalidConfigError> {
        let mut services = self.services.lock();
        let candidate = ServiceConfig::new(services.ac, ir, services.lb);
        candidate.validate()?;
        for ctl in &self.node_ctls {
            let _ = ctl.send(NodeCtl::SetIr(ir));
        }
        *services = candidate;
        Ok(candidate)
    }

    /// The deployed task set.
    #[must_use]
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// The shared runtime clock.
    #[must_use]
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Injects job `seq` of `task` at the task effector of its arrival
    /// processor (its first subtask's primary).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownTask`] if the task is not deployed;
    /// [`SubmitError::Closed`] after shutdown began.
    pub fn submit(&self, task: TaskId, seq: u64) -> Result<(), SubmitError> {
        let spec = self.tasks.get(task).ok_or(SubmitError::UnknownTask { task })?;
        let proc = spec.subtasks()[0].primary.index();
        let tx = self.injectors.get(proc).ok_or(SubmitError::Closed)?;
        // Count the job in *before* handing it to the node thread so that
        // quiesce() cannot observe a spuriously empty system.
        self.stats.job_in();
        if inject(tx, task, seq) {
            Ok(())
        } else {
            self.stats.job_out();
            Err(SubmitError::Closed)
        }
    }

    /// Replays an arrival trace against wall-clock time, sped up by
    /// `speed` (1.0 = real time, 10.0 = ten times faster). Blocks until the
    /// last arrival has been submitted; call [`System::quiesce`] afterwards
    /// to wait for completions.
    ///
    /// Note that speeding up a trace compresses interarrival gaps but not
    /// execution times or deadlines, so high speed factors overload the
    /// system — useful deliberately, e.g. for stress tests.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SubmitError`]; already-submitted arrivals
    /// keep running.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    pub fn replay(
        &self,
        trace: &rtcm_workload::ArrivalTrace,
        speed: f64,
    ) -> Result<(), SubmitError> {
        assert!(speed.is_finite() && speed > 0.0, "replay speed must be positive");
        let start = Instant::now();
        for arrival in trace.iter() {
            let due =
                StdDuration::from_nanos((arrival.time.as_nanos() as f64 / speed).round() as u64);
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            self.submit(arrival.task, arrival.seq)?;
        }
        Ok(())
    }

    /// Jobs currently between arrival and completion/rejection.
    #[must_use]
    pub fn in_flight(&self) -> i64 {
        self.stats.in_flight()
    }

    /// Waits until no jobs are in flight, polling every millisecond.
    /// Returns false on timeout.
    #[must_use]
    pub fn quiesce(&self, timeout: StdDuration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.stats.in_flight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(StdDuration::from_millis(1));
        }
        true
    }

    /// Snapshot of the statistics so far.
    #[must_use]
    pub fn stats(&self) -> SystemReport {
        self.stats.snapshot()
    }

    /// Stops all node threads and returns the final report.
    #[must_use]
    pub fn shutdown(mut self) -> SystemReport {
        self.stop_threads();
        self.stats.snapshot()
    }

    fn stop_threads(&mut self) {
        let _ = self.mgr_shutdown.send(());
        for ctl in &self.node_ctls {
            let _ = ctl.send(NodeCtl::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for System {
    fn drop(&mut self) {
        self.stop_threads();
    }
}
