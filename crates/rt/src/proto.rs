//! Wire messages exchanged over the federated event channel, mirroring the
//! event payloads of Figure 3 ("Task Arrive", "Accept", "Trigger", "Idle
//! Resetting").
//!
//! Payloads are serialized with `serde_json`: human-readable in traces and
//! cheap at the message rates of a control plane (admission decisions, not
//! data). Timestamps ride along as nanoseconds on the shared
//! [`crate::clock::Clock`] axis so receivers can measure one-way delays.

use serde::{Deserialize, Serialize};

use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{JobId, TaskId};

/// Launcher → TE: an arrival injected by `System::submit`. Rides the
/// federated event channel on the arrival processor's reserved
/// `topics::inject` topic, so submissions take the same fast path (and
/// the same mailbox wakeup) as every other middleware event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectMsg {
    /// The arriving task.
    pub task: TaskId,
    /// Job sequence number.
    pub seq: u64,
    /// Trace correlation id, minted at submission (`splitmix64` over host,
    /// task and sequence) and carried through every downstream protocol
    /// message — including bridged wire frames — so one job's lifecycle
    /// correlates across hosts in the OAM trace dump.
    pub trace: u64,
}

/// TE → AC: a held task awaiting an admission decision (op 1 → op 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArriveMsg {
    /// The arriving job.
    pub job: JobId,
    /// Processor the job arrived on (where its TE holds it).
    pub arrival_proc: u16,
    /// Arrival instant (clock ns).
    pub arrival_ns: u64,
    /// When the TE finished holding and published this event (clock ns).
    pub sent_ns: u64,
    /// Trace correlation id (see [`InjectMsg::trace`]).
    pub trace: u64,
}

/// AC → TE: release the job under the given placement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptMsg {
    /// The admitted job.
    pub job: JobId,
    /// Placement: processor per subtask.
    pub assignment: Vec<u16>,
    /// Processor whose TE must perform the release (first stage).
    pub release_proc: u16,
    /// Original arrival instant (clock ns), for end-to-end accounting.
    pub arrival_ns: u64,
    /// Absolute deadline (clock ns).
    pub deadline_ns: u64,
    /// True if this decision came from a fresh admission test (as opposed
    /// to a per-task reservation pass-through).
    pub newly_admitted: bool,
    /// When the AC published this event (clock ns).
    pub sent_ns: u64,
    /// Trace correlation id (see [`InjectMsg::trace`]).
    pub trace: u64,
}

/// AC → TE: drop the held job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectMsg {
    /// The rejected job.
    pub job: JobId,
    /// Processor whose TE holds the job.
    pub arrival_proc: u16,
    /// True if the whole (periodic, per-task) task is now rejected.
    pub task_rejected: bool,
    /// Trace correlation id (see [`InjectMsg::trace`]).
    pub trace: u64,
}

/// F/I subtask → next subtask component: start the next stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggerMsg {
    /// The in-flight job.
    pub job: JobId,
    /// Index of the stage to start.
    pub next_subtask: u32,
    /// Full placement, so downstream stages can route further triggers.
    pub assignment: Vec<u16>,
    /// Original arrival instant (clock ns).
    pub arrival_ns: u64,
    /// Absolute deadline (clock ns).
    pub deadline_ns: u64,
    /// When the previous stage published this event (clock ns).
    pub sent_ns: u64,
    /// Trace correlation id (see [`InjectMsg::trace`]).
    pub trace: u64,
}

/// IR → AC: completed subjobs whose contributions may be removed (op 7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleResetMsg {
    /// The idle processor.
    pub processor: u16,
    /// Completed subjobs as `(job, subtask index)` pairs.
    pub completed: Vec<(JobId, u32)>,
    /// When the idle detector started assembling the report (clock ns).
    pub started_ns: u64,
}

/// Why a two-phase reconfiguration was abandoned. Carried on the wire in
/// [`ReconfigVote::Nack`], surfaced in `ReconfigureError::Aborted`, and
/// accumulated per reason in `SystemReport::reconfig_abort_reasons` so
/// governor-triggered aborts are diagnosable after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReconfigAbortReason {
    /// Not every prepare-quorum member (local node or registered bridged
    /// host) acknowledged before the ack timeout — the partition-safe
    /// default outcome when a remote federation withholds its vote.
    AckTimeout,
    /// The target combination failed the §4.5 validity rule before any
    /// phase was published.
    Validation,
    /// A quorum member refused the prepare because it was already fenced
    /// for a *different* coordinator's in-flight swap.
    ForeignCoordinator,
}

impl std::fmt::Display for ReconfigAbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReconfigAbortReason::AckTimeout => "ack-timeout",
            ReconfigAbortReason::Validation => "validation",
            ReconfigAbortReason::ForeignCoordinator => "foreign-coordinator",
        })
    }
}

/// A prepare-quorum member's vote on a pending reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigVote {
    /// The member fenced its fast paths and accepts the swap.
    Ack,
    /// The member refuses the swap (e.g. it is fenced for a different
    /// coordinator); the coordinator must abort with the given reason.
    Nack(ReconfigAbortReason),
}

/// Phase of the two-phase live-reconfiguration protocol (§5's run-time
/// attribute modification, generalized to the whole `ServiceConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigPhase {
    /// AC → nodes: fence local fast paths (task-effector decision caches)
    /// and acknowledge; execution continues — the protocol is quiesce-free.
    Prepare,
    /// AC → nodes: the ledger handover is done; adopt `services`, clear
    /// decision caches, lift the fence.
    Commit,
    /// AC → nodes: the swap was abandoned (a node never acked); lift the
    /// fence and keep the old configuration.
    Abort,
}

/// AC → all nodes (and, when the topic is bridged, remote hosts): one
/// phase of a live `ServiceConfig` swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigMsg {
    /// Identity of the coordinating manager (unique per manager instance,
    /// process-qualified). Acks echo it so a bridged-in reconfiguration
    /// stream from *another* host's coordinator can never satisfy a local
    /// prepare quorum, and nodes commit only the swap they fenced for.
    pub coordinator: u64,
    /// Host identity of the coordinator's federation
    /// (`Federation::host_id`). Local nodes ignore phases from foreign
    /// hosts entirely — a bridged-in foreign commit can never half-apply —
    /// while bridged quorum members use it to recognize foreign prepares
    /// they must vote on.
    pub host: u64,
    /// Monotone swap epoch within the coordinator; acks echo it so a slow
    /// ack for an abandoned swap can never satisfy a later one.
    pub epoch: u64,
    /// The protocol phase.
    pub phase: ReconfigPhase,
    /// The configuration being entered (the *old* configuration for
    /// [`ReconfigPhase::Abort`]).
    pub services: ServiceConfig,
    /// When the AC published this event (clock ns).
    pub sent_ns: u64,
    /// Trace correlation id for this swap, minted deterministically from
    /// `(coordinator, epoch)` so every phase of one reconfiguration —
    /// including phases bridged to remote hosts — correlates in trace
    /// dumps without any extra wire round-trip.
    pub trace: u64,
}

/// Sentinel processor id used by bridged quorum members (which represent a
/// whole host, not one of the coordinator's application processors), so a
/// remote vote can never alias a local node's ack.
pub const QUORUM_MEMBER_PROC: u16 = u16::MAX;

/// Quorum member → AC: this member's vote on a prepare. Local nodes vote
/// [`ReconfigVote::Ack`] with their own processor id and host; bridged
/// federations vote through a `QuorumMember` carrying *their* host id and
/// [`QUORUM_MEMBER_PROC`]. The coordinator commits only once every local
/// processor **and** every registered remote host has acked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigAckMsg {
    /// The coordinator whose prepare is voted on.
    pub coordinator: u64,
    /// The epoch being voted on.
    pub epoch: u64,
    /// Host identity of the voting federation.
    pub host: u64,
    /// The acknowledging processor ([`QUORUM_MEMBER_PROC`] for bridged
    /// hosts).
    pub processor: u16,
    /// The vote.
    pub vote: ReconfigVote,
    /// When the voter published this message (clock ns on the voter's
    /// clock).
    pub sent_ns: u64,
    /// The swap's trace correlation id, echoed from
    /// [`ReconfigMsg::trace`].
    pub trace: u64,
}

/// Serializes a message for the event channel.
///
/// # Panics
///
/// Never for the message types in this module (plain data).
#[must_use]
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_vec(msg).expect("protocol messages are plain data")
}

/// Deserializes a message from an event payload.
///
/// # Panics
///
/// Panics on malformed payloads — within one process, a decode failure is a
/// programming error, not an I/O condition.
#[must_use]
pub fn decode<T: for<'de> Deserialize<'de>>(payload: &[u8]) -> T {
    serde_json::from_slice(payload).expect("event payloads are produced by this crate")
}

/// Convenience: `JobId` for a `(task, seq)` pair.
#[must_use]
pub fn job(task: u32, seq: u64) -> JobId {
    JobId::new(TaskId(task), seq)
}

/// Mints a job's trace correlation id: a splitmix64 mix of the host
/// identity and the `(task, seq)` pair, so ids are deterministic per job
/// yet never collide across bridged hosts in practice.
#[must_use]
pub fn mint_trace(host: u64, task: TaskId, seq: u64) -> u64 {
    let key = (u64::from(task.0) << 40) ^ seq;
    rtcm_telemetry::splitmix64(rtcm_telemetry::splitmix64(host) ^ key)
}

/// Mints a reconfiguration's trace correlation id from the protocol
/// identity `(coordinator, epoch)`. Deterministic, so a bridged quorum
/// member derives the same id from the prepare it receives.
#[must_use]
pub fn swap_trace(coordinator: u64, epoch: u64) -> u64 {
    rtcm_telemetry::splitmix64(coordinator ^ rtcm_telemetry::splitmix64(epoch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrive_round_trip() {
        let msg =
            ArriveMsg { job: job(3, 7), arrival_proc: 2, arrival_ns: 10, sent_ns: 12, trace: 9 };
        let back: ArriveMsg = decode(&encode(&msg));
        assert_eq!(back, msg);
    }

    #[test]
    fn accept_round_trip() {
        let msg = AcceptMsg {
            job: job(1, 0),
            assignment: vec![0, 2, 1],
            release_proc: 0,
            arrival_ns: 5,
            deadline_ns: 500,
            newly_admitted: true,
            sent_ns: 9,
            trace: 11,
        };
        let back: AcceptMsg = decode(&encode(&msg));
        assert_eq!(back, msg);
    }

    #[test]
    fn trigger_and_reset_round_trip() {
        let t = TriggerMsg {
            job: job(0, 1),
            next_subtask: 2,
            assignment: vec![0, 1, 2],
            arrival_ns: 1,
            deadline_ns: 2,
            sent_ns: 3,
            trace: 4,
        };
        let back: TriggerMsg = decode(&encode(&t));
        assert_eq!(back, t);

        let r = IdleResetMsg {
            processor: 1,
            completed: vec![(job(0, 1), 0), (job(2, 0), 1)],
            started_ns: 42,
        };
        let back: IdleResetMsg = decode(&encode(&r));
        assert_eq!(back, r);
    }

    #[test]
    fn reconfig_round_trip() {
        let msg = ReconfigMsg {
            coordinator: 42,
            host: 7,
            epoch: 3,
            phase: ReconfigPhase::Prepare,
            services: "T_T_J".parse().unwrap(),
            sent_ns: 99,
            trace: swap_trace(42, 3),
        };
        let back: ReconfigMsg = decode(&encode(&msg));
        assert_eq!(back, msg);

        let ack = ReconfigAckMsg {
            coordinator: 42,
            epoch: 3,
            host: 7,
            processor: 1,
            vote: ReconfigVote::Ack,
            sent_ns: 120,
            trace: swap_trace(42, 3),
        };
        let back: ReconfigAckMsg = decode(&encode(&ack));
        assert_eq!(back, ack);

        let nack = ReconfigAckMsg {
            coordinator: 42,
            epoch: 3,
            host: 9,
            processor: QUORUM_MEMBER_PROC,
            vote: ReconfigVote::Nack(ReconfigAbortReason::ForeignCoordinator),
            sent_ns: 130,
            trace: swap_trace(42, 3),
        };
        let back: ReconfigAckMsg = decode(&encode(&nack));
        assert_eq!(back, nack);
        assert_eq!(ReconfigAbortReason::AckTimeout.to_string(), "ack-timeout");
    }

    #[test]
    #[should_panic(expected = "produced by this crate")]
    fn decode_rejects_garbage() {
        let _: ArriveMsg = decode(b"not json");
    }
}
