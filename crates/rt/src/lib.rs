//! # rtcm-rt
//!
//! The threaded middleware runtime of **rtcm**: real threads, real wall
//! clocks, the federated event channel in between — the substitute for the
//! paper's CIAO/TAO deployment on a six-machine testbed, and the substrate
//! on which the Figure 8 overhead table is measured.
//!
//! * [`system::System`] — the DAnCE-style launcher: takes the configuration
//!   engine's [`rtcm_config::Deployment`] and spins up one task-manager
//!   node (admission control + load balancing) plus one node per
//!   application processor (task effector, idle resetter, prioritized
//!   subtask dispatcher);
//! * [`node`] / [`manager`] — the node threads;
//! * [`proto`] — the event payloads ("Task Arrive", "Accept", "Trigger",
//!   "Idle Resetting");
//! * [`stats`] — shared measurement, including per-operation delays
//!   (Figure 7's ops 1–8);
//! * [`clock`] — the shared time axis that makes one-way delays measurable,
//!   plus the [`clock::TimerDriver`] abstraction that lets wall and manual
//!   clocks drive the reactor interchangeably;
//! * [`reactor`] — the event-driven core: a hierarchical timer wheel and
//!   the single blocking wait on `min(next timer, mailbox)` every runtime
//!   thread parks on (zero wakeups when idle);
//! * [`govern`] — the adaptation governor loop (`System::spawn_governor`):
//!   windowed load sensing driving automatic reconfiguration;
//! * [`quorum`] — the voting delegate that makes a TCP-bridged federation
//!   a full reconfiguration prepare-quorum member;
//! * [`quorum_sm`] — the pure coordinator/member state machines of the
//!   two-phase swap protocol, shared verbatim with `rtcm-sim`'s
//!   deterministic federation (time is injected, never read).
//!
//! Scheduling substitution (see DESIGN.md): instead of OS real-time
//! priorities, each node runs a single dispatcher thread executing the
//! most urgent ready subjob in 200 µs slices — quasi-preemptive
//! fixed-priority scheduling with bounded priority-inversion (one slice).
//! Slice boundaries are wheel entries on the reactor, not `thread::sleep`
//! polls, so an idle node performs no timer wakeups at all.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod govern;
pub mod manager;
pub mod node;
pub mod proto;
pub mod quorum;
pub mod quorum_sm;
pub mod reactor;
pub mod stats;
pub mod system;

pub use clock::{Clock, ManualClock, TimerDriver};
pub use govern::{GovernorEvent, GovernorHandle};
pub use node::ExecMode;
pub use proto::ReconfigAbortReason;
pub use quorum::{QuorumMember, QuorumOptions};
pub use quorum_sm::{CoordinatorSm, Fence, MemberReaction, MemberSm, QuorumStatus};
pub use reactor::{Reactor, TimerId, TimerWheel, Wake, DEFAULT_TICK};
pub use stats::{ReconfigAbortBreakdown, SharedStats, SystemReport};
pub use system::{LaunchError, ReconfigReport, ReconfigureError, RtOptions, SubmitError, System};
