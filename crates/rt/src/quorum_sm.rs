//! Pure state machines of the two-phase reconfiguration quorum protocol.
//!
//! The protocol has two roles: the **coordinator** (the manager running a
//! swap: publish prepare, collect votes, commit or abort) and the
//! **member** (any voter: fence on a prepare, ack or veto, release the
//! fence on commit/abort or after a timeout). Both roles used to live
//! inline in their host threads (`manager.rs`, `quorum.rs`), entangled
//! with mailboxes, reactors and wall clocks — which made them untestable
//! without threads and unusable from the deterministic federation
//! simulator.
//!
//! This module is the disentangled core: no I/O, no clocks, no threads.
//! Time enters exclusively as `now_ns: u64` arguments, so the same
//! machines run against the wall clock (threaded runtime), a manual
//! clock (tests) or a per-host *virtual* clock with injected skew
//! (`rtcm-sim`'s federation). The threaded [`crate::quorum::QuorumMember`]
//! and the manager's prepare loop delegate here; the simulator drives the
//! identical transition functions — one protocol, two schedulers.

use std::collections::HashSet;

use rtcm_core::strategy::ServiceConfig;

use crate::proto::{
    ReconfigAbortReason, ReconfigAckMsg, ReconfigMsg, ReconfigPhase, ReconfigVote,
    QUORUM_MEMBER_PROC,
};

/// A member's standing fence: the one swap it is currently committed to
/// voting for, plus the instant (on the member's own clock) it was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fence {
    /// The coordinator identity the fence was raised for.
    pub coordinator: u64,
    /// That coordinator's epoch.
    pub epoch: u64,
    /// When the fence was raised, on the member's clock.
    pub raised_ns: u64,
}

/// What a member does in reaction to one protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberReaction {
    /// Nothing to send and nothing witnessed (own-host message, held
    /// message, or a commit/abort for a swap this member is not fenced
    /// for).
    Ignored,
    /// Send this vote back toward the coordinator.
    Vote(ReconfigAckMsg),
    /// The fenced swap committed this configuration; the fence is down.
    Committed(ServiceConfig),
    /// The fenced swap aborted; the fence is down.
    Aborted,
}

/// The member role: fences, votes and commit witnessing.
///
/// All methods take the member's *current clock reading*; the machine
/// never reads time itself (that is the whole point — see the module
/// docs).
#[derive(Debug, Default)]
pub struct MemberSm {
    fence: Option<Fence>,
    commits: Vec<ServiceConfig>,
    acks: u64,
    nacks: u64,
}

impl MemberSm {
    /// A fresh, unfenced member.
    #[must_use]
    pub fn new() -> Self {
        MemberSm::default()
    }

    /// Drops a fence whose commit/abort never arrived once it has stood
    /// for `fence_timeout_ns` (lost-packet / partition recovery). Returns
    /// true if a fence was dropped.
    pub fn expire_fence(&mut self, now_ns: u64, fence_timeout_ns: u64) -> bool {
        if let Some(f) = self.fence {
            if now_ns.saturating_sub(f.raised_ns) >= fence_timeout_ns {
                self.fence = None;
                return true;
            }
        }
        false
    }

    /// One protocol message, observed at `now_ns` on this member's clock.
    ///
    /// `host` is the identity this member votes as; messages originating
    /// from that host are ignored (its own swaps are quorum'd by its local
    /// processors). While `holding` is true the member simulates a
    /// partitioned host: prepares are ignored entirely — no fence, no
    /// vote — so the coordinator aborts at its ack deadline.
    pub fn on_phase(
        &mut self,
        msg: &ReconfigMsg,
        host: u64,
        now_ns: u64,
        fence_timeout_ns: u64,
        holding: bool,
    ) -> MemberReaction {
        if msg.host == host {
            return MemberReaction::Ignored;
        }
        self.expire_fence(now_ns, fence_timeout_ns);
        match msg.phase {
            ReconfigPhase::Prepare => {
                if holding {
                    return MemberReaction::Ignored;
                }
                let vote = match self.fence {
                    // Fenced for a different coordinator's live swap: veto.
                    Some(f) if f.coordinator != msg.coordinator => {
                        self.nacks += 1;
                        ReconfigVote::Nack(ReconfigAbortReason::ForeignCoordinator)
                    }
                    // Free, or the same coordinator superseding its own
                    // epoch (a coordinator serializes its swaps, so the
                    // older one is dead): fence and ack.
                    _ => {
                        self.fence = Some(Fence {
                            coordinator: msg.coordinator,
                            epoch: msg.epoch,
                            raised_ns: now_ns,
                        });
                        self.acks += 1;
                        ReconfigVote::Ack
                    }
                };
                MemberReaction::Vote(ReconfigAckMsg {
                    coordinator: msg.coordinator,
                    epoch: msg.epoch,
                    host,
                    processor: QUORUM_MEMBER_PROC,
                    vote,
                    sent_ns: now_ns,
                    trace: msg.trace,
                })
            }
            ReconfigPhase::Commit => {
                if self.matches_fence(msg) {
                    self.fence = None;
                    self.commits.push(msg.services);
                    MemberReaction::Committed(msg.services)
                } else {
                    MemberReaction::Ignored
                }
            }
            ReconfigPhase::Abort => {
                if self.matches_fence(msg) {
                    self.fence = None;
                    MemberReaction::Aborted
                } else {
                    MemberReaction::Ignored
                }
            }
        }
    }

    fn matches_fence(&self, msg: &ReconfigMsg) -> bool {
        self.fence.is_some_and(|f| (f.coordinator, f.epoch) == (msg.coordinator, msg.epoch))
    }

    /// The standing fence, if any.
    #[must_use]
    pub fn fence(&self) -> Option<Fence> {
        self.fence
    }

    /// Configurations whose commits this member witnessed, in order.
    #[must_use]
    pub fn commits(&self) -> &[ServiceConfig] {
        &self.commits
    }

    /// Prepares acked so far.
    #[must_use]
    pub fn acks(&self) -> u64 {
        self.acks
    }

    /// Prepares vetoed so far (foreign-coordinator collisions).
    #[must_use]
    pub fn nacks(&self) -> u64 {
        self.nacks
    }
}

/// The coordinator's view of one prepare quorum in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumStatus {
    /// Votes are still outstanding.
    Pending,
    /// Every local processor and every required remote voter acked.
    Satisfied,
    /// A voter vetoed; the swap must abort with this reason.
    Vetoed(ReconfigAbortReason),
}

/// The coordinator role: one instance per prepare phase, tracking which
/// local processors and remote voter hosts have acked.
#[derive(Debug)]
pub struct CoordinatorSm {
    coordinator: u64,
    epoch: u64,
    own_host: u64,
    expected_local: u16,
    remote: HashSet<u64>,
    local_acked: HashSet<u16>,
    remote_acked: HashSet<u64>,
    nack: Option<ReconfigAbortReason>,
}

impl CoordinatorSm {
    /// Starts tracking epoch `epoch` of coordinator `coordinator` on host
    /// `own_host`: the quorum is every local processor `0..expected_local`
    /// plus every host in `remote`.
    #[must_use]
    pub fn begin(
        coordinator: u64,
        epoch: u64,
        own_host: u64,
        expected_local: u16,
        remote: HashSet<u64>,
    ) -> Self {
        CoordinatorSm {
            coordinator,
            epoch,
            own_host,
            expected_local,
            remote,
            local_acked: HashSet::new(),
            remote_acked: HashSet::new(),
            nack: None,
        }
    }

    /// Feeds one ack/nack. Votes for other coordinators or epochs, from
    /// unknown hosts, or from out-of-range processors are ignored — a
    /// bridged-in foreign reconfiguration can never pre-satisfy a local
    /// prepare quorum.
    pub fn on_ack(&mut self, ack: &ReconfigAckMsg) {
        if ack.coordinator != self.coordinator || ack.epoch != self.epoch {
            return;
        }
        match ack.vote {
            ReconfigVote::Ack => {
                if ack.host == self.own_host && ack.processor < self.expected_local {
                    self.local_acked.insert(ack.processor);
                } else if self.remote.contains(&ack.host) {
                    self.remote_acked.insert(ack.host);
                }
            }
            ReconfigVote::Nack(reason) => {
                // A vetoing quorum member (it is fenced for someone else's
                // swap) fails the prepare immediately — no point waiting
                // out the timeout.
                if ack.host == self.own_host || self.remote.contains(&ack.host) {
                    self.nack = Some(reason);
                }
            }
        }
    }

    /// Where the quorum stands.
    #[must_use]
    pub fn status(&self) -> QuorumStatus {
        if let Some(reason) = self.nack {
            QuorumStatus::Vetoed(reason)
        } else if self.local_acked.len() >= usize::from(self.expected_local)
            && self.remote_acked.len() >= self.remote.len()
        {
            QuorumStatus::Satisfied
        } else {
            QuorumStatus::Pending
        }
    }

    /// Votes collected so far (local + remote).
    #[must_use]
    pub fn acked(&self) -> usize {
        self.local_acked.len() + self.remote_acked.len()
    }

    /// Votes required (local + remote).
    #[must_use]
    pub fn expected(&self) -> usize {
        usize::from(self.expected_local) + self.remote.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::swap_trace;

    fn prepare(coordinator: u64, host: u64, epoch: u64) -> ReconfigMsg {
        phase_msg(coordinator, host, epoch, ReconfigPhase::Prepare)
    }

    fn phase_msg(coordinator: u64, host: u64, epoch: u64, phase: ReconfigPhase) -> ReconfigMsg {
        ReconfigMsg {
            coordinator,
            host,
            epoch,
            phase,
            services: "J_J_J".parse().unwrap(),
            sent_ns: 0,
            trace: swap_trace(coordinator, epoch),
        }
    }

    const TIMEOUT: u64 = 5_000;

    #[test]
    fn member_fences_acks_and_witnesses_commit() {
        let mut m = MemberSm::new();
        let react = m.on_phase(&prepare(9, 1, 1), 2, 100, TIMEOUT, false);
        let MemberReaction::Vote(ack) = react else { panic!("expected a vote") };
        assert_eq!(ack.vote, ReconfigVote::Ack);
        assert_eq!(ack.processor, QUORUM_MEMBER_PROC);
        assert_eq!(ack.host, 2);
        assert!(m.fence().is_some());
        let commit = phase_msg(9, 1, 1, ReconfigPhase::Commit);
        let react = m.on_phase(&commit, 2, 200, TIMEOUT, false);
        assert_eq!(react, MemberReaction::Committed(commit.services));
        assert!(m.fence().is_none());
        assert_eq!(m.commits().len(), 1);
        assert_eq!(m.acks(), 1);
    }

    #[test]
    fn member_ignores_its_own_hosts_swaps() {
        let mut m = MemberSm::new();
        assert_eq!(m.on_phase(&prepare(9, 2, 1), 2, 0, TIMEOUT, false), MemberReaction::Ignored);
        assert!(m.fence().is_none());
    }

    #[test]
    fn member_vetoes_a_foreign_coordinator_collision() {
        let mut m = MemberSm::new();
        m.on_phase(&prepare(9, 1, 1), 2, 0, TIMEOUT, false);
        let react = m.on_phase(&prepare(8, 3, 1), 2, 10, TIMEOUT, false);
        let MemberReaction::Vote(ack) = react else { panic!("expected a vote") };
        assert_eq!(ack.vote, ReconfigVote::Nack(ReconfigAbortReason::ForeignCoordinator));
        assert_eq!(m.nacks(), 1);
        // The original fence still stands for coordinator 9.
        assert_eq!(m.fence().unwrap().coordinator, 9);
    }

    #[test]
    fn same_coordinator_supersedes_its_own_epoch() {
        let mut m = MemberSm::new();
        m.on_phase(&prepare(9, 1, 1), 2, 0, TIMEOUT, false);
        let react = m.on_phase(&prepare(9, 1, 2), 2, 10, TIMEOUT, false);
        let MemberReaction::Vote(ack) = react else { panic!("expected a vote") };
        assert_eq!(ack.vote, ReconfigVote::Ack);
        assert_eq!(m.fence().unwrap().epoch, 2);
        // The dead epoch's commit no longer matches the fence.
        let stale = phase_msg(9, 1, 1, ReconfigPhase::Commit);
        assert_eq!(m.on_phase(&stale, 2, 20, TIMEOUT, false), MemberReaction::Ignored);
        assert!(m.fence().is_some());
    }

    #[test]
    fn held_member_neither_fences_nor_votes() {
        let mut m = MemberSm::new();
        assert_eq!(m.on_phase(&prepare(9, 1, 1), 2, 0, TIMEOUT, true), MemberReaction::Ignored);
        assert!(m.fence().is_none());
        assert_eq!(m.acks(), 0);
    }

    #[test]
    fn fence_expires_on_the_injected_clock() {
        let mut m = MemberSm::new();
        m.on_phase(&prepare(9, 1, 1), 2, 1_000, TIMEOUT, false);
        assert!(!m.expire_fence(1_000 + TIMEOUT - 1, TIMEOUT));
        assert!(m.fence().is_some());
        assert!(m.expire_fence(1_000 + TIMEOUT, TIMEOUT));
        assert!(m.fence().is_none());
        // An expired fence means a late abort is a no-op...
        let abort = phase_msg(9, 1, 1, ReconfigPhase::Abort);
        assert_eq!(m.on_phase(&abort, 2, 9_000, TIMEOUT, false), MemberReaction::Ignored);
        // ...and the member is free to ack the next prepare.
        let react = m.on_phase(&prepare(8, 3, 1), 2, 9_100, TIMEOUT, false);
        assert!(matches!(react, MemberReaction::Vote(a) if a.vote == ReconfigVote::Ack));
    }

    #[test]
    fn aborted_member_releases_without_witnessing() {
        let mut m = MemberSm::new();
        m.on_phase(&prepare(9, 1, 1), 2, 0, TIMEOUT, false);
        let abort = phase_msg(9, 1, 1, ReconfigPhase::Abort);
        assert_eq!(m.on_phase(&abort, 2, 10, TIMEOUT, false), MemberReaction::Aborted);
        assert!(m.fence().is_none());
        assert!(m.commits().is_empty());
    }

    fn ack(coordinator: u64, epoch: u64, host: u64, processor: u16) -> ReconfigAckMsg {
        ReconfigAckMsg {
            coordinator,
            epoch,
            host,
            processor,
            vote: ReconfigVote::Ack,
            sent_ns: 0,
            trace: swap_trace(coordinator, epoch),
        }
    }

    #[test]
    fn coordinator_waits_for_locals_and_remotes() {
        let remote: HashSet<u64> = [77, 88].into_iter().collect();
        let mut c = CoordinatorSm::begin(9, 1, 5, 2, remote);
        assert_eq!(c.status(), QuorumStatus::Pending);
        assert_eq!(c.expected(), 4);
        c.on_ack(&ack(9, 1, 5, 0));
        c.on_ack(&ack(9, 1, 5, 1));
        c.on_ack(&ack(9, 1, 77, QUORUM_MEMBER_PROC));
        assert_eq!(c.status(), QuorumStatus::Pending);
        assert_eq!(c.acked(), 3);
        c.on_ack(&ack(9, 1, 88, QUORUM_MEMBER_PROC));
        assert_eq!(c.status(), QuorumStatus::Satisfied);
    }

    #[test]
    fn coordinator_ignores_stale_foreign_and_unknown_votes() {
        let mut c = CoordinatorSm::begin(9, 2, 5, 1, HashSet::new());
        c.on_ack(&ack(9, 1, 5, 0)); // stale epoch
        c.on_ack(&ack(8, 2, 5, 0)); // foreign coordinator
        c.on_ack(&ack(9, 2, 6, QUORUM_MEMBER_PROC)); // unregistered host
        c.on_ack(&ack(9, 2, 5, 7)); // out-of-range processor
        assert_eq!(c.status(), QuorumStatus::Pending);
        assert_eq!(c.acked(), 0);
        c.on_ack(&ack(9, 2, 5, 0));
        assert_eq!(c.status(), QuorumStatus::Satisfied);
    }

    #[test]
    fn coordinator_veto_fails_fast() {
        let remote: HashSet<u64> = [77].into_iter().collect();
        let mut c = CoordinatorSm::begin(9, 1, 5, 1, remote);
        c.on_ack(&ack(9, 1, 5, 0));
        let mut veto = ack(9, 1, 77, QUORUM_MEMBER_PROC);
        veto.vote = ReconfigVote::Nack(ReconfigAbortReason::ForeignCoordinator);
        c.on_ack(&veto);
        assert_eq!(c.status(), QuorumStatus::Vetoed(ReconfigAbortReason::ForeignCoordinator));
        // A nack from a host outside the quorum would have been ignored.
        let mut c2 = CoordinatorSm::begin(9, 1, 5, 1, HashSet::new());
        let mut stray = ack(9, 1, 66, QUORUM_MEMBER_PROC);
        stray.vote = ReconfigVote::Nack(ReconfigAbortReason::ForeignCoordinator);
        c2.on_ack(&stray);
        assert_eq!(c2.status(), QuorumStatus::Pending);
    }
}
