//! Event-driven reactor core: a hierarchical timer wheel plus a single
//! blocking wait on `min(next timer, mailbox)`.
//!
//! This replaces the runtime's polling loops (the 500 µs idle slice poll in
//! the node dispatcher, the manager's 50 ms control poll, the quorum
//! member's 20 ms fence sweep). Every time-driven obligation — slice
//! boundaries, prepare-fence deadlines, quorum fence expiries — becomes a
//! wheel entry, and each host thread parks on its merged mailbox (the PR 5
//! shared-log cursor) until either an event arrives or the earliest entry
//! is due. A thread with no pending timers blocks **indefinitely**: an idle
//! host performs zero wakeups, where the polling design paid ~2000/s/node.
//!
//! # Wheel layout
//!
//! Four levels of 64 slots, Varghese–Lauck hashed hierarchy. With the
//! default 100 µs tick the levels cover 6.4 ms / 409.6 ms / 26.2 s / 27.9
//! min of horizon; entries beyond that wait in a `BTreeMap` overflow and
//! enter the wheel at top-level cascade boundaries. Insert and cancel are
//! O(1) (cancellation is lazy — a tombstone set consulted when a slot is
//! drained); advancing is O(occupied slots crossed), with an explicit jump
//! over empty regions so waking up after a long idle gap never replays
//! per-tick work.
//!
//! # Firing discipline
//!
//! Entries map to slots by `deadline_ns / tick_ns` (floor), and a slot
//! drain only releases entries whose exact `deadline_ns` has passed — a
//! timer never fires early, regardless of tick resolution. Within one
//! `advance` the fired batch is ordered by `(deadline_ns, insertion seq)`,
//! so two wheels fed the same schedule/cancel/advance sequence fire
//! identically; driven by a [`crate::clock::ManualClock`] this makes
//! reactor-based components deterministic under the sim (see
//! [`TimerDriver`]).

use std::collections::{BTreeMap, HashSet};
use std::time::Duration as StdDuration;

use rtcm_events::{Event, EventReceiver, RecvTimeoutError};

use crate::clock::TimerDriver;

/// Default wheel resolution: fine enough that a 200 µs execution slice maps
/// to its own slot, coarse enough that a level spans useful horizons.
pub const DEFAULT_TICK: StdDuration = StdDuration::from_micros(100);

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const MASK: u64 = (SLOTS as u64) - 1;
const LEVELS: usize = 4;

/// Handle for cancelling a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Entry<T> {
    id: u64,
    deadline_ns: u64,
    tag: T,
}

/// A hierarchical (hashed) timer wheel over an arbitrary tag type.
///
/// The wheel does not read a clock itself: callers pass absolute
/// nanosecond deadlines to [`TimerWheel::schedule_at`] and the current
/// reading to [`TimerWheel::advance`], so any [`TimerDriver`] — wall clock
/// or manual — can drive it.
#[derive(Debug)]
pub struct TimerWheel<T> {
    tick_ns: u64,
    /// Current tick = floor(now_ns / tick_ns) of the last `advance`.
    tick: u64,
    /// `LEVELS × SLOTS` flattened; level `l` slot `s` at `l * SLOTS + s`.
    slots: Vec<Vec<Entry<T>>>,
    /// Physical entry count per level (including tombstoned entries).
    level_counts: [usize; LEVELS],
    /// Entries beyond the wheel horizon, keyed by deadline tick.
    overflow: BTreeMap<u64, Vec<Entry<T>>>,
    /// Ids scheduled and neither fired nor cancelled.
    live: HashSet<u64>,
    /// Lazily-reaped cancellations.
    cancelled: HashSet<u64>,
    next_id: u64,
}

impl<T> TimerWheel<T> {
    /// A wheel with the given tick resolution, positioned at t = 0.
    ///
    /// # Panics
    /// If `tick` is zero.
    #[must_use]
    pub fn new(tick: StdDuration) -> Self {
        let tick_ns = u64::try_from(tick.as_nanos()).expect("tick fits u64");
        assert!(tick_ns > 0, "wheel tick must be positive");
        TimerWheel {
            tick_ns,
            tick: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            level_counts: [0; LEVELS],
            overflow: BTreeMap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_id: 0,
        }
    }

    /// Wheel resolution in nanoseconds.
    #[must_use]
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    /// Number of pending (scheduled, not fired, not cancelled) timers.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// True when no timer is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedules a timer at an absolute nanosecond deadline. Deadlines in
    /// the past are legal: the entry fires on the next [`advance`].
    ///
    /// [`advance`]: TimerWheel::advance
    pub fn schedule_at(&mut self, deadline_ns: u64, tag: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id);
        self.place(Entry { id, deadline_ns, tag });
        TimerId(id)
    }

    /// Cancels a pending timer. Returns false if it already fired (or was
    /// already cancelled). O(1): the entry is tombstoned and reaped when
    /// its slot is next drained.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Absolute deadline (ns) the owning thread should wake at, or `None`
    /// when the wheel is empty and the thread can block indefinitely.
    ///
    /// For entries within the level-0 horizon this is their exact
    /// `deadline_ns`; for farther entries it is the next cascade boundary
    /// that moves them closer (at most `LEVELS - 1` such intermediate
    /// wakeups per timer).
    #[must_use]
    pub fn next_deadline_ns(&self) -> Option<u64> {
        if self.live.is_empty() {
            return None;
        }
        let mut best: Option<u64> = None;
        for offset in 0..SLOTS as u64 {
            let t = self.tick + offset;
            let slot = &self.slots[(t & MASK) as usize];
            let min = slot
                .iter()
                .filter(|e| !self.cancelled.contains(&e.id))
                .map(|e| e.deadline_ns)
                .min();
            if let Some(m) = min {
                best = Some(m);
                break;
            }
        }
        for level in 1..LEVELS {
            if self.level_counts[level] == 0 {
                continue;
            }
            for slot in 0..SLOTS {
                if self.slots[level * SLOTS + slot].is_empty() {
                    continue;
                }
                let ns = self.cascade_tick(level, slot as u64) * self.tick_ns;
                best = Some(best.map_or(ns, |b| b.min(ns)));
            }
        }
        if !self.overflow.is_empty() {
            let ns = self.next_overflow_boundary() * self.tick_ns;
            best = Some(best.map_or(ns, |b| b.min(ns)));
        }
        best
    }

    /// Moves the wheel to `now_ns`, appending every due entry to `fired`
    /// ordered by `(deadline_ns, insertion seq)`. Empty stretches are
    /// jumped over, not iterated tick by tick.
    pub fn advance(&mut self, now_ns: u64, fired: &mut Vec<(TimerId, T)>) {
        let target = now_ns / self.tick_ns;
        let mut batch: Vec<Entry<T>> = Vec::new();
        // The current slot may hold entries that became due sub-tick.
        self.drain_due(self.tick, now_ns, &mut batch);
        while self.tick < target {
            if self.live.is_empty() && self.overflow.is_empty() {
                self.tick = target;
                break;
            }
            match self.next_busy_tick() {
                Some(next) if next <= target => {
                    self.tick = next;
                    self.cascade_at(next);
                    self.drain_due(next, now_ns, &mut batch);
                }
                _ => {
                    self.tick = target;
                    break;
                }
            }
        }
        batch.sort_by_key(|e| (e.deadline_ns, e.id));
        fired.extend(batch.into_iter().map(|e| (TimerId(e.id), e.tag)));
    }

    /// Level a delta-in-ticks maps to, or `None` for overflow.
    fn level_for(delta: u64) -> Option<usize> {
        (0..LEVELS).find(|&level| delta < 1u64 << (SLOT_BITS * (level as u32 + 1)))
    }

    fn place(&mut self, entry: Entry<T>) {
        // Clamp overdue deadlines into the current slot so they fire on the
        // next advance instead of hiding behind the wheel's rotation.
        let deadline_tick = (entry.deadline_ns / self.tick_ns).max(self.tick);
        match Self::level_for(deadline_tick - self.tick) {
            Some(level) => {
                let slot = ((deadline_tick >> (SLOT_BITS * level as u32)) & MASK) as usize;
                self.slots[level * SLOTS + slot].push(entry);
                self.level_counts[level] += 1;
            }
            None => {
                self.overflow.entry(deadline_tick).or_default().push(entry);
            }
        }
    }

    /// Releases due (or tombstoned) entries from the level-0 slot of `tick`.
    fn drain_due(&mut self, tick: u64, now_ns: u64, out: &mut Vec<Entry<T>>) {
        let idx = (tick & MASK) as usize;
        let mut i = 0;
        while i < self.slots[idx].len() {
            let id = self.slots[idx][i].id;
            if self.cancelled.remove(&id) {
                self.slots[idx].swap_remove(i);
                self.level_counts[0] -= 1;
                continue;
            }
            if self.slots[idx][i].deadline_ns <= now_ns {
                let entry = self.slots[idx].swap_remove(i);
                self.level_counts[0] -= 1;
                self.live.remove(&id);
                out.push(entry);
                continue;
            }
            i += 1;
        }
    }

    /// Tick at which level-`level` slot `slot` next cascades down.
    fn cascade_tick(&self, level: usize, slot: u64) -> u64 {
        let span = 1u64 << (SLOT_BITS * level as u32);
        let frame = span << SLOT_BITS;
        let base = (self.tick / frame) * frame;
        let tc = base + slot * span;
        if tc <= self.tick {
            tc + frame
        } else {
            tc
        }
    }

    /// Next top-level boundary where overflow entries enter the wheel.
    fn next_overflow_boundary(&self) -> u64 {
        let top_span = 1u64 << (SLOT_BITS * (LEVELS as u32 - 1));
        (self.tick / top_span + 1) * top_span
    }

    /// Earliest tick strictly after the current one where a slot must be
    /// drained or cascaded, or `None` when nothing is physically pending.
    fn next_busy_tick(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for offset in 1..SLOTS as u64 {
            let t = self.tick + offset;
            if !self.slots[(t & MASK) as usize].is_empty() {
                best = Some(t);
                break;
            }
        }
        for level in 1..LEVELS {
            if self.level_counts[level] == 0 {
                continue;
            }
            for slot in 0..SLOTS {
                if self.slots[level * SLOTS + slot].is_empty() {
                    continue;
                }
                let tc = self.cascade_tick(level, slot as u64);
                best = Some(best.map_or(tc, |b| b.min(tc)));
            }
        }
        if !self.overflow.is_empty() {
            let tc = self.next_overflow_boundary();
            best = Some(best.map_or(tc, |b| b.min(tc)));
        }
        best
    }

    /// Re-places entries whose coarse slot opens at `tick` into finer
    /// levels (higher levels first so entries can cascade all the way
    /// down in one pass), and admits overflow entries at top boundaries.
    fn cascade_at(&mut self, tick: u64) {
        for level in (1..LEVELS).rev() {
            let span = 1u64 << (SLOT_BITS * level as u32);
            if !tick.is_multiple_of(span) {
                continue;
            }
            let idx = level * SLOTS + ((tick >> (SLOT_BITS * level as u32)) & MASK) as usize;
            let entries = std::mem::take(&mut self.slots[idx]);
            self.level_counts[level] -= entries.len();
            for entry in entries {
                if self.cancelled.remove(&entry.id) {
                    continue;
                }
                self.place(entry);
            }
        }
        let top_span = 1u64 << (SLOT_BITS * (LEVELS as u32 - 1));
        if tick.is_multiple_of(top_span) && !self.overflow.is_empty() {
            let horizon = tick + (1u64 << (SLOT_BITS * LEVELS as u32));
            let due: Vec<u64> = self.overflow.range(..horizon).map(|(k, _)| *k).collect();
            for key in due {
                for entry in self.overflow.remove(&key).into_iter().flatten() {
                    if self.cancelled.remove(&entry.id) {
                        continue;
                    }
                    self.place(entry);
                }
            }
        }
    }
}

/// What woke a reactor thread.
#[derive(Debug)]
pub enum Wake {
    /// An event arrived on the merged mailbox.
    Event(Event),
    /// The earliest wheel deadline passed — call [`Reactor::poll`].
    Timer,
    /// The mailbox closed (federation dropped); the thread should exit.
    Closed,
}

/// A timer wheel bound to a [`TimerDriver`], with the runtime's single
/// blocking wait: `min(next wheel deadline, mailbox event)`.
#[derive(Debug)]
pub struct Reactor<D, T> {
    driver: D,
    wheel: TimerWheel<T>,
}

impl<D: TimerDriver, T> Reactor<D, T> {
    /// A reactor over `driver` with the given wheel resolution.
    #[must_use]
    pub fn new(driver: D, tick: StdDuration) -> Self {
        Reactor { driver, wheel: TimerWheel::new(tick) }
    }

    /// Schedules a timer at an absolute nanosecond deadline on the
    /// driver's axis.
    pub fn schedule_at(&mut self, deadline_ns: u64, tag: T) -> TimerId {
        self.wheel.schedule_at(deadline_ns, tag)
    }

    /// Schedules a timer `delay` from the driver's current reading.
    pub fn schedule_in(&mut self, delay: StdDuration, tag: T) -> TimerId {
        let deadline = self.driver.now_ns().saturating_add(delay.as_nanos() as u64);
        self.wheel.schedule_at(deadline, tag)
    }

    /// Cancels a pending timer (O(1), lazy).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.wheel.cancel(id)
    }

    /// Number of pending timers.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.wheel.pending()
    }

    /// Advances the wheel to the driver's current reading, collecting due
    /// timers into `fired`.
    pub fn poll(&mut self, fired: &mut Vec<(TimerId, T)>) {
        let now = self.driver.now_ns();
        self.wheel.advance(now, fired);
    }

    /// Parks the calling thread until an event arrives or the earliest
    /// timer is due. With an empty wheel this blocks **indefinitely** on
    /// the mailbox — zero wakeups while idle.
    pub fn wait(&self, mailbox: &EventReceiver) -> Wake {
        match self.wheel.next_deadline_ns() {
            None => match mailbox.recv() {
                Ok(event) => Wake::Event(event),
                Err(_) => Wake::Closed,
            },
            Some(deadline_ns) => {
                let now = self.driver.now_ns();
                if deadline_ns <= now {
                    return Wake::Timer;
                }
                match mailbox.recv_timeout(StdDuration::from_nanos(deadline_ns - now)) {
                    Ok(event) => Wake::Event(event),
                    Err(RecvTimeoutError::Timeout) => Wake::Timer,
                    Err(RecvTimeoutError::Disconnected) => Wake::Closed,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    const TICK: StdDuration = StdDuration::from_micros(100);
    const TICK_NS: u64 = 100_000;

    fn fire_all(wheel: &mut TimerWheel<u32>, now_ns: u64) -> Vec<u32> {
        let mut fired = Vec::new();
        wheel.advance(now_ns, &mut fired);
        fired.into_iter().map(|(_, tag)| tag).collect()
    }

    #[test]
    fn fires_in_deadline_order_within_one_advance() {
        let mut wheel = TimerWheel::new(TICK);
        wheel.schedule_at(5 * TICK_NS, 3);
        wheel.schedule_at(TICK_NS, 1);
        wheel.schedule_at(3 * TICK_NS, 2);
        assert_eq!(fire_all(&mut wheel, 10 * TICK_NS), vec![1, 2, 3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn insertion_order_breaks_deadline_ties() {
        let mut wheel = TimerWheel::new(TICK);
        for tag in 0..8 {
            wheel.schedule_at(7 * TICK_NS, tag);
        }
        assert_eq!(fire_all(&mut wheel, 7 * TICK_NS), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn timers_never_fire_early() {
        let mut wheel = TimerWheel::new(TICK);
        // Mid-tick deadline: due tick is floor(150µs / 100µs) = 1, but the
        // exact deadline is 150 µs.
        wheel.schedule_at(TICK_NS + TICK_NS / 2, 9);
        assert!(fire_all(&mut wheel, TICK_NS).is_empty());
        assert!(fire_all(&mut wheel, TICK_NS + TICK_NS / 2 - 1).is_empty());
        assert_eq!(wheel.next_deadline_ns(), Some(TICK_NS + TICK_NS / 2));
        assert_eq!(fire_all(&mut wheel, TICK_NS + TICK_NS / 2), vec![9]);
    }

    #[test]
    fn overdue_schedules_fire_on_next_advance() {
        let mut wheel = TimerWheel::new(TICK);
        assert!(fire_all(&mut wheel, 500 * TICK_NS).is_empty());
        wheel.schedule_at(3 * TICK_NS, 7); // long past
        assert_eq!(wheel.next_deadline_ns(), Some(3 * TICK_NS));
        assert_eq!(fire_all(&mut wheel, 500 * TICK_NS), vec![7]);
    }

    #[test]
    fn cascade_preserves_order_across_levels() {
        // Deadlines chosen to land on levels 0, 1 and 2 of a 100 µs wheel:
        // level 0 covers < 6.4 ms, level 1 < 409.6 ms, level 2 < 26.2 s.
        let mut wheel = TimerWheel::new(TICK);
        let ms = 1_000_000u64;
        wheel.schedule_at(20_000 * ms, 4); // 20 s -> level 2
        wheel.schedule_at(300 * ms, 3); // 300 ms -> level 1
        wheel.schedule_at(2 * ms, 1); // 2 ms  -> level 0
        wheel.schedule_at(50 * ms, 2); // 50 ms -> level 1
        assert_eq!(wheel.pending(), 4);

        // Step time forward in uneven chunks; order must come out sorted.
        let mut fired = Vec::new();
        for now in [ms, 3 * ms, 49 * ms, 51 * ms, 299 * ms, 301 * ms, 20_001 * ms] {
            wheel.advance(now, &mut fired);
        }
        let tags: Vec<u32> = fired.iter().map(|(_, t)| *t).collect();
        assert_eq!(tags, vec![1, 2, 3, 4]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn cascaded_entries_keep_exact_deadlines_at_tick_boundaries() {
        let mut wheel = TimerWheel::new(TICK);
        // Exactly at a level-0/level-1 boundary (64 ticks).
        let boundary = 64 * TICK_NS;
        wheel.schedule_at(boundary, 1);
        wheel.schedule_at(boundary - 1, 0);
        wheel.schedule_at(boundary + 1, 2);
        assert!(fire_all(&mut wheel, boundary - 2).is_empty());
        assert_eq!(fire_all(&mut wheel, boundary), vec![0, 1]);
        assert_eq!(fire_all(&mut wheel, boundary + 1), vec![2]);
    }

    #[test]
    fn cancel_prevents_fire_and_updates_bookkeeping() {
        let mut wheel = TimerWheel::new(TICK);
        let keep = wheel.schedule_at(2 * TICK_NS, 1);
        let drop_near = wheel.schedule_at(2 * TICK_NS, 2);
        let drop_far = wheel.schedule_at(1_000 * TICK_NS, 3);
        assert!(wheel.cancel(drop_near));
        assert!(wheel.cancel(drop_far));
        assert!(!wheel.cancel(drop_far), "double cancel reports false");
        assert_eq!(wheel.pending(), 1);
        assert_eq!(fire_all(&mut wheel, 2_000 * TICK_NS), vec![1]);
        assert!(!wheel.cancel(keep), "cancel after fire reports false");
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_deadline_skips_cancelled_entries() {
        let mut wheel = TimerWheel::new(TICK);
        let early = wheel.schedule_at(TICK_NS, 1);
        wheel.schedule_at(5 * TICK_NS, 2);
        wheel.cancel(early);
        assert_eq!(wheel.next_deadline_ns(), Some(5 * TICK_NS));
    }

    #[test]
    fn empty_wheel_reports_no_deadline() {
        let wheel: TimerWheel<u32> = TimerWheel::new(TICK);
        assert_eq!(wheel.next_deadline_ns(), None);
        assert!(wheel.is_empty());
    }

    #[test]
    fn far_deadlines_wake_only_at_cascade_boundaries() {
        let mut wheel = TimerWheel::new(TICK);
        let far = 10_000 * TICK_NS; // level 2
        wheel.schedule_at(far, 1);
        // The advertised wakeup is a cascade boundary, not per-tick.
        let first = wheel.next_deadline_ns().unwrap();
        assert!(first > 0 && first < far);
        assert_eq!(first % (64 * TICK_NS), 0, "boundary-aligned wake");
        // Walking the advertised wakeups reaches the exact deadline in a
        // handful of hops (≤ one per level), never thousands of ticks.
        let mut hops = 0;
        let mut fired = Vec::new();
        loop {
            let next = wheel.next_deadline_ns().unwrap();
            wheel.advance(next, &mut fired);
            hops += 1;
            if !fired.is_empty() {
                break;
            }
            assert!(hops < LEVELS + 2, "too many intermediate wakeups");
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, 1);
    }

    #[test]
    fn overflow_entries_beyond_the_horizon_eventually_fire() {
        // A 1 ns tick shrinks the horizon to 64^4 ns ≈ 16.8 ms, so a 20 ms
        // deadline exercises the overflow path cheaply.
        let mut wheel = TimerWheel::new(StdDuration::from_nanos(1));
        let deadline = 20_000_000u64;
        wheel.schedule_at(deadline, 5);
        assert_eq!(wheel.pending(), 1);
        let mut fired = Vec::new();
        let mut hops = 0;
        while fired.is_empty() {
            let next = wheel.next_deadline_ns().expect("still pending");
            wheel.advance(next, &mut fired);
            hops += 1;
            assert!(hops < 256, "overflow admission must be boundary-paced");
        }
        assert_eq!(fired[0].1, 5);
        assert!(wheel.is_empty());
    }

    #[test]
    fn identical_histories_fire_identically() {
        // The determinism contract with the sim clock: same schedule /
        // cancel / advance sequence -> same (id, tag) firing sequence.
        let run = || {
            let clock = ManualClock::new();
            let mut reactor: Reactor<ManualClock, u32> = Reactor::new(clock.clone(), TICK);
            let mut trace = Vec::new();
            let mut cancel_me = Vec::new();
            for i in 0..200u64 {
                let id = reactor.schedule_at((i % 37) * TICK_NS + i, i as u32);
                if i % 5 == 0 {
                    cancel_me.push(id);
                }
            }
            for id in cancel_me {
                reactor.cancel(id);
            }
            let mut fired = Vec::new();
            for step in [3u64, 7, 11, 40, 80] {
                clock.advance_by(step * TICK_NS);
                reactor.poll(&mut fired);
                trace.push(fired.len());
            }
            let tags: Vec<u32> = fired.into_iter().map(|(_, t)| t).collect();
            (trace, tags)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn advance_jumps_long_idle_gaps() {
        let mut wheel = TimerWheel::new(TICK);
        // Hours of idle time, then a schedule: the wheel position must have
        // caught up without per-tick iteration (this test would time out
        // otherwise).
        let hours = 3_600_000_000_000u64 * 4;
        assert!(fire_all(&mut wheel, hours).is_empty());
        wheel.schedule_at(hours + TICK_NS, 8);
        assert_eq!(fire_all(&mut wheel, hours + 2 * TICK_NS), vec![8]);
    }
}
