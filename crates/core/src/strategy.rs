//! The three axes of service configurability (§4, Figure 2) and the validity
//! rule that excludes contradictory combinations (§4.5).
//!
//! Each service — admission control (AC), idle resetting (IR) and load
//! balancing (LB) — supports *none* / *per task* / *per job* strategies
//! (admission control cannot be disabled, so it has only two). Of the 18
//! combinations, the 3 with **AC per task + IR per job** are invalid: per-job
//! idle resetting removes the synthetic utilization of completed periodic
//! subjobs, while per-task admission control requires that utilization to
//! stay reserved so later jobs can be released without re-admission. That
//! leaves the paper's 15 reasonable combinations.
//!
//! Labels follow the paper's figures: a combination is written
//! `AC_IR_LB` with `N` = not enabled, `T` = per task, `J` = per job, e.g.
//! `J_T_N`.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::strategy::ServiceConfig;
//!
//! let cfg: ServiceConfig = "J_J_T".parse()?;
//! assert!(cfg.is_valid());
//! assert_eq!(ServiceConfig::all_valid().len(), 15);
//! assert!("T_J_N".parse::<ServiceConfig>()?.validate().is_err());
//! # Ok::<(), rtcm_core::strategy::ParseConfigError>(())
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// When the admission test (paper eq. 1) is applied to periodic tasks.
///
/// Aperiodic arrivals are always tested individually: every aperiodic job
/// "can be treated as an independent aperiodic task with one release" (§5),
/// so this choice only affects periodic tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcStrategy {
    /// Test only at a periodic task's first arrival; on success its synthetic
    /// utilization is reserved for the task's lifetime and all later jobs
    /// release immediately. Cheapest, most pessimistic; required when the
    /// application cannot tolerate job skipping (criterion C1 = no).
    PerTask,
    /// Test every job; jobs failing the test are skipped. Least pessimism,
    /// most overhead; requires C1 = yes.
    PerJob,
}

/// When the AUB resetting rule removes completed subjobs' contributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrStrategy {
    /// Never reset; contributions persist until the job deadline. No
    /// overhead, most pessimistic.
    None,
    /// On processor idle, report completed **aperiodic** subjobs only.
    PerTask,
    /// On processor idle, report completed aperiodic **and periodic**
    /// subjobs. Least pessimism, most overhead.
    PerJob,
}

/// When subtasks may be (re-)assigned across replica processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LbStrategy {
    /// No load balancing: every subtask runs on its primary processor.
    /// Required when components are not replicated (criterion C3 = no).
    None,
    /// Assign once at the task's first arrival and keep the plan for all
    /// later jobs. Suits stateful tasks (criterion C2 = yes).
    PerTask,
    /// Re-assign each job on arrival. Requires stateless tasks
    /// (C2 = no) and replication (C3 = yes).
    PerJob,
}

impl AcStrategy {
    /// Single-letter label used in the paper's figures.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            AcStrategy::PerTask => 'T',
            AcStrategy::PerJob => 'J',
        }
    }

    /// All admission-control strategies, in figure order.
    #[must_use]
    pub fn all() -> [AcStrategy; 2] {
        [AcStrategy::PerTask, AcStrategy::PerJob]
    }
}

impl IrStrategy {
    /// Single-letter label used in the paper's figures.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            IrStrategy::None => 'N',
            IrStrategy::PerTask => 'T',
            IrStrategy::PerJob => 'J',
        }
    }

    /// All idle-resetting strategies, in figure order.
    #[must_use]
    pub fn all() -> [IrStrategy; 3] {
        [IrStrategy::None, IrStrategy::PerTask, IrStrategy::PerJob]
    }

    /// Returns true if completed periodic subjobs are reported on idle.
    #[must_use]
    pub fn resets_periodic(self) -> bool {
        matches!(self, IrStrategy::PerJob)
    }

    /// Returns true if completed aperiodic subjobs are reported on idle.
    #[must_use]
    pub fn resets_aperiodic(self) -> bool {
        !matches!(self, IrStrategy::None)
    }
}

impl LbStrategy {
    /// Single-letter label used in the paper's figures.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            LbStrategy::None => 'N',
            LbStrategy::PerTask => 'T',
            LbStrategy::PerJob => 'J',
        }
    }

    /// All load-balancing strategies, in figure order.
    #[must_use]
    pub fn all() -> [LbStrategy; 3] {
        [LbStrategy::None, LbStrategy::PerTask, LbStrategy::PerJob]
    }

    /// Returns true if load balancing is enabled at all.
    #[must_use]
    pub fn is_enabled(self) -> bool {
        !matches!(self, LbStrategy::None)
    }
}

impl fmt::Display for AcStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AcStrategy::PerTask => "AC per task",
            AcStrategy::PerJob => "AC per job",
        })
    }
}

impl fmt::Display for IrStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IrStrategy::None => "no IR",
            IrStrategy::PerTask => "IR per task",
            IrStrategy::PerJob => "IR per job",
        })
    }
}

impl fmt::Display for LbStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LbStrategy::None => "no LB",
            LbStrategy::PerTask => "LB per task",
            LbStrategy::PerJob => "LB per job",
        })
    }
}

/// A full middleware service configuration: one strategy per axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Admission-control strategy.
    pub ac: AcStrategy,
    /// Idle-resetting strategy.
    pub ir: IrStrategy,
    /// Load-balancing strategy.
    pub lb: LbStrategy,
}

impl ServiceConfig {
    /// Creates a configuration without validating it; see
    /// [`ServiceConfig::validate`].
    #[must_use]
    pub fn new(ac: AcStrategy, ir: IrStrategy, lb: LbStrategy) -> Self {
        ServiceConfig { ac, ir, lb }
    }

    /// The paper's default configuration: per-task admission control, idle
    /// resetting and load balancing (§6).
    #[must_use]
    pub fn default_per_task() -> Self {
        ServiceConfig::new(AcStrategy::PerTask, IrStrategy::PerTask, LbStrategy::PerTask)
    }

    /// Checks the §4.5 validity rule.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] for the contradictory AC-per-task +
    /// IR-per-job combinations.
    pub fn validate(self) -> Result<(), InvalidConfigError> {
        if self.ac == AcStrategy::PerTask && self.ir == IrStrategy::PerJob {
            return Err(InvalidConfigError { config: self });
        }
        Ok(())
    }

    /// Returns true if the combination is one of the 15 reasonable ones.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.validate().is_ok()
    }

    /// All 18 combinations, in the paper's figure order (AC majors, then IR,
    /// then LB).
    #[must_use]
    pub fn all() -> Vec<ServiceConfig> {
        let mut out = Vec::with_capacity(18);
        for ac in AcStrategy::all() {
            for ir in IrStrategy::all() {
                for lb in LbStrategy::all() {
                    out.push(ServiceConfig::new(ac, ir, lb));
                }
            }
        }
        out
    }

    /// The 15 valid combinations, in the paper's figure order — the x-axis
    /// of Figures 5 and 6.
    #[must_use]
    pub fn all_valid() -> Vec<ServiceConfig> {
        ServiceConfig::all().into_iter().filter(|c| c.is_valid()).collect()
    }

    /// The figure label, e.g. `J_T_N`.
    #[must_use]
    pub fn label(self) -> String {
        format!("{}_{}_{}", self.ac.letter(), self.ir.letter(), self.lb.letter())
    }
}

impl fmt::Display for ServiceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl FromStr for ServiceConfig {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mk_err = || ParseConfigError { input: s.to_owned() };
        let mut parts = s.split('_');
        let ac = match parts.next().ok_or_else(mk_err)? {
            "T" => AcStrategy::PerTask,
            "J" => AcStrategy::PerJob,
            _ => return Err(mk_err()),
        };
        let ir = match parts.next().ok_or_else(mk_err)? {
            "N" => IrStrategy::None,
            "T" => IrStrategy::PerTask,
            "J" => IrStrategy::PerJob,
            _ => return Err(mk_err()),
        };
        let lb = match parts.next().ok_or_else(mk_err)? {
            "N" => LbStrategy::None,
            "T" => LbStrategy::PerTask,
            "J" => LbStrategy::PerJob,
            _ => return Err(mk_err()),
        };
        if parts.next().is_some() {
            return Err(mk_err());
        }
        Ok(ServiceConfig::new(ac, ir, lb))
    }
}

/// Error for the contradictory AC-per-task + IR-per-job combinations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfigError {
    /// The rejected configuration.
    pub config: ServiceConfig,
}

impl fmt::Display for InvalidConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration {}: per-job idle resetting removes periodic subjob \
             contributions that per-task admission control must keep reserved",
            self.config
        )
    }
}

impl std::error::Error for InvalidConfigError {}

/// Error parsing a `AC_IR_LB` label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid service configuration label {:?}: expected `<AC>_<IR>_<LB>` with \
             AC in {{T,J}} and IR/LB in {{N,T,J}}",
            self.input
        )
    }
}

impl std::error::Error for ParseConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_total_fifteen_valid() {
        assert_eq!(ServiceConfig::all().len(), 18);
        assert_eq!(ServiceConfig::all_valid().len(), 15);
    }

    #[test]
    fn only_ac_task_ir_job_is_invalid() {
        for cfg in ServiceConfig::all() {
            let expect_invalid = cfg.ac == AcStrategy::PerTask && cfg.ir == IrStrategy::PerJob;
            assert_eq!(!cfg.is_valid(), expect_invalid, "combination {cfg}");
        }
    }

    #[test]
    fn figure_order_matches_paper() {
        let labels: Vec<String> = ServiceConfig::all_valid().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "T_N_N", "T_N_T", "T_N_J", "T_T_N", "T_T_T", "T_T_J", "J_N_N", "J_N_T", "J_N_J",
                "J_T_N", "J_T_T", "J_T_J", "J_J_N", "J_J_T", "J_J_J",
            ]
        );
    }

    #[test]
    fn parse_display_round_trip() {
        for cfg in ServiceConfig::all() {
            let parsed: ServiceConfig = cfg.label().parse().unwrap();
            assert_eq!(parsed, cfg);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "X_N_N", "T_N", "T_N_N_N", "N_N_N", "T_X_N", "T_N_X", "tnn"] {
            assert!(bad.parse::<ServiceConfig>().is_err(), "input {bad:?}");
        }
    }

    #[test]
    fn invalid_error_is_explanatory() {
        let cfg: ServiceConfig = "T_J_T".parse().unwrap();
        let err = cfg.validate().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("T_J_T"));
        assert!(msg.contains("reserved"));
    }

    #[test]
    fn reset_scope_helpers() {
        assert!(!IrStrategy::None.resets_aperiodic());
        assert!(IrStrategy::PerTask.resets_aperiodic());
        assert!(!IrStrategy::PerTask.resets_periodic());
        assert!(IrStrategy::PerJob.resets_periodic());
        assert!(!LbStrategy::None.is_enabled());
        assert!(LbStrategy::PerJob.is_enabled());
    }

    #[test]
    fn default_per_task_is_paper_default() {
        let d = ServiceConfig::default_per_task();
        assert_eq!(d.label(), "T_T_T");
        assert!(d.is_valid());
    }
}
