//! The admission-control service (§4.2): on-line AUB schedulability tests
//! for dynamically arriving aperiodic and periodic tasks.
//!
//! The controller keeps the [`UtilizationLedger`] of synthetic utilization,
//! the registry of *current* entries (admitted jobs whose deadlines have not
//! expired, plus per-task reservations), and the configured
//! [`LoadBalancer`]. An arrival is admitted iff, after tentatively adding
//! its contributions under the proposed placement, the AUB condition holds
//! for it **and every current entry** — the tentative contributions are
//! rolled back on rejection, leaving the ledger untouched.
//!
//! Strategy semantics:
//!
//! * **AC per task** (periodic tasks): the test runs once, at the task's
//!   first arrival, with [`Lifetime::Reserved`] contributions kept for the
//!   task's lifetime; later jobs release immediately. A task that fails its
//!   first test is rejected permanently (until
//!   [`AdmissionController::withdraw_task`]).
//! * **AC per job**: every job is tested with contributions expiring at the
//!   job's absolute deadline; rejected jobs are *skipped* (criterion C1).
//! * **Aperiodic tasks** are always tested per arrival — each aperiodic job
//!   is "an independent aperiodic task with one release" (§5) — regardless
//!   of the AC strategy.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::admission::{AdmissionController, Decision};
//! use rtcm_core::strategy::ServiceConfig;
//! use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId};
//! use rtcm_core::time::{Duration, Time};
//!
//! let cfg: ServiceConfig = "J_N_N".parse()?;
//! let mut ac = AdmissionController::new(cfg, 2)?;
//!
//! let task = TaskBuilder::aperiodic(TaskId(0))
//!     .deadline(Duration::from_millis(100))
//!     .subtask(Duration::from_millis(10), ProcessorId(0), [])
//!     .build()?;
//!
//! match ac.handle_arrival(&task, 0, Time::ZERO)? {
//!     Decision::Accept { assignment, .. } => assert_eq!(assignment.len(), 1),
//!     Decision::Reject { .. } => unreachable!("an empty system admits a tiny task"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::aub::{bound_lhs, BOUND_EPSILON};
use crate::balance::{Assignment, LoadBalancer};
use crate::ledger::{ContributionKey, Lifetime, UtilizationLedger};
use crate::strategy::{AcStrategy, InvalidConfigError, ServiceConfig};
use crate::task::{JobId, ProcessorId, TaskId, TaskSpec};
use crate::time::Time;

/// Sentinel job sequence number used for per-task reservations, so reserved
/// contribution keys can never collide with real job keys.
pub const RESERVED_SEQ: u64 = u64::MAX;

/// Outcome of an admission test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Release the job under `assignment`.
    Accept {
        /// Placement to release under.
        assignment: Assignment,
        /// False when a per-task-admitted periodic task's later job passes
        /// through without a new test.
        newly_admitted: bool,
    },
    /// Do not release the job.
    Reject {
        /// Why the job was rejected.
        reason: RejectReason,
    },
}

impl Decision {
    /// Returns true for [`Decision::Accept`].
    #[must_use]
    pub fn is_accept(&self) -> bool {
        matches!(self, Decision::Accept { .. })
    }

    /// The assignment, if accepted.
    #[must_use]
    pub fn assignment(&self) -> Option<&Assignment> {
        match self {
            Decision::Accept { assignment, .. } => Some(assignment),
            Decision::Reject { .. } => None,
        }
    }
}

/// Why an arrival was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Admitting the arrival would violate the AUB condition for it or for
    /// a current task.
    Unschedulable,
    /// The owning periodic task already failed its per-task admission test.
    TaskPreviouslyRejected,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RejectReason::Unschedulable => "unschedulable under the AUB condition",
            RejectReason::TaskPreviouslyRejected => "task was rejected at its first arrival",
        })
    }
}

/// Errors for misuse of the admission controller (as opposed to legitimate
/// rejections, which are [`Decision::Reject`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The task references a processor outside the deployment.
    UnknownProcessor {
        /// The offending processor.
        processor: ProcessorId,
        /// Processors available.
        processor_count: usize,
    },
    /// The same job was offered twice.
    DuplicateArrival {
        /// The duplicated job.
        job: JobId,
    },
    /// A caller-supplied assignment does not fit the task's chain.
    InvalidAssignment {
        /// The owning task.
        task: TaskId,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownProcessor { processor, processor_count } => {
                write!(f, "task references {processor} outside 0..{processor_count}")
            }
            AdmissionError::DuplicateArrival { job } => {
                write!(f, "job {job} was already offered for admission")
            }
            AdmissionError::InvalidAssignment { task } => {
                write!(f, "assignment does not match the subtask chain of {task}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Counters exposed by the controller (diagnostics and the evaluation
/// harnesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AcStats {
    /// Arrivals offered (excluding pass-throughs of reserved tasks).
    pub tested: u64,
    /// Arrivals admitted by a fresh test.
    pub admitted: u64,
    /// Arrivals rejected (either test failure or previously-rejected task).
    pub rejected: u64,
    /// Job releases that passed through on an existing per-task reservation.
    pub pass_throughs: u64,
    /// Idle-reset reports applied.
    pub reset_reports: u64,
    /// Total synthetic utilization released early by idle resetting.
    pub reset_utilization: f64,
}

#[derive(Debug, Clone)]
struct CurrentEntry {
    job: JobId,
    visits: Vec<ProcessorId>,
    /// Subtask contributions not yet removed by idle resetting. Entries at
    /// zero are provably complete and are skipped by the bound check.
    outstanding: usize,
}

type EntryId = u64;

/// The configurable admission-control component (with its co-located load
/// balancer, mirroring the paper's central Task Manager processor).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: ServiceConfig,
    ledger: UtilizationLedger,
    balancer: LoadBalancer,
    entries: HashMap<EntryId, CurrentEntry>,
    by_job: HashMap<JobId, EntryId>,
    entry_expiry: BTreeSet<(Time, EntryId)>,
    reserved: HashMap<TaskId, EntryId>,
    rejected_tasks: HashSet<TaskId>,
    next_entry: EntryId,
    last_expire: Time,
    stats: AcStats,
}

impl AdmissionController {
    /// Creates a controller for `processor_count` processors.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] for the contradictory AC-per-task +
    /// IR-per-job combinations (§4.5).
    pub fn new(config: ServiceConfig, processor_count: usize) -> Result<Self, InvalidConfigError> {
        config.validate()?;
        Ok(AdmissionController {
            config,
            ledger: UtilizationLedger::new(processor_count),
            balancer: LoadBalancer::new(config.lb),
            entries: HashMap::new(),
            by_job: HashMap::new(),
            entry_expiry: BTreeSet::new(),
            reserved: HashMap::new(),
            rejected_tasks: HashSet::new(),
            next_entry: 0,
            last_expire: Time::ZERO,
            stats: AcStats::default(),
        })
    }

    /// The active service configuration.
    #[must_use]
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Read access to the synthetic-utilization ledger.
    #[must_use]
    pub fn ledger(&self) -> &UtilizationLedger {
        &self.ledger
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> AcStats {
        self.stats
    }

    /// Number of current registry entries (jobs + reservations).
    #[must_use]
    pub fn current_entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of per-task reservations held.
    #[must_use]
    pub fn reserved_tasks(&self) -> usize {
        self.reserved.len()
    }

    /// Handles the arrival of job `seq` of `task` at time `now`: proposes a
    /// placement via the configured load balancer and runs the admission
    /// test per the configured strategy.
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] on caller misuse (unknown processors,
    /// duplicate jobs); legitimate refusals come back as
    /// [`Decision::Reject`].
    pub fn handle_arrival(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
    ) -> Result<Decision, AdmissionError> {
        self.expire(now);
        self.check_processors(task)?;

        if let Some(decision) = self.try_pass_through(task)? {
            return Ok(decision);
        }
        let assignment = self.balancer.assignment_for(task, &self.ledger);
        self.admit_with_checked(task, seq, now, assignment)
    }

    /// Like [`AdmissionController::handle_arrival`] but with a
    /// caller-supplied placement (used by the runtime to time the balancer
    /// and the test separately, and by tests to force placements).
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::handle_arrival`], plus
    /// [`AdmissionError::InvalidAssignment`] if the placement does not cover
    /// the task's chain with declared candidates.
    pub fn admit_with(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        assignment: Assignment,
    ) -> Result<Decision, AdmissionError> {
        self.expire(now);
        self.check_processors(task)?;
        if !assignment.is_valid_for(task) {
            return Err(AdmissionError::InvalidAssignment { task: task.id() });
        }
        if let Some(decision) = self.try_pass_through(task)? {
            return Ok(decision);
        }
        self.admit_with_checked(task, seq, now, assignment)
    }

    /// Proposes a placement for `task` without running the admission test
    /// (the paper's "Location" call from AC to LB).
    pub fn propose_assignment(&mut self, task: &TaskSpec) -> Assignment {
        self.balancer.assignment_for(task, &self.ledger)
    }

    /// Records a job admitted by a *peer* controller, without running the
    /// admission test — the synchronization primitive of a **distributed**
    /// AC architecture (§3 discusses this as the alternative to the paper's
    /// centralized design: "the AC components on multiple processors may
    /// need to coordinate and synchronize with each other").
    ///
    /// Contributions are entered with the job's real deadline so expiry
    /// stays consistent across peers. Duplicate commits are ignored (the
    /// peer may re-broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] if the assignment does not fit the task
    /// or references unknown processors.
    pub fn apply_remote_commit(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        arrival: Time,
        assignment: &Assignment,
    ) -> Result<(), AdmissionError> {
        self.check_processors(task)?;
        if !assignment.is_valid_for(task) {
            return Err(AdmissionError::InvalidAssignment { task: task.id() });
        }
        let job = JobId::new(task.id(), seq);
        if self.by_job.contains_key(&job) {
            return Ok(()); // idempotent: already known
        }
        let deadline = arrival.saturating_add(task.deadline());
        if deadline <= self.ledger_now_floor() {
            return Ok(()); // stale commit: already past its deadline
        }
        for (subtask, processor) in assignment.iter() {
            let key = ContributionKey::new(job, subtask);
            // A collision here means the peer double-assigned; keep the
            // first contribution (idempotence beats precision for views).
            let _ = self.ledger.add(
                processor,
                key,
                task.subtask_utilization(subtask),
                Lifetime::UntilDeadline(deadline),
            );
        }
        let eid = self.next_entry;
        self.next_entry += 1;
        self.entries.insert(
            eid,
            CurrentEntry {
                job,
                visits: assignment.as_slice().to_vec(),
                outstanding: assignment.len(),
            },
        );
        self.by_job.insert(job, eid);
        self.entry_expiry.insert((deadline, eid));
        Ok(())
    }

    /// The most recent expiry point processed; remote commits whose
    /// deadlines are already behind it are dropped as stale. (Late
    /// insertions past this floor would still self-heal at the next
    /// [`AdmissionController::expire`] call; the floor just avoids the
    /// churn.)
    fn ledger_now_floor(&self) -> Time {
        self.last_expire
    }

    /// Applies an idle-reset report from processor `processor`: removes the
    /// listed completed contributions from the ledger. Returns the total
    /// synthetic utilization freed. Keys already expired are ignored.
    pub fn apply_idle_reset(&mut self, processor: ProcessorId, keys: &[ContributionKey]) -> f64 {
        let mut freed = 0.0;
        for key in keys {
            if let Some(u) = self.ledger.remove(processor, *key) {
                freed += u;
                if let Some(&eid) = self.by_job.get(&key.job) {
                    if let Some(entry) = self.entries.get_mut(&eid) {
                        entry.outstanding = entry.outstanding.saturating_sub(1);
                    }
                }
            }
        }
        self.stats.reset_reports += 1;
        self.stats.reset_utilization += freed;
        freed
    }

    /// Removes expired jobs from the current set (`S(t)`); called
    /// automatically at every arrival, and callable eagerly.
    pub fn expire(&mut self, now: Time) {
        self.last_expire = self.last_expire.max(now);
        self.ledger.expire_until(now);
        loop {
            let first = match self.entry_expiry.first() {
                Some(&(deadline, eid)) if deadline <= now => (deadline, eid),
                _ => break,
            };
            self.entry_expiry.remove(&first);
            if let Some(entry) = self.entries.remove(&first.1) {
                self.by_job.remove(&entry.job);
            }
        }
    }

    /// Withdraws a periodic task entirely: releases its reservation (if
    /// any), forgets its pinned placement and clears a previous rejection,
    /// allowing re-admission.
    pub fn withdraw_task(&mut self, task: TaskId) {
        if let Some(eid) = self.reserved.remove(&task) {
            if let Some(entry) = self.entries.remove(&eid) {
                self.by_job.remove(&entry.job);
                let reserved_job = JobId::new(task, RESERVED_SEQ);
                for (subtask, processor) in entry.visits.iter().enumerate() {
                    self.ledger.remove(*processor, ContributionKey::new(reserved_job, subtask));
                }
            }
        }
        self.rejected_tasks.remove(&task);
        self.balancer.forget_task(task);
    }

    /// True if `task` holds a per-task reservation.
    #[must_use]
    pub fn is_reserved(&self, task: TaskId) -> bool {
        self.reserved.contains_key(&task)
    }

    /// True if `task` was permanently rejected by a per-task test.
    #[must_use]
    pub fn is_rejected(&self, task: TaskId) -> bool {
        self.rejected_tasks.contains(&task)
    }

    fn check_processors(&self, task: &TaskSpec) -> Result<(), AdmissionError> {
        let count = self.ledger.processor_count();
        for sub in task.subtasks() {
            for candidate in sub.candidates() {
                if candidate.index() >= count {
                    return Err(AdmissionError::UnknownProcessor {
                        processor: candidate,
                        processor_count: count,
                    });
                }
            }
        }
        Ok(())
    }

    fn uses_reservation(&self, task: &TaskSpec) -> bool {
        task.is_periodic() && self.config.ac == AcStrategy::PerTask
    }

    /// Pre-test short-circuits for per-task periodic tasks: pass-through on
    /// an existing reservation, immediate reject after an earlier failure.
    fn try_pass_through(&mut self, task: &TaskSpec) -> Result<Option<Decision>, AdmissionError> {
        if !self.uses_reservation(task) {
            return Ok(None);
        }
        if self.rejected_tasks.contains(&task.id()) {
            self.stats.rejected += 1;
            return Ok(Some(Decision::Reject { reason: RejectReason::TaskPreviouslyRejected }));
        }
        if let Some(&eid) = self.reserved.get(&task.id()) {
            self.stats.pass_throughs += 1;
            // Under LB-per-job an accepted per-task task's plan "can be
            // changed for each job" (§5): try to relocate the reservation to
            // the currently least-loaded replicas, keeping the old plan if
            // the move would break the bound for anyone.
            let assignment = if self.config.lb == crate::strategy::LbStrategy::PerJob {
                self.relocate_reservation(task, eid)
            } else {
                Assignment::new(self.entries[&eid].visits.clone())
            };
            return Ok(Some(Decision::Accept { assignment, newly_admitted: false }));
        }
        Ok(None)
    }

    /// Moves a per-task reservation to a freshly balanced placement if that
    /// keeps the whole system schedulable; otherwise keeps the old plan.
    fn relocate_reservation(&mut self, task: &TaskSpec, eid: EntryId) -> Assignment {
        let old_visits = self.entries[&eid].visits.clone();
        let reserved_job = JobId::new(task.id(), RESERVED_SEQ);

        // Lift the old contributions out so the proposal does not see the
        // task's own load on its old processors.
        for (subtask, processor) in old_visits.iter().enumerate() {
            self.ledger.remove(*processor, ContributionKey::new(reserved_job, subtask));
        }
        let proposal = self.balancer.assignment_for(task, &self.ledger);
        for (subtask, processor) in proposal.iter() {
            self.ledger
                .add(
                    processor,
                    ContributionKey::new(reserved_job, subtask),
                    task.subtask_utilization(subtask),
                    Lifetime::Reserved,
                )
                .expect("reserved keys were just removed");
        }
        if let Some(entry) = self.entries.get_mut(&eid) {
            entry.visits = proposal.as_slice().to_vec();
        }

        if self.system_schedulable_with(proposal.as_slice()) {
            return proposal;
        }

        // Revert: the relocation would violate someone's bound.
        for (subtask, processor) in proposal.iter() {
            self.ledger.remove(processor, ContributionKey::new(reserved_job, subtask));
        }
        for (subtask, processor) in old_visits.iter().enumerate() {
            self.ledger
                .add(
                    *processor,
                    ContributionKey::new(reserved_job, subtask),
                    task.subtask_utilization(subtask),
                    Lifetime::Reserved,
                )
                .expect("restoring the original reservation cannot collide");
        }
        if let Some(entry) = self.entries.get_mut(&eid) {
            entry.visits = old_visits.clone();
        }
        Assignment::new(old_visits)
    }

    fn admit_with_checked(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        assignment: Assignment,
    ) -> Result<Decision, AdmissionError> {
        let job = JobId::new(task.id(), seq);
        if self.by_job.contains_key(&job) {
            return Err(AdmissionError::DuplicateArrival { job });
        }
        self.stats.tested += 1;

        let reserve = self.uses_reservation(task);
        let (key_job, lifetime, entry_deadline) = if reserve {
            (JobId::new(task.id(), RESERVED_SEQ), Lifetime::Reserved, Time::MAX)
        } else {
            let deadline = now.saturating_add(task.deadline());
            (job, Lifetime::UntilDeadline(deadline), deadline)
        };

        // Tentatively add the candidate's contributions.
        let mut added: Vec<(ProcessorId, ContributionKey)> = Vec::with_capacity(assignment.len());
        for (subtask, processor) in assignment.iter() {
            let key = ContributionKey::new(key_job, subtask);
            match self.ledger.add(processor, key, task.subtask_utilization(subtask), lifetime) {
                Ok(()) => added.push((processor, key)),
                Err(_) => {
                    for (p, k) in added {
                        self.ledger.remove(p, k);
                    }
                    return Err(AdmissionError::DuplicateArrival { job });
                }
            }
        }

        if self.system_schedulable_with(assignment.as_slice()) {
            let eid = self.next_entry;
            self.next_entry += 1;
            self.entries.insert(
                eid,
                CurrentEntry {
                    job,
                    visits: assignment.as_slice().to_vec(),
                    outstanding: assignment.len(),
                },
            );
            self.by_job.insert(job, eid);
            if reserve {
                self.reserved.insert(task.id(), eid);
            } else {
                self.entry_expiry.insert((entry_deadline, eid));
            }
            self.stats.admitted += 1;
            Ok(Decision::Accept { assignment, newly_admitted: true })
        } else {
            for (p, k) in added {
                self.ledger.remove(p, k);
            }
            if reserve {
                self.rejected_tasks.insert(task.id());
            }
            self.balancer.forget_task(task.id());
            self.stats.rejected += 1;
            Ok(Decision::Reject { reason: RejectReason::Unschedulable })
        }
    }

    /// Checks the AUB condition for the candidate visits *and* every
    /// outstanding current entry against the ledger (which already includes
    /// the candidate's tentative contributions).
    fn system_schedulable_with(&self, candidate_visits: &[ProcessorId]) -> bool {
        let u = self.ledger.utilizations();
        let candidate = bound_lhs(candidate_visits.iter().map(|p| u[p.index()]));
        if candidate > 1.0 + BOUND_EPSILON {
            return false;
        }
        self.entries.values().filter(|entry| entry.outstanding > 0).all(|entry| {
            bound_lhs(entry.visits.iter().map(|p| u[p.index()])) <= 1.0 + BOUND_EPSILON
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{IrStrategy, LbStrategy};
    use crate::task::TaskBuilder;
    use crate::time::Duration;

    fn cfg(label: &str) -> ServiceConfig {
        label.parse().unwrap()
    }

    fn at(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    /// One-stage aperiodic task with utilization `exec_ms / 100`.
    fn aperiodic(id: u32, exec_ms: u64, proc: u16) -> TaskSpec {
        TaskBuilder::aperiodic(TaskId(id))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(exec_ms), ProcessorId(proc), [])
            .build()
            .unwrap()
    }

    fn periodic(id: u32, exec_ms: u64, proc: u16) -> TaskSpec {
        TaskBuilder::periodic(TaskId(id), Duration::from_millis(100))
            .subtask(Duration::from_millis(exec_ms), ProcessorId(proc), [])
            .build()
            .unwrap()
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let err = AdmissionController::new(cfg("T_J_N"), 1).unwrap_err();
        assert_eq!(err.config.label(), "T_J_N");
    }

    #[test]
    fn admits_until_single_stage_bound() {
        // Single-stage tasks at U = 0.2 each: f(0.2) ≈ 0.225, f(0.4) = 0.533,
        // f(0.6) = inf-region (0.6 > 0.586 bound) -> third task rejected.
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        for (seq, id) in [(0u64, 0u32), (0, 1)] {
            let t = aperiodic(id, 20, 0);
            assert!(ac.handle_arrival(&t, seq, Time::ZERO).unwrap().is_accept(), "task {id}");
        }
        let t = aperiodic(2, 20, 0);
        let d = ac.handle_arrival(&t, 0, Time::ZERO).unwrap();
        assert_eq!(d, Decision::Reject { reason: RejectReason::Unschedulable });
        // Ledger unchanged by the rejection.
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn expired_jobs_free_capacity() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        for id in 0..2 {
            assert!(ac.handle_arrival(&aperiodic(id, 20, 0), 0, Time::ZERO).unwrap().is_accept());
        }
        assert!(!ac.handle_arrival(&aperiodic(2, 20, 0), 0, at(50)).unwrap().is_accept());
        // After both deadlines pass, the same task is admitted.
        assert!(ac.handle_arrival(&aperiodic(3, 20, 0), 0, at(100)).unwrap().is_accept());
        assert_eq!(ac.current_entries(), 1);
    }

    #[test]
    fn per_task_reserves_and_passes_through() {
        let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
        let t = periodic(0, 20, 0);
        let first = ac.handle_arrival(&t, 0, Time::ZERO).unwrap();
        assert_eq!(
            first,
            Decision::Accept {
                assignment: Assignment::new(vec![ProcessorId(0)]),
                newly_admitted: true
            }
        );
        assert!(ac.is_reserved(t.id()));
        // Second job passes through without a test, even long after.
        let second = ac.handle_arrival(&t, 1, at(100)).unwrap();
        assert!(matches!(second, Decision::Accept { newly_admitted: false, .. }));
        // Reservation persists beyond job deadlines.
        ac.expire(at(10_000));
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.2).abs() < 1e-12);
        assert_eq!(ac.stats().pass_throughs, 1);
    }

    #[test]
    fn per_task_rejection_is_sticky() {
        let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
        // Fill the processor so the periodic task fails its first test.
        for id in 0..2 {
            assert!(ac.handle_arrival(&aperiodic(id, 20, 0), 0, Time::ZERO).unwrap().is_accept());
        }
        let t = periodic(10, 25, 0);
        assert!(!ac.handle_arrival(&t, 0, Time::ZERO).unwrap().is_accept());
        assert!(ac.is_rejected(t.id()));
        // Even after the aperiodic load expires, the task stays rejected...
        let d = ac.handle_arrival(&t, 1, at(500)).unwrap();
        assert_eq!(d, Decision::Reject { reason: RejectReason::TaskPreviouslyRejected });
        // ...until withdrawn.
        ac.withdraw_task(t.id());
        assert!(ac.handle_arrival(&t, 2, at(600)).unwrap().is_accept());
    }

    #[test]
    fn per_job_periodic_skips_only_overloaded_jobs() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let hog = aperiodic(0, 40, 0);
        assert!(ac.handle_arrival(&hog, 0, Time::ZERO).unwrap().is_accept());
        let t = periodic(1, 25, 0);
        // Job 0 collides with the hog: f(0.4+0.25) = f(0.65) -> reject.
        assert!(!ac.handle_arrival(&t, 0, at(10)).unwrap().is_accept());
        // Job 1 arrives after the hog expired: accept.
        assert!(ac.handle_arrival(&t, 1, at(110)).unwrap().is_accept());
    }

    #[test]
    fn idle_reset_frees_capacity_early() {
        let mut ac = AdmissionController::new(cfg("J_J_N"), 1).unwrap();
        let a = aperiodic(0, 20, 0);
        let b = aperiodic(1, 20, 0);
        assert!(ac.handle_arrival(&a, 0, Time::ZERO).unwrap().is_accept());
        assert!(ac.handle_arrival(&b, 0, Time::ZERO).unwrap().is_accept());
        // System full; c would be rejected.
        let c = aperiodic(2, 20, 0);
        assert!(!ac.handle_arrival(&c, 0, at(1)).unwrap().is_accept());
        // a's subjob completes and the processor idles: reset.
        let freed = ac
            .apply_idle_reset(ProcessorId(0), &[ContributionKey::new(JobId::new(TaskId(0), 0), 0)]);
        assert!((freed - 0.2).abs() < 1e-12);
        assert!(ac.handle_arrival(&c, 1, at(2)).unwrap().is_accept());
        assert!(ac.stats().reset_utilization > 0.0);
    }

    #[test]
    fn reset_of_expired_key_is_noop() {
        let mut ac = AdmissionController::new(cfg("J_T_N"), 1).unwrap();
        let a = aperiodic(0, 20, 0);
        assert!(ac.handle_arrival(&a, 0, Time::ZERO).unwrap().is_accept());
        ac.expire(at(200));
        let freed = ac
            .apply_idle_reset(ProcessorId(0), &[ContributionKey::new(JobId::new(TaskId(0), 0), 0)]);
        assert_eq!(freed, 0.0);
    }

    #[test]
    fn fully_reset_entry_is_skipped_by_bound_check() {
        // Two-stage task over two processors; once both stages are reset,
        // a new arrival must not be blocked by the completed entry's bound.
        let two_stage = TaskBuilder::aperiodic(TaskId(0))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(30), ProcessorId(0), [])
            .subtask(Duration::from_millis(30), ProcessorId(1), [])
            .build()
            .unwrap();
        let mut ac = AdmissionController::new(cfg("J_J_N"), 2).unwrap();
        assert!(ac.handle_arrival(&two_stage, 0, Time::ZERO).unwrap().is_accept());
        let job = JobId::new(TaskId(0), 0);
        ac.apply_idle_reset(ProcessorId(0), &[ContributionKey::new(job, 0)]);
        ac.apply_idle_reset(ProcessorId(1), &[ContributionKey::new(job, 1)]);
        // Load both processors to U = 0.4 with fresh single-stage tasks. If
        // the fully-reset two-stage entry were still bound-checked, its sum
        // f(0.4) + f(0.4) ≈ 1.07 > 1 would block the second arrival.
        assert!(ac.handle_arrival(&aperiodic(1, 40, 0), 0, at(1)).unwrap().is_accept());
        assert!(ac.handle_arrival(&aperiodic(2, 40, 1), 0, at(1)).unwrap().is_accept());
    }

    #[test]
    fn duplicate_job_is_an_error() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = aperiodic(0, 10, 0);
        ac.handle_arrival(&t, 0, Time::ZERO).unwrap();
        let err = ac.handle_arrival(&t, 0, at(1)).unwrap_err();
        assert_eq!(err, AdmissionError::DuplicateArrival { job: JobId::new(TaskId(0), 0) });
    }

    #[test]
    fn unknown_processor_is_an_error() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = aperiodic(0, 10, 5);
        let err = ac.handle_arrival(&t, 0, Time::ZERO).unwrap_err();
        assert!(matches!(err, AdmissionError::UnknownProcessor { .. }));
    }

    #[test]
    fn admit_with_validates_assignment() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 2).unwrap();
        let t = aperiodic(0, 10, 0);
        let err =
            ac.admit_with(&t, 0, Time::ZERO, Assignment::new(vec![ProcessorId(1)])).unwrap_err();
        assert_eq!(err, AdmissionError::InvalidAssignment { task: TaskId(0) });
    }

    #[test]
    fn load_balancing_spreads_arrivals() {
        let mut ac = AdmissionController::new(
            ServiceConfig::new(AcStrategy::PerJob, IrStrategy::None, LbStrategy::PerJob),
            2,
        )
        .unwrap();
        let replicated = |id: u32| {
            TaskBuilder::aperiodic(TaskId(id))
                .deadline(Duration::from_millis(100))
                .subtask(Duration::from_millis(20), ProcessorId(0), [ProcessorId(1)])
                .build()
                .unwrap()
        };
        let d0 = ac.handle_arrival(&replicated(0), 0, Time::ZERO).unwrap();
        let d1 = ac.handle_arrival(&replicated(1), 0, Time::ZERO).unwrap();
        let p0 = d0.assignment().unwrap().processor(0);
        let p1 = d1.assignment().unwrap().processor(0);
        assert_ne!(p0, p1, "second arrival balances to the other processor");
    }

    #[test]
    fn per_task_reservation_relocates_under_lb_per_job() {
        // T_N_J: a reserved periodic task's plan follows the load each job.
        let mut ac = AdmissionController::new(cfg("T_N_J"), 2).unwrap();
        let replicated = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(20), ProcessorId(0), [ProcessorId(1)])
            .build()
            .unwrap();
        let first = ac.handle_arrival(&replicated, 0, Time::ZERO).unwrap();
        assert_eq!(first.assignment().unwrap().processor(0), ProcessorId(0));
        // Load P0 heavily with an aperiodic job; next periodic job should
        // relocate to P1.
        let hog = aperiodic(5, 30, 0);
        assert!(ac.handle_arrival(&hog, 0, at(1)).unwrap().is_accept());
        let second = ac.handle_arrival(&replicated, 1, at(2)).unwrap();
        assert_eq!(second.assignment().unwrap().processor(0), ProcessorId(1));
        // The reservation's utilization moved with it.
        assert!((ac.ledger().utilization(ProcessorId(1)) - 0.2).abs() < 1e-12);
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.3).abs() < 1e-12);
        assert!(matches!(second, Decision::Accept { newly_admitted: false, .. }));
    }

    #[test]
    fn relocation_reverts_when_it_would_break_the_bound() {
        let mut ac = AdmissionController::new(cfg("T_N_J"), 2).unwrap();
        // Two-stage reserved task pinned initially across P0 and P1.
        let spread = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(25), ProcessorId(0), [ProcessorId(1)])
            .subtask(Duration::from_millis(25), ProcessorId(1), [ProcessorId(0)])
            .build()
            .unwrap();
        assert!(ac.handle_arrival(&spread, 0, Time::ZERO).unwrap().is_accept());
        // A second identical task: bounds hold in the spread placement
        // (f(0.5)+f(0.5) = 1.5 > 1? no — need per-processor 0.5 only if both
        // land together). Verify ledger stays consistent regardless of the
        // decision: total reserved utilization must be conserved.
        let spread2 = TaskBuilder::periodic(TaskId(1), Duration::from_millis(100))
            .subtask(Duration::from_millis(25), ProcessorId(0), [ProcessorId(1)])
            .subtask(Duration::from_millis(25), ProcessorId(1), [ProcessorId(0)])
            .build()
            .unwrap();
        let _ = ac.handle_arrival(&spread2, 0, at(1)).unwrap();
        let before: f64 = ac.ledger().utilizations().iter().sum();
        let _ = ac.handle_arrival(&spread, 1, at(2)).unwrap();
        let after: f64 = ac.ledger().utilizations().iter().sum();
        assert!((before - after).abs() < 1e-12, "relocation conserves reserved load");
    }

    #[test]
    fn remote_commit_counts_against_local_admission() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let peer_job = aperiodic(0, 40, 0);
        ac.apply_remote_commit(&peer_job, 0, Time::ZERO, &Assignment::new(vec![ProcessorId(0)]))
            .unwrap();
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.4).abs() < 1e-12);
        // A local arrival that would overflow together with the remote one
        // is rejected.
        let local = aperiodic(1, 30, 0);
        assert!(!ac.handle_arrival(&local, 0, at(1)).unwrap().is_accept());
        // After the remote job's deadline the capacity frees up.
        assert!(ac.handle_arrival(&local, 1, at(150)).unwrap().is_accept());
    }

    #[test]
    fn remote_commit_is_idempotent() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = aperiodic(0, 20, 0);
        let plan = Assignment::new(vec![ProcessorId(0)]);
        ac.apply_remote_commit(&t, 0, Time::ZERO, &plan).unwrap();
        ac.apply_remote_commit(&t, 0, Time::ZERO, &plan).unwrap();
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.2).abs() < 1e-12);
        assert_eq!(ac.current_entries(), 1);
    }

    #[test]
    fn stale_remote_commit_is_dropped() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        ac.expire(at(500));
        let t = aperiodic(0, 20, 0);
        // Deadline at 100ms is behind the expiry floor of 500ms.
        ac.apply_remote_commit(&t, 0, Time::ZERO, &Assignment::new(vec![ProcessorId(0)])).unwrap();
        assert_eq!(ac.ledger().utilization(ProcessorId(0)), 0.0);
        assert_eq!(ac.current_entries(), 0);
    }

    #[test]
    fn remote_commit_validates_inputs() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = aperiodic(0, 20, 0);
        let err = ac.apply_remote_commit(&t, 0, Time::ZERO, &Assignment::new(vec![])).unwrap_err();
        assert_eq!(err, AdmissionError::InvalidAssignment { task: TaskId(0) });
        let far = aperiodic(1, 20, 9);
        let err = ac
            .apply_remote_commit(&far, 0, Time::ZERO, &Assignment::new(vec![ProcessorId(9)]))
            .unwrap_err();
        assert!(matches!(err, AdmissionError::UnknownProcessor { .. }));
    }

    #[test]
    fn stats_count_all_paths() {
        let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
        let t = periodic(0, 20, 0);
        ac.handle_arrival(&t, 0, Time::ZERO).unwrap();
        ac.handle_arrival(&t, 1, at(1)).unwrap();
        let hog = periodic(1, 60, 0);
        ac.handle_arrival(&hog, 0, at(2)).unwrap();
        let s = ac.stats();
        assert_eq!(s.tested, 2);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.pass_throughs, 1);
    }
}
