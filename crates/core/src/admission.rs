//! The admission-control service (§4.2): on-line AUB schedulability tests
//! for dynamically arriving aperiodic and periodic tasks.
//!
//! The controller keeps the [`UtilizationLedger`] of synthetic utilization,
//! the registry of *current* entries (admitted jobs whose deadlines have not
//! expired, plus per-task reservations), and the configured
//! [`LoadBalancer`]. An arrival is admitted iff, after tentatively adding
//! its contributions under the proposed placement, the AUB condition holds
//! for it **and every current entry** — the tentative contributions are
//! rolled back on rejection, leaving the ledger untouched.
//!
//! Strategy semantics:
//!
//! * **AC per task** (periodic tasks): the test runs once, at the task's
//!   first arrival, with [`Lifetime::Reserved`] contributions kept for the
//!   task's lifetime; later jobs release immediately. A task that fails its
//!   first test is rejected permanently (until
//!   [`AdmissionController::withdraw_task`]).
//! * **AC per job**: every job is tested with contributions expiring at the
//!   job's absolute deadline; rejected jobs are *skipped* (criterion C1).
//! * **Aperiodic tasks** are always tested per arrival — each aperiodic job
//!   is "an independent aperiodic task with one release" (§5) — regardless
//!   of the AC strategy.
//!
//! # Incremental bound maintenance
//!
//! The naive test is O(current set × visits) per arrival. This controller
//! instead caches each current entry's AUB sum `Σ_j f(U_{V_ij})` and keeps
//! a per-processor inverted index of the entries visiting it: every ledger
//! mutation flows through one funnel that delta-applies `f(U_new) −
//! f(U_old)` to exactly the entries listed under the *touched* processors.
//! `f` depends only on a processor's synthetic utilization, so an entry
//! visiting no touched processor has a provably unchanged sum — the
//! decision then costs O(candidate visits + touched entries). The original
//! scan survives as [`AdmissionController::system_schedulable_brute`] (see
//! [`AdmissionMode`]), serving as the differential-testing oracle
//! (`crates/core/tests/differential.rs`) and the ablation baseline
//! (`micro_admission` bench).
//!
//! # Examples
//!
//! ```
//! use rtcm_core::admission::{AdmissionController, Decision};
//! use rtcm_core::strategy::ServiceConfig;
//! use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId};
//! use rtcm_core::time::{Duration, Time};
//!
//! let cfg: ServiceConfig = "J_N_N".parse()?;
//! let mut ac = AdmissionController::new(cfg, 2)?;
//!
//! let task = TaskBuilder::aperiodic(TaskId(0))
//!     .deadline(Duration::from_millis(100))
//!     .subtask(Duration::from_millis(10), ProcessorId(0), [])
//!     .build()?;
//!
//! match ac.handle_arrival(&task, 0, Time::ZERO)? {
//!     Decision::Accept { assignment, .. } => assert_eq!(assignment.len(), 1),
//!     Decision::Reject { .. } => unreachable!("an empty system admits a tiny task"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::aub::{aub_delta, aub_term, bound_lhs, BOUND_EPSILON};
use crate::balance::{Assignment, LoadBalancer};
use crate::ledger::{ContributionKey, LedgerError, Lifetime, UtilizationLedger};
use crate::reconfig::{HandoverReport, ReconfigPlan, TransitionStep};
use crate::strategy::{AcStrategy, InvalidConfigError, ServiceConfig};
use crate::task::{JobId, ProcessorId, TaskId, TaskSet, TaskSpec};
use crate::time::Time;

/// Sentinel job sequence number used for per-task reservations, so reserved
/// contribution keys can never collide with real job keys.
pub const RESERVED_SEQ: u64 = u64::MAX;

/// Job sequence numbers at or above this value are sentinels owned by the
/// controller ([`RESERVED_SEQ`] plus the per-drain ids handed out when a
/// reservation is converted to deadline-bound contributions during a
/// reconfiguration). Real jobs must stay below it — enforced at every
/// arrival entry point ([`AdmissionError::SentinelSequence`]); at one
/// drain per nanosecond the space still lasts decades.
pub const SENTINEL_SEQ_FLOOR: u64 = u64::MAX - (1 << 40);

/// How the controller evaluates the system-wide AUB condition per decision.
///
/// Both modes keep the same bookkeeping (inverted index + cached per-entry
/// sums), so switching modes mid-flight is free; the mode only selects the
/// decision procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AdmissionMode {
    /// Maintain each current entry's AUB sum `Σ_j f(U_{V_ij})` incrementally
    /// through the per-processor inverted index: a ledger mutation touching
    /// processor `p` delta-applies `f(U_new) − f(U_old)` to exactly the
    /// entries visiting `p`; every other entry's sum is provably unchanged.
    /// A decision then costs O(candidate visits + touched entries) instead
    /// of O(current set × visits).
    #[default]
    Incremental,
    /// Re-evaluate every current entry's bound per decision — the original
    /// O(current set × visits) scan, kept alive as the differential-testing
    /// oracle and the ablation baseline (see
    /// [`AdmissionController::system_schedulable_brute`]).
    BruteForce,
}

impl fmt::Display for AdmissionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdmissionMode::Incremental => "incremental",
            AdmissionMode::BruteForce => "brute-force",
        })
    }
}

/// Outcome of an admission test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Release the job under `assignment`.
    Accept {
        /// Placement to release under.
        assignment: Assignment,
        /// False when a per-task-admitted periodic task's later job passes
        /// through without a new test.
        newly_admitted: bool,
    },
    /// Do not release the job.
    Reject {
        /// Why the job was rejected.
        reason: RejectReason,
    },
}

impl Decision {
    /// Returns true for [`Decision::Accept`].
    #[must_use]
    pub fn is_accept(&self) -> bool {
        matches!(self, Decision::Accept { .. })
    }

    /// The assignment, if accepted.
    #[must_use]
    pub fn assignment(&self) -> Option<&Assignment> {
        match self {
            Decision::Accept { assignment, .. } => Some(assignment),
            Decision::Reject { .. } => None,
        }
    }
}

/// Why an arrival was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Admitting the arrival would violate the AUB condition for it or for
    /// a current task.
    Unschedulable,
    /// The owning periodic task already failed its per-task admission test.
    TaskPreviouslyRejected,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RejectReason::Unschedulable => "unschedulable under the AUB condition",
            RejectReason::TaskPreviouslyRejected => "task was rejected at its first arrival",
        })
    }
}

/// Errors for misuse of the admission controller (as opposed to legitimate
/// rejections, which are [`Decision::Reject`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The task references a processor outside the deployment.
    UnknownProcessor {
        /// The offending processor.
        processor: ProcessorId,
        /// Processors available.
        processor_count: usize,
    },
    /// The same job was offered twice.
    DuplicateArrival {
        /// The duplicated job.
        job: JobId,
    },
    /// A caller-supplied assignment does not fit the task's chain.
    InvalidAssignment {
        /// The owning task.
        task: TaskId,
    },
    /// The job's sequence number lies in the controller-owned sentinel
    /// range at or above [`SENTINEL_SEQ_FLOOR`] (reservation and drain
    /// ids); admitting it could collide with handover bookkeeping.
    SentinelSequence {
        /// The offending job.
        job: JobId,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownProcessor { processor, processor_count } => {
                write!(f, "task references {processor} outside 0..{processor_count}")
            }
            AdmissionError::DuplicateArrival { job } => {
                write!(f, "job {job} was already offered for admission")
            }
            AdmissionError::InvalidAssignment { task } => {
                write!(f, "assignment does not match the subtask chain of {task}")
            }
            AdmissionError::SentinelSequence { job } => {
                write!(
                    f,
                    "job {job} uses a sequence number in the controller-owned sentinel range \
                     (>= {SENTINEL_SEQ_FLOOR})"
                )
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Counters exposed by the controller (diagnostics and the evaluation
/// harnesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AcStats {
    /// Arrivals offered (excluding pass-throughs of reserved tasks).
    pub tested: u64,
    /// Arrivals admitted by a fresh test.
    pub admitted: u64,
    /// Arrivals rejected (either test failure or previously-rejected task).
    pub rejected: u64,
    /// Job releases that passed through on an existing per-task reservation.
    pub pass_throughs: u64,
    /// Idle-reset reports applied.
    pub reset_reports: u64,
    /// Total synthetic utilization released early by idle resetting.
    pub reset_utilization: f64,
}

#[derive(Debug, Clone)]
struct CurrentEntry {
    job: JobId,
    visits: Vec<ProcessorId>,
    /// Subtask contributions not yet removed by idle resetting. Entries at
    /// zero are provably complete and are skipped by the bound check.
    outstanding: usize,
    /// Registration generation, unique per [`register_entry`] call. Heap
    /// entries in `entry_expiry` carry the generation they were queued
    /// for, so an entry unregistered early (reservation reseeding converts
    /// entries in place) can never be aliased by a recycled slot when its
    /// stale heap entry finally surfaces.
    gen: u64,
}

/// The per-entry state the delta-application inner loop touches, kept in a
/// dense parallel array (16 bytes per slot) so a funnel pass stays cache
/// resident even with ten-thousand-entry current sets.
#[derive(Debug, Clone, Copy)]
struct HotEntry {
    /// Cached left-hand side of eq. 1 for this entry under the *current*
    /// ledger utilizations: `Σ_j f(U_{V_ij})` over the entry's visits.
    /// Maintained incrementally — when a ledger mutation moves processor
    /// `p` from `U_old` to `U_new`, every entry visiting `p` receives
    /// `multiplicity × (f(U_new) − f(U_old))`; entries not visiting any
    /// touched processor keep a bound sum that is exactly unchanged.
    cached_lhs: f64,
    /// True while `counted` and `cached_lhs` exceeds the bound; mirrored
    /// into the controller's `violating_count` so the incremental
    /// admission condition is a single integer comparison.
    violating: bool,
    /// Mirror of `outstanding > 0`: entries fully idle-reset are excluded
    /// from the admission condition.
    counted: bool,
}

impl HotEntry {
    fn is_violating(&self) -> bool {
        self.counted && self.cached_lhs > 1.0 + BOUND_EPSILON
    }
}

/// Index into the controller's entry slab. Slots are recycled through a
/// free list; the lazy registry-expiry heap guards against recycled-slot
/// aliasing with per-registration generation stamps (see
/// [`CurrentEntry::gen`]): a heap entry only unregisters the slot if the
/// generation still matches.
pub(crate) type EntryId = usize;

/// An extra predicate AND-ed into the system-wide schedulability check,
/// evaluated against the controller *after* the candidate's tentative
/// contributions are in the ledger and only once the controller's own
/// check has passed. The sharded admission plane threads its cross-shard
/// condition (foreign-shard summaries + cross-registered entries) through
/// here so every guarded decision point — admission, reservation
/// relocation, reseeding — applies it at exactly the same place the
/// monolithic check runs.
pub(crate) type ExtraCheck<'a> = &'a dyn Fn(&AdmissionController) -> bool;

/// A read-only view of one current entry's AUB bookkeeping, exposed for
/// the design-time auditor (`rtcm_core::analysis::audit_controller`) and
/// the differential test harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntryBound {
    /// The owning job (for reservations, the task's first admitted job).
    pub job: JobId,
    /// The incrementally maintained sum `Σ_j f(U_{V_ij})`.
    pub cached_lhs: f64,
    /// The same sum recomputed from scratch against the live ledger.
    pub fresh_lhs: f64,
    /// Subtask contributions not yet idle-reset; entries at zero are
    /// excluded from the admission condition.
    pub outstanding: usize,
}

/// One record of [`AdmissionController::apply_remote_commits`]: a job a
/// peer controller admitted, to be entered without a local test.
#[derive(Debug, Clone, Copy)]
pub struct RemoteCommit<'a> {
    /// The admitted task.
    pub task: &'a TaskSpec,
    /// The job's sequence number.
    pub seq: u64,
    /// The job's arrival time (its deadline is `arrival + task.deadline()`).
    pub arrival: Time,
    /// The placement the peer admitted it under.
    pub assignment: &'a Assignment,
}

/// What [`AdmissionController::reconcile_detailed`] corrected: the largest
/// absolute drift found anywhere, attributed to a processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DriftReport {
    /// Largest absolute correction applied to any ledger total or cached
    /// AUB sum.
    pub max_drift: f64,
    /// The processor the largest correction is attributed to: the drifted
    /// ledger total's own processor, or a drifted entry's first visit.
    /// `None` when nothing was corrected.
    pub worst_processor: Option<ProcessorId>,
}

/// The configurable admission-control component (with its co-located load
/// balancer, mirroring the paper's central Task Manager processor).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: ServiceConfig,
    mode: AdmissionMode,
    ledger: UtilizationLedger,
    balancer: LoadBalancer,
    /// Slab of current entries, indexed by [`EntryId`]; `None` slots are
    /// recycled through `free_entries`. Dense storage keeps the
    /// delta-application inner loop free of hashing.
    entries: Vec<Option<CurrentEntry>>,
    /// Parallel hot array for `entries` (same indices); free slots hold
    /// stale values that are re-seeded on registration.
    hot: Vec<HotEntry>,
    free_entries: Vec<EntryId>,
    live_entries: usize,
    by_job: HashMap<JobId, EntryId>,
    /// Min-heap of (deadline, entry, generation) registry expiries, with
    /// lazy deletion: a popped record whose generation no longer matches
    /// the slot (the entry was unregistered early, e.g. converted into a
    /// reservation by a reconfiguration) is discarded.
    entry_expiry: BinaryHeap<Reverse<(Time, EntryId, u64)>>,
    reserved: HashMap<TaskId, EntryId>,
    rejected_tasks: HashSet<TaskId>,
    /// Inverted index: processor → entries visiting it, one record per
    /// visit (an entry visiting a processor twice appears twice, which
    /// makes a per-record delta application equivalent to multiplying by
    /// the visit multiplicity). The touched-set of any ledger mutation is
    /// read from here instead of scanning the whole current set; dense
    /// buckets keep that inner loop hash-free.
    proc_index: Vec<Vec<EntryId>>,
    /// Number of entries with `outstanding > 0` whose cached AUB sum
    /// exceeds `1 + BOUND_EPSILON`. The incremental admission condition is
    /// `violating_count == 0` (plus the candidate's own bound) — remote
    /// commits can legitimately push current entries over the bound, so
    /// this is not always zero.
    violating_count: usize,
    /// Reusable buffer for the funnel's touched-processor record (avoids a
    /// per-decision allocation on the hot path).
    scratch_touched: Vec<(usize, f64)>,
    /// Next sentinel sequence number for drained reservations, counting
    /// down from just below [`RESERVED_SEQ`]. Uniqueness keeps a drained
    /// reservation's registry entry and ledger keys from ever colliding
    /// with a later reservation (or drain) of the same task.
    next_drain_seq: u64,
    /// Source of registry-entry generation stamps (see
    /// [`CurrentEntry::gen`]).
    next_entry_gen: u64,
    /// Monotone state-revision counter, bumped at least once by every
    /// mutation that can change a published shard summary (ledger epoch
    /// settles, entry registration/unregistration). The sharded plane
    /// stamps its published `(sum, violating, revision)` summaries with
    /// this, so a summary whose revision still matches is provably
    /// current.
    revision: u64,
    last_expire: Time,
    stats: AcStats,
}

impl AdmissionController {
    /// Creates a controller for `processor_count` processors in the default
    /// [`AdmissionMode::Incremental`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] for the contradictory AC-per-task +
    /// IR-per-job combinations (§4.5).
    pub fn new(config: ServiceConfig, processor_count: usize) -> Result<Self, InvalidConfigError> {
        Self::with_mode(config, processor_count, AdmissionMode::default())
    }

    /// Creates a controller with an explicit [`AdmissionMode`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] for the contradictory AC-per-task +
    /// IR-per-job combinations (§4.5).
    pub fn with_mode(
        config: ServiceConfig,
        processor_count: usize,
        mode: AdmissionMode,
    ) -> Result<Self, InvalidConfigError> {
        config.validate()?;
        Ok(AdmissionController {
            config,
            mode,
            ledger: UtilizationLedger::new(processor_count),
            balancer: LoadBalancer::new(config.lb),
            entries: Vec::new(),
            hot: Vec::new(),
            free_entries: Vec::new(),
            live_entries: 0,
            by_job: HashMap::new(),
            entry_expiry: BinaryHeap::new(),
            reserved: HashMap::new(),
            rejected_tasks: HashSet::new(),
            proc_index: vec![Vec::new(); processor_count],
            violating_count: 0,
            scratch_touched: Vec::new(),
            next_drain_seq: RESERVED_SEQ - 1,
            next_entry_gen: 1,
            revision: 0,
            last_expire: Time::ZERO,
            stats: AcStats::default(),
        })
    }

    /// The active service configuration.
    #[must_use]
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The active admission mode.
    #[must_use]
    pub fn mode(&self) -> AdmissionMode {
        self.mode
    }

    /// Switches the admission mode. Free at any point: both modes maintain
    /// the same incremental bookkeeping, the mode only selects the decision
    /// procedure.
    pub fn set_mode(&mut self, mode: AdmissionMode) {
        self.mode = mode;
    }

    /// Hot-swaps the full service configuration, executing the
    /// [`ReconfigPlan`] between the current and the target configuration
    /// (§5's run-time attribute modification, generalized to all three
    /// axes).
    ///
    /// The handover keeps every admitted job's ledger contributions — and
    /// therefore its AUB guarantee — across the swap:
    ///
    /// * **AC per-task → per-job** (*drain*): each reservation's
    ///   contributions are converted in place to deadline-bound entries
    ///   expiring at `now + deadline(task)`, the latest instant any job
    ///   released under the reservation can still be running toward its
    ///   deadline. In-flight jobs stay covered; the capacity frees once
    ///   they cannot exist anymore. Sticky per-task rejections are
    ///   cleared. Reservations of tasks absent from `tasks` have no known
    ///   deadline horizon and are withdrawn outright.
    /// * **AC per-job → per-task** (*reseed*): each periodic task with a
    ///   live current entry is re-reserved on its most recent placement,
    ///   guarded by the same system-wide AUB check an admission runs — a
    ///   reseed that would violate any current entry's bound is skipped
    ///   (the task is simply tested at its next arrival). Reseeds are
    ///   processed in ascending task-id order for determinism.
    /// * **IR swaps** need no ledger work (the strategy only selects which
    ///   completions get reported); **LB swaps** forget pinned plans.
    ///
    /// Validation is atomic: an invalid target (§4.5) returns an error
    /// with the controller untouched.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] for invalid target combinations.
    pub fn reconfigure(
        &mut self,
        target: ServiceConfig,
        now: Time,
        tasks: &TaskSet,
    ) -> Result<HandoverReport, InvalidConfigError> {
        let plan = ReconfigPlan::between(self.config, target)?;
        self.expire(now);
        let mut report = HandoverReport::new(self.config, target);
        for step in plan.steps().to_vec() {
            match step {
                TransitionStep::DrainReservations => {
                    self.drain_reservations(now, tasks, &mut report);
                    report.rejections_cleared = self.rejected_tasks.len();
                    self.rejected_tasks.clear();
                }
                TransitionStep::ReseedReservations => {
                    self.reseed_reservations(tasks, &mut report);
                }
                TransitionStep::SwapIr(_) => {}
                TransitionStep::SwapLb(lb) => {
                    report.pins_forgotten = self.balancer.set_strategy(lb);
                }
            }
        }
        self.config = target;
        report.entries_carried = self.live_entries;
        Ok(report)
    }

    /// AC per-task → per-job handover: convert every reservation into
    /// deadline-bound contributions under a fresh sentinel job id (so the
    /// reserved key space is immediately free for a later reseed), keeping
    /// utilization per processor exactly unchanged.
    pub(crate) fn drain_reservations(
        &mut self,
        now: Time,
        tasks: &TaskSet,
        report: &mut HandoverReport,
    ) {
        let mut drained: Vec<TaskId> = self.reserved.keys().copied().collect();
        drained.sort_unstable();
        for task_id in drained {
            self.drain_reserved_task(task_id, now, tasks, report);
        }
    }

    /// Drains a single task's reservation (the loop body of
    /// [`AdmissionController::drain_reservations`]). Split out so the
    /// sharded plane can interleave drains from several shards in one
    /// global ascending task-id order, reproducing the monolithic
    /// handover's per-processor operation sequence exactly. No-op if the
    /// task holds no reservation here.
    pub(crate) fn drain_reserved_task(
        &mut self,
        task_id: TaskId,
        now: Time,
        tasks: &TaskSet,
        report: &mut HandoverReport,
    ) {
        let Some(eid) = self.reserved.remove(&task_id) else { return };
        {
            let Some(entry) = self.unregister_entry(eid) else { return };
            let reserved_job = JobId::new(task_id, RESERVED_SEQ);
            let Some(task) = tasks.get(task_id) else {
                // No deadline horizon known: withdraw the reservation.
                self.mutate_ledger(|ledger| {
                    for (subtask, processor) in entry.visits.iter().enumerate() {
                        ledger.remove(*processor, ContributionKey::new(reserved_job, subtask));
                    }
                });
                report.reservations_withdrawn += 1;
                return;
            };
            let deadline = now.saturating_add(task.deadline());
            self.next_drain_seq -= 1;
            let drained_job = JobId::new(task_id, self.next_drain_seq);
            self.mutate_ledger(|ledger| {
                for (subtask, processor) in entry.visits.iter().enumerate() {
                    if let Some(u) =
                        ledger.remove(*processor, ContributionKey::new(reserved_job, subtask))
                    {
                        ledger
                            .add(
                                *processor,
                                ContributionKey::new(drained_job, subtask),
                                u,
                                Lifetime::UntilDeadline(deadline),
                            )
                            .expect("drain ids are unique, so the key is free");
                    }
                }
            });
            let new_eid = self.register_entry(drained_job, entry.visits.clone());
            self.entry_expiry.push(Reverse((deadline, new_eid, self.entry(new_eid).gen)));
            report.reservations_drained += 1;
        }
    }

    /// AC per-job → per-task handover: re-reserve periodic tasks from
    /// their most recent live entry.
    ///
    /// The normal case is an *in-place conversion* — the exact inverse of
    /// [`AdmissionController::drain_reservations`]: the latest intact
    /// entry's deadline-bound contributions are re-keyed as the task's
    /// reservation, a net-zero utilization move, guarded by the same
    /// system-wide AUB condition an admission checks (a violated system —
    /// e.g. under un-tested remote load — refuses to extend guarantees
    /// indefinitely, and the task is simply re-tested at its next
    /// arrival). Entries already partially freed by idle resetting cannot
    /// be converted exactly, so those tasks reseed *additively*: the full
    /// reservation is added on top of the remaining contributions, under
    /// the same guard. Candidates are processed in ascending task-id
    /// order for determinism.
    fn reseed_reservations(&mut self, tasks: &TaskSet, report: &mut HandoverReport) {
        for (task_id, eid) in self.reseed_candidates(tasks) {
            self.try_reseed_candidate(task_id, eid, tasks, None, report);
        }
    }

    /// The reseed candidate list: the latest live entry per periodic task,
    /// in ascending task-id order. Split out so the sharded plane can merge
    /// candidate lists across shards and drive each attempt under its own
    /// cross-shard guard.
    pub(crate) fn reseed_candidates(&self, tasks: &TaskSet) -> Vec<(TaskId, EntryId)> {
        // Latest live entry per periodic task = the placement evidence. A
        // drained leftover from an earlier per-task phase (sentinel seq)
        // outranks real jobs: it carries the old reservation's placement.
        let mut latest: HashMap<TaskId, (u64, EntryId)> = HashMap::new();
        for (eid, entry) in self.entries.iter().enumerate() {
            let Some(entry) = entry else { continue };
            if !tasks.get(entry.job.task).is_some_and(TaskSpec::is_periodic) {
                continue;
            }
            let slot = latest.entry(entry.job.task).or_insert((entry.job.seq, eid));
            if entry.job.seq >= slot.0 {
                *slot = (entry.job.seq, eid);
            }
        }
        let mut candidates: Vec<(TaskId, EntryId)> =
            latest.into_iter().map(|(task, (_, eid))| (task, eid)).collect();
        candidates.sort_by_key(|(task, _)| *task);
        candidates
    }

    /// One reseed attempt (see [`AdmissionController::reseed_reservations`]
    /// for the semantics); `extra` joins the AUB guard at the same point an
    /// admission would evaluate it.
    pub(crate) fn try_reseed_candidate(
        &mut self,
        task_id: TaskId,
        eid: EntryId,
        tasks: &TaskSet,
        extra: Option<ExtraCheck<'_>>,
        report: &mut HandoverReport,
    ) {
        if self.reserved.contains_key(&task_id) {
            return;
        }
        let entry = self.entry(eid);
        let visits = entry.visits.clone();
        let old_job = entry.job;
        let task = tasks.get(task_id).expect("filtered on membership above");
        let reserved_job = JobId::new(task_id, RESERVED_SEQ);
        // Intact = convertible: nothing idle-reset yet *and* every
        // ledger key actually present (a remote-commit collision can
        // leave an entry with fewer keys than visits). The
        // utilization-neutrality premise of the up-front AUB guard
        // below rests on this, so it is checked, not assumed.
        let intact = entry.outstanding == visits.len()
            && visits.iter().enumerate().all(|(subtask, processor)| {
                self.ledger
                    .contribution(*processor, ContributionKey::new(old_job, subtask))
                    .is_some()
            });

        if intact {
            // The conversion is utilization-neutral, so the guard can
            // run up front and no rollback path is needed. Its stale
            // expiry-heap record is discarded by the generation check.
            if !self.system_schedulable_with(&visits, extra) {
                report.reseeds_skipped += 1;
                return;
            }
            self.unregister_entry(eid);
            self.mutate_ledger(|ledger| {
                for (subtask, processor) in visits.iter().enumerate() {
                    let u = ledger
                        .remove(*processor, ContributionKey::new(old_job, subtask))
                        .expect("intact entries hold every contribution (checked above)");
                    ledger
                        .add(
                            *processor,
                            ContributionKey::new(reserved_job, subtask),
                            u,
                            Lifetime::Reserved,
                        )
                        .expect("the reserved key space was free");
                }
            });
            let new_eid = self.register_entry(old_job, visits);
            self.reserved.insert(task_id, new_eid);
            report.reservations_reseeded += 1;
            return;
        }

        // Additive fallback: the partial entry keeps its remaining
        // contributions until its deadline; the reservation is added
        // fresh, guarded by the post-addition system-wide check.
        self.ledger.begin_touch_epoch();
        for (subtask, processor) in visits.iter().enumerate() {
            self.ledger
                .add(
                    *processor,
                    ContributionKey::new(reserved_job, subtask),
                    task.subtask_utilization(subtask),
                    Lifetime::Reserved,
                )
                .expect("the reserved key space was free");
        }
        self.settle_epoch();
        if self.system_schedulable_with(&visits, extra) {
            let new_eid = self.register_entry(reserved_job, visits);
            self.reserved.insert(task_id, new_eid);
            report.reservations_reseeded += 1;
        } else {
            self.mutate_ledger(|ledger| {
                for (subtask, processor) in visits.iter().enumerate() {
                    ledger.remove(*processor, ContributionKey::new(reserved_job, subtask));
                }
            });
            report.reseeds_skipped += 1;
        }
    }

    /// Read access to the synthetic-utilization ledger.
    #[must_use]
    pub fn ledger(&self) -> &UtilizationLedger {
        &self.ledger
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> AcStats {
        self.stats
    }

    /// Number of current registry entries (jobs + reservations).
    #[must_use]
    pub fn current_entries(&self) -> usize {
        self.live_entries
    }

    /// Number of per-task reservations held.
    #[must_use]
    pub fn reserved_tasks(&self) -> usize {
        self.reserved.len()
    }

    /// Handles the arrival of job `seq` of `task` at time `now`: proposes a
    /// placement via the configured load balancer and runs the admission
    /// test per the configured strategy.
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] on caller misuse (unknown processors,
    /// duplicate jobs); legitimate refusals come back as
    /// [`Decision::Reject`].
    pub fn handle_arrival(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
    ) -> Result<Decision, AdmissionError> {
        self.handle_arrival_ext(task, seq, now, None)
    }

    /// [`AdmissionController::handle_arrival`] with an [`ExtraCheck`]
    /// AND-ed into every guarded decision point (admission, reservation
    /// relocation) — the sharded plane's hook for its cross-shard
    /// condition.
    pub(crate) fn handle_arrival_ext(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        extra: Option<ExtraCheck<'_>>,
    ) -> Result<Decision, AdmissionError> {
        Self::check_seq(task.id(), seq)?;
        self.check_processors(task)?;

        if self.uses_reservation(task) {
            // Reservation path (pass-throughs, relocation): funnel-per-step.
            self.expire(now);
            if let Some(decision) = self.try_pass_through(task, extra)? {
                return Ok(decision);
            }
            let assignment = self.balancer.assignment_for(task, &self.ledger);
            return self.admit_with_checked(task, seq, now, assignment, extra);
        }

        // Hot path (aperiodic and per-job arrivals): expiry and the
        // tentative placement share one touch epoch, so each touched
        // processor's entries receive a single *net* `f` delta.
        self.ledger.begin_touch_epoch();
        self.expire_in_epoch(now);
        let assignment = self.balancer.assignment_for(task, &self.ledger);
        self.admit_in_open_epoch(task, seq, now, assignment, extra)
    }

    /// Like [`AdmissionController::handle_arrival`] but with a
    /// caller-supplied placement (used by the runtime to time the balancer
    /// and the test separately, and by tests to force placements).
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::handle_arrival`], plus
    /// [`AdmissionError::InvalidAssignment`] if the placement does not cover
    /// the task's chain with declared candidates.
    pub fn admit_with(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        assignment: Assignment,
    ) -> Result<Decision, AdmissionError> {
        self.admit_with_ext(task, seq, now, assignment, None)
    }

    /// [`AdmissionController::admit_with`] with an [`ExtraCheck`] AND-ed
    /// into every guarded decision point (see
    /// [`AdmissionController::handle_arrival_ext`]).
    pub(crate) fn admit_with_ext(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        assignment: Assignment,
        extra: Option<ExtraCheck<'_>>,
    ) -> Result<Decision, AdmissionError> {
        Self::check_seq(task.id(), seq)?;
        self.expire(now);
        self.check_processors(task)?;
        if !assignment.is_valid_for(task) {
            return Err(AdmissionError::InvalidAssignment { task: task.id() });
        }
        if let Some(decision) = self.try_pass_through(task, extra)? {
            return Ok(decision);
        }
        self.admit_with_checked(task, seq, now, assignment, extra)
    }

    /// Proposes a placement for `task` without running the admission test
    /// (the paper's "Location" call from AC to LB).
    pub fn propose_assignment(&mut self, task: &TaskSpec) -> Assignment {
        self.balancer.assignment_for(task, &self.ledger)
    }

    /// Records a job admitted by a *peer* controller, without running the
    /// admission test — the synchronization primitive of a **distributed**
    /// AC architecture (§3 discusses this as the alternative to the paper's
    /// centralized design: "the AC components on multiple processors may
    /// need to coordinate and synchronize with each other").
    ///
    /// Contributions are entered with the job's real deadline so expiry
    /// stays consistent across peers. Duplicate commits are ignored (the
    /// peer may re-broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] if the assignment does not fit the task
    /// or references unknown processors.
    pub fn apply_remote_commit(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        arrival: Time,
        assignment: &Assignment,
    ) -> Result<(), AdmissionError> {
        Self::check_seq(task.id(), seq)?;
        self.check_processors(task)?;
        if !assignment.is_valid_for(task) {
            return Err(AdmissionError::InvalidAssignment { task: task.id() });
        }
        let job = JobId::new(task.id(), seq);
        if self.by_job.contains_key(&job) {
            return Ok(()); // idempotent: already known
        }
        let deadline = arrival.saturating_add(task.deadline());
        if deadline <= self.ledger_now_floor() {
            return Ok(()); // stale commit: already past its deadline
        }
        self.mutate_ledger(|ledger| {
            for (subtask, processor) in assignment.iter() {
                let key = ContributionKey::new(job, subtask);
                // A collision here means the peer double-assigned; keep the
                // first contribution (idempotence beats precision for views).
                let _ = ledger.add(
                    processor,
                    key,
                    task.subtask_utilization(subtask),
                    Lifetime::UntilDeadline(deadline),
                );
            }
        });
        let eid = self.register_entry(job, assignment.as_slice().to_vec());
        self.entry_expiry.push(Reverse((deadline, eid, self.entry(eid).gen)));
        Ok(())
    }

    /// Bulk form of [`AdmissionController::apply_remote_commit`] for
    /// seeding large current sets (simulation fixtures, peer-state
    /// catch-up). The per-commit path delta-applies every mutation to the
    /// inverted-index buckets of the touched processors, which makes
    /// loading `n` commits O(n²) in bucket growth; this variant enters the
    /// raw contributions first and rebuilds every cached AUB sum once at
    /// the end ([`AdmissionController::reconcile`]), for O(total
    /// contributions) overall.
    ///
    /// Per-commit semantics match the single-commit path: duplicates and
    /// stale commits are skipped, ledger key collisions keep the first
    /// contribution. Returns the number of commits actually entered.
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::apply_remote_commit`]. Validation is
    /// per-commit: commits before the offending one stay applied (the
    /// rebuild still runs, leaving the controller consistent).
    pub fn apply_remote_commits(
        &mut self,
        commits: &[RemoteCommit<'_>],
    ) -> Result<usize, AdmissionError> {
        let mut applied = 0usize;
        let result = (|| {
            for c in commits {
                Self::check_seq(c.task.id(), c.seq)?;
                self.check_processors(c.task)?;
                if !c.assignment.is_valid_for(c.task) {
                    return Err(AdmissionError::InvalidAssignment { task: c.task.id() });
                }
                let job = JobId::new(c.task.id(), c.seq);
                if self.by_job.contains_key(&job) {
                    continue; // idempotent: already known
                }
                let deadline = c.arrival.saturating_add(c.task.deadline());
                if deadline <= self.ledger_now_floor() {
                    continue; // stale commit: already past its deadline
                }
                for (subtask, processor) in c.assignment.iter() {
                    let key = ContributionKey::new(job, subtask);
                    // Collision: keep the first contribution, like the
                    // per-commit path.
                    let _ = self.ledger.add(
                        processor,
                        key,
                        c.task.subtask_utilization(subtask),
                        Lifetime::UntilDeadline(deadline),
                    );
                }
                let eid = self.register_entry(job, c.assignment.as_slice().to_vec());
                self.entry_expiry.push(Reverse((deadline, eid, self.entry(eid).gen)));
                applied += 1;
            }
            Ok(())
        })();
        // One rebuild replaces the n per-commit delta settles: recompute
        // ledger totals and refresh every cached sum (and the violating
        // count with them). Runs on the error path too — the raw adds
        // above bypassed the funnel, so the caches must be rebuilt before
        // anyone reads them.
        self.reconcile();
        result.map(|()| applied)
    }

    /// The most recent expiry point processed; remote commits whose
    /// deadlines are already behind it are dropped as stale. (Late
    /// insertions past this floor would still self-heal at the next
    /// [`AdmissionController::expire`] call; the floor just avoids the
    /// churn.)
    fn ledger_now_floor(&self) -> Time {
        self.last_expire
    }

    /// Applies an idle-reset report from processor `processor`: removes the
    /// listed completed contributions from the ledger. Returns the total
    /// synthetic utilization freed. Keys already expired are ignored.
    pub fn apply_idle_reset(&mut self, processor: ProcessorId, keys: &[ContributionKey]) -> f64 {
        self.ledger.begin_touch_epoch();
        let mut freed = 0.0;
        for key in keys {
            let Some(u) = self.ledger.remove(processor, *key) else { continue };
            freed += u;
            if let Some(&eid) = self.by_job.get(&key.job) {
                if let Some(entry) = self.entries[eid].as_mut() {
                    entry.outstanding = entry.outstanding.saturating_sub(1);
                    if entry.outstanding == 0 {
                        // Provably complete: excluded from the admission
                        // condition from here on.
                        let hot = &mut self.hot[eid];
                        hot.counted = false;
                        Self::sync_violating(hot, &mut self.violating_count);
                    }
                }
            }
        }
        self.settle_epoch();
        self.stats.reset_reports += 1;
        self.stats.reset_utilization += freed;
        freed
    }

    /// Removes expired jobs from the current set (`S(t)`); called
    /// automatically at every arrival, and callable eagerly.
    pub fn expire(&mut self, now: Time) {
        self.ledger.begin_touch_epoch();
        self.expire_in_epoch(now);
        self.settle_epoch();
    }

    /// [`AdmissionController::expire`] without epoch bracketing, for
    /// callers that fold expiry into a larger touch epoch. The caller owns
    /// settling the epoch on every path out.
    fn expire_in_epoch(&mut self, now: Time) {
        self.last_expire = self.last_expire.max(now);
        self.ledger.expire_until(now);
        while let Some(&Reverse((deadline, eid, gen))) = self.entry_expiry.peek() {
            if deadline > now {
                break;
            }
            self.entry_expiry.pop();
            // Lazy deletion: a generation mismatch means the entry left
            // the registry early (e.g. converted into a reservation) and
            // the slot may have been recycled — skip the stale record.
            if self.entries.get(eid).and_then(Option::as_ref).is_some_and(|e| e.gen == gen) {
                self.unregister_entry(eid);
            }
        }
    }

    /// Withdraws a periodic task entirely: releases its reservation (if
    /// any), forgets its pinned placement and clears a previous rejection,
    /// allowing re-admission.
    pub fn withdraw_task(&mut self, task: TaskId) {
        if let Some(eid) = self.reserved.remove(&task) {
            if let Some(entry) = self.unregister_entry(eid) {
                let reserved_job = JobId::new(task, RESERVED_SEQ);
                self.mutate_ledger(|ledger| {
                    for (subtask, processor) in entry.visits.iter().enumerate() {
                        ledger.remove(*processor, ContributionKey::new(reserved_job, subtask));
                    }
                });
            }
        }
        self.rejected_tasks.remove(&task);
        self.balancer.forget_task(task);
    }

    /// True if `task` holds a per-task reservation.
    #[must_use]
    pub fn is_reserved(&self, task: TaskId) -> bool {
        self.reserved.contains_key(&task)
    }

    /// True if `task` was permanently rejected by a per-task test.
    #[must_use]
    pub fn is_rejected(&self, task: TaskId) -> bool {
        self.rejected_tasks.contains(&task)
    }

    /// Rejects caller-supplied sequence numbers inside the sentinel range
    /// the controller owns for reservations and drained-reservation ids —
    /// without this, a hostile seq near `u64::MAX` could collide with
    /// handover bookkeeping mid-reconfiguration.
    pub(crate) fn check_seq(task: TaskId, seq: u64) -> Result<(), AdmissionError> {
        if seq >= SENTINEL_SEQ_FLOOR {
            return Err(AdmissionError::SentinelSequence { job: JobId::new(task, seq) });
        }
        Ok(())
    }

    fn check_processors(&self, task: &TaskSpec) -> Result<(), AdmissionError> {
        let count = self.ledger.processor_count();
        for sub in task.subtasks() {
            for candidate in sub.candidates() {
                if candidate.index() >= count {
                    return Err(AdmissionError::UnknownProcessor {
                        processor: candidate,
                        processor_count: count,
                    });
                }
            }
        }
        Ok(())
    }

    fn uses_reservation(&self, task: &TaskSpec) -> bool {
        task.is_periodic() && self.config.ac == AcStrategy::PerTask
    }

    /// Pre-test short-circuits for per-task periodic tasks: pass-through on
    /// an existing reservation, immediate reject after an earlier failure.
    fn try_pass_through(
        &mut self,
        task: &TaskSpec,
        extra: Option<ExtraCheck<'_>>,
    ) -> Result<Option<Decision>, AdmissionError> {
        if !self.uses_reservation(task) {
            return Ok(None);
        }
        if self.rejected_tasks.contains(&task.id()) {
            self.stats.rejected += 1;
            return Ok(Some(Decision::Reject { reason: RejectReason::TaskPreviouslyRejected }));
        }
        if let Some(&eid) = self.reserved.get(&task.id()) {
            self.stats.pass_throughs += 1;
            // Under LB-per-job an accepted per-task task's plan "can be
            // changed for each job" (§5): try to relocate the reservation to
            // the currently least-loaded replicas, keeping the old plan if
            // the move would break the bound for anyone.
            let assignment = if self.config.lb == crate::strategy::LbStrategy::PerJob {
                self.relocate_reservation(task, eid, extra)
            } else {
                Assignment::new(self.entry(eid).visits.clone())
            };
            return Ok(Some(Decision::Accept { assignment, newly_admitted: false }));
        }
        Ok(None)
    }

    /// Moves a per-task reservation to a freshly balanced placement if that
    /// keeps the whole system schedulable; otherwise keeps the old plan.
    fn relocate_reservation(
        &mut self,
        task: &TaskSpec,
        eid: EntryId,
        extra: Option<ExtraCheck<'_>>,
    ) -> Assignment {
        let old_visits = self.entry(eid).visits.clone();
        let reserved_job = JobId::new(task.id(), RESERVED_SEQ);

        // Lift the old contributions out so the proposal does not see the
        // task's own load on its old processors. The entry is de-indexed
        // across the move: deltas flow to everyone else, and its own sum is
        // recomputed once the new placement is in.
        self.deindex_entry(eid, &old_visits);
        self.mutate_ledger(|ledger| {
            for (subtask, processor) in old_visits.iter().enumerate() {
                ledger.remove(*processor, ContributionKey::new(reserved_job, subtask));
            }
        });
        let proposal = self.balancer.assignment_for(task, &self.ledger);
        self.mutate_ledger(|ledger| {
            for (subtask, processor) in proposal.iter() {
                ledger
                    .add(
                        processor,
                        ContributionKey::new(reserved_job, subtask),
                        task.subtask_utilization(subtask),
                        Lifetime::Reserved,
                    )
                    .expect("reserved keys were just removed");
            }
        });
        self.index_entry(eid, proposal.as_slice());
        if let Some(entry) = self.entries[eid].as_mut() {
            entry.visits = proposal.as_slice().to_vec();
        }
        self.refresh_entry(eid);

        if self.system_schedulable_with(proposal.as_slice(), extra) {
            return proposal;
        }

        // Revert: the relocation would violate someone's bound.
        self.deindex_entry(eid, proposal.as_slice());
        self.mutate_ledger(|ledger| {
            for (subtask, processor) in proposal.iter() {
                ledger.remove(processor, ContributionKey::new(reserved_job, subtask));
            }
        });
        self.mutate_ledger(|ledger| {
            for (subtask, processor) in old_visits.iter().enumerate() {
                ledger
                    .add(
                        *processor,
                        ContributionKey::new(reserved_job, subtask),
                        task.subtask_utilization(subtask),
                        Lifetime::Reserved,
                    )
                    .expect("restoring the original reservation cannot collide");
            }
        });
        self.index_entry(eid, &old_visits);
        if let Some(entry) = self.entries[eid].as_mut() {
            entry.visits = old_visits.clone();
        }
        self.refresh_entry(eid);
        Assignment::new(old_visits)
    }

    fn admit_with_checked(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        assignment: Assignment,
        extra: Option<ExtraCheck<'_>>,
    ) -> Result<Decision, AdmissionError> {
        let job = JobId::new(task.id(), seq);
        if self.by_job.contains_key(&job) {
            return Err(AdmissionError::DuplicateArrival { job });
        }
        self.ledger.begin_touch_epoch();
        self.decide_in_open_epoch(task, job, now, assignment, extra)
    }

    /// The hot-path variant of [`AdmissionController::admit_with_checked`]:
    /// identical decision logic, but the caller has already opened a touch
    /// epoch (covering expiry) that the tentative contributions join.
    fn admit_in_open_epoch(
        &mut self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        assignment: Assignment,
        extra: Option<ExtraCheck<'_>>,
    ) -> Result<Decision, AdmissionError> {
        let job = JobId::new(task.id(), seq);
        if self.by_job.contains_key(&job) {
            self.settle_epoch();
            return Err(AdmissionError::DuplicateArrival { job });
        }
        self.decide_in_open_epoch(task, job, now, assignment, extra)
    }

    /// The admission decision proper, shared by both entry points above:
    /// tentatively adds the candidate's contributions into the open touch
    /// epoch, settles it exactly once (delta-applying every touched
    /// processor's `f(U)` step to the entries visiting it), runs the
    /// system-wide check, and commits the entry or reverts the
    /// contributions. Every path out settles the epoch.
    fn decide_in_open_epoch(
        &mut self,
        task: &TaskSpec,
        job: JobId,
        now: Time,
        assignment: Assignment,
        extra: Option<ExtraCheck<'_>>,
    ) -> Result<Decision, AdmissionError> {
        self.stats.tested += 1;

        let reserve = self.uses_reservation(task);
        let (key_job, lifetime, entry_deadline) = if reserve {
            (JobId::new(task.id(), RESERVED_SEQ), Lifetime::Reserved, Time::MAX)
        } else {
            let deadline = now.saturating_add(task.deadline());
            (job, Lifetime::UntilDeadline(deadline), deadline)
        };

        let mut added = 0usize;
        let mut collided = false;
        for (subtask, processor) in assignment.iter() {
            let key = ContributionKey::new(key_job, subtask);
            match self.ledger.add(processor, key, task.subtask_utilization(subtask), lifetime) {
                Ok(()) => added += 1,
                Err(_) => {
                    collided = true;
                    break;
                }
            }
        }
        if collided {
            for (subtask, processor) in assignment.iter().take(added) {
                self.ledger.remove(processor, ContributionKey::new(key_job, subtask));
            }
            self.settle_epoch();
            return Err(AdmissionError::DuplicateArrival { job });
        }
        self.settle_epoch();

        if self.system_schedulable_with(assignment.as_slice(), extra) {
            let eid = self.register_entry(job, assignment.as_slice().to_vec());
            if reserve {
                self.reserved.insert(task.id(), eid);
            } else {
                self.entry_expiry.push(Reverse((entry_deadline, eid, self.entry(eid).gen)));
            }
            self.stats.admitted += 1;
            Ok(Decision::Accept { assignment, newly_admitted: true })
        } else {
            self.mutate_ledger(|ledger| {
                for (subtask, processor) in assignment.iter() {
                    ledger.remove(processor, ContributionKey::new(key_job, subtask));
                }
            });
            if reserve {
                self.rejected_tasks.insert(task.id());
            }
            self.balancer.forget_task(task.id());
            self.stats.rejected += 1;
            Ok(Decision::Reject { reason: RejectReason::Unschedulable })
        }
    }

    /// Checks the AUB condition for the candidate visits *and* every
    /// outstanding current entry against the ledger (which already includes
    /// the candidate's tentative contributions).
    ///
    /// The candidate's own bound is always evaluated fresh; how the current
    /// set is checked depends on the [`AdmissionMode`]: the incremental
    /// path reads the `violating` set maintained by delta application
    /// (entries not visiting a touched processor are provably unchanged),
    /// the brute-force path rescans everything. An [`ExtraCheck`], when
    /// supplied, is AND-ed in last (short-circuited, so it only runs when
    /// the local condition already holds).
    fn system_schedulable_with(
        &self,
        candidate_visits: &[ProcessorId],
        extra: Option<ExtraCheck<'_>>,
    ) -> bool {
        let candidate = bound_lhs(candidate_visits.iter().map(|p| self.ledger.utilization(*p)));
        if candidate > 1.0 + BOUND_EPSILON {
            return false;
        }
        let local = match self.mode {
            AdmissionMode::Incremental => self.violating_count == 0,
            AdmissionMode::BruteForce => self.system_schedulable_brute(),
        };
        local && extra.is_none_or(|check| check(self))
    }

    /// The original O(current set × visits) system-wide AUB check: every
    /// outstanding current entry's bound recomputed from the live ledger.
    /// Kept public as the differential-testing oracle and the ablation
    /// baseline for the incremental path.
    #[must_use]
    pub fn system_schedulable_brute(&self) -> bool {
        let u = self.ledger.utilizations();
        self.entries.iter().flatten().filter(|entry| entry.outstanding > 0).all(|entry| {
            bound_lhs(entry.visits.iter().map(|p| u[p.index()])) <= 1.0 + BOUND_EPSILON
        })
    }

    /// Per-entry cached vs. freshly recomputed AUB sums — the raw material
    /// for `rtcm_core::analysis::audit_controller` and the differential
    /// harness.
    #[must_use]
    pub fn entry_bounds(&self) -> Vec<EntryBound> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(eid, slot)| slot.as_ref().map(|e| (eid, e)))
            .map(|(eid, e)| EntryBound {
                job: e.job,
                cached_lhs: self.hot[eid].cached_lhs,
                fresh_lhs: bound_lhs(e.visits.iter().map(|p| self.ledger.utilization(*p))),
                outstanding: e.outstanding,
            })
            .collect()
    }

    /// Number of current entries whose cached AUB sum exceeds the bound
    /// (diagnostic; non-zero only after un-tested load such as remote
    /// commits).
    #[must_use]
    pub fn violating_entries(&self) -> usize {
        self.violating_count
    }

    /// Recomputes the ledger totals *and* every cached AUB sum from
    /// scratch, returning the largest absolute drift corrected anywhere.
    /// Incremental `+=`/`-=` bookkeeping accumulates floating-point drift
    /// over long runs; periodic reconciliation bounds it without giving up
    /// the hot path's incrementality.
    pub fn reconcile(&mut self) -> f64 {
        self.reconcile_detailed().max_drift
    }

    /// [`AdmissionController::reconcile`] with attribution: also names the
    /// processor behind the largest correction (a drifted ledger total's
    /// own processor, or a drifted cached sum's first visit), so the
    /// sharded plane can report *which* shard is noisy instead of folding
    /// everything into one global residual.
    pub fn reconcile_detailed(&mut self) -> DriftReport {
        // Cached sums may move: any published summary is now stale.
        self.revision += 1;
        let (mut max_drift, mut worst) = self.ledger.recompute_totals_detailed();
        for eid in 0..self.entries.len() {
            let Some(entry) = self.entries[eid].as_ref() else { continue };
            let anchor = entry.visits.first().copied();
            let old = self.hot[eid].cached_lhs;
            self.refresh_entry(eid);
            let drift = (old - self.hot[eid].cached_lhs).abs();
            if drift.is_finite() && drift > max_drift {
                max_drift = drift;
                worst = anchor.or(worst);
            }
        }
        DriftReport { max_drift, worst_processor: worst }
    }

    // --- Crate-internal surface for the sharded admission plane --------
    //
    // The shard layer (`crate::shard`) owns one full-width controller per
    // processor group plus a cross-shard registry of entries spanning
    // groups. Cross entries' *contributions* live in the shard ledgers
    // (each processor's utilization has exactly one home), entered and
    // removed through the two funnel-preserving primitives below; their
    // AUB bookkeeping lives in the layer. Everything here goes through
    // `mutate_ledger`, so shard-local cached sums and violating counts
    // stay exact by the same construction as every native mutation.

    /// Monotone state-revision counter (see the field doc).
    pub(crate) fn revision(&self) -> u64 {
        self.revision
    }

    /// Adds one externally-owned contribution through the funnel. The
    /// entry it belongs to is *not* registered here — the caller owns its
    /// AUB bookkeeping.
    ///
    /// # Errors
    ///
    /// As [`UtilizationLedger::add`].
    pub(crate) fn external_add(
        &mut self,
        processor: ProcessorId,
        key: ContributionKey,
        utilization: f64,
        lifetime: Lifetime,
    ) -> Result<(), LedgerError> {
        self.mutate_ledger(|ledger| ledger.add(processor, key, utilization, lifetime))
    }

    /// Removes one externally-owned contribution through the funnel,
    /// returning the utilization freed (`None` if already gone).
    pub(crate) fn external_remove(
        &mut self,
        processor: ProcessorId,
        key: ContributionKey,
    ) -> Option<f64> {
        self.mutate_ledger(|ledger| ledger.remove(processor, key))
    }

    /// The tasks currently holding reservations, in arbitrary order — the
    /// layer merges these across shards into one globally ordered drain.
    pub(crate) fn reserved_task_ids(&self) -> Vec<TaskId> {
        self.reserved.keys().copied().collect()
    }

    /// Takes (returns and clears) the sticky per-task rejection set's size
    /// — the drain step's `rejections_cleared` accounting, summed across
    /// shards by the layer.
    pub(crate) fn take_sticky_rejections(&mut self) -> usize {
        let cleared = self.rejected_tasks.len();
        self.rejected_tasks.clear();
        cleared
    }

    /// Swaps the load-balancing strategy, returning the number of pinned
    /// plans forgotten (the `SwapLb` handover step, per shard).
    pub(crate) fn set_lb_strategy(&mut self, lb: crate::strategy::LbStrategy) -> usize {
        self.balancer.set_strategy(lb)
    }

    /// Installs an already-validated configuration without running a
    /// handover — the layer executes the [`ReconfigPlan`] itself across
    /// shards and then aligns each shard's config with its own.
    pub(crate) fn force_config(&mut self, config: ServiceConfig) {
        self.config = config;
        self.balancer.set_strategy(config.lb);
    }

    /// The entry behind `eid`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free — internal ids are only read while live.
    fn entry(&self, eid: EntryId) -> &CurrentEntry {
        self.entries[eid].as_ref().expect("entry ids are only read while live")
    }

    /// Runs `f` against the ledger, then delta-applies every touched
    /// processor's `f(U_new) − f(U_old)` step to the cached AUB sums of the
    /// entries its inverted-index bucket lists. This is the single funnel
    /// through which every ledger mutation flows, keeping the cached sums
    /// consistent with the ledger by construction. The ledger's own
    /// touch-tracking makes the whole pass O(touched processors + touched
    /// entries), independent of both the processor count and the current
    /// set size.
    fn mutate_ledger<R>(&mut self, f: impl FnOnce(&mut UtilizationLedger) -> R) -> R {
        self.ledger.begin_touch_epoch();
        let result = f(&mut self.ledger);
        self.settle_epoch();
        result
    }

    /// Ends the open touch epoch: delta-applies every touched processor's
    /// net `f` step to the entries indexed under it.
    fn settle_epoch(&mut self) {
        self.revision += 1;
        let mut touched = std::mem::take(&mut self.scratch_touched);
        self.ledger.copy_touched_into(&mut touched);
        self.apply_deltas(&touched);
        self.scratch_touched = touched;
    }

    /// Above this per-term magnitude the delta path is numerically unsafe:
    /// `cached + (f_new − f_old)` cancels catastrophically when the terms
    /// dwarf the sum (ulp(1e4) ≈ 2e-12 caps the per-application error;
    /// near saturation `f` reaches 1e15 where ulp is ~0.25). Only
    /// processors within ~1e-4 of `U = 1` produce terms this large, and
    /// entries there are far over the bound anyway, so the fallback
    /// recompute is both rare and cheap.
    const DELTA_REFRESH_LIMIT: f64 = 1e4;

    fn apply_deltas(&mut self, touched: &[(usize, f64)]) {
        // Processors whose `f` step cannot be delta-applied: crossing the
        // saturation boundary (`U ≥ 1` has `f = ∞`) or grazing it (just
        // below, `f` is so large that `cached + (f_new − f_old)` cancels
        // catastrophically). Their entries are refreshed from scratch
        // *after* every finite delta has been applied — a refresh reads
        // the final ledger state across all processors, so interleaving
        // it with per-processor deltas would double-count an entry that
        // visits both a refreshed and a delta'd processor.
        let mut needs_refresh: Vec<usize> = Vec::new();
        for &(idx, old) in touched {
            let new = self.ledger.utilization(ProcessorId(idx as u16));
            if new == old {
                continue;
            }
            let delta = aub_delta(old, new);
            if delta == 0.0 {
                continue;
            }
            if delta.is_finite() && aub_term(old).max(aub_term(new)) <= Self::DELTA_REFRESH_LIMIT {
                for &eid in &self.proc_index[idx] {
                    let hot = &mut self.hot[eid];
                    hot.cached_lhs += delta;
                    Self::sync_violating(hot, &mut self.violating_count);
                }
            } else {
                needs_refresh.push(idx);
            }
        }
        for idx in needs_refresh {
            // Duplicate records (visit multiplicity) refresh twice, which
            // is idempotent.
            let eids = self.proc_index[idx].clone();
            for eid in eids {
                self.refresh_entry(eid);
            }
        }
    }

    /// Recomputes one entry's cached AUB sum from the live ledger and
    /// re-derives its `violating` status.
    fn refresh_entry(&mut self, eid: EntryId) {
        let Some(entry) = self.entries[eid].as_ref() else { return };
        let cached = bound_lhs(entry.visits.iter().map(|p| self.ledger.utilization(*p)));
        let hot = &mut self.hot[eid];
        hot.cached_lhs = cached;
        Self::sync_violating(hot, &mut self.violating_count);
    }

    /// Re-derives one hot entry's `violating` flag from its current state
    /// and folds the transition into the global count — the single place
    /// the violating condition is evaluated.
    fn sync_violating(hot: &mut HotEntry, violating_count: &mut usize) {
        let violating = hot.is_violating();
        if violating != hot.violating {
            hot.violating = violating;
            if violating {
                *violating_count += 1;
            } else {
                *violating_count -= 1;
            }
        }
    }

    fn index_entry(&mut self, eid: EntryId, visits: &[ProcessorId]) {
        for p in visits {
            self.proc_index[p.index()].push(eid);
        }
    }

    fn deindex_entry(&mut self, eid: EntryId, visits: &[ProcessorId]) {
        for p in visits {
            let bucket = &mut self.proc_index[p.index()];
            if let Some(pos) = bucket.iter().rposition(|&e| e == eid) {
                bucket.swap_remove(pos);
            }
        }
    }

    /// Inserts a new current entry, indexes it, and seeds its cached sum
    /// from the live ledger.
    fn register_entry(&mut self, job: JobId, visits: Vec<ProcessorId>) -> EntryId {
        let outstanding = visits.len();
        let eid = match self.free_entries.pop() {
            Some(eid) => eid,
            None => {
                self.entries.push(None);
                self.hot.push(HotEntry { cached_lhs: 0.0, violating: false, counted: false });
                self.entries.len() - 1
            }
        };
        let gen = self.next_entry_gen;
        self.next_entry_gen += 1;
        self.revision += 1;
        self.index_entry(eid, &visits);
        self.entries[eid] = Some(CurrentEntry { job, visits, outstanding, gen });
        self.hot[eid] = HotEntry { cached_lhs: 0.0, violating: false, counted: outstanding > 0 };
        self.live_entries += 1;
        self.by_job.insert(job, eid);
        self.refresh_entry(eid);
        eid
    }

    /// Removes a current entry from the registry, the inverted index and
    /// the violating count (but not its ledger contributions — callers own
    /// those).
    fn unregister_entry(&mut self, eid: EntryId) -> Option<CurrentEntry> {
        let entry = self.entries.get_mut(eid)?.take()?;
        self.revision += 1;
        self.free_entries.push(eid);
        self.live_entries -= 1;
        self.by_job.remove(&entry.job);
        if self.hot[eid].violating {
            self.hot[eid].violating = false;
            self.violating_count -= 1;
        }
        self.deindex_entry(eid, &entry.visits);
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{IrStrategy, LbStrategy};
    use crate::task::TaskBuilder;
    use crate::time::Duration;

    fn cfg(label: &str) -> ServiceConfig {
        label.parse().unwrap()
    }

    fn at(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    /// One-stage aperiodic task with utilization `exec_ms / 100`.
    fn aperiodic(id: u32, exec_ms: u64, proc: u16) -> TaskSpec {
        TaskBuilder::aperiodic(TaskId(id))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(exec_ms), ProcessorId(proc), [])
            .build()
            .unwrap()
    }

    fn periodic(id: u32, exec_ms: u64, proc: u16) -> TaskSpec {
        TaskBuilder::periodic(TaskId(id), Duration::from_millis(100))
            .subtask(Duration::from_millis(exec_ms), ProcessorId(proc), [])
            .build()
            .unwrap()
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let err = AdmissionController::new(cfg("T_J_N"), 1).unwrap_err();
        assert_eq!(err.config.label(), "T_J_N");
    }

    #[test]
    fn admits_until_single_stage_bound() {
        // Single-stage tasks at U = 0.2 each: f(0.2) ≈ 0.225, f(0.4) = 0.533,
        // f(0.6) = inf-region (0.6 > 0.586 bound) -> third task rejected.
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        for (seq, id) in [(0u64, 0u32), (0, 1)] {
            let t = aperiodic(id, 20, 0);
            assert!(ac.handle_arrival(&t, seq, Time::ZERO).unwrap().is_accept(), "task {id}");
        }
        let t = aperiodic(2, 20, 0);
        let d = ac.handle_arrival(&t, 0, Time::ZERO).unwrap();
        assert_eq!(d, Decision::Reject { reason: RejectReason::Unschedulable });
        // Ledger unchanged by the rejection.
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn expired_jobs_free_capacity() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        for id in 0..2 {
            assert!(ac.handle_arrival(&aperiodic(id, 20, 0), 0, Time::ZERO).unwrap().is_accept());
        }
        assert!(!ac.handle_arrival(&aperiodic(2, 20, 0), 0, at(50)).unwrap().is_accept());
        // After both deadlines pass, the same task is admitted.
        assert!(ac.handle_arrival(&aperiodic(3, 20, 0), 0, at(100)).unwrap().is_accept());
        assert_eq!(ac.current_entries(), 1);
    }

    #[test]
    fn per_task_reserves_and_passes_through() {
        let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
        let t = periodic(0, 20, 0);
        let first = ac.handle_arrival(&t, 0, Time::ZERO).unwrap();
        assert_eq!(
            first,
            Decision::Accept {
                assignment: Assignment::new(vec![ProcessorId(0)]),
                newly_admitted: true
            }
        );
        assert!(ac.is_reserved(t.id()));
        // Second job passes through without a test, even long after.
        let second = ac.handle_arrival(&t, 1, at(100)).unwrap();
        assert!(matches!(second, Decision::Accept { newly_admitted: false, .. }));
        // Reservation persists beyond job deadlines.
        ac.expire(at(10_000));
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.2).abs() < 1e-12);
        assert_eq!(ac.stats().pass_throughs, 1);
    }

    #[test]
    fn per_task_rejection_is_sticky() {
        let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
        // Fill the processor so the periodic task fails its first test.
        for id in 0..2 {
            assert!(ac.handle_arrival(&aperiodic(id, 20, 0), 0, Time::ZERO).unwrap().is_accept());
        }
        let t = periodic(10, 25, 0);
        assert!(!ac.handle_arrival(&t, 0, Time::ZERO).unwrap().is_accept());
        assert!(ac.is_rejected(t.id()));
        // Even after the aperiodic load expires, the task stays rejected...
        let d = ac.handle_arrival(&t, 1, at(500)).unwrap();
        assert_eq!(d, Decision::Reject { reason: RejectReason::TaskPreviouslyRejected });
        // ...until withdrawn.
        ac.withdraw_task(t.id());
        assert!(ac.handle_arrival(&t, 2, at(600)).unwrap().is_accept());
    }

    #[test]
    fn per_job_periodic_skips_only_overloaded_jobs() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let hog = aperiodic(0, 40, 0);
        assert!(ac.handle_arrival(&hog, 0, Time::ZERO).unwrap().is_accept());
        let t = periodic(1, 25, 0);
        // Job 0 collides with the hog: f(0.4+0.25) = f(0.65) -> reject.
        assert!(!ac.handle_arrival(&t, 0, at(10)).unwrap().is_accept());
        // Job 1 arrives after the hog expired: accept.
        assert!(ac.handle_arrival(&t, 1, at(110)).unwrap().is_accept());
    }

    #[test]
    fn idle_reset_frees_capacity_early() {
        let mut ac = AdmissionController::new(cfg("J_J_N"), 1).unwrap();
        let a = aperiodic(0, 20, 0);
        let b = aperiodic(1, 20, 0);
        assert!(ac.handle_arrival(&a, 0, Time::ZERO).unwrap().is_accept());
        assert!(ac.handle_arrival(&b, 0, Time::ZERO).unwrap().is_accept());
        // System full; c would be rejected.
        let c = aperiodic(2, 20, 0);
        assert!(!ac.handle_arrival(&c, 0, at(1)).unwrap().is_accept());
        // a's subjob completes and the processor idles: reset.
        let freed = ac
            .apply_idle_reset(ProcessorId(0), &[ContributionKey::new(JobId::new(TaskId(0), 0), 0)]);
        assert!((freed - 0.2).abs() < 1e-12);
        assert!(ac.handle_arrival(&c, 1, at(2)).unwrap().is_accept());
        assert!(ac.stats().reset_utilization > 0.0);
    }

    #[test]
    fn reset_of_expired_key_is_noop() {
        let mut ac = AdmissionController::new(cfg("J_T_N"), 1).unwrap();
        let a = aperiodic(0, 20, 0);
        assert!(ac.handle_arrival(&a, 0, Time::ZERO).unwrap().is_accept());
        ac.expire(at(200));
        let freed = ac
            .apply_idle_reset(ProcessorId(0), &[ContributionKey::new(JobId::new(TaskId(0), 0), 0)]);
        assert_eq!(freed, 0.0);
    }

    #[test]
    fn fully_reset_entry_is_skipped_by_bound_check() {
        // Two-stage task over two processors; once both stages are reset,
        // a new arrival must not be blocked by the completed entry's bound.
        let two_stage = TaskBuilder::aperiodic(TaskId(0))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(30), ProcessorId(0), [])
            .subtask(Duration::from_millis(30), ProcessorId(1), [])
            .build()
            .unwrap();
        let mut ac = AdmissionController::new(cfg("J_J_N"), 2).unwrap();
        assert!(ac.handle_arrival(&two_stage, 0, Time::ZERO).unwrap().is_accept());
        let job = JobId::new(TaskId(0), 0);
        ac.apply_idle_reset(ProcessorId(0), &[ContributionKey::new(job, 0)]);
        ac.apply_idle_reset(ProcessorId(1), &[ContributionKey::new(job, 1)]);
        // Load both processors to U = 0.4 with fresh single-stage tasks. If
        // the fully-reset two-stage entry were still bound-checked, its sum
        // f(0.4) + f(0.4) ≈ 1.07 > 1 would block the second arrival.
        assert!(ac.handle_arrival(&aperiodic(1, 40, 0), 0, at(1)).unwrap().is_accept());
        assert!(ac.handle_arrival(&aperiodic(2, 40, 1), 0, at(1)).unwrap().is_accept());
    }

    #[test]
    fn duplicate_job_is_an_error() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = aperiodic(0, 10, 0);
        ac.handle_arrival(&t, 0, Time::ZERO).unwrap();
        let err = ac.handle_arrival(&t, 0, at(1)).unwrap_err();
        assert_eq!(err, AdmissionError::DuplicateArrival { job: JobId::new(TaskId(0), 0) });
    }

    #[test]
    fn sentinel_sequence_numbers_are_rejected_at_every_entry_point() {
        // Sequence numbers in the controller-owned sentinel range could
        // collide with reservation/drain bookkeeping mid-reconfiguration,
        // so every arrival path refuses them up front.
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = aperiodic(0, 10, 0);
        for seq in [SENTINEL_SEQ_FLOOR, RESERVED_SEQ - 2, RESERVED_SEQ] {
            let err = ac.handle_arrival(&t, seq, Time::ZERO).unwrap_err();
            assert!(matches!(err, AdmissionError::SentinelSequence { .. }), "seq {seq}");
            let err = ac.admit_with(&t, seq, Time::ZERO, Assignment::primaries(&t)).unwrap_err();
            assert!(matches!(err, AdmissionError::SentinelSequence { .. }), "seq {seq}");
            let err = ac
                .apply_remote_commit(&t, seq, Time::ZERO, &Assignment::primaries(&t))
                .unwrap_err();
            assert!(matches!(err, AdmissionError::SentinelSequence { .. }), "seq {seq}");
        }
        // The largest legitimate sequence number still works.
        assert!(ac.handle_arrival(&t, SENTINEL_SEQ_FLOOR - 1, Time::ZERO).unwrap().is_accept());
    }

    #[test]
    fn unknown_processor_is_an_error() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = aperiodic(0, 10, 5);
        let err = ac.handle_arrival(&t, 0, Time::ZERO).unwrap_err();
        assert!(matches!(err, AdmissionError::UnknownProcessor { .. }));
    }

    #[test]
    fn admit_with_validates_assignment() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 2).unwrap();
        let t = aperiodic(0, 10, 0);
        let err =
            ac.admit_with(&t, 0, Time::ZERO, Assignment::new(vec![ProcessorId(1)])).unwrap_err();
        assert_eq!(err, AdmissionError::InvalidAssignment { task: TaskId(0) });
    }

    #[test]
    fn load_balancing_spreads_arrivals() {
        let mut ac = AdmissionController::new(
            ServiceConfig::new(AcStrategy::PerJob, IrStrategy::None, LbStrategy::PerJob),
            2,
        )
        .unwrap();
        let replicated = |id: u32| {
            TaskBuilder::aperiodic(TaskId(id))
                .deadline(Duration::from_millis(100))
                .subtask(Duration::from_millis(20), ProcessorId(0), [ProcessorId(1)])
                .build()
                .unwrap()
        };
        let d0 = ac.handle_arrival(&replicated(0), 0, Time::ZERO).unwrap();
        let d1 = ac.handle_arrival(&replicated(1), 0, Time::ZERO).unwrap();
        let p0 = d0.assignment().unwrap().processor(0);
        let p1 = d1.assignment().unwrap().processor(0);
        assert_ne!(p0, p1, "second arrival balances to the other processor");
    }

    #[test]
    fn per_task_reservation_relocates_under_lb_per_job() {
        // T_N_J: a reserved periodic task's plan follows the load each job.
        let mut ac = AdmissionController::new(cfg("T_N_J"), 2).unwrap();
        let replicated = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(20), ProcessorId(0), [ProcessorId(1)])
            .build()
            .unwrap();
        let first = ac.handle_arrival(&replicated, 0, Time::ZERO).unwrap();
        assert_eq!(first.assignment().unwrap().processor(0), ProcessorId(0));
        // Load P0 heavily with an aperiodic job; next periodic job should
        // relocate to P1.
        let hog = aperiodic(5, 30, 0);
        assert!(ac.handle_arrival(&hog, 0, at(1)).unwrap().is_accept());
        let second = ac.handle_arrival(&replicated, 1, at(2)).unwrap();
        assert_eq!(second.assignment().unwrap().processor(0), ProcessorId(1));
        // The reservation's utilization moved with it.
        assert!((ac.ledger().utilization(ProcessorId(1)) - 0.2).abs() < 1e-12);
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.3).abs() < 1e-12);
        assert!(matches!(second, Decision::Accept { newly_admitted: false, .. }));
    }

    #[test]
    fn relocation_reverts_when_it_would_break_the_bound() {
        let mut ac = AdmissionController::new(cfg("T_N_J"), 2).unwrap();
        // Two-stage reserved task pinned initially across P0 and P1.
        let spread = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(25), ProcessorId(0), [ProcessorId(1)])
            .subtask(Duration::from_millis(25), ProcessorId(1), [ProcessorId(0)])
            .build()
            .unwrap();
        assert!(ac.handle_arrival(&spread, 0, Time::ZERO).unwrap().is_accept());
        // A second identical task: bounds hold in the spread placement
        // (f(0.5)+f(0.5) = 1.5 > 1? no — need per-processor 0.5 only if both
        // land together). Verify ledger stays consistent regardless of the
        // decision: total reserved utilization must be conserved.
        let spread2 = TaskBuilder::periodic(TaskId(1), Duration::from_millis(100))
            .subtask(Duration::from_millis(25), ProcessorId(0), [ProcessorId(1)])
            .subtask(Duration::from_millis(25), ProcessorId(1), [ProcessorId(0)])
            .build()
            .unwrap();
        let _ = ac.handle_arrival(&spread2, 0, at(1)).unwrap();
        let before: f64 = ac.ledger().utilizations().iter().sum();
        let _ = ac.handle_arrival(&spread, 1, at(2)).unwrap();
        let after: f64 = ac.ledger().utilizations().iter().sum();
        assert!((before - after).abs() < 1e-12, "relocation conserves reserved load");
    }

    #[test]
    fn remote_commit_counts_against_local_admission() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let peer_job = aperiodic(0, 40, 0);
        ac.apply_remote_commit(&peer_job, 0, Time::ZERO, &Assignment::new(vec![ProcessorId(0)]))
            .unwrap();
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.4).abs() < 1e-12);
        // A local arrival that would overflow together with the remote one
        // is rejected.
        let local = aperiodic(1, 30, 0);
        assert!(!ac.handle_arrival(&local, 0, at(1)).unwrap().is_accept());
        // After the remote job's deadline the capacity frees up.
        assert!(ac.handle_arrival(&local, 1, at(150)).unwrap().is_accept());
    }

    #[test]
    fn remote_commit_is_idempotent() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = aperiodic(0, 20, 0);
        let plan = Assignment::new(vec![ProcessorId(0)]);
        ac.apply_remote_commit(&t, 0, Time::ZERO, &plan).unwrap();
        ac.apply_remote_commit(&t, 0, Time::ZERO, &plan).unwrap();
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.2).abs() < 1e-12);
        assert_eq!(ac.current_entries(), 1);
    }

    #[test]
    fn stale_remote_commit_is_dropped() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        ac.expire(at(500));
        let t = aperiodic(0, 20, 0);
        // Deadline at 100ms is behind the expiry floor of 500ms.
        ac.apply_remote_commit(&t, 0, Time::ZERO, &Assignment::new(vec![ProcessorId(0)])).unwrap();
        assert_eq!(ac.ledger().utilization(ProcessorId(0)), 0.0);
        assert_eq!(ac.current_entries(), 0);
    }

    #[test]
    fn remote_commit_validates_inputs() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = aperiodic(0, 20, 0);
        let err = ac.apply_remote_commit(&t, 0, Time::ZERO, &Assignment::new(vec![])).unwrap_err();
        assert_eq!(err, AdmissionError::InvalidAssignment { task: TaskId(0) });
        let far = aperiodic(1, 20, 9);
        let err = ac
            .apply_remote_commit(&far, 0, Time::ZERO, &Assignment::new(vec![ProcessorId(9)]))
            .unwrap_err();
        assert!(matches!(err, AdmissionError::UnknownProcessor { .. }));
    }

    #[test]
    fn modes_agree_and_caches_stay_fresh() {
        // Drive an arrival/reset/expiry mix through paired controllers and
        // require identical decisions plus bit-consistent cached sums.
        let mut inc =
            AdmissionController::with_mode(cfg("J_J_T"), 3, AdmissionMode::Incremental).unwrap();
        let mut brute =
            AdmissionController::with_mode(cfg("J_J_T"), 3, AdmissionMode::BruteForce).unwrap();
        assert_eq!(inc.mode(), AdmissionMode::Incremental);
        assert_eq!(brute.mode(), AdmissionMode::BruteForce);

        let mk = |id: u32, exec: u64, p: u16| {
            TaskBuilder::aperiodic(TaskId(id))
                .deadline(Duration::from_millis(100))
                .subtask(Duration::from_millis(exec), ProcessorId(p), [ProcessorId((p + 1) % 3)])
                .subtask(Duration::from_millis(exec), ProcessorId((p + 2) % 3), [])
                .build()
                .unwrap()
        };
        for step in 0..40u64 {
            let t = mk(step as u32, 5 + (step % 17), (step % 3) as u16);
            let a = inc.handle_arrival(&t, 0, at(step * 7)).unwrap();
            let b = brute.handle_arrival(&t, 0, at(step * 7)).unwrap();
            assert_eq!(a, b, "step {step}");
            if step % 5 == 0 {
                let key = ContributionKey::new(JobId::new(TaskId(step as u32), 0), 0);
                let p = a.assignment().map_or(ProcessorId(0), |plan| plan.processor(0));
                assert_eq!(inc.apply_idle_reset(p, &[key]), brute.apply_idle_reset(p, &[key]));
            }
        }
        assert_eq!(inc.stats(), brute.stats());
        for bound in inc.entry_bounds() {
            assert!(
                (bound.cached_lhs - bound.fresh_lhs).abs() < 1e-9,
                "cached {} drifted from fresh {}",
                bound.cached_lhs,
                bound.fresh_lhs
            );
        }
        assert_eq!(
            inc.ledger().utilizations(),
            brute.ledger().utilizations(),
            "paired controllers share arithmetic exactly"
        );
    }

    #[test]
    fn remote_overload_blocks_all_arrivals_in_both_modes() {
        // A remote commit is applied without a test and can push a current
        // entry over the bound; until it expires, *every* arrival must be
        // rejected — even one landing on an untouched processor, because
        // the violated entry stays violated.
        for mode in [AdmissionMode::Incremental, AdmissionMode::BruteForce] {
            let mut ac = AdmissionController::with_mode(cfg("J_N_N"), 2, mode).unwrap();
            assert!(ac.handle_arrival(&aperiodic(0, 20, 0), 0, Time::ZERO).unwrap().is_accept());
            let hog = aperiodic(1, 75, 0);
            ac.apply_remote_commit(&hog, 0, Time::ZERO, &Assignment::primaries(&hog)).unwrap();
            assert!(ac.violating_entries() > 0, "{mode}: f(0.95) far exceeds the bound");
            assert!(!ac.system_schedulable_brute(), "{mode}: oracle agrees");
            let elsewhere = aperiodic(2, 5, 1);
            assert!(
                !ac.handle_arrival(&elsewhere, 0, at(1)).unwrap().is_accept(),
                "{mode}: violated entry rejects arrivals on untouched processors"
            );
            // Once the overload expires, admission resumes and the
            // violating set drains.
            assert!(ac.handle_arrival(&aperiodic(3, 5, 1), 0, at(200)).unwrap().is_accept());
            assert_eq!(ac.violating_entries(), 0, "{mode}");
        }
    }

    #[test]
    fn saturated_processor_recovers_through_delta_path() {
        // Push a processor to U ≥ 1 (f = ∞) via remote commits, then let
        // the load expire: cached sums must come back finite and fresh
        // (the ∞ boundary cannot be crossed by finite deltas).
        let mut ac = AdmissionController::new(cfg("J_N_N"), 2).unwrap();
        assert!(ac.handle_arrival(&aperiodic(0, 10, 0), 0, Time::ZERO).unwrap().is_accept());
        for id in 1..=3 {
            let hog = aperiodic(id, 40, 0);
            ac.apply_remote_commit(&hog, 0, Time::ZERO, &Assignment::primaries(&hog)).unwrap();
        }
        assert!(ac.ledger().utilization(ProcessorId(0)) >= 1.0);
        assert!(ac.entry_bounds().iter().any(|b| b.cached_lhs.is_infinite()));
        ac.expire(at(100));
        assert_eq!(ac.current_entries(), 0);
        assert!(ac.handle_arrival(&aperiodic(9, 20, 0), 0, at(101)).unwrap().is_accept());
        let bounds = ac.entry_bounds();
        assert!(bounds.iter().all(|b| b.cached_lhs.is_finite()));
        for b in &bounds {
            assert!((b.cached_lhs - b.fresh_lhs).abs() < 1e-9);
        }
    }

    #[test]
    fn reconcile_reports_and_repairs_drift() {
        let mut ac = AdmissionController::new(cfg("J_T_N"), 2).unwrap();
        // Long churn: thousands of admit/expire rounds accumulate ledger
        // and cached-sum drift; reconcile must keep it within 1e-6 and
        // leave the caches exactly fresh.
        let mut now = Time::ZERO;
        for round in 0..10_000u64 {
            let t = aperiodic((round % 7) as u32, 1 + (round % 23), (round % 2) as u16);
            let _ = ac.handle_arrival(&t, round, now).unwrap();
            now = now.saturating_add(Duration::from_millis(29));
        }
        let drift = ac.reconcile();
        assert!(drift < 1e-6, "drift {drift} exceeded the reconcilable budget");
        for b in ac.entry_bounds() {
            assert!((b.cached_lhs - b.fresh_lhs).abs() < 1e-12, "reconcile left stale caches");
        }
        // Reconciling twice is idempotent (second pass corrects ~nothing).
        assert!(ac.reconcile() < 1e-12);
    }

    #[test]
    fn set_mode_switches_decision_procedure_in_place() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        assert!(ac.handle_arrival(&aperiodic(0, 20, 0), 0, Time::ZERO).unwrap().is_accept());
        ac.set_mode(AdmissionMode::BruteForce);
        assert_eq!(ac.mode(), AdmissionMode::BruteForce);
        assert!(ac.handle_arrival(&aperiodic(1, 20, 0), 0, at(1)).unwrap().is_accept());
        ac.set_mode(AdmissionMode::Incremental);
        // The bookkeeping never stopped, so the incremental path picks up
        // mid-flight: the third task overflows and is rejected.
        assert!(!ac.handle_arrival(&aperiodic(2, 20, 0), 0, at(2)).unwrap().is_accept());
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.4).abs() < 1e-12);
    }

    fn set_of(tasks: &[&TaskSpec]) -> crate::task::TaskSet {
        crate::task::TaskSet::from_tasks(tasks.iter().map(|t| (*t).clone())).unwrap()
    }

    #[test]
    fn reconfigure_rejects_invalid_target_atomically() {
        let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
        let t = periodic(0, 20, 0);
        assert!(ac.handle_arrival(&t, 0, Time::ZERO).unwrap().is_accept());
        let err = ac.reconfigure(cfg("T_J_N"), at(1), &set_of(&[&t])).unwrap_err();
        assert_eq!(err.config.label(), "T_J_N");
        assert_eq!(ac.config().label(), "T_N_N", "failed swap leaves the config untouched");
        assert!(ac.is_reserved(t.id()), "failed swap leaves the reservation untouched");
    }

    #[test]
    fn reconfigure_with_zero_entries_is_clean() {
        // Edge case: swap on a completely empty controller.
        let mut ac = AdmissionController::new(cfg("T_T_T"), 2).unwrap();
        let report = ac.reconfigure(cfg("J_J_J"), Time::ZERO, &set_of(&[])).unwrap();
        assert_eq!(ac.config().label(), "J_J_J");
        assert_eq!(report.entries_carried, 0);
        assert_eq!(report.reservations_drained, 0);
        assert_eq!(report.reservations_reseeded, 0);
        // The empty controller behaves exactly like a fresh per-job one.
        assert!(ac.handle_arrival(&aperiodic(0, 20, 0), 0, at(1)).unwrap().is_accept());
    }

    #[test]
    fn drain_converts_reservations_and_frees_after_deadline() {
        let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
        let t = periodic(0, 40, 0);
        assert!(ac.handle_arrival(&t, 0, Time::ZERO).unwrap().is_accept());
        // A second heavy periodic task fails and is sticky-rejected.
        let hog = periodic(1, 40, 0);
        assert!(!ac.handle_arrival(&hog, 0, at(1)).unwrap().is_accept());
        assert!(ac.is_rejected(hog.id()));

        let report = ac.reconfigure(cfg("J_N_N"), at(10), &set_of(&[&t, &hog])).unwrap();
        assert_eq!(report.reservations_drained, 1);
        assert_eq!(report.rejections_cleared, 1);
        assert_eq!(report.entries_carried, 1);
        assert!(!ac.is_reserved(t.id()));
        assert!(!ac.is_rejected(hog.id()), "sticky rejection cleared by the swap");
        // The drained contribution still guards in-flight jobs...
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.4).abs() < 1e-12);
        // ...then frees at now + deadline (10 + 100 ms).
        ac.expire(at(110));
        assert_eq!(ac.ledger().utilization(ProcessorId(0)), 0.0);
        assert_eq!(ac.current_entries(), 0);
        // Per-job semantics now apply: each job of t is tested afresh.
        assert!(ac.handle_arrival(&t, 1, at(120)).unwrap().is_accept());
        assert!(!ac.is_reserved(t.id()));
    }

    #[test]
    fn reseed_restores_pass_through_from_live_placement() {
        let mut ac = AdmissionController::new(cfg("J_N_N"), 2).unwrap();
        let t = periodic(0, 20, 0);
        assert!(ac.handle_arrival(&t, 0, Time::ZERO).unwrap().is_accept());
        let report = ac.reconfigure(cfg("T_N_N"), at(1), &set_of(&[&t])).unwrap();
        assert_eq!(report.reservations_reseeded, 1);
        assert!(ac.is_reserved(t.id()));
        // Later jobs pass through without a fresh test.
        let d = ac.handle_arrival(&t, 1, at(5)).unwrap();
        assert!(matches!(d, Decision::Accept { newly_admitted: false, .. }));
        // The reservation persists after the seeding job's deadline.
        ac.expire(at(1_000));
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn reseed_is_skipped_at_aub_saturation() {
        // Edge case: swap while the system is saturated by un-tested
        // remote load — reseeding must not push a violated system deeper.
        let mut ac = AdmissionController::new(cfg("J_N_N"), 1).unwrap();
        let t = periodic(0, 20, 0);
        assert!(ac.handle_arrival(&t, 0, Time::ZERO).unwrap().is_accept());
        let hog = aperiodic(1, 75, 0);
        ac.apply_remote_commit(&hog, 0, Time::ZERO, &Assignment::primaries(&hog)).unwrap();
        assert!(ac.violating_entries() > 0);

        let report = ac.reconfigure(cfg("T_N_N"), at(1), &set_of(&[&t])).unwrap();
        assert_eq!(report.reservations_reseeded, 0);
        assert_eq!(report.reseeds_skipped, 1);
        assert!(!ac.is_reserved(t.id()));
        // Utilization unchanged by the skipped reseed (0.2 + 0.75).
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.95).abs() < 1e-12);
        // Once the overload expires, the task is tested (and reserved) at
        // its next arrival as usual.
        let d = ac.handle_arrival(&t, 1, at(200)).unwrap();
        assert!(matches!(d, Decision::Accept { newly_admitted: true, .. }));
        assert!(ac.is_reserved(t.id()));
    }

    #[test]
    fn swap_back_with_drained_expiry_pending_in_heap() {
        // Edge case: T -> J drains the reservation (queueing its expiry in
        // the lazy-deletion machinery), then J -> T reseeds *before* that
        // expiry fires. The reseed converts the drained leftover back into
        // the reservation — an exact round trip — and the stale heap
        // record left behind must not disturb the revived reservation
        // when it surfaces.
        let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
        let t = periodic(0, 20, 0);
        let tasks = set_of(&[&t]);
        assert!(ac.handle_arrival(&t, 0, Time::ZERO).unwrap().is_accept());

        let drain = ac.reconfigure(cfg("J_N_N"), at(10), &tasks).unwrap();
        assert_eq!(drain.reservations_drained, 1);
        let reseed = ac.reconfigure(cfg("T_N_N"), at(20), &tasks).unwrap();
        assert_eq!(reseed.reservations_reseeded, 1, "{reseed}");
        assert!(ac.is_reserved(t.id()));
        // The conversion is utilization-neutral: no double count.
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.2).abs() < 1e-12);
        assert_eq!(ac.current_entries(), 1);

        // The drained entry's pending heap record surfaces at 10 + 100 ms;
        // the generation check must discard it, keeping the reservation.
        ac.expire(at(200));
        assert_eq!(ac.current_entries(), 1);
        assert!(ac.is_reserved(t.id()));
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.2).abs() < 1e-12);
        // And the reservation still passes jobs through.
        let d = ac.handle_arrival(&t, 7, at(210)).unwrap();
        assert!(matches!(d, Decision::Accept { newly_admitted: false, .. }));
        for b in ac.entry_bounds() {
            assert!((b.cached_lhs - b.fresh_lhs).abs() < 1e-9, "caches stale after round trip");
        }
    }

    #[test]
    fn reseed_of_partially_reset_entry_falls_back_to_additive() {
        // A job with one of two stages idle-reset cannot be converted
        // exactly; the reseed adds a full fresh reservation on top of the
        // remaining contribution (conservative, AUB-guarded).
        let two_stage = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(20), ProcessorId(0), [])
            .subtask(Duration::from_millis(20), ProcessorId(1), [])
            .build()
            .unwrap();
        let mut ac = AdmissionController::new(cfg("J_J_N"), 2).unwrap();
        assert!(ac.handle_arrival(&two_stage, 0, Time::ZERO).unwrap().is_accept());
        let job = JobId::new(TaskId(0), 0);
        ac.apply_idle_reset(ProcessorId(0), &[ContributionKey::new(job, 0)]);

        let report = ac.reconfigure(cfg("T_T_N"), at(1), &set_of(&[&two_stage])).unwrap();
        assert_eq!(report.reservations_reseeded, 1);
        assert!(ac.is_reserved(TaskId(0)));
        // P0: reservation only (0.2); P1: reservation + un-reset job
        // contribution (0.4) until the job's deadline.
        assert!((ac.ledger().utilization(ProcessorId(0)) - 0.2).abs() < 1e-12);
        assert!((ac.ledger().utilization(ProcessorId(1)) - 0.4).abs() < 1e-12);
        ac.expire(at(150));
        assert!((ac.ledger().utilization(ProcessorId(1)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn swap_with_idle_reset_stale_heap_entry_pending() {
        // Edge case: a job contribution removed early by idle resetting
        // leaves a stale entry in the ledger's lazy-deletion heap; a swap
        // right after must not resurrect or double-free anything.
        let mut ac = AdmissionController::new(cfg("J_T_N"), 2).unwrap();
        let a = aperiodic(0, 20, 0);
        let t = periodic(1, 20, 1);
        assert!(ac.handle_arrival(&a, 0, Time::ZERO).unwrap().is_accept());
        assert!(ac.handle_arrival(&t, 0, Time::ZERO).unwrap().is_accept());
        let freed = ac
            .apply_idle_reset(ProcessorId(0), &[ContributionKey::new(JobId::new(TaskId(0), 0), 0)]);
        assert!((freed - 0.2).abs() < 1e-12);

        let report = ac.reconfigure(cfg("T_T_N"), at(1), &set_of(&[&a, &t])).unwrap();
        assert_eq!(report.reservations_reseeded, 1);
        ac.expire(at(500));
        assert_eq!(ac.ledger().utilization(ProcessorId(0)), 0.0);
        assert!((ac.ledger().utilization(ProcessorId(1)) - 0.2).abs() < 1e-12);
        assert_eq!(ac.reserved_tasks(), 1);
    }

    #[test]
    fn lb_swap_forgets_pins_and_ir_swap_is_free() {
        let mut ac = AdmissionController::new(cfg("J_N_T"), 2).unwrap();
        let replicated = TaskBuilder::aperiodic(TaskId(0))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(10), ProcessorId(0), [ProcessorId(1)])
            .build()
            .unwrap();
        assert!(ac.handle_arrival(&replicated, 0, Time::ZERO).unwrap().is_accept());
        let report = ac.reconfigure(cfg("J_J_J"), at(1), &set_of(&[&replicated])).unwrap();
        assert_eq!(report.pins_forgotten, 1);
        assert_eq!(ac.config().label(), "J_J_J");
        assert_eq!(report.reservations_drained + report.reservations_reseeded, 0);
    }

    #[test]
    fn repeated_swaps_keep_modes_agreeing() {
        // Ping-pong the full configuration while arrivals flow; the
        // incremental and brute-force decision procedures must stay in
        // lockstep, and caches must stay fresh.
        let mut inc =
            AdmissionController::with_mode(cfg("J_J_T"), 3, AdmissionMode::Incremental).unwrap();
        let mut brute =
            AdmissionController::with_mode(cfg("J_J_T"), 3, AdmissionMode::BruteForce).unwrap();
        let specs: Vec<TaskSpec> = (0..4)
            .map(|i| {
                if i % 2 == 0 {
                    periodic(i, 10 + u64::from(i), (i % 3) as u16)
                } else {
                    aperiodic(i, 8 + u64::from(i), (i % 3) as u16)
                }
            })
            .collect();
        let tasks = crate::task::TaskSet::from_tasks(specs.clone()).unwrap();
        let targets = ["T_T_T", "J_N_N", "T_N_J", "J_J_J"];
        for (round, target) in targets.iter().cycle().take(12).enumerate() {
            let now = at(round as u64 * 17);
            for (i, spec) in specs.iter().enumerate() {
                let seq = (round * specs.len() + i) as u64;
                let a = inc.handle_arrival(spec, seq, now).unwrap();
                let b = brute.handle_arrival(spec, seq, now).unwrap();
                assert_eq!(a, b, "round {round} task {i}");
            }
            let ra = inc.reconfigure(target.parse().unwrap(), now, &tasks).unwrap();
            let rb = brute.reconfigure(target.parse().unwrap(), now, &tasks).unwrap();
            assert_eq!(ra, rb, "round {round} handover diverged");
        }
        assert_eq!(inc.current_entries(), brute.current_entries());
        for b in inc.entry_bounds().iter().chain(brute.entry_bounds().iter()) {
            assert!((b.cached_lhs - b.fresh_lhs).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_count_all_paths() {
        let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
        let t = periodic(0, 20, 0);
        ac.handle_arrival(&t, 0, Time::ZERO).unwrap();
        ac.handle_arrival(&t, 1, at(1)).unwrap();
        let hog = periodic(1, 60, 0);
        ac.handle_arrival(&hog, 0, at(2)).unwrap();
        let s = ac.stats();
        assert_eq!(s.tested, 2);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.pass_throughs, 1);
    }
}
