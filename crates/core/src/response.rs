//! Holistic end-to-end response-time analysis for periodic task sets under
//! EDMS — an analytical upper bound to cross-validate the simulator.
//!
//! The AUB admission test answers *"will deadlines hold?"*; this module
//! answers *"how late can each stage finish?"* using the classic holistic
//! analysis (Tindell & Clark): per-processor fixed-priority response-time
//! iteration with release-jitter propagation along the subtask chain,
//!
//! ```text
//!   w_ij = C_ij + Σ_{(k,l) ∈ hp(i) on same processor} ⌈(w_ij + J_kl) / P_k⌉ · C_kl
//!   J_i,j+1 = R_ij + comm,      R_ij = J_ij + w_ij
//! ```
//!
//! iterated to a global fixpoint. The analysis assumes periodic tasks with
//! constrained deadlines (D ≤ P); aperiodic interference is out of its
//! scope (that is exactly what AUB's synthetic utilization handles), so
//! [`analyze_response_times`] rejects sets containing aperiodic tasks.
//!
//! The bound is *sufficient, not tight*: simulated responses must never
//! exceed it (asserted by integration tests), but may be far below.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::response::analyze_response_times;
//! use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId, TaskSet};
//! use rtcm_core::time::Duration;
//!
//! let solo = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
//!     .subtask(Duration::from_millis(10), ProcessorId(0), [])
//!     .build()?;
//! let set = TaskSet::from_tasks([solo])?;
//! let report = analyze_response_times(&set, Duration::ZERO)?;
//! // Alone, the bound is exactly the execution time.
//! assert_eq!(report.end_to_end(TaskId(0)), Some(Duration::from_millis(10)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::priority::assign_edms;
use crate::task::{TaskId, TaskSet};
use crate::time::Duration;

/// Response-time bounds for one task, per stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskResponse {
    /// The task.
    pub task: TaskId,
    /// Worst-case completion bound of each stage, measured from the task's
    /// release (cumulative).
    pub stage_bounds: Vec<Duration>,
    /// True if every stage's busy window stayed within the task's
    /// end-to-end deadline. False means the bound crossed the deadline —
    /// with constrained deadlines (D ≤ P) the analysis is then both
    /// unschedulable and no longer meaningful, so `stage_bounds` is
    /// unusable.
    pub converged: bool,
}

impl TaskResponse {
    /// The end-to-end response bound, if the analysis converged.
    #[must_use]
    pub fn end_to_end(&self) -> Option<Duration> {
        if self.converged {
            self.stage_bounds.last().copied()
        } else {
            None
        }
    }

    /// True if the bound proves the deadline.
    #[must_use]
    pub fn meets(&self, deadline: Duration) -> bool {
        self.end_to_end().is_some_and(|r| r <= deadline)
    }
}

/// The whole-set analysis result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseReport {
    /// Per-task bounds, in task-set order.
    pub tasks: Vec<TaskResponse>,
}

impl ResponseReport {
    /// End-to-end bound for `task`, if present and converged.
    #[must_use]
    pub fn end_to_end(&self, task: TaskId) -> Option<Duration> {
        self.tasks.iter().find(|t| t.task == task).and_then(TaskResponse::end_to_end)
    }

    /// True if every task's bound converged and proves its deadline.
    #[must_use]
    pub fn all_schedulable(&self, tasks: &TaskSet) -> bool {
        self.tasks.iter().all(|r| tasks.get(r.task).is_some_and(|spec| r.meets(spec.deadline())))
    }
}

impl fmt::Display for ResponseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tasks {
            match t.end_to_end() {
                Some(r) => writeln!(f, "  {}: R = {r}", t.task)?,
                None => writeln!(f, "  {}: unbounded (overload)", t.task)?,
            }
        }
        Ok(())
    }
}

/// Errors from the response-time analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseError {
    /// The set contains an aperiodic task; holistic analysis needs periods.
    AperiodicTask {
        /// The offending task.
        task: TaskId,
    },
    /// A task's deadline exceeds its period (unconstrained deadlines are
    /// outside this analysis' assumptions).
    UnconstrainedDeadline {
        /// The offending task.
        task: TaskId,
    },
}

impl fmt::Display for ResponseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResponseError::AperiodicTask { task } => {
                write!(f, "task {task} is aperiodic; holistic analysis requires periods")
            }
            ResponseError::UnconstrainedDeadline { task } => {
                write!(f, "task {task} has deadline > period; analysis assumes D <= P")
            }
        }
    }
}

impl std::error::Error for ResponseError {}

#[derive(Clone, Copy)]
struct Stage {
    task_idx: usize,
    prio: u32,
    exec_ns: u128,
    period_ns: u128,
}

/// Computes holistic response-time bounds for a periodic task set under
/// EDMS priorities, charging `comm` per processor-crossing hop.
///
/// # Errors
///
/// Returns [`ResponseError`] for aperiodic tasks or deadlines beyond
/// periods.
pub fn analyze_response_times(
    tasks: &TaskSet,
    comm: Duration,
) -> Result<ResponseReport, ResponseError> {
    for task in tasks.iter() {
        match task.kind().period() {
            None => return Err(ResponseError::AperiodicTask { task: task.id() }),
            Some(period) => {
                if task.deadline() > period {
                    return Err(ResponseError::UnconstrainedDeadline { task: task.id() });
                }
            }
        }
    }
    let priorities = assign_edms(tasks);
    let specs: Vec<_> = tasks.iter().collect();
    let n_proc = tasks.processor_count();

    // Per-processor stage tables.
    let mut on_proc: Vec<Vec<(usize, usize, Stage)>> = vec![Vec::new(); n_proc];
    for (ti, task) in specs.iter().enumerate() {
        for (j, sub) in task.subtasks().iter().enumerate() {
            on_proc[sub.primary.index()].push((
                ti,
                j,
                Stage {
                    task_idx: ti,
                    prio: priorities[&task.id()].0,
                    exec_ns: u128::from(sub.execution_time.as_nanos()),
                    period_ns: u128::from(task.kind().period().expect("checked").as_nanos()),
                },
            ));
        }
    }

    // Jitter (release offset bound) per stage; J_i0 = 0.
    let mut jitter: Vec<Vec<u128>> =
        specs.iter().map(|t| vec![0u128; t.subtasks().len()]).collect();
    let mut response: Vec<Vec<u128>> =
        specs.iter().map(|t| vec![0u128; t.subtasks().len()]).collect();
    let mut converged: Vec<bool> = vec![true; specs.len()];
    // Guard: once a stage's completion bound crosses the task deadline the
    // constrained-deadline analysis is void (and unschedulable anyway).
    let guards: Vec<u128> = specs.iter().map(|t| u128::from(t.deadline().as_nanos())).collect();
    let comm_ns = u128::from(comm.as_nanos());

    // Global fixpoint over jitter propagation.
    for _round in 0..128 {
        let mut changed = false;
        for (ti, task) in specs.iter().enumerate() {
            if !converged[ti] {
                continue;
            }
            for (j, sub) in task.subtasks().iter().enumerate() {
                let proc = sub.primary.index();
                let me_prio = priorities[&task.id()].0;
                // Busy-window iteration for stage (ti, j).
                let c = u128::from(sub.execution_time.as_nanos());
                let mut w = c;
                loop {
                    let mut demand = c;
                    for (ki, l, stage) in &on_proc[proc] {
                        if *ki == ti {
                            continue;
                        }
                        if stage.prio < me_prio {
                            let j_kl = jitter[stage.task_idx][*l];
                            demand += ((w + j_kl).div_ceil(stage.period_ns)) * stage.exec_ns;
                        }
                    }
                    if demand == w {
                        break;
                    }
                    w = demand;
                    if jitter[ti][j] + w > guards[ti] {
                        converged[ti] = false;
                        break;
                    }
                }
                if !converged[ti] {
                    break;
                }
                let r = jitter[ti][j] + w;
                if r != response[ti][j] {
                    response[ti][j] = r;
                    changed = true;
                }
                // Propagate jitter to the next stage (plus a comm hop when
                // it crosses processors).
                if j + 1 < task.subtasks().len() {
                    let crossing = task.subtasks()[j + 1].primary != sub.primary;
                    let next_j = r + if crossing { comm_ns } else { 0 };
                    if next_j != jitter[ti][j + 1] {
                        jitter[ti][j + 1] = next_j;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let report = ResponseReport {
        tasks: specs
            .iter()
            .enumerate()
            .map(|(ti, task)| TaskResponse {
                task: task.id(),
                stage_bounds: response[ti]
                    .iter()
                    .map(|ns| Duration::from_nanos(u64::try_from(*ns).unwrap_or(u64::MAX)))
                    .collect(),
                converged: converged[ti],
            })
            .collect(),
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ProcessorId, TaskBuilder};

    fn periodic(id: u32, period_ms: u64, stages: &[(u64, u16)]) -> crate::task::TaskSpec {
        let mut b = TaskBuilder::periodic(TaskId(id), Duration::from_millis(period_ms));
        for (exec, proc) in stages {
            b = b.subtask(Duration::from_millis(*exec), ProcessorId(*proc), []);
        }
        b.build().unwrap()
    }

    #[test]
    fn solo_task_bound_is_its_execution() {
        let set = TaskSet::from_tasks([periodic(0, 100, &[(10, 0), (5, 1)])]).unwrap();
        let r = analyze_response_times(&set, Duration::ZERO).unwrap();
        assert_eq!(r.end_to_end(TaskId(0)), Some(Duration::from_millis(15)));
        assert!(r.all_schedulable(&set));
    }

    #[test]
    fn comm_delay_charged_per_crossing() {
        let set = TaskSet::from_tasks([periodic(0, 100, &[(10, 0), (5, 1), (5, 1)])]).unwrap();
        let r = analyze_response_times(&set, Duration::from_millis(1)).unwrap();
        // One crossing (P0 -> P1); the P1 -> P1 hop is local.
        assert_eq!(r.end_to_end(TaskId(0)), Some(Duration::from_millis(21)));
    }

    #[test]
    fn interference_from_higher_priority() {
        // T0 (50 ms deadline, higher priority) interferes with T1.
        let set = TaskSet::from_tasks([periodic(0, 50, &[(10, 0)]), periodic(1, 100, &[(20, 0)])])
            .unwrap();
        let r = analyze_response_times(&set, Duration::ZERO).unwrap();
        assert_eq!(r.end_to_end(TaskId(0)), Some(Duration::from_millis(10)));
        // T1's busy window: w = 20 + ceil(w/50)·10 converges at 30.
        assert_eq!(r.end_to_end(TaskId(1)), Some(Duration::from_millis(30)));
        assert!(r.all_schedulable(&set));
    }

    #[test]
    fn overload_is_reported_as_unbounded() {
        let set = TaskSet::from_tasks([periodic(0, 50, &[(30, 0)]), periodic(1, 100, &[(60, 0)])])
            .unwrap();
        let r = analyze_response_times(&set, Duration::ZERO).unwrap();
        // T0 fits; T1 faces 60% + 60% > 100% on P0: its busy window blows
        // through the 100 ms deadline.
        assert!(r.tasks[0].converged);
        assert!(!r.tasks[1].converged);
        assert_eq!(r.end_to_end(TaskId(1)), None);
        assert!(!r.all_schedulable(&set));
        assert!(r.to_string().contains("unbounded"));
    }

    #[test]
    fn jitter_propagates_downstream() {
        // T0's stage 2 on P1 suffers jitter from stage 1 delays caused by
        // T1's interference on P0.
        let set = TaskSet::from_tasks([
            periodic(1, 80, &[(10, 0)]),           // higher prio on P0
            periodic(0, 100, &[(10, 0), (10, 1)]), // chain P0 -> P1
        ])
        .unwrap();
        let r = analyze_response_times(&set, Duration::ZERO).unwrap();
        // Stage 1 of the chain: 10 + 10 (interference) = 20; stage 2 adds
        // its own 10 with jitter 20 -> end-to-end 30.
        assert_eq!(r.end_to_end(TaskId(0)), Some(Duration::from_millis(30)));
    }

    #[test]
    fn rejects_aperiodic_and_unconstrained() {
        let aperiodic = TaskBuilder::aperiodic(TaskId(0))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(1), ProcessorId(0), [])
            .build()
            .unwrap();
        let set = TaskSet::from_tasks([aperiodic]).unwrap();
        assert!(matches!(
            analyze_response_times(&set, Duration::ZERO),
            Err(ResponseError::AperiodicTask { .. })
        ));

        let loose = TaskBuilder::periodic(TaskId(0), Duration::from_millis(50))
            .deadline(Duration::from_millis(80))
            .subtask(Duration::from_millis(1), ProcessorId(0), [])
            .build()
            .unwrap();
        let set = TaskSet::from_tasks([loose]).unwrap();
        assert!(matches!(
            analyze_response_times(&set, Duration::ZERO),
            Err(ResponseError::UnconstrainedDeadline { .. })
        ));
    }

    #[test]
    fn report_serializes() {
        let set = TaskSet::from_tasks([periodic(0, 100, &[(10, 0)])]).unwrap();
        let r = analyze_response_times(&set, Duration::ZERO).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("stage_bounds"));
    }
}
