//! # rtcm-core
//!
//! Core library of **rtcm**, a reproduction of *"Reconfigurable Real-Time
//! Middleware for Distributed Cyber-Physical Systems with Aperiodic
//! Events"* (Zhang, Gill & Lu, ICDCS 2008 / WUCSE-2008-5).
//!
//! This crate holds everything that is independent of a time source:
//!
//! * the end-to-end **task model** ([`task`]) — chains of subtasks over
//!   processors, periodic and aperiodic release patterns, end-to-end
//!   deadlines;
//! * **EDMS** priority assignment ([`priority`]);
//! * the **AUB** schedulability condition ([`aub`]) and the
//!   synthetic-utilization **ledger** ([`ledger`]);
//! * the three configurable services — **admission control**
//!   ([`admission`]), **idle resetting** ([`reset`]) and **load balancing**
//!   ([`balance`]) — with their per-task / per-job / disabled strategies
//!   ([`strategy`]) and the §4.5 validity rule (15 of 18 combinations);
//! * run-time **reconfiguration** ([`reconfig`]): transition plans, timed
//!   mode schedules, and the admission-state handover behind
//!   `AdmissionController::reconfigure`;
//! * the **adaptation governor** ([`govern`]): windowed load sensing and
//!   declarative threshold/hysteresis/cooldown policies that drive
//!   reconfiguration automatically from observed load;
//! * the evaluation **metrics** ([`metrics`]): accepted utilization ratio
//!   and delay statistics;
//! * design-time **feasibility analysis** ([`analysis`]): which tasks can
//!   never be admitted, which only contend under worst-case phasing;
//! * the **sharded admission plane** ([`shard`]): N shard controllers keyed
//!   by processor group behind a two-level AUB sum tree, so single-group
//!   arrivals admit with zero cross-shard synchronization;
//! * a **deferrable-server** admission alternative ([`server`]) from the
//!   authors' prior work, used by the ablation benches.
//!
//! The discrete-event simulator (`rtcm-sim`) and the threaded runtime
//! (`rtcm-rt`) both drive these same types, so admission behavior is
//! identical in virtual and wall-clock time.
//!
//! ## Quick example
//!
//! ```
//! use rtcm_core::admission::AdmissionController;
//! use rtcm_core::strategy::ServiceConfig;
//! use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId};
//! use rtcm_core::time::{Duration, Time};
//!
//! // Per-job admission control with idle resetting and load balancing.
//! let cfg: ServiceConfig = "J_J_J".parse()?;
//! let mut ac = AdmissionController::new(cfg, 3)?;
//!
//! let alert = TaskBuilder::aperiodic(TaskId(0))
//!     .name("hazard-alert")
//!     .deadline(Duration::from_millis(300))
//!     .subtask(Duration::from_millis(20), ProcessorId(0), [ProcessorId(1)])
//!     .subtask(Duration::from_millis(10), ProcessorId(2), [])
//!     .build()?;
//!
//! let decision = ac.handle_arrival(&alert, 0, Time::ZERO)?;
//! assert!(decision.is_accept());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod analysis;
pub mod aub;
pub mod balance;
pub mod govern;
pub mod ledger;
pub mod metrics;
pub mod priority;
pub mod reconfig;
pub mod reset;
pub mod response;
pub mod server;
pub mod shard;
pub mod strategy;
pub mod task;
pub mod time;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::admission::{AdmissionController, Decision, RejectReason};
    pub use crate::balance::{Assignment, LoadBalancer};
    pub use crate::govern::{
        Governor, GovernorPolicy, GovernorRule, Metric, Trigger, WindowMetrics,
    };
    pub use crate::ledger::{ContributionKey, Lifetime, UtilizationLedger};
    pub use crate::metrics::{DelayStats, UtilizationRatio};
    pub use crate::priority::{assign_edms, Priority};
    pub use crate::reconfig::{HandoverReport, ModeSchedule, ReconfigPlan};
    pub use crate::reset::{IdleResetReport, IdleResetter};
    pub use crate::shard::{
        AdmissionPlaneStats, ShardLayout, ShardSummary, ShardedAdmissionController,
    };
    pub use crate::strategy::{AcStrategy, IrStrategy, LbStrategy, ServiceConfig};
    pub use crate::task::{
        JobId, ProcessorId, SubtaskSpec, TaskBuilder, TaskId, TaskKind, TaskSet, TaskSpec,
    };
    pub use crate::time::{Duration, Time};
}
