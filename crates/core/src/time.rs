//! Nanosecond-resolution time types shared by virtual (simulated) and
//! wall-clock execution.
//!
//! The middleware logic in this crate is *time-source agnostic*: the
//! discrete-event simulator advances a virtual [`Time`], while the threaded
//! runtime converts `std::time::Instant` offsets into the same
//! representation. Keeping a single fixed-point representation (u64
//! nanoseconds from an arbitrary epoch) makes admission-control bookkeeping
//! deterministic and directly comparable between the two substrates.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::time::{Duration, Time};
//!
//! let start = Time::ZERO;
//! let deadline = start + Duration::from_millis(250);
//! assert_eq!(deadline.elapsed_since(start), Duration::from_millis(250));
//! assert!(deadline > start);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in time, measured in nanoseconds from an arbitrary epoch.
///
/// In simulation the epoch is the start of the run; in the threaded runtime
/// it is the creation instant of the runtime clock.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

/// A span of time, measured in nanoseconds.
///
/// This intentionally mirrors a subset of `std::time::Duration` while staying
/// a plain `u64` so it can be used as a map key and serialized compactly.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Time {
    /// The epoch itself.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw nanoseconds since the epoch.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Returns raw nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    #[must_use]
    pub fn elapsed_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: Duration) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }

    /// Saturating addition of a duration.
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration seconds must be finite and non-negative");
        let ns = (s * 1e9).round();
        if ns >= u64::MAX as f64 {
            Duration(u64::MAX)
        } else {
            Duration(ns as u64)
        }
    }

    /// Returns the duration in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns true if this duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` if `other` is larger.
    #[must_use]
    pub fn checked_sub(self, other: Duration) -> Option<Duration> {
        self.0.checked_sub(other.0).map(Duration)
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// The ratio `self / other` as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn ratio(self, other: Duration) -> f64 {
        assert!(!other.is_zero(), "cannot take ratio against a zero duration");
        self.0 as f64 / other.0 as f64
    }

    /// Multiplies by a non-negative float, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative"
        );
        Duration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl From<std::time::Duration> for Duration {
    fn from(d: std::time::Duration) -> Self {
        Duration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl From<Duration> for std::time::Duration {
    fn from(d: Duration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_nanos(5_000);
        let d = Duration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn elapsed_since_saturates() {
        let early = Time::from_nanos(10);
        let late = Time::from_nanos(50);
        assert_eq!(late.elapsed_since(early), Duration::from_nanos(40));
        assert_eq!(early.elapsed_since(late), Duration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
        assert_eq!(Duration::from_secs_f64(0.25), Duration::from_millis(250));
    }

    #[test]
    fn ratio_and_mul_f64_are_inverses() {
        let d = Duration::from_millis(400);
        let base = Duration::from_secs(2);
        let r = d.ratio(base);
        assert!((r - 0.2).abs() < 1e-12);
        assert_eq!(base.mul_f64(r), d);
    }

    #[test]
    fn display_picks_coarsest_unit() {
        assert_eq!(Duration::from_secs(3).to_string(), "3s");
        assert_eq!(Duration::from_millis(250).to_string(), "250ms");
        assert_eq!(Duration::from_micros(17).to_string(), "17us");
        assert_eq!(Duration::from_nanos(9).to_string(), "9ns");
        assert_eq!(Duration::ZERO.to_string(), "0s");
    }

    #[test]
    fn std_duration_conversions() {
        let d = Duration::from_millis(1_500);
        let std: std::time::Duration = d.into();
        assert_eq!(std.as_millis(), 1_500);
        assert_eq!(Duration::from(std), d);
    }

    #[test]
    fn sum_of_durations() {
        let parts = [Duration::from_millis(1), Duration::from_millis(2), Duration::from_millis(3)];
        let total: Duration = parts.iter().copied().sum();
        assert_eq!(total, Duration::from_millis(6));
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert_eq!(Time::MAX.checked_add(Duration::from_nanos(1)), None);
        assert_eq!(Time::MAX.saturating_add(Duration::from_nanos(1)), Time::MAX);
        assert_eq!(Duration::from_nanos(1).checked_sub(Duration::from_nanos(2)), None);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn ratio_rejects_zero_base() {
        let _ = Duration::from_millis(1).ratio(Duration::ZERO);
    }
}
