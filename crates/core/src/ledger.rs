//! The synthetic-utilization ledger: the admission controller's bookkeeping
//! of per-processor contributions `C_{i,j} / D_i` of current jobs and
//! reserved tasks.
//!
//! A *contribution* is one subtask's share of one job (or of a per-task
//! reservation). Contributions live until:
//!
//! * their job's end-to-end deadline passes ([`Lifetime::UntilDeadline`],
//!   removed by [`UtilizationLedger::expire_until`]),
//! * the idle-resetting service reports them complete and the AC removes
//!   them early ([`UtilizationLedger::remove`]), or
//! * the owning task departs (per-task reservations,
//!   [`Lifetime::Reserved`], also removed via `remove`).
//!
//! # Examples
//!
//! ```
//! use rtcm_core::ledger::{ContributionKey, Lifetime, UtilizationLedger};
//! use rtcm_core::task::{JobId, ProcessorId, TaskId};
//! use rtcm_core::time::{Duration, Time};
//!
//! let mut ledger = UtilizationLedger::new(2);
//! let key = ContributionKey::new(JobId::new(TaskId(0), 0), 0);
//! let deadline = Time::ZERO + Duration::from_millis(500);
//! ledger.add(ProcessorId(0), key, 0.25, Lifetime::UntilDeadline(deadline))?;
//! assert_eq!(ledger.utilization(ProcessorId(0)), 0.25);
//!
//! ledger.expire_until(deadline);
//! assert_eq!(ledger.utilization(ProcessorId(0)), 0.0);
//! # Ok::<(), rtcm_core::ledger::LedgerError>(())
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::task::{JobId, ProcessorId};
use crate::time::Time;

/// Identifies one subtask's contribution of one job.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ContributionKey {
    /// The owning job.
    pub job: JobId,
    /// Index of the subtask within the task's chain.
    pub subtask: usize,
}

impl ContributionKey {
    /// Creates a key for `subtask` of `job`.
    #[must_use]
    pub fn new(job: JobId, subtask: usize) -> Self {
        ContributionKey { job, subtask }
    }
}

impl fmt::Display for ContributionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.job, self.subtask)
    }
}

/// How long a contribution stays in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lifetime {
    /// Until the job's absolute end-to-end deadline (per-job admission).
    UntilDeadline(Time),
    /// Until explicitly removed (per-task reservation: the AC "must reserve
    /// the synthetic utilization of the task throughout its lifetime",
    /// §4.2).
    Reserved,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    utilization: f64,
    lifetime: Lifetime,
    /// Unique id of this contribution's pending expiry-heap entry
    /// (deadline-bound contributions only; `0` for reservations). Makes
    /// heap-entry liveness exact even when the same `(processor, key,
    /// deadline)` is re-added after an early removal — the stale heap
    /// entry carries the old sequence number.
    expiry_seq: u64,
}

#[derive(Debug, Clone, Default)]
struct ProcLedger {
    total: f64,
    entries: HashMap<ContributionKey, Entry>,
}

impl ProcLedger {
    fn utilization(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.total.max(0.0)
        }
    }
}

/// Per-processor synthetic utilization accounting.
///
/// Processor ids must be dense indices `0..processor_count`. All mutating
/// operations keep the per-processor running totals exact at emptiness (a
/// processor with no contributions reads exactly `0.0`), bounding
/// floating-point drift over long runs.
///
/// Deadline expiries are tracked in a min-heap with *lazy deletion*: a
/// [`UtilizationLedger::remove`] leaves the heap entry behind, and
/// [`UtilizationLedger::expire_until`] / [`UtilizationLedger::next_expiry`]
/// discard stale heap entries when they surface. This makes `remove` O(1)
/// amortized (the old ordered-set design paid O(log n) twice per
/// contribution) while expiry stays O(log n) per pop.
#[derive(Debug, Clone)]
pub struct UtilizationLedger {
    procs: Vec<ProcLedger>,
    /// Min-heap of pending deadline expiries, possibly containing stale
    /// entries for contributions already removed early (idle resets,
    /// reservation relocation). An entry is *live* iff the contribution is
    /// still present with exactly this expiry sequence number.
    expiry: BinaryHeap<Reverse<(Time, ProcessorId, ContributionKey, u64)>>,
    /// Number of live (non-stale) heap entries; lets `expire_until` skip
    /// the heap entirely when nothing deadline-bound is left.
    live_expiries: usize,
    /// Source of unique expiry-heap sequence numbers (starts at 1; `0`
    /// marks reservations, which never enter the heap).
    next_expiry_seq: u64,
    /// Touch-tracking epoch (see [`UtilizationLedger::begin_touch_epoch`]).
    epoch: u64,
    /// Last epoch each processor's total was touched in; `0` = never.
    touch_epoch: Vec<u64>,
    /// Processors touched this epoch, with the *clamped* utilization each
    /// read at its first touch — exactly the `U_old` an incremental
    /// maintainer needs for `f(U_new) − f(U_old)` delta application,
    /// collected in O(touched) instead of an O(processors) snapshot.
    touched: Vec<(usize, f64)>,
}

impl UtilizationLedger {
    /// Creates a ledger for `processor_count` processors, all idle.
    #[must_use]
    pub fn new(processor_count: usize) -> Self {
        UtilizationLedger {
            procs: (0..processor_count).map(|_| ProcLedger::default()).collect(),
            expiry: BinaryHeap::new(),
            live_expiries: 0,
            next_expiry_seq: 1,
            epoch: 1,
            touch_epoch: vec![0; processor_count],
            touched: Vec::new(),
        }
    }

    /// Starts a touch-tracking epoch: clears the touched-processor record
    /// so that [`UtilizationLedger::copy_touched_into`] reports exactly the
    /// processors whose totals change from here on (with their utilization
    /// at first touch). Without an explicit epoch the record is still
    /// bounded by the processor count (each processor is recorded at most
    /// once per epoch).
    pub fn begin_touch_epoch(&mut self) {
        self.epoch += 1;
        self.touched.clear();
    }

    /// Copies this epoch's `(processor index, utilization at first touch)`
    /// record into `out` (cleared first). A recorded processor may have
    /// ended the epoch back at its original utilization — callers compare
    /// against the live value.
    pub fn copy_touched_into(&self, out: &mut Vec<(usize, f64)>) {
        out.clear();
        out.extend_from_slice(&self.touched);
    }

    /// Records `idx` as touched this epoch, capturing its pre-mutation
    /// utilization on first touch. Must be called *before* the total
    /// changes.
    fn note_touch(&mut self, idx: usize) {
        if self.touch_epoch[idx] != self.epoch {
            self.touch_epoch[idx] = self.epoch;
            self.touched.push((idx, self.procs[idx].utilization()));
        }
    }

    /// Number of processors tracked.
    #[must_use]
    pub fn processor_count(&self) -> usize {
        self.procs.len()
    }

    /// Current synthetic utilization of `processor`.
    ///
    /// # Panics
    ///
    /// Panics if `processor` is out of range.
    #[must_use]
    pub fn utilization(&self, processor: ProcessorId) -> f64 {
        self.procs[processor.index()].utilization()
    }

    /// Synthetic utilizations of all processors, indexed by processor id.
    #[must_use]
    pub fn utilizations(&self) -> Vec<f64> {
        self.procs.iter().map(ProcLedger::utilization).collect()
    }

    /// Number of live contributions on `processor`.
    ///
    /// # Panics
    ///
    /// Panics if `processor` is out of range.
    #[must_use]
    pub fn contribution_count(&self, processor: ProcessorId) -> usize {
        self.procs[processor.index()].entries.len()
    }

    /// Total number of live contributions.
    #[must_use]
    pub fn total_contributions(&self) -> usize {
        self.procs.iter().map(|p| p.entries.len()).sum()
    }

    /// Adds a contribution of `utilization` to `processor`.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::UnknownProcessor`] if the processor is out of range;
    /// * [`LedgerError::DuplicateContribution`] if `(processor, key)` is
    ///   already present;
    /// * [`LedgerError::InvalidUtilization`] if `utilization` is negative,
    ///   NaN or infinite.
    pub fn add(
        &mut self,
        processor: ProcessorId,
        key: ContributionKey,
        utilization: f64,
        lifetime: Lifetime,
    ) -> Result<(), LedgerError> {
        if processor.index() >= self.procs.len() {
            return Err(LedgerError::UnknownProcessor {
                processor,
                processor_count: self.procs.len(),
            });
        }
        if !utilization.is_finite() || utilization < 0.0 {
            return Err(LedgerError::InvalidUtilization { value: utilization });
        }
        if self.procs[processor.index()].entries.contains_key(&key) {
            return Err(LedgerError::DuplicateContribution { processor, key });
        }
        self.note_touch(processor.index());
        let expiry_seq = if let Lifetime::UntilDeadline(_) = lifetime {
            let seq = self.next_expiry_seq;
            self.next_expiry_seq += 1;
            seq
        } else {
            0
        };
        let proc = &mut self.procs[processor.index()];
        proc.entries.insert(key, Entry { utilization, lifetime, expiry_seq });
        proc.total += utilization;
        if let Lifetime::UntilDeadline(deadline) = lifetime {
            self.expiry.push(Reverse((deadline, processor, key, expiry_seq)));
            self.live_expiries += 1;
        }
        Ok(())
    }

    /// Removes a contribution, returning the utilization freed, or `None`
    /// if it was not present (e.g. already expired — idle-reset reports can
    /// race with deadline expiry, so absence is not an error).
    pub fn remove(&mut self, processor: ProcessorId, key: ContributionKey) -> Option<f64> {
        if !self.procs.get(processor.index())?.entries.contains_key(&key) {
            return None;
        }
        self.note_touch(processor.index());
        let proc = &mut self.procs[processor.index()];
        let entry = proc.entries.remove(&key).expect("presence checked above");
        proc.total -= entry.utilization;
        if proc.entries.is_empty() {
            proc.total = 0.0;
        }
        if matches!(entry.lifetime, Lifetime::UntilDeadline(_)) {
            // Lazy deletion: the heap entry goes stale and is discarded when
            // it surfaces (or by compaction below).
            self.live_expiries -= 1;
            self.maybe_compact();
        }
        Some(entry.utilization)
    }

    /// Rebuilds the expiry heap without its stale entries once they
    /// outnumber the live ones — bounds heap growth under workloads that
    /// remove most contributions early (idle-reset heavy traffic), at
    /// amortized O(1) per removal.
    fn maybe_compact(&mut self) {
        let stale = self.expiry.len() - self.live_expiries;
        if stale <= self.live_expiries + 64 {
            return;
        }
        let heap = std::mem::take(&mut self.expiry);
        let live: Vec<_> = heap
            .into_iter()
            .filter(|&Reverse((_, processor, key, seq))| self.is_live_expiry(processor, key, seq))
            .collect();
        self.expiry = live.into_iter().collect();
        debug_assert_eq!(self.expiry.len(), self.live_expiries);
    }

    /// True if `(processor, key)` still holds the deadline-bound
    /// contribution this heap entry was pushed for — the heap-entry
    /// liveness test. Sequence numbers are unique per `add`, so a
    /// re-added contribution never revives an older heap entry even with
    /// an identical deadline.
    fn is_live_expiry(&self, processor: ProcessorId, key: ContributionKey, seq: u64) -> bool {
        self.procs[processor.index()].entries.get(&key).is_some_and(|e| e.expiry_seq == seq)
    }

    /// Returns the utilization of a live contribution, if present.
    #[must_use]
    pub fn contribution(&self, processor: ProcessorId, key: ContributionKey) -> Option<f64> {
        self.procs.get(processor.index())?.entries.get(&key).map(|e| e.utilization)
    }

    /// Removes every deadline-bound contribution whose deadline is at or
    /// before `now` (the current-set rule `S(t) = {T_i | A_i ≤ t < A_i +
    /// D_i}`). Returns the removed keys.
    pub fn expire_until(&mut self, now: Time) -> Vec<(ProcessorId, ContributionKey)> {
        let mut removed = Vec::new();
        while self.live_expiries > 0 {
            let Some(&Reverse((deadline, processor, key, seq))) = self.expiry.peek() else { break };
            if deadline > now {
                break;
            }
            self.expiry.pop();
            if !self.is_live_expiry(processor, key, seq) {
                continue; // stale: removed early, discard lazily
            }
            self.note_touch(processor.index());
            let proc = &mut self.procs[processor.index()];
            let entry = proc.entries.remove(&key).expect("liveness checked above");
            proc.total -= entry.utilization;
            if proc.entries.is_empty() {
                proc.total = 0.0;
            }
            self.live_expiries -= 1;
            removed.push((processor, key));
        }
        if self.live_expiries == 0 {
            self.expiry.clear();
        }
        removed
    }

    /// The earliest pending deadline expiry, if any — useful for simulators
    /// that want to schedule cleanup lazily.
    ///
    /// Takes `&mut self` because stale heap entries (contributions removed
    /// early) are discarded on the way to the answer.
    #[must_use]
    pub fn next_expiry(&mut self) -> Option<Time> {
        if self.live_expiries == 0 {
            self.expiry.clear();
            return None;
        }
        while let Some(&Reverse((deadline, processor, key, seq))) = self.expiry.peek() {
            if self.is_live_expiry(processor, key, seq) {
                return Some(deadline);
            }
            self.expiry.pop();
        }
        None
    }

    /// Recomputes all running totals from scratch, returning the largest
    /// absolute correction applied to any processor — the accumulated
    /// floating-point drift of the incremental `+=`/`-=` bookkeeping.
    /// Callers holding derived state (the admission controller's cached AUB
    /// sums) must reconcile it against the corrected totals; see
    /// `AdmissionController::reconcile`.
    pub fn recompute_totals(&mut self) -> f64 {
        self.recompute_totals_detailed().0
    }

    /// [`UtilizationLedger::recompute_totals`] with attribution: also
    /// returns *which* processor received the largest correction (`None`
    /// when no correction was applied anywhere). The sharded admission
    /// plane folds per-shard ledgers through this so a single noisy shard
    /// is identified by processor index instead of disappearing into one
    /// global residual.
    pub fn recompute_totals_detailed(&mut self) -> (f64, Option<ProcessorId>) {
        let mut max_drift = 0.0f64;
        let mut worst = None;
        for (idx, proc) in self.procs.iter_mut().enumerate() {
            let fresh: f64 = proc.entries.values().map(|e| e.utilization).sum();
            let drift = (proc.total - fresh).abs();
            if drift > max_drift {
                max_drift = drift;
                worst = Some(ProcessorId(idx as u16));
            }
            proc.total = fresh;
        }
        (max_drift, worst)
    }
}

/// Errors from [`UtilizationLedger`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// Processor index out of range for this ledger.
    UnknownProcessor {
        /// The offending processor.
        processor: ProcessorId,
        /// Number of processors the ledger tracks.
        processor_count: usize,
    },
    /// `(processor, key)` already holds a live contribution.
    DuplicateContribution {
        /// The processor.
        processor: ProcessorId,
        /// The duplicated key.
        key: ContributionKey,
    },
    /// Contribution utilizations must be finite and non-negative.
    InvalidUtilization {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::UnknownProcessor { processor, processor_count } => {
                write!(f, "processor {processor} outside the ledger's 0..{processor_count} range")
            }
            LedgerError::DuplicateContribution { processor, key } => {
                write!(f, "contribution {key} already present on {processor}")
            }
            LedgerError::InvalidUtilization { value } => {
                write!(f, "contribution utilization {value} is not finite and non-negative")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;
    use crate::time::Duration;

    fn key(task: u32, seq: u64, subtask: usize) -> ContributionKey {
        ContributionKey::new(JobId::new(TaskId(task), seq), subtask)
    }

    fn at(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn add_and_read_back() {
        let mut l = UtilizationLedger::new(2);
        l.add(ProcessorId(0), key(0, 0, 0), 0.3, Lifetime::UntilDeadline(at(100))).unwrap();
        l.add(ProcessorId(0), key(1, 0, 0), 0.2, Lifetime::Reserved).unwrap();
        assert!((l.utilization(ProcessorId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(l.utilization(ProcessorId(1)), 0.0);
        assert_eq!(l.contribution_count(ProcessorId(0)), 2);
        assert_eq!(l.total_contributions(), 2);
        assert_eq!(l.contribution(ProcessorId(0), key(0, 0, 0)), Some(0.3));
    }

    #[test]
    fn duplicate_contribution_rejected() {
        let mut l = UtilizationLedger::new(1);
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap();
        let err = l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap_err();
        assert!(matches!(err, LedgerError::DuplicateContribution { .. }));
    }

    #[test]
    fn same_key_on_two_processors_is_fine() {
        // A job visiting two processors reuses the (job, subtask) key only
        // per subtask — but the ledger itself namespaces by processor.
        let mut l = UtilizationLedger::new(2);
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap();
        l.add(ProcessorId(1), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap();
        assert_eq!(l.total_contributions(), 2);
    }

    #[test]
    fn unknown_processor_rejected() {
        let mut l = UtilizationLedger::new(1);
        let err = l.add(ProcessorId(3), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap_err();
        assert_eq!(
            err,
            LedgerError::UnknownProcessor { processor: ProcessorId(3), processor_count: 1 }
        );
    }

    #[test]
    fn invalid_utilizations_rejected() {
        let mut l = UtilizationLedger::new(1);
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            let err = l.add(ProcessorId(0), key(0, 0, 0), bad, Lifetime::Reserved).unwrap_err();
            assert!(matches!(err, LedgerError::InvalidUtilization { .. }), "value {bad}");
        }
    }

    #[test]
    fn expiry_removes_at_deadline_inclusive() {
        let mut l = UtilizationLedger::new(1);
        l.add(ProcessorId(0), key(0, 0, 0), 0.3, Lifetime::UntilDeadline(at(100))).unwrap();
        assert!(l.expire_until(at(99)).is_empty());
        let removed = l.expire_until(at(100));
        assert_eq!(removed, vec![(ProcessorId(0), key(0, 0, 0))]);
        assert_eq!(l.utilization(ProcessorId(0)), 0.0);
        // Idempotent.
        assert!(l.expire_until(at(200)).is_empty());
    }

    #[test]
    fn reserved_contributions_never_expire() {
        let mut l = UtilizationLedger::new(1);
        l.add(ProcessorId(0), key(0, 0, 0), 0.3, Lifetime::Reserved).unwrap();
        assert!(l.expire_until(Time::MAX).is_empty());
        assert!((l.utilization(ProcessorId(0)) - 0.3).abs() < 1e-12);
        assert_eq!(l.remove(ProcessorId(0), key(0, 0, 0)), Some(0.3));
        assert_eq!(l.utilization(ProcessorId(0)), 0.0);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut l = UtilizationLedger::new(1);
        assert_eq!(l.remove(ProcessorId(0), key(0, 0, 0)), None);
        assert_eq!(l.remove(ProcessorId(9), key(0, 0, 0)), None);
    }

    #[test]
    fn emptiness_resets_float_drift() {
        let mut l = UtilizationLedger::new(1);
        // Accumulate drift-prone values, then drain.
        for seq in 0..1000 {
            l.add(ProcessorId(0), key(0, seq, 0), 0.1 + 1e-13, Lifetime::Reserved).unwrap();
        }
        for seq in 0..1000 {
            l.remove(ProcessorId(0), key(0, seq, 0));
        }
        assert_eq!(l.utilization(ProcessorId(0)), 0.0);
    }

    #[test]
    fn next_expiry_tracks_earliest() {
        let mut l = UtilizationLedger::new(2);
        assert_eq!(l.next_expiry(), None);
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::UntilDeadline(at(300))).unwrap();
        l.add(ProcessorId(1), key(1, 0, 0), 0.1, Lifetime::UntilDeadline(at(100))).unwrap();
        assert_eq!(l.next_expiry(), Some(at(100)));
        l.expire_until(at(100));
        assert_eq!(l.next_expiry(), Some(at(300)));
    }

    #[test]
    fn recompute_totals_matches_incremental() {
        let mut l = UtilizationLedger::new(2);
        l.add(ProcessorId(0), key(0, 0, 0), 0.25, Lifetime::Reserved).unwrap();
        l.add(ProcessorId(1), key(0, 0, 1), 0.5, Lifetime::Reserved).unwrap();
        let before = l.utilizations();
        let drift = l.recompute_totals();
        let after = l.utilizations();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-12);
        }
        assert!(drift < 1e-12);
    }

    #[test]
    fn early_removal_leaves_no_phantom_expiry() {
        // Remove a deadline-bound contribution before its deadline: the
        // stale heap entry must not surface through `next_expiry` or
        // `expire_until`.
        let mut l = UtilizationLedger::new(1);
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::UntilDeadline(at(100))).unwrap();
        l.add(ProcessorId(0), key(1, 0, 0), 0.1, Lifetime::UntilDeadline(at(200))).unwrap();
        assert_eq!(l.remove(ProcessorId(0), key(0, 0, 0)), Some(0.1));
        assert_eq!(l.next_expiry(), Some(at(200)));
        assert_eq!(l.expire_until(at(150)), vec![]);
        assert_eq!(l.expire_until(at(200)), vec![(ProcessorId(0), key(1, 0, 0))]);
        assert_eq!(l.next_expiry(), None);
    }

    #[test]
    fn readd_after_early_removal_expires_once() {
        // Same (processor, key, deadline) re-added after an early removal:
        // the duplicate heap entry is stale and must expire exactly once.
        let mut l = UtilizationLedger::new(1);
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::UntilDeadline(at(100))).unwrap();
        l.remove(ProcessorId(0), key(0, 0, 0));
        l.add(ProcessorId(0), key(0, 0, 0), 0.2, Lifetime::UntilDeadline(at(100))).unwrap();
        let removed = l.expire_until(at(100));
        assert_eq!(removed, vec![(ProcessorId(0), key(0, 0, 0))]);
        assert_eq!(l.utilization(ProcessorId(0)), 0.0);
        assert!(l.expire_until(Time::MAX).is_empty());
    }

    #[test]
    fn compaction_survives_readd_with_identical_deadline() {
        // Regression: a re-added (processor, key, deadline) used to leave
        // TWO heap entries that both looked live, breaking compaction's
        // postcondition (debug_assert) and its progress guarantee. The
        // expiry sequence number disambiguates them.
        let mut l = UtilizationLedger::new(1);
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::UntilDeadline(at(900))).unwrap();
        l.remove(ProcessorId(0), key(0, 0, 0));
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::UntilDeadline(at(900))).unwrap();
        // Force compaction with further early removals.
        for seq in 1..=70u64 {
            let k = key(1, seq, 0);
            l.add(ProcessorId(0), k, 0.001, Lifetime::UntilDeadline(at(800))).unwrap();
            l.remove(ProcessorId(0), k);
        }
        // The compaction pass inside the loop must have dropped the
        // duplicate (its debug_assert postcondition would panic here
        // otherwise); only the post-compaction trickle of stales remains.
        assert!(
            l.expiry.len() <= l.live_expiries + 65,
            "stale duplicates survived compaction: {} entries for {} live",
            l.expiry.len(),
            l.live_expiries
        );
        assert_eq!(l.next_expiry(), Some(at(900)));
        assert_eq!(l.expire_until(at(900)), vec![(ProcessorId(0), key(0, 0, 0))]);
        assert_eq!(l.utilization(ProcessorId(0)), 0.0);
    }

    #[test]
    fn heap_compaction_bounds_stale_growth() {
        // Add/remove far-future contributions repeatedly: without
        // compaction the heap would retain every stale entry.
        let mut l = UtilizationLedger::new(1);
        let keep = key(9, 0, 0);
        l.add(ProcessorId(0), keep, 0.1, Lifetime::UntilDeadline(at(1_000_000))).unwrap();
        for seq in 0..10_000 {
            let k = key(0, seq, 0);
            l.add(ProcessorId(0), k, 0.01, Lifetime::UntilDeadline(at(500_000))).unwrap();
            l.remove(ProcessorId(0), k);
        }
        assert!(
            l.expiry.len() <= 2 * l.live_expiries + 65,
            "stale heap entries unbounded: {} entries for {} live",
            l.expiry.len(),
            l.live_expiries
        );
        assert_eq!(l.next_expiry(), Some(at(1_000_000)));
    }

    #[test]
    fn recompute_totals_identifies_the_noisy_processor() {
        // Perturb one processor's running total directly: the detailed
        // recompute must both correct it and name that processor, so a
        // sharded plane can point at the one noisy shard.
        let mut l = UtilizationLedger::new(4);
        for p in 0..4u16 {
            l.add(ProcessorId(p), key(u32::from(p), 0, 0), 0.25, Lifetime::Reserved).unwrap();
        }
        l.procs[2].total += 1e-7;
        let (drift, worst) = l.recompute_totals_detailed();
        assert!((drift - 1e-7).abs() < 1e-12, "corrected drift {drift}");
        assert_eq!(worst, Some(ProcessorId(2)));
        assert!((l.utilization(ProcessorId(2)) - 0.25).abs() < 1e-12);
        // A clean ledger reports no attribution.
        let (drift, worst) = l.recompute_totals_detailed();
        assert_eq!(drift, 0.0);
        assert_eq!(worst, None);
    }

    #[test]
    fn float_drift_stays_reconcilable_over_10k_cycles() {
        // 10k add/remove cycles of drift-prone values against a persistent
        // background population: the running totals must stay within 1e-6
        // of a fresh recompute, and recompute must report the drift it
        // corrected.
        let mut l = UtilizationLedger::new(2);
        for t in 0..8 {
            l.add(
                ProcessorId(t % 2),
                key(100 + u32::from(t), 0, 0),
                0.1 + 1e-13,
                Lifetime::Reserved,
            )
            .unwrap();
        }
        for seq in 0..10_000u64 {
            let k = key(0, seq, 0);
            let p = ProcessorId((seq % 2) as u16);
            l.add(p, k, 0.031 + (seq as f64).mul_add(1e-12, 1e-9), Lifetime::Reserved).unwrap();
            l.remove(p, k);
        }
        let before = l.utilizations();
        let drift = l.recompute_totals();
        let after = l.utilizations();
        assert!(drift < 1e-6, "drift {drift} exceeded the reconcilable budget");
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-6, "total drifted visibly: {b} vs {a}");
        }
    }
}
