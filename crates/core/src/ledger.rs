//! The synthetic-utilization ledger: the admission controller's bookkeeping
//! of per-processor contributions `C_{i,j} / D_i` of current jobs and
//! reserved tasks.
//!
//! A *contribution* is one subtask's share of one job (or of a per-task
//! reservation). Contributions live until:
//!
//! * their job's end-to-end deadline passes ([`Lifetime::UntilDeadline`],
//!   removed by [`UtilizationLedger::expire_until`]),
//! * the idle-resetting service reports them complete and the AC removes
//!   them early ([`UtilizationLedger::remove`]), or
//! * the owning task departs (per-task reservations,
//!   [`Lifetime::Reserved`], also removed via `remove`).
//!
//! # Examples
//!
//! ```
//! use rtcm_core::ledger::{ContributionKey, Lifetime, UtilizationLedger};
//! use rtcm_core::task::{JobId, ProcessorId, TaskId};
//! use rtcm_core::time::{Duration, Time};
//!
//! let mut ledger = UtilizationLedger::new(2);
//! let key = ContributionKey::new(JobId::new(TaskId(0), 0), 0);
//! let deadline = Time::ZERO + Duration::from_millis(500);
//! ledger.add(ProcessorId(0), key, 0.25, Lifetime::UntilDeadline(deadline))?;
//! assert_eq!(ledger.utilization(ProcessorId(0)), 0.25);
//!
//! ledger.expire_until(deadline);
//! assert_eq!(ledger.utilization(ProcessorId(0)), 0.0);
//! # Ok::<(), rtcm_core::ledger::LedgerError>(())
//! ```

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::task::{JobId, ProcessorId};
use crate::time::Time;

/// Identifies one subtask's contribution of one job.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ContributionKey {
    /// The owning job.
    pub job: JobId,
    /// Index of the subtask within the task's chain.
    pub subtask: usize,
}

impl ContributionKey {
    /// Creates a key for `subtask` of `job`.
    #[must_use]
    pub fn new(job: JobId, subtask: usize) -> Self {
        ContributionKey { job, subtask }
    }
}

impl fmt::Display for ContributionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.job, self.subtask)
    }
}

/// How long a contribution stays in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lifetime {
    /// Until the job's absolute end-to-end deadline (per-job admission).
    UntilDeadline(Time),
    /// Until explicitly removed (per-task reservation: the AC "must reserve
    /// the synthetic utilization of the task throughout its lifetime",
    /// §4.2).
    Reserved,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    utilization: f64,
    lifetime: Lifetime,
}

#[derive(Debug, Clone, Default)]
struct ProcLedger {
    total: f64,
    entries: HashMap<ContributionKey, Entry>,
}

impl ProcLedger {
    fn utilization(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.total.max(0.0)
        }
    }
}

/// Per-processor synthetic utilization accounting.
///
/// Processor ids must be dense indices `0..processor_count`. All mutating
/// operations keep the per-processor running totals exact at emptiness (a
/// processor with no contributions reads exactly `0.0`), bounding
/// floating-point drift over long runs.
#[derive(Debug, Clone)]
pub struct UtilizationLedger {
    procs: Vec<ProcLedger>,
    expiry: BTreeSet<(Time, ProcessorId, ContributionKey)>,
}

impl UtilizationLedger {
    /// Creates a ledger for `processor_count` processors, all idle.
    #[must_use]
    pub fn new(processor_count: usize) -> Self {
        UtilizationLedger {
            procs: (0..processor_count).map(|_| ProcLedger::default()).collect(),
            expiry: BTreeSet::new(),
        }
    }

    /// Number of processors tracked.
    #[must_use]
    pub fn processor_count(&self) -> usize {
        self.procs.len()
    }

    /// Current synthetic utilization of `processor`.
    ///
    /// # Panics
    ///
    /// Panics if `processor` is out of range.
    #[must_use]
    pub fn utilization(&self, processor: ProcessorId) -> f64 {
        self.procs[processor.index()].utilization()
    }

    /// Synthetic utilizations of all processors, indexed by processor id.
    #[must_use]
    pub fn utilizations(&self) -> Vec<f64> {
        self.procs.iter().map(ProcLedger::utilization).collect()
    }

    /// Number of live contributions on `processor`.
    ///
    /// # Panics
    ///
    /// Panics if `processor` is out of range.
    #[must_use]
    pub fn contribution_count(&self, processor: ProcessorId) -> usize {
        self.procs[processor.index()].entries.len()
    }

    /// Total number of live contributions.
    #[must_use]
    pub fn total_contributions(&self) -> usize {
        self.procs.iter().map(|p| p.entries.len()).sum()
    }

    /// Adds a contribution of `utilization` to `processor`.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::UnknownProcessor`] if the processor is out of range;
    /// * [`LedgerError::DuplicateContribution`] if `(processor, key)` is
    ///   already present;
    /// * [`LedgerError::InvalidUtilization`] if `utilization` is negative,
    ///   NaN or infinite.
    pub fn add(
        &mut self,
        processor: ProcessorId,
        key: ContributionKey,
        utilization: f64,
        lifetime: Lifetime,
    ) -> Result<(), LedgerError> {
        if processor.index() >= self.procs.len() {
            return Err(LedgerError::UnknownProcessor {
                processor,
                processor_count: self.procs.len(),
            });
        }
        if !utilization.is_finite() || utilization < 0.0 {
            return Err(LedgerError::InvalidUtilization { value: utilization });
        }
        let proc = &mut self.procs[processor.index()];
        if proc.entries.contains_key(&key) {
            return Err(LedgerError::DuplicateContribution { processor, key });
        }
        proc.entries.insert(key, Entry { utilization, lifetime });
        proc.total += utilization;
        if let Lifetime::UntilDeadline(deadline) = lifetime {
            self.expiry.insert((deadline, processor, key));
        }
        Ok(())
    }

    /// Removes a contribution, returning the utilization freed, or `None`
    /// if it was not present (e.g. already expired — idle-reset reports can
    /// race with deadline expiry, so absence is not an error).
    pub fn remove(&mut self, processor: ProcessorId, key: ContributionKey) -> Option<f64> {
        let proc = self.procs.get_mut(processor.index())?;
        let entry = proc.entries.remove(&key)?;
        proc.total -= entry.utilization;
        if proc.entries.is_empty() {
            proc.total = 0.0;
        }
        if let Lifetime::UntilDeadline(deadline) = entry.lifetime {
            self.expiry.remove(&(deadline, processor, key));
        }
        Some(entry.utilization)
    }

    /// Returns the utilization of a live contribution, if present.
    #[must_use]
    pub fn contribution(&self, processor: ProcessorId, key: ContributionKey) -> Option<f64> {
        self.procs.get(processor.index())?.entries.get(&key).map(|e| e.utilization)
    }

    /// Removes every deadline-bound contribution whose deadline is at or
    /// before `now` (the current-set rule `S(t) = {T_i | A_i ≤ t < A_i +
    /// D_i}`). Returns the removed keys.
    pub fn expire_until(&mut self, now: Time) -> Vec<(ProcessorId, ContributionKey)> {
        let mut removed = Vec::new();
        loop {
            let first = match self.expiry.first() {
                Some(&(deadline, processor, key)) if deadline <= now => (deadline, processor, key),
                _ => break,
            };
            self.expiry.remove(&first);
            let (_, processor, key) = first;
            let proc = &mut self.procs[processor.index()];
            if let Some(entry) = proc.entries.remove(&key) {
                proc.total -= entry.utilization;
                if proc.entries.is_empty() {
                    proc.total = 0.0;
                }
                removed.push((processor, key));
            }
        }
        removed
    }

    /// The earliest pending deadline expiry, if any — useful for simulators
    /// that want to schedule cleanup lazily.
    #[must_use]
    pub fn next_expiry(&self) -> Option<Time> {
        self.expiry.first().map(|&(t, _, _)| t)
    }

    /// Recomputes all running totals from scratch (test/diagnostic aid).
    pub fn recompute_totals(&mut self) {
        for proc in &mut self.procs {
            proc.total = proc.entries.values().map(|e| e.utilization).sum();
        }
    }
}

/// Errors from [`UtilizationLedger`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// Processor index out of range for this ledger.
    UnknownProcessor {
        /// The offending processor.
        processor: ProcessorId,
        /// Number of processors the ledger tracks.
        processor_count: usize,
    },
    /// `(processor, key)` already holds a live contribution.
    DuplicateContribution {
        /// The processor.
        processor: ProcessorId,
        /// The duplicated key.
        key: ContributionKey,
    },
    /// Contribution utilizations must be finite and non-negative.
    InvalidUtilization {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::UnknownProcessor { processor, processor_count } => {
                write!(f, "processor {processor} outside the ledger's 0..{processor_count} range")
            }
            LedgerError::DuplicateContribution { processor, key } => {
                write!(f, "contribution {key} already present on {processor}")
            }
            LedgerError::InvalidUtilization { value } => {
                write!(f, "contribution utilization {value} is not finite and non-negative")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;
    use crate::time::Duration;

    fn key(task: u32, seq: u64, subtask: usize) -> ContributionKey {
        ContributionKey::new(JobId::new(TaskId(task), seq), subtask)
    }

    fn at(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn add_and_read_back() {
        let mut l = UtilizationLedger::new(2);
        l.add(ProcessorId(0), key(0, 0, 0), 0.3, Lifetime::UntilDeadline(at(100))).unwrap();
        l.add(ProcessorId(0), key(1, 0, 0), 0.2, Lifetime::Reserved).unwrap();
        assert!((l.utilization(ProcessorId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(l.utilization(ProcessorId(1)), 0.0);
        assert_eq!(l.contribution_count(ProcessorId(0)), 2);
        assert_eq!(l.total_contributions(), 2);
        assert_eq!(l.contribution(ProcessorId(0), key(0, 0, 0)), Some(0.3));
    }

    #[test]
    fn duplicate_contribution_rejected() {
        let mut l = UtilizationLedger::new(1);
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap();
        let err = l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap_err();
        assert!(matches!(err, LedgerError::DuplicateContribution { .. }));
    }

    #[test]
    fn same_key_on_two_processors_is_fine() {
        // A job visiting two processors reuses the (job, subtask) key only
        // per subtask — but the ledger itself namespaces by processor.
        let mut l = UtilizationLedger::new(2);
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap();
        l.add(ProcessorId(1), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap();
        assert_eq!(l.total_contributions(), 2);
    }

    #[test]
    fn unknown_processor_rejected() {
        let mut l = UtilizationLedger::new(1);
        let err = l.add(ProcessorId(3), key(0, 0, 0), 0.1, Lifetime::Reserved).unwrap_err();
        assert_eq!(
            err,
            LedgerError::UnknownProcessor { processor: ProcessorId(3), processor_count: 1 }
        );
    }

    #[test]
    fn invalid_utilizations_rejected() {
        let mut l = UtilizationLedger::new(1);
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            let err = l.add(ProcessorId(0), key(0, 0, 0), bad, Lifetime::Reserved).unwrap_err();
            assert!(matches!(err, LedgerError::InvalidUtilization { .. }), "value {bad}");
        }
    }

    #[test]
    fn expiry_removes_at_deadline_inclusive() {
        let mut l = UtilizationLedger::new(1);
        l.add(ProcessorId(0), key(0, 0, 0), 0.3, Lifetime::UntilDeadline(at(100))).unwrap();
        assert!(l.expire_until(at(99)).is_empty());
        let removed = l.expire_until(at(100));
        assert_eq!(removed, vec![(ProcessorId(0), key(0, 0, 0))]);
        assert_eq!(l.utilization(ProcessorId(0)), 0.0);
        // Idempotent.
        assert!(l.expire_until(at(200)).is_empty());
    }

    #[test]
    fn reserved_contributions_never_expire() {
        let mut l = UtilizationLedger::new(1);
        l.add(ProcessorId(0), key(0, 0, 0), 0.3, Lifetime::Reserved).unwrap();
        assert!(l.expire_until(Time::MAX).is_empty());
        assert!((l.utilization(ProcessorId(0)) - 0.3).abs() < 1e-12);
        assert_eq!(l.remove(ProcessorId(0), key(0, 0, 0)), Some(0.3));
        assert_eq!(l.utilization(ProcessorId(0)), 0.0);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut l = UtilizationLedger::new(1);
        assert_eq!(l.remove(ProcessorId(0), key(0, 0, 0)), None);
        assert_eq!(l.remove(ProcessorId(9), key(0, 0, 0)), None);
    }

    #[test]
    fn emptiness_resets_float_drift() {
        let mut l = UtilizationLedger::new(1);
        // Accumulate drift-prone values, then drain.
        for seq in 0..1000 {
            l.add(ProcessorId(0), key(0, seq, 0), 0.1 + 1e-13, Lifetime::Reserved).unwrap();
        }
        for seq in 0..1000 {
            l.remove(ProcessorId(0), key(0, seq, 0));
        }
        assert_eq!(l.utilization(ProcessorId(0)), 0.0);
    }

    #[test]
    fn next_expiry_tracks_earliest() {
        let mut l = UtilizationLedger::new(2);
        assert_eq!(l.next_expiry(), None);
        l.add(ProcessorId(0), key(0, 0, 0), 0.1, Lifetime::UntilDeadline(at(300))).unwrap();
        l.add(ProcessorId(1), key(1, 0, 0), 0.1, Lifetime::UntilDeadline(at(100))).unwrap();
        assert_eq!(l.next_expiry(), Some(at(100)));
        l.expire_until(at(100));
        assert_eq!(l.next_expiry(), Some(at(300)));
    }

    #[test]
    fn recompute_totals_matches_incremental() {
        let mut l = UtilizationLedger::new(2);
        l.add(ProcessorId(0), key(0, 0, 0), 0.25, Lifetime::Reserved).unwrap();
        l.add(ProcessorId(1), key(0, 0, 1), 0.5, Lifetime::Reserved).unwrap();
        let before = l.utilizations();
        l.recompute_totals();
        let after = l.utilizations();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-12);
        }
    }
}
