//! The adaptation governor: the *policy* half of a closed sensing →
//! policy → actuation loop that turns the reconfigurable middleware into a
//! **self**-reconfiguring one.
//!
//! The paper's §5 makes the service strategies run-time attributes but
//! leaves *when* to change them to an operator. This module closes the
//! loop declaratively:
//!
//! * **Sensing** — [`WindowSensor`] turns successive snapshots of the
//!   runtime's cumulative counters into per-window [`WindowMetrics`]
//!   (accepted ratio, idle-reset activity, AUB slack, deferred decisions,
//!   per-processor imbalance) in O(1) per window. This deliberately lifts
//!   the incremental-maintenance discipline of the admission path (PR 2's
//!   touched-set trick) into the reporting path: a window is a *delta of
//!   maintained totals*, never a rescan of jobs, records or ledger
//!   contributions.
//! * **Policy** — a [`GovernorPolicy`] is an ordered list of
//!   [`GovernorRule`]s: *metric* crosses *threshold* for *N consecutive
//!   windows* → switch to *target*. Consecutive-window streaks are the
//!   hysteresis; a policy-wide cooldown bounds the swap rate so an
//!   oscillating load cannot make the system flap (see the unit tests and
//!   `rtcm-sim`'s oscillation test).
//! * **Actuation** is the caller's: the threaded runtime drives
//!   `System::reconfigure` (the two-phase protocol), the simulator drives
//!   `AdmissionController::reconfigure` directly. The [`Governor`] itself
//!   is a pure, deterministic state machine — identical decisions in
//!   virtual and wall-clock time, so policies are testable in simulation
//!   before they govern a live system.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::govern::{Governor, GovernorPolicy, Metric, Trigger, WindowMetrics};
//! use rtcm_core::strategy::ServiceConfig;
//!
//! let baseline: ServiceConfig = "J_N_N".parse()?;
//! let defensive: ServiceConfig = "T_T_T".parse()?;
//! let policy = GovernorPolicy::defensive_recovery(baseline, defensive);
//! let mut governor = Governor::new(policy)?;
//!
//! // Two consecutive collapsed windows trip the defensive switch.
//! let collapsed = WindowMetrics { accepted_ratio: 0.1, arrived_jobs: 20, ..WindowMetrics::IDLE };
//! assert!(governor.observe(baseline, &collapsed).is_none(), "one window is noise");
//! let decision = governor.observe(baseline, &collapsed).expect("two windows are a trend");
//! assert_eq!(decision.target, defensive);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::strategy::{InvalidConfigError, ServiceConfig};

/// One sliding window's sensed load, as consumed by [`Governor::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowMetrics {
    /// Jobs that arrived in the window.
    pub arrived_jobs: u64,
    /// Utilization weight (`Σ C/D`) that arrived in the window.
    pub arrived_utilization: f64,
    /// Utilization weight released (admitted) in the window.
    pub released_utilization: f64,
    /// `released / arrived` utilization in the window; 1.0 when nothing
    /// arrived (an idle window is not a collapsed one).
    pub accepted_ratio: f64,
    /// Idle-reset reports applied in the window.
    pub ir_reports: u64,
    /// Admission decisions deferred by reconfiguration prepare windows
    /// during this window (always 0 in the simulator, whose switches are
    /// instantaneous).
    pub deferred: u64,
    /// AUB headroom at the window boundary: `1 − max_p U_p` over the
    /// ledger's per-processor synthetic utilizations.
    pub aub_slack: f64,
    /// Load spread at the window boundary: `max_p U_p − min_p U_p`.
    pub imbalance: f64,
}

impl WindowMetrics {
    /// A window in which nothing happened (full slack, perfect ratio).
    pub const IDLE: WindowMetrics = WindowMetrics {
        arrived_jobs: 0,
        arrived_utilization: 0.0,
        released_utilization: 0.0,
        accepted_ratio: 1.0,
        ir_reports: 0,
        deferred: 0,
        aub_slack: 1.0,
        imbalance: 0.0,
    };

    /// The value of `metric` in this window.
    #[must_use]
    pub fn value(&self, metric: Metric) -> f64 {
        match metric {
            Metric::AcceptedRatio => self.accepted_ratio,
            Metric::AubSlack => self.aub_slack,
            Metric::Imbalance => self.imbalance,
            Metric::IrReports => self.ir_reports as f64,
            Metric::Deferred => self.deferred as f64,
        }
    }
}

/// The cumulative counters a runtime exposes (monotone, maintained on the
/// hot path anyway). [`WindowSensor`] differences two successive snapshots
/// — sensing costs O(1) per window regardless of how many jobs flowed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CumulativeLoad {
    /// Jobs arrived since start.
    pub arrived_jobs: u64,
    /// Utilization weight arrived since start.
    pub arrived_utilization: f64,
    /// Utilization weight released since start.
    pub released_utilization: f64,
    /// Idle-reset reports applied since start.
    pub ir_reports: u64,
    /// Decisions deferred by prepare windows since start.
    pub deferred: u64,
}

/// Turns cumulative counter snapshots into per-window deltas.
///
/// The gauges (`aub_slack`, `imbalance`) are instantaneous reads of the
/// ledger's incrementally maintained per-processor totals — the same
/// arrays the admission funnel keeps current — so the whole sensing path
/// performs no per-window rescan of jobs or contributions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowSensor {
    prev: CumulativeLoad,
}

impl WindowSensor {
    /// A sensor whose first window starts at zero counters.
    #[must_use]
    pub fn new() -> Self {
        WindowSensor::default()
    }

    /// Closes one window: returns the metrics of everything that happened
    /// since the previous `sample` call. `aub_slack` and `imbalance` are
    /// boundary gauges supplied by the caller (see
    /// [`slack_and_imbalance`]).
    pub fn sample(&mut self, cum: CumulativeLoad, aub_slack: f64, imbalance: f64) -> WindowMetrics {
        let arrived_jobs = cum.arrived_jobs.saturating_sub(self.prev.arrived_jobs);
        let arrived_utilization =
            (cum.arrived_utilization - self.prev.arrived_utilization).max(0.0);
        let released_utilization =
            (cum.released_utilization - self.prev.released_utilization).max(0.0);
        let accepted_ratio = if arrived_utilization > 0.0 {
            (released_utilization / arrived_utilization).min(1.0)
        } else {
            1.0
        };
        let ir_reports = cum.ir_reports.saturating_sub(self.prev.ir_reports);
        let deferred = cum.deferred.saturating_sub(self.prev.deferred);
        self.prev = cum;
        WindowMetrics {
            arrived_jobs,
            arrived_utilization,
            released_utilization,
            accepted_ratio,
            ir_reports,
            deferred,
            aub_slack,
            imbalance,
        }
    }
}

/// Computes the two boundary gauges from per-processor synthetic
/// utilizations (e.g. `UtilizationLedger::utilizations`): `(1 − max U,
/// max U − min U)`. An empty slice reads as full slack, zero imbalance.
#[must_use]
pub fn slack_and_imbalance(utilizations: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &u in utilizations {
        min = min.min(u);
        max = max.max(u);
    }
    if utilizations.is_empty() {
        (1.0, 0.0)
    } else {
        (1.0 - max, max - min)
    }
}

/// A sensed quantity a [`GovernorRule`] can threshold on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Utilization-weighted accepted ratio of the window.
    AcceptedRatio,
    /// AUB headroom `1 − max_p U_p` at the window boundary.
    AubSlack,
    /// Per-processor utilization spread `max_p U_p − min_p U_p`.
    Imbalance,
    /// Idle-reset reports in the window.
    IrReports,
    /// Decisions deferred by prepare windows in the window.
    Deferred,
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Metric::AcceptedRatio => "accepted-ratio",
            Metric::AubSlack => "aub-slack",
            Metric::Imbalance => "imbalance",
            Metric::IrReports => "ir-reports",
            Metric::Deferred => "deferred",
        })
    }
}

/// The threshold side of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// Fires while the metric is strictly below the threshold.
    Below(f64),
    /// Fires while the metric is strictly above the threshold.
    Above(f64),
}

impl Trigger {
    /// True if `value` satisfies this trigger.
    #[must_use]
    pub fn satisfied(&self, value: f64) -> bool {
        match *self {
            Trigger::Below(t) => value < t,
            Trigger::Above(t) => value > t,
        }
    }

    fn threshold(&self) -> f64 {
        match *self {
            Trigger::Below(t) | Trigger::Above(t) => t,
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Below(t) => write!(f, "< {t}"),
            Trigger::Above(t) => write!(f, "> {t}"),
        }
    }
}

/// One declarative adaptation rule: `metric trigger` holding for
/// `for_windows` consecutive (qualifying) windows switches the system to
/// `target`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorRule {
    /// Diagnostic name, echoed in decisions and logs.
    pub name: String,
    /// The sensed quantity thresholded.
    pub metric: Metric,
    /// The threshold.
    pub trigger: Trigger,
    /// Hysteresis: consecutive qualifying windows required before firing
    /// (≥ 1). A single non-qualifying window resets the streak.
    pub for_windows: u32,
    /// Windows with fewer arrivals than this do not advance (or reset) the
    /// streak — idle windows are no evidence either way.
    pub min_arrivals: u64,
    /// Configuration to switch to when the rule fires.
    pub target: ServiceConfig,
}

impl GovernorRule {
    /// A rule with no minimum-arrival gate.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        metric: Metric,
        trigger: Trigger,
        for_windows: u32,
        target: ServiceConfig,
    ) -> Self {
        GovernorRule { name: name.into(), metric, trigger, for_windows, min_arrivals: 0, target }
    }

    /// Requires at least `n` arrivals in a window for it to count toward
    /// (or against) the streak.
    #[must_use]
    pub fn min_arrivals(mut self, n: u64) -> Self {
        self.min_arrivals = n;
        self
    }
}

impl fmt::Display for GovernorRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {} for {} windows -> {}",
            self.name, self.metric, self.trigger, self.for_windows, self.target
        )
    }
}

/// An ordered rule list plus the policy-wide cooldown. Earlier rules win
/// ties within a window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorPolicy {
    /// Rules, evaluated in order each window.
    pub rules: Vec<GovernorRule>,
    /// Windows after any swap during which no rule may fire (streaks keep
    /// accumulating). Bounds the swap rate under oscillating load.
    pub cooldown_windows: u32,
}

impl Default for GovernorPolicy {
    fn default() -> Self {
        GovernorPolicy { rules: Vec::new(), cooldown_windows: 2 }
    }
}

impl GovernorPolicy {
    /// An empty policy with the default cooldown.
    #[must_use]
    pub fn new() -> Self {
        GovernorPolicy::default()
    }

    /// Appends a rule.
    #[must_use]
    pub fn rule(mut self, rule: GovernorRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Sets the cooldown.
    #[must_use]
    pub fn cooldown(mut self, windows: u32) -> Self {
        self.cooldown_windows = windows;
        self
    }

    /// The canonical burst-defense policy: accepted ratio collapsing below
    /// 0.3 for 2 busy windows switches to `defensive`; a *healthy* ratio
    /// (above 0.8, or idle) holding for 5 windows relaxes back to
    /// `baseline`. The relax rule deliberately watches the accepted ratio
    /// rather than AUB slack: under a per-task defensive configuration the
    /// ledger drains (slack recovers) the moment the defense holds, while
    /// the ratio stays collapsed until the storm has actually passed — so
    /// slack would relax mid-burst, the ratio only after it.
    #[must_use]
    pub fn defensive_recovery(baseline: ServiceConfig, defensive: ServiceConfig) -> Self {
        GovernorPolicy::new()
            .rule(
                GovernorRule::new(
                    "collapse-defense",
                    Metric::AcceptedRatio,
                    Trigger::Below(0.3),
                    2,
                    defensive,
                )
                .min_arrivals(1),
            )
            .rule(GovernorRule::new(
                "relax",
                Metric::AcceptedRatio,
                Trigger::Above(0.8),
                5,
                baseline,
            ))
            .cooldown(3)
    }

    /// The canned **imbalance-triggered LB-axis switch** (the ROADMAP
    /// leftover on the `Imbalance` gauge): synthetic-utilization spread
    /// `max_p U_p − min_p U_p` holding above 0.35 for 2 busy windows
    /// switches to `balanced` — a target whose LB axis is engaged, so
    /// skewed arrivals start spilling onto replicas — and the spread
    /// settling below 0.1 for 5 windows relaxes back to `baseline`. The
    /// asymmetric thresholds are the hysteresis band: a spread oscillating
    /// inside (0.1, 0.35) trips neither rule, and the policy-wide cooldown
    /// bounds the swap rate on top.
    #[must_use]
    pub fn imbalance_rebalance(baseline: ServiceConfig, balanced: ServiceConfig) -> Self {
        GovernorPolicy::new()
            .rule(
                GovernorRule::new(
                    "imbalance-rebalance",
                    Metric::Imbalance,
                    Trigger::Above(0.35),
                    2,
                    balanced,
                )
                .min_arrivals(1),
            )
            .rule(GovernorRule::new(
                "rebalance-relax",
                Metric::Imbalance,
                Trigger::Below(0.1),
                5,
                baseline,
            ))
            .cooldown(3)
    }

    /// Validates every rule: targets must satisfy the §4.5 combination
    /// rule, `for_windows ≥ 1`, thresholds finite.
    ///
    /// # Errors
    ///
    /// Returns the first [`PolicyError`] found (invalid targets carry the
    /// underlying [`InvalidConfigError`]).
    pub fn validate(&self) -> Result<(), PolicyError> {
        for (i, rule) in self.rules.iter().enumerate() {
            rule.target
                .validate()
                .map_err(|source| PolicyError::InvalidTarget { rule: i, source })?;
            if rule.for_windows == 0 {
                return Err(PolicyError::ZeroHysteresis { rule: i });
            }
            if !rule.trigger.threshold().is_finite() {
                return Err(PolicyError::NonFiniteThreshold { rule: i });
            }
        }
        Ok(())
    }
}

impl fmt::Display for GovernorPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rules.is_empty() {
            return f.write_str("(no rules)");
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{rule}")?;
        }
        write!(f, " (cooldown {} windows)", self.cooldown_windows)
    }
}

/// Why a [`GovernorPolicy`] is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// A rule's target violates the §4.5 combination rule.
    InvalidTarget {
        /// Index of the offending rule.
        rule: usize,
        /// The underlying configuration error.
        source: InvalidConfigError,
    },
    /// A rule demands zero consecutive windows (it could never fire — or
    /// always fire — depending on interpretation; refuse it).
    ZeroHysteresis {
        /// Index of the offending rule.
        rule: usize,
    },
    /// A rule's threshold is NaN or infinite.
    NonFiniteThreshold {
        /// Index of the offending rule.
        rule: usize,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::InvalidTarget { rule, source } => {
                write!(f, "rule {rule} targets an invalid combination: {source}")
            }
            PolicyError::ZeroHysteresis { rule } => {
                write!(f, "rule {rule} requires for_windows >= 1")
            }
            PolicyError::NonFiniteThreshold { rule } => {
                write!(f, "rule {rule} has a non-finite threshold")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// A governor's verdict for one window: switch to `target`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorDecision {
    /// Index of the rule that fired.
    pub rule: usize,
    /// Its diagnostic name.
    pub rule_name: String,
    /// The configuration to enter.
    pub target: ServiceConfig,
    /// The streak length at the moment of firing.
    pub streak: u32,
    /// The window ordinal (1-based) in which the rule fired.
    pub window: u64,
}

/// Counters of a governor's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GovernorStats {
    /// Windows observed.
    pub windows: u64,
    /// Decisions emitted (swaps requested — the actuator may still abort).
    pub decisions: u64,
}

/// The deterministic policy state machine. Feed it one [`WindowMetrics`]
/// per window together with the *actual* current configuration (so an
/// aborted actuation needs no rollback call — the governor trusts the
/// caller's view, not its own last decision).
#[derive(Debug, Clone)]
pub struct Governor {
    policy: GovernorPolicy,
    streaks: Vec<u32>,
    cooldown: u32,
    stats: GovernorStats,
}

impl Governor {
    /// Creates a governor, validating the policy first.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] for unusable policies.
    pub fn new(policy: GovernorPolicy) -> Result<Self, PolicyError> {
        policy.validate()?;
        let streaks = vec![0; policy.rules.len()];
        Ok(Governor { policy, streaks, cooldown: 0, stats: GovernorStats::default() })
    }

    /// The policy being enforced.
    #[must_use]
    pub fn policy(&self) -> &GovernorPolicy {
        &self.policy
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> GovernorStats {
        self.stats
    }

    /// Windows left in the post-swap cooldown.
    #[must_use]
    pub fn cooldown_remaining(&self) -> u32 {
        self.cooldown
    }

    /// Observes one closed window under the *actual* current configuration
    /// and returns a switch decision if a rule's hysteresis is satisfied.
    ///
    /// Streak semantics: a qualifying window (enough arrivals) either
    /// advances or resets each rule's streak; a non-qualifying window
    /// leaves streaks untouched. During cooldown streaks keep evolving but
    /// no decision is emitted. After a decision every streak resets and
    /// the cooldown starts, so consecutive swaps are at least
    /// `cooldown_windows + 1` windows apart — the anti-flapping rate
    /// bound the hysteresis tests pin.
    pub fn observe(
        &mut self,
        current: ServiceConfig,
        metrics: &WindowMetrics,
    ) -> Option<GovernorDecision> {
        self.stats.windows += 1;
        for (i, rule) in self.policy.rules.iter().enumerate() {
            if metrics.arrived_jobs < rule.min_arrivals {
                continue; // idle window: no evidence either way
            }
            if rule.trigger.satisfied(metrics.value(rule.metric)) {
                self.streaks[i] = self.streaks[i].saturating_add(1);
            } else {
                self.streaks[i] = 0;
            }
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let fired = self
            .policy
            .rules
            .iter()
            .enumerate()
            .find(|(i, rule)| self.streaks[*i] >= rule.for_windows && rule.target != current)?;
        let (i, rule) = fired;
        let decision = GovernorDecision {
            rule: i,
            rule_name: rule.name.clone(),
            target: rule.target,
            streak: self.streaks[i],
            window: self.stats.windows,
        };
        self.cooldown = self.policy.cooldown_windows;
        for s in &mut self.streaks {
            *s = 0;
        }
        self.stats.decisions += 1;
        Some(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(label: &str) -> ServiceConfig {
        label.parse().unwrap()
    }

    fn busy(ratio: f64) -> WindowMetrics {
        WindowMetrics {
            arrived_jobs: 10,
            arrived_utilization: 1.0,
            released_utilization: ratio,
            accepted_ratio: ratio,
            aub_slack: 0.05,
            ..WindowMetrics::IDLE
        }
    }

    fn policy() -> GovernorPolicy {
        GovernorPolicy::defensive_recovery(cfg("J_N_N"), cfg("T_T_T"))
    }

    #[test]
    fn imbalance_policy_switches_lb_axis_and_relaxes() {
        // A pure LB-axis flip: same admission and idle-reset strategies,
        // load balancing engaged under skew, disengaged once it settles.
        let baseline = cfg("J_N_N");
        let balanced = cfg("J_N_T");
        let policy = GovernorPolicy::imbalance_rebalance(baseline, balanced);
        policy.validate().unwrap();
        let mut governor = Governor::new(policy).unwrap();

        let skewed = WindowMetrics { arrived_jobs: 10, imbalance: 0.6, ..WindowMetrics::IDLE };
        assert!(governor.observe(baseline, &skewed).is_none(), "one skewed window is noise");
        let decision = governor.observe(baseline, &skewed).expect("two skewed windows fire");
        assert_eq!(decision.target, balanced);
        assert_eq!(decision.rule_name, "imbalance-rebalance");

        // Settled spread relaxes back to the baseline once the cooldown
        // and the 5-window streak are both satisfied.
        let settled = WindowMetrics { arrived_jobs: 10, imbalance: 0.05, ..WindowMetrics::IDLE };
        let mut relaxed = None;
        for _ in 0..16 {
            if let Some(d) = governor.observe(balanced, &settled) {
                relaxed = Some(d);
                break;
            }
        }
        let relaxed = relaxed.expect("settled spread relaxes");
        assert_eq!(relaxed.target, baseline);
        assert_eq!(relaxed.rule_name, "rebalance-relax");
    }

    #[test]
    fn imbalance_policy_hysteresis_band_holds() {
        // Inside the (0.1, 0.35) band neither rule can ever fire.
        let policy = GovernorPolicy::imbalance_rebalance(cfg("J_N_N"), cfg("J_N_T"));
        let mut governor = Governor::new(policy).unwrap();
        let wobble = WindowMetrics { arrived_jobs: 10, imbalance: 0.2, ..WindowMetrics::IDLE };
        for _ in 0..32 {
            assert!(governor.observe(cfg("J_N_N"), &wobble).is_none());
        }
        // An idle skewed window (no arrivals) is not a rebalance trigger.
        let idle_skew = WindowMetrics { imbalance: 0.9, ..WindowMetrics::IDLE };
        for _ in 0..4 {
            assert!(governor.observe(cfg("J_N_N"), &idle_skew).is_none());
        }
    }

    #[test]
    fn sensor_differences_cumulative_counters() {
        let mut sensor = WindowSensor::new();
        let w1 = sensor.sample(
            CumulativeLoad {
                arrived_jobs: 4,
                arrived_utilization: 0.8,
                released_utilization: 0.2,
                ir_reports: 1,
                deferred: 0,
            },
            0.5,
            0.1,
        );
        assert_eq!(w1.arrived_jobs, 4);
        assert!((w1.accepted_ratio - 0.25).abs() < 1e-12);
        assert_eq!(w1.ir_reports, 1);
        assert!((w1.aub_slack - 0.5).abs() < 1e-12);

        // Second window sees only the delta.
        let w2 = sensor.sample(
            CumulativeLoad {
                arrived_jobs: 6,
                arrived_utilization: 1.0,
                released_utilization: 0.4,
                ir_reports: 3,
                deferred: 2,
            },
            0.9,
            0.0,
        );
        assert_eq!(w2.arrived_jobs, 2);
        assert!((w2.arrived_utilization - 0.2).abs() < 1e-12);
        assert!((w2.accepted_ratio - 1.0).abs() < 1e-12, "0.2 arrived, 0.2 released");
        assert_eq!(w2.ir_reports, 2);
        assert_eq!(w2.deferred, 2);

        // An empty window reads as idle.
        let w3 = sensor.sample(
            CumulativeLoad {
                arrived_jobs: 6,
                arrived_utilization: 1.0,
                released_utilization: 0.4,
                ir_reports: 3,
                deferred: 2,
            },
            1.0,
            0.0,
        );
        assert_eq!(w3.arrived_jobs, 0);
        assert_eq!(w3.accepted_ratio, 1.0);
    }

    #[test]
    fn slack_and_imbalance_from_utilizations() {
        assert_eq!(slack_and_imbalance(&[]), (1.0, 0.0));
        let (slack, imbalance) = slack_and_imbalance(&[0.2, 0.7, 0.4]);
        assert!((slack - 0.3).abs() < 1e-12);
        assert!((imbalance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hysteresis_requires_consecutive_windows() {
        let mut g = Governor::new(policy()).unwrap();
        let current = cfg("J_N_N");
        assert!(g.observe(current, &busy(0.1)).is_none(), "streak 1 of 2");
        assert!(g.observe(current, &busy(0.9)).is_none(), "streak broken");
        assert!(g.observe(current, &busy(0.1)).is_none(), "streak 1 again");
        let d = g.observe(current, &busy(0.1)).expect("streak 2 fires");
        assert_eq!(d.target, cfg("T_T_T"));
        assert_eq!(d.rule_name, "collapse-defense");
        assert_eq!(d.streak, 2);
    }

    #[test]
    fn idle_windows_do_not_advance_or_reset_streaks() {
        let mut g = Governor::new(policy()).unwrap();
        let current = cfg("J_N_N");
        assert!(g.observe(current, &busy(0.1)).is_none());
        // Idle window: accepted_ratio is 1.0, but min_arrivals gates it out
        // so the streak survives.
        assert!(g.observe(current, &WindowMetrics::IDLE).is_none());
        assert!(g.observe(current, &busy(0.1)).is_some(), "streak resumed, fires at 2");
    }

    #[test]
    fn oscillating_load_never_flaps() {
        // Alternate collapse/recovery every window for 200 windows: the
        // 2-window hysteresis must never be satisfied, so zero swaps.
        let mut g = Governor::new(policy()).unwrap();
        let mut current = cfg("J_N_N");
        for i in 0..200 {
            let m = if i % 2 == 0 { busy(0.05) } else { busy(0.95) };
            if let Some(d) = g.observe(current, &m) {
                current = d.target;
            }
        }
        assert_eq!(g.stats().decisions, 0, "oscillation defeats the hysteresis, not the system");
    }

    #[test]
    fn cooldown_bounds_swap_rate_under_block_oscillation() {
        // Sustained blocks long enough to satisfy the hysteresis: swaps
        // are at least cooldown + 1 windows apart.
        let policy = GovernorPolicy::new()
            .rule(GovernorRule::new(
                "down",
                Metric::AcceptedRatio,
                Trigger::Below(0.3),
                2,
                cfg("T_T_T"),
            ))
            .rule(GovernorRule::new(
                "up",
                Metric::AcceptedRatio,
                Trigger::Above(0.7),
                2,
                cfg("J_N_N"),
            ))
            .cooldown(4);
        let mut g = Governor::new(policy).unwrap();
        let mut current = cfg("J_N_N");
        let mut swaps = 0;
        let windows = 120;
        for i in 0..windows {
            let m = if (i / 6) % 2 == 0 { busy(0.1) } else { busy(0.9) };
            if let Some(d) = g.observe(current, &m) {
                current = d.target;
                swaps += 1;
            }
        }
        let bound = windows / (4 + 1) + 1;
        assert!(swaps <= bound, "swaps {swaps} exceed the rate bound {bound}");
        assert!(swaps >= 2, "sustained blocks must still adapt ({swaps} swaps)");
    }

    #[test]
    fn rule_does_not_fire_into_the_current_configuration() {
        let mut g = Governor::new(policy()).unwrap();
        let current = cfg("T_T_T"); // already defensive
        for _ in 0..10 {
            assert!(g.observe(current, &busy(0.1)).is_none(), "target == current never fires");
        }
    }

    #[test]
    fn relax_rule_reverts_after_load_recovers() {
        let mut g = Governor::new(policy()).unwrap();
        let mut current = cfg("J_N_N");
        for _ in 0..2 {
            if let Some(d) = g.observe(current, &busy(0.1)) {
                current = d.target;
            }
        }
        assert_eq!(current, cfg("T_T_T"));
        // The storm passes (healthy ratio): the relax rule needs 5 windows
        // plus the cooldown.
        let healthy = busy(0.95);
        let mut reverted_at = None;
        for i in 0..12 {
            if let Some(d) = g.observe(current, &healthy) {
                current = d.target;
                reverted_at = Some(i);
                break;
            }
        }
        assert_eq!(current, cfg("J_N_N"));
        assert!(reverted_at.expect("revert happens") >= 4, "5-window hysteresis respected");
    }

    #[test]
    fn policy_validation_rejects_bad_rules() {
        let invalid_target = ServiceConfig::new(
            crate::strategy::AcStrategy::PerTask,
            crate::strategy::IrStrategy::PerJob,
            crate::strategy::LbStrategy::None,
        );
        let p = GovernorPolicy::new().rule(GovernorRule::new(
            "bad",
            Metric::AcceptedRatio,
            Trigger::Below(0.5),
            1,
            invalid_target,
        ));
        assert!(matches!(p.validate(), Err(PolicyError::InvalidTarget { rule: 0, .. })));

        let p = GovernorPolicy::new().rule(GovernorRule::new(
            "zero",
            Metric::AcceptedRatio,
            Trigger::Below(0.5),
            0,
            cfg("J_N_N"),
        ));
        assert!(matches!(p.validate(), Err(PolicyError::ZeroHysteresis { rule: 0 })));

        let p = GovernorPolicy::new().rule(GovernorRule::new(
            "nan",
            Metric::AcceptedRatio,
            Trigger::Below(f64::NAN),
            1,
            cfg("J_N_N"),
        ));
        assert!(matches!(p.validate(), Err(PolicyError::NonFiniteThreshold { rule: 0 })));
        assert!(Governor::new(p).is_err());
    }

    #[test]
    fn first_rule_wins_ties_and_streaks_reset_after_firing() {
        let p = GovernorPolicy::new()
            .rule(GovernorRule::new(
                "first",
                Metric::AcceptedRatio,
                Trigger::Below(0.5),
                1,
                cfg("T_T_T"),
            ))
            .rule(GovernorRule::new(
                "second",
                Metric::AcceptedRatio,
                Trigger::Below(0.5),
                1,
                cfg("J_J_J"),
            ))
            .cooldown(0);
        let mut g = Governor::new(p).unwrap();
        let d = g.observe(cfg("J_N_N"), &busy(0.1)).unwrap();
        assert_eq!(d.rule_name, "first");
        // After firing, streaks were reset; the second rule must rebuild its
        // own streak rather than inherit the first's.
        let d2 = g.observe(cfg("T_T_T"), &busy(0.1)).unwrap();
        assert_eq!(d2.rule_name, "second", "first rule's target is current, second fires");
        assert_eq!(d2.streak, 1);
    }

    #[test]
    fn stats_and_display() {
        let mut g = Governor::new(policy()).unwrap();
        let _ = g.observe(cfg("J_N_N"), &busy(0.1));
        let _ = g.observe(cfg("J_N_N"), &busy(0.1));
        assert_eq!(g.stats().windows, 2);
        assert_eq!(g.stats().decisions, 1);
        assert!(g.policy().to_string().contains("collapse-defense"));
        let rule = &g.policy().rules[0];
        assert!(rule.to_string().contains("accepted-ratio"));
        assert!(GovernorPolicy::new().to_string().contains("no rules"));
    }

    #[test]
    fn metrics_serialize() {
        let m = busy(0.4);
        let json = serde_json::to_string(&m).unwrap();
        let back: WindowMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        let p = policy();
        let json = serde_json::to_string(&p).unwrap();
        let back: GovernorPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
