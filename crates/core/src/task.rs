//! The end-to-end task model of the paper's §2.
//!
//! A *task* is the processing of a sequence of events: a chain of *subtasks*
//! `T_{i,1} … T_{i,n_i}`, each executing on a (possibly different)
//! processor. Releasing a task produces a *job*; the release of each subtask
//! within a job is a *subjob*. Tasks carry an end-to-end deadline `D_i`;
//! periodic tasks additionally have a period (the interarrival time of their
//! first subtask), while aperiodic tasks may arrive with arbitrary — and in
//! particular arbitrarily small — interarrival times.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId};
//! use rtcm_core::time::Duration;
//!
//! let task = TaskBuilder::periodic(TaskId(0), Duration::from_millis(500))
//!     .name("pressure-monitor")
//!     .deadline(Duration::from_millis(500))
//!     .subtask(Duration::from_millis(20), ProcessorId(0), [ProcessorId(1)])
//!     .subtask(Duration::from_millis(10), ProcessorId(2), [])
//!     .build()?;
//! assert_eq!(task.subtasks().len(), 2);
//! # Ok::<(), rtcm_core::task::TaskSpecError>(())
//! ```

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// Identifier of a processor (a node hosting application components).
///
/// Processors are dense indices `0..n` within a deployment; this keeps the
/// utilization ledger vector-indexed and deterministic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcessorId(pub u16);

impl ProcessorId {
    /// Returns the dense index of this processor.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of an end-to-end task.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of one release (job) of a task.
///
/// `seq` counts releases of the task from 0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId {
    /// The owning task.
    pub task: TaskId,
    /// Release sequence number within the task (0-based).
    pub seq: u64,
}

impl JobId {
    /// Creates the job id for release number `seq` of `task`.
    #[must_use]
    pub fn new(task: TaskId, seq: u64) -> Self {
        JobId { task, seq }
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.task, self.seq)
    }
}

/// Whether a task is released periodically or by unpredictable events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Released every `period`; the paper's experiments use period =
    /// deadline.
    Periodic {
        /// Interarrival time of consecutive releases.
        period: Duration,
    },
    /// Released by external events with arbitrary interarrival times.
    Aperiodic,
}

impl TaskKind {
    /// Returns true for [`TaskKind::Periodic`].
    #[must_use]
    pub fn is_periodic(self) -> bool {
        matches!(self, TaskKind::Periodic { .. })
    }

    /// Returns the period for periodic tasks.
    #[must_use]
    pub fn period(self) -> Option<Duration> {
        match self {
            TaskKind::Periodic { period } => Some(period),
            TaskKind::Aperiodic => None,
        }
    }
}

/// One stage of an end-to-end task: its worst-case execution time, the
/// processor its component is deployed on, and the processors hosting
/// duplicates of that component (the paper's criterion C3, used by load
/// balancing).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubtaskSpec {
    /// Worst-case execution time of every subjob of this subtask.
    pub execution_time: Duration,
    /// Processor hosting the primary component instance.
    pub primary: ProcessorId,
    /// Processors hosting duplicate component instances (may be empty).
    pub replicas: Vec<ProcessorId>,
}

impl SubtaskSpec {
    /// Creates a subtask with no replicas.
    #[must_use]
    pub fn new(execution_time: Duration, primary: ProcessorId) -> Self {
        SubtaskSpec { execution_time, primary, replicas: Vec::new() }
    }

    /// Creates a subtask with replicas.
    #[must_use]
    pub fn with_replicas(
        execution_time: Duration,
        primary: ProcessorId,
        replicas: impl IntoIterator<Item = ProcessorId>,
    ) -> Self {
        SubtaskSpec { execution_time, primary, replicas: replicas.into_iter().collect() }
    }

    /// All processors this subtask may be placed on: the primary followed by
    /// the replicas, without duplicates.
    pub fn candidates(&self) -> impl Iterator<Item = ProcessorId> + '_ {
        let mut seen = BTreeSet::new();
        std::iter::once(self.primary)
            .chain(self.replicas.iter().copied())
            .filter(move |p| seen.insert(*p))
    }

    /// Returns true if the subtask has at least one replica distinct from the
    /// primary.
    #[must_use]
    pub fn is_replicated(&self) -> bool {
        self.replicas.iter().any(|r| *r != self.primary)
    }
}

/// Static description of one end-to-end task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    id: TaskId,
    name: String,
    kind: TaskKind,
    deadline: Duration,
    subtasks: Vec<SubtaskSpec>,
}

impl TaskSpec {
    /// Validates and creates a task spec.
    ///
    /// # Errors
    ///
    /// See [`TaskSpecError`] for the conditions rejected: empty subtask
    /// chains, zero deadlines/periods/execution times, and total execution
    /// demand exceeding the end-to-end deadline.
    pub fn new(
        id: TaskId,
        name: impl Into<String>,
        kind: TaskKind,
        deadline: Duration,
        subtasks: Vec<SubtaskSpec>,
    ) -> Result<Self, TaskSpecError> {
        let spec = TaskSpec { id, name: name.into(), kind, deadline, subtasks };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), TaskSpecError> {
        if self.subtasks.is_empty() {
            return Err(TaskSpecError::NoSubtasks { task: self.id });
        }
        if self.deadline.is_zero() {
            return Err(TaskSpecError::ZeroDeadline { task: self.id });
        }
        if let TaskKind::Periodic { period } = self.kind {
            if period.is_zero() {
                return Err(TaskSpecError::ZeroPeriod { task: self.id });
            }
        }
        for (index, sub) in self.subtasks.iter().enumerate() {
            if sub.execution_time.is_zero() {
                return Err(TaskSpecError::ZeroExecutionTime { task: self.id, subtask: index });
            }
        }
        let total: Duration = self.subtasks.iter().map(|s| s.execution_time).sum();
        if total > self.deadline {
            return Err(TaskSpecError::DemandExceedsDeadline {
                task: self.id,
                demand: total,
                deadline: self.deadline,
            });
        }
        Ok(())
    }

    /// The task identifier.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Human-readable task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Periodic or aperiodic release pattern.
    #[must_use]
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// End-to-end deadline `D_i` (maximum allowable response time).
    #[must_use]
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// The subtask chain, in execution order.
    #[must_use]
    pub fn subtasks(&self) -> &[SubtaskSpec] {
        &self.subtasks
    }

    /// Returns true if this is a periodic task.
    #[must_use]
    pub fn is_periodic(&self) -> bool {
        self.kind.is_periodic()
    }

    /// Synthetic utilization contribution of one subtask: `C_{i,j} / D_i`.
    ///
    /// # Panics
    ///
    /// Panics if `subtask` is out of bounds.
    #[must_use]
    pub fn subtask_utilization(&self, subtask: usize) -> f64 {
        self.subtasks[subtask].execution_time.ratio(self.deadline)
    }

    /// Total synthetic utilization of one job: `Σ_j C_{i,j} / D_i`.
    ///
    /// This is the weight used by the paper's *accepted utilization ratio*
    /// metric and by the ledger when the job is admitted.
    #[must_use]
    pub fn job_utilization(&self) -> f64 {
        (0..self.subtasks.len()).map(|j| self.subtask_utilization(j)).sum()
    }

    /// Returns true if every subtask has at least one replica, i.e. the task
    /// is eligible for load balancing (criterion C3).
    #[must_use]
    pub fn fully_replicated(&self) -> bool {
        self.subtasks.iter().all(SubtaskSpec::is_replicated)
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            TaskKind::Periodic { period } => format!("periodic({period})"),
            TaskKind::Aperiodic => "aperiodic".to_owned(),
        };
        write!(
            f,
            "{} \"{}\" {kind} D={} stages={}",
            self.id,
            self.name,
            self.deadline,
            self.subtasks.len()
        )
    }
}

/// Errors rejected when constructing a [`TaskSpec`] or [`TaskSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSpecError {
    /// A task must have at least one subtask.
    NoSubtasks {
        /// Offending task.
        task: TaskId,
    },
    /// End-to-end deadlines must be positive.
    ZeroDeadline {
        /// Offending task.
        task: TaskId,
    },
    /// Periods of periodic tasks must be positive.
    ZeroPeriod {
        /// Offending task.
        task: TaskId,
    },
    /// Subtask execution times must be positive.
    ZeroExecutionTime {
        /// Offending task.
        task: TaskId,
        /// Index of the offending subtask.
        subtask: usize,
    },
    /// The sum of subtask execution times may not exceed the end-to-end
    /// deadline (the job could never finish in time even alone).
    DemandExceedsDeadline {
        /// Offending task.
        task: TaskId,
        /// Total execution demand.
        demand: Duration,
        /// End-to-end deadline.
        deadline: Duration,
    },
    /// Two tasks in a [`TaskSet`] share an id.
    DuplicateTaskId {
        /// The duplicated id.
        task: TaskId,
    },
}

impl fmt::Display for TaskSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSpecError::NoSubtasks { task } => {
                write!(f, "task {task} has no subtasks")
            }
            TaskSpecError::ZeroDeadline { task } => {
                write!(f, "task {task} has a zero end-to-end deadline")
            }
            TaskSpecError::ZeroPeriod { task } => {
                write!(f, "periodic task {task} has a zero period")
            }
            TaskSpecError::ZeroExecutionTime { task, subtask } => {
                write!(f, "subtask {subtask} of task {task} has a zero execution time")
            }
            TaskSpecError::DemandExceedsDeadline { task, demand, deadline } => {
                write!(
                    f,
                    "task {task} demands {demand} of execution but its deadline is {deadline}"
                )
            }
            TaskSpecError::DuplicateTaskId { task } => {
                write!(f, "duplicate task id {task}")
            }
        }
    }
}

impl std::error::Error for TaskSpecError {}

/// Incremental builder for [`TaskSpec`].
///
/// # Examples
///
/// ```
/// use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId};
/// use rtcm_core::time::Duration;
///
/// let alert = TaskBuilder::aperiodic(TaskId(7))
///     .name("hazard-alert")
///     .deadline(Duration::from_millis(300))
///     .subtask(Duration::from_millis(5), ProcessorId(0), [])
///     .subtask(Duration::from_millis(8), ProcessorId(1), [ProcessorId(2)])
///     .build()?;
/// assert!(!alert.is_periodic());
/// # Ok::<(), rtcm_core::task::TaskSpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    id: TaskId,
    name: Option<String>,
    kind: TaskKind,
    deadline: Option<Duration>,
    subtasks: Vec<SubtaskSpec>,
}

impl TaskBuilder {
    /// Starts a periodic task with the given period.
    ///
    /// The deadline defaults to the period (the paper's experimental
    /// setting) unless overridden by [`TaskBuilder::deadline`].
    #[must_use]
    pub fn periodic(id: TaskId, period: Duration) -> Self {
        TaskBuilder {
            id,
            name: None,
            kind: TaskKind::Periodic { period },
            deadline: None,
            subtasks: Vec::new(),
        }
    }

    /// Starts an aperiodic task. A deadline must be supplied via
    /// [`TaskBuilder::deadline`].
    #[must_use]
    pub fn aperiodic(id: TaskId) -> Self {
        TaskBuilder {
            id,
            name: None,
            kind: TaskKind::Aperiodic,
            deadline: None,
            subtasks: Vec::new(),
        }
    }

    /// Sets a human-readable name (defaults to `task-<id>`).
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the end-to-end deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Appends a subtask with the given execution time, primary processor,
    /// and replica processors.
    #[must_use]
    pub fn subtask(
        mut self,
        execution_time: Duration,
        primary: ProcessorId,
        replicas: impl IntoIterator<Item = ProcessorId>,
    ) -> Self {
        self.subtasks.push(SubtaskSpec::with_replicas(execution_time, primary, replicas));
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns [`TaskSpecError`] if the assembled spec is invalid (see
    /// [`TaskSpec::new`]). For a periodic task without an explicit deadline,
    /// the deadline defaults to the period; an aperiodic task without a
    /// deadline is rejected as [`TaskSpecError::ZeroDeadline`].
    pub fn build(self) -> Result<TaskSpec, TaskSpecError> {
        let deadline = match (self.deadline, self.kind) {
            (Some(d), _) => d,
            (None, TaskKind::Periodic { period }) => period,
            (None, TaskKind::Aperiodic) => Duration::ZERO,
        };
        let name = self.name.unwrap_or_else(|| format!("task-{}", self.id.0));
        TaskSpec::new(self.id, name, self.kind, deadline, self.subtasks)
    }
}

/// A validated collection of task specs with unique ids.
///
/// `TaskSet` is the unit handed to the configuration engine, the workload
/// generators, the simulator and the runtime.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<TaskSpec>,
    #[serde(skip)]
    by_id: HashMap<TaskId, usize>,
}

impl TaskSet {
    /// Creates an empty task set.
    #[must_use]
    pub fn new() -> Self {
        TaskSet::default()
    }

    /// Builds a task set from specs.
    ///
    /// # Errors
    ///
    /// Returns [`TaskSpecError::DuplicateTaskId`] if two specs share an id.
    pub fn from_tasks(tasks: impl IntoIterator<Item = TaskSpec>) -> Result<Self, TaskSpecError> {
        let mut set = TaskSet::new();
        for task in tasks {
            set.insert(task)?;
        }
        Ok(set)
    }

    /// Adds one task.
    ///
    /// # Errors
    ///
    /// Returns [`TaskSpecError::DuplicateTaskId`] if the id is taken.
    pub fn insert(&mut self, task: TaskSpec) -> Result<(), TaskSpecError> {
        if self.by_id.contains_key(&task.id()) {
            return Err(TaskSpecError::DuplicateTaskId { task: task.id() });
        }
        self.by_id.insert(task.id(), self.tasks.len());
        self.tasks.push(task);
        Ok(())
    }

    /// Looks a task up by id.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&TaskSpec> {
        self.by_id.get(&id).map(|&i| &self.tasks[i])
    }

    /// All tasks in insertion order.
    #[must_use]
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Iterates over the tasks.
    pub fn iter(&self) -> impl Iterator<Item = &TaskSpec> {
        self.tasks.iter()
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns true if the set holds no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The highest processor index referenced by any primary or replica,
    /// plus one — i.e. the minimum processor count a deployment needs.
    #[must_use]
    pub fn processor_count(&self) -> usize {
        self.tasks
            .iter()
            .flat_map(|t| t.subtasks())
            .flat_map(SubtaskSpec::candidates)
            .map(|p| p.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Per-processor synthetic utilization if all tasks were simultaneously
    /// current and placed on their primaries — the paper's workload sizing
    /// quantity ("the synthetic utilization of every processor is 0.5, if
    /// all tasks arrive simultaneously").
    #[must_use]
    pub fn simultaneous_utilization(&self) -> Vec<f64> {
        let mut u = vec![0.0; self.processor_count()];
        for task in &self.tasks {
            for (j, sub) in task.subtasks().iter().enumerate() {
                u[sub.primary.index()] += task.subtask_utilization(j);
            }
        }
        u
    }
}

impl TaskSet {
    /// Rebuilds the id index after deserialization.
    ///
    /// `serde` skips the index map; call this after deserializing by hand.
    /// [`TaskSet::from_tasks`] and [`TaskSet::insert`] maintain it
    /// automatically.
    pub fn reindex(&mut self) {
        self.by_id = self.tasks.iter().enumerate().map(|(i, t)| (t.id(), i)).collect();
    }
}

impl IntoIterator for TaskSet {
    type Item = TaskSpec;
    type IntoIter = std::vec::IntoIter<TaskSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a TaskSpec;
    type IntoIter = std::slice::Iter<'a, TaskSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage_task(id: u32) -> TaskSpec {
        TaskBuilder::periodic(TaskId(id), Duration::from_millis(100))
            .subtask(Duration::from_millis(10), ProcessorId(0), [ProcessorId(1)])
            .subtask(Duration::from_millis(5), ProcessorId(1), [])
            .build()
            .expect("valid task")
    }

    #[test]
    fn builder_defaults_deadline_to_period() {
        let t = two_stage_task(0);
        assert_eq!(t.deadline(), Duration::from_millis(100));
        assert_eq!(t.kind().period(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn aperiodic_requires_deadline() {
        let err = TaskBuilder::aperiodic(TaskId(1))
            .subtask(Duration::from_millis(1), ProcessorId(0), [])
            .build()
            .unwrap_err();
        assert_eq!(err, TaskSpecError::ZeroDeadline { task: TaskId(1) });
    }

    #[test]
    fn rejects_empty_chain() {
        let err = TaskBuilder::periodic(TaskId(2), Duration::from_millis(10)).build().unwrap_err();
        assert_eq!(err, TaskSpecError::NoSubtasks { task: TaskId(2) });
    }

    #[test]
    fn rejects_zero_execution_time() {
        let err = TaskBuilder::periodic(TaskId(3), Duration::from_millis(10))
            .subtask(Duration::ZERO, ProcessorId(0), [])
            .build()
            .unwrap_err();
        assert_eq!(err, TaskSpecError::ZeroExecutionTime { task: TaskId(3), subtask: 0 });
    }

    #[test]
    fn rejects_demand_beyond_deadline() {
        let err = TaskBuilder::aperiodic(TaskId(4))
            .deadline(Duration::from_millis(10))
            .subtask(Duration::from_millis(8), ProcessorId(0), [])
            .subtask(Duration::from_millis(8), ProcessorId(1), [])
            .build()
            .unwrap_err();
        assert!(matches!(err, TaskSpecError::DemandExceedsDeadline { .. }));
    }

    #[test]
    fn utilization_is_exec_over_deadline() {
        let t = two_stage_task(0);
        assert!((t.subtask_utilization(0) - 0.1).abs() < 1e-12);
        assert!((t.subtask_utilization(1) - 0.05).abs() < 1e-12);
        assert!((t.job_utilization() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn candidates_deduplicate_primary() {
        let sub = SubtaskSpec::with_replicas(
            Duration::from_millis(1),
            ProcessorId(0),
            [ProcessorId(0), ProcessorId(2), ProcessorId(2)],
        );
        let c: Vec<_> = sub.candidates().collect();
        assert_eq!(c, vec![ProcessorId(0), ProcessorId(2)]);
    }

    #[test]
    fn replication_flags() {
        let t = two_stage_task(0);
        assert!(t.subtasks()[0].is_replicated());
        assert!(!t.subtasks()[1].is_replicated());
        assert!(!t.fully_replicated());
    }

    #[test]
    fn task_set_rejects_duplicates() {
        let mut set = TaskSet::new();
        set.insert(two_stage_task(0)).unwrap();
        let err = set.insert(two_stage_task(0)).unwrap_err();
        assert_eq!(err, TaskSpecError::DuplicateTaskId { task: TaskId(0) });
    }

    #[test]
    fn task_set_lookup_and_processor_count() {
        let set = TaskSet::from_tasks([two_stage_task(0), two_stage_task(5)]).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.get(TaskId(5)).is_some());
        assert!(set.get(TaskId(9)).is_none());
        assert_eq!(set.processor_count(), 2);
    }

    #[test]
    fn simultaneous_utilization_sums_primaries() {
        let set = TaskSet::from_tasks([two_stage_task(0)]).unwrap();
        let u = set.simultaneous_utilization();
        assert!((u[0] - 0.1).abs() < 1e-12);
        assert!((u[1] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_preserves_lookup() {
        let set = TaskSet::from_tasks([two_stage_task(0), two_stage_task(1)]).unwrap();
        let json = serde_json::to_string(&set).unwrap();
        let mut back: TaskSet = serde_json::from_str(&json).unwrap();
        back.reindex();
        assert_eq!(back.tasks(), set.tasks());
        assert!(back.get(TaskId(1)).is_some());
    }

    #[test]
    fn display_formats() {
        let t = two_stage_task(3);
        let s = t.to_string();
        assert!(s.contains("T3"));
        assert!(s.contains("periodic"));
        assert_eq!(JobId::new(TaskId(3), 7).to_string(), "T3#7");
        assert_eq!(ProcessorId(2).to_string(), "P2");
    }
}
