//! Offline (design-time) AUB feasibility analysis of a task set.
//!
//! The on-line admission controller decides per arrival; this module
//! answers the questions a developer asks *before* deployment:
//!
//! * Which tasks could never be admitted even into an idle system (their
//!   own bound exceeds 1 on their primary placement)?
//! * What does each processor's synthetic utilization look like if all
//!   tasks are simultaneously current — the paper's workload sizing
//!   quantity?
//! * Which tasks would fail the AUB bound in that worst case (and hence
//!   will see rejections under per-task admission control)?
//!
//! The configuration engine (`rtcm-config`) surfaces these findings as
//! warnings when building deployment plans.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::analysis::analyze;
//! use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId, TaskSet};
//! use rtcm_core::time::Duration;
//!
//! let modest = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
//!     .subtask(Duration::from_millis(20), ProcessorId(0), [])
//!     .build()?;
//! let set = TaskSet::from_tasks([modest])?;
//! let report = analyze(&set);
//! assert!(report.is_feasible());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::admission::{AdmissionController, EntryBound};
use crate::aub::{bound_lhs, BOUND_EPSILON};
use crate::task::{ProcessorId, TaskId, TaskSet};

/// Per-task bound evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskBound {
    /// The task.
    pub task: TaskId,
    /// Left-hand side of eq. 1 with only this task current, on its primary
    /// placement. Above 1 the task can **never** be admitted.
    pub lhs_alone: f64,
    /// Left-hand side with *all* tasks simultaneously current on their
    /// primaries — the most pessimistic moment the admission controller
    /// can face without idle resetting.
    pub lhs_simultaneous: f64,
}

impl TaskBound {
    /// True if the task passes the bound alone.
    #[must_use]
    pub fn admittable_alone(&self) -> bool {
        self.lhs_alone <= 1.0 + BOUND_EPSILON
    }

    /// True if the task passes even with everything else current.
    #[must_use]
    pub fn admittable_simultaneously(&self) -> bool {
        self.lhs_simultaneous <= 1.0 + BOUND_EPSILON
    }
}

/// The full design-time report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// Synthetic utilization per processor with all tasks simultaneously
    /// current on their primaries.
    pub processor_utilization: Vec<f64>,
    /// Per-task bound evaluations, in task-set order.
    pub task_bounds: Vec<TaskBound>,
}

impl FeasibilityReport {
    /// Tasks whose own bound exceeds 1: never admittable, a specification
    /// error.
    #[must_use]
    pub fn never_admittable(&self) -> Vec<TaskId> {
        self.task_bounds.iter().filter(|b| !b.admittable_alone()).map(|b| b.task).collect()
    }

    /// Tasks that fail the bound when all tasks are simultaneously current
    /// (will be rejected under worst-case phasing).
    #[must_use]
    pub fn contended(&self) -> Vec<TaskId> {
        self.task_bounds
            .iter()
            .filter(|b| b.admittable_alone() && !b.admittable_simultaneously())
            .map(|b| b.task)
            .collect()
    }

    /// Processors at or above synthetic utilization 1 in the simultaneous
    /// case.
    #[must_use]
    pub fn saturated_processors(&self) -> Vec<ProcessorId> {
        self.processor_utilization
            .iter()
            .enumerate()
            .filter(|(_, u)| **u >= 1.0 - BOUND_EPSILON)
            .map(|(p, _)| ProcessorId(p as u16))
            .collect()
    }

    /// True when every task passes the simultaneous bound: the whole set
    /// can be admitted under any arrival phasing.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.task_bounds.iter().all(TaskBound::admittable_simultaneously)
    }
}

impl fmt::Display for FeasibilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "feasibility: {}",
            if self.is_feasible() { "all tasks pass" } else { "contended" }
        )?;
        for (p, u) in self.processor_utilization.iter().enumerate() {
            writeln!(f, "  P{p}: U = {u:.3}")?;
        }
        for b in &self.task_bounds {
            writeln!(
                f,
                "  {}: alone {:.3}, simultaneous {:.3}{}",
                b.task,
                b.lhs_alone,
                b.lhs_simultaneous,
                if !b.admittable_alone() {
                    " (never admittable)"
                } else if !b.admittable_simultaneously() {
                    " (contended)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

/// Evaluates the AUB bound for every task on its primary placement.
#[must_use]
pub fn analyze(tasks: &TaskSet) -> FeasibilityReport {
    let simultaneous = tasks.simultaneous_utilization();
    let task_bounds = tasks
        .iter()
        .map(|task| {
            // Alone: only this task's contributions on its primaries.
            let mut alone = vec![0.0; simultaneous.len()];
            for (j, sub) in task.subtasks().iter().enumerate() {
                alone[sub.primary.index()] += task.subtask_utilization(j);
            }
            let lhs_alone = bound_lhs(task.subtasks().iter().map(|s| alone[s.primary.index()]));
            let lhs_simultaneous =
                bound_lhs(task.subtasks().iter().map(|s| simultaneous[s.primary.index()]));
            TaskBound { task: task.id(), lhs_alone, lhs_simultaneous }
        })
        .collect();
    FeasibilityReport { processor_utilization: simultaneous, task_bounds }
}

/// Run-time audit of a live [`AdmissionController`]'s incremental
/// bookkeeping against the declarative AUB model.
///
/// The incremental admission path (see `rtcm_core::admission`) answers the
/// schedulability question from cached per-entry sums; this audit
/// recomputes every sum from scratch and reports how far the caches have
/// drifted — the "check the hot-path optimization against the declarative
/// model" discipline that dynamic-reconfiguration correctness arguments
/// call for. The differential harness and long-running deployments use it
/// as a cheap invariant probe (and `AdmissionController::reconcile` to
/// repair drift).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerAudit {
    /// Live synthetic utilization per processor.
    pub processor_utilization: Vec<f64>,
    /// Current registry size (jobs + reservations).
    pub current_entries: usize,
    /// Entries whose cached sum exceeds the bound (expected non-zero only
    /// after un-tested load such as remote commits).
    pub violating_entries: usize,
    /// Largest |cached − fresh| AUB-sum divergence across entries —
    /// `f64::INFINITY` if a cache disagrees with a fresh sum about
    /// saturation itself.
    pub max_cached_drift: f64,
    /// The per-entry evidence.
    pub entry_bounds: Vec<EntryBound>,
}

impl ControllerAudit {
    /// True when every cached sum matches its fresh recomputation within
    /// `tolerance`.
    #[must_use]
    pub fn is_consistent(&self, tolerance: f64) -> bool {
        self.max_cached_drift <= tolerance
    }
}

fn bound_drift(bound: &EntryBound) -> f64 {
    match (bound.cached_lhs.is_finite(), bound.fresh_lhs.is_finite()) {
        (true, true) => (bound.cached_lhs - bound.fresh_lhs).abs(),
        (false, false) => 0.0, // both saturated (∞): consistent
        _ => f64::INFINITY,    // cache and model disagree about saturation
    }
}

/// Audits `ac`'s cached AUB sums against fresh recomputation.
#[must_use]
pub fn audit_controller(ac: &AdmissionController) -> ControllerAudit {
    let entry_bounds = ac.entry_bounds();
    let max_cached_drift = entry_bounds.iter().map(bound_drift).fold(0.0, f64::max);
    ControllerAudit {
        processor_utilization: ac.ledger().utilizations(),
        current_entries: ac.current_entries(),
        violating_entries: ac.violating_entries(),
        max_cached_drift,
        entry_bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;
    use crate::time::Duration;

    fn task(id: u32, exec_ms: u64, deadline_ms: u64, procs: &[u16]) -> crate::task::TaskSpec {
        let mut b = TaskBuilder::periodic(TaskId(id), Duration::from_millis(deadline_ms));
        for p in procs {
            b = b.subtask(Duration::from_millis(exec_ms), ProcessorId(*p), []);
        }
        b.build().unwrap()
    }

    #[test]
    fn light_set_is_feasible() {
        let set = TaskSet::from_tasks([task(0, 10, 100, &[0]), task(1, 10, 100, &[1])]).unwrap();
        let report = analyze(&set);
        assert!(report.is_feasible());
        assert!(report.never_admittable().is_empty());
        assert!(report.contended().is_empty());
        assert!(report.saturated_processors().is_empty());
    }

    #[test]
    fn impossible_task_is_flagged() {
        // Four stages at C/D = 0.24 each: alone lhs = 4 * f(0.24) ≈ 1.11 > 1.
        let set = TaskSet::from_tasks([task(0, 24, 100, &[0, 1, 2, 3])]).unwrap();
        let report = analyze(&set);
        assert_eq!(report.never_admittable(), vec![TaskId(0)]);
        assert!(!report.is_feasible());
        assert!(report.to_string().contains("never admittable"));
    }

    #[test]
    fn contention_is_distinguished_from_impossibility() {
        // Each task is fine alone (f(0.45) ≈ 0.63) but not together
        // (f(0.9) = 8.55).
        let set = TaskSet::from_tasks([task(0, 45, 100, &[0]), task(1, 45, 100, &[0])]).unwrap();
        let report = analyze(&set);
        assert!(report.never_admittable().is_empty());
        assert_eq!(report.contended(), vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn saturated_processor_detected() {
        let set = TaskSet::from_tasks([task(0, 60, 100, &[0]), task(1, 50, 100, &[0])]).unwrap();
        let report = analyze(&set);
        assert_eq!(report.saturated_processors(), vec![ProcessorId(0)]);
    }

    #[test]
    fn utilization_matches_task_set_accounting() {
        let set = TaskSet::from_tasks([task(0, 20, 100, &[0, 1])]).unwrap();
        let report = analyze(&set);
        assert_eq!(report.processor_utilization, set.simultaneous_utilization());
    }

    #[test]
    fn report_serializes() {
        let set = TaskSet::from_tasks([task(0, 10, 100, &[0])]).unwrap();
        let json = serde_json::to_string(&analyze(&set)).unwrap();
        assert!(json.contains("lhs_alone"));
    }

    #[test]
    fn controller_audit_sees_consistent_caches() {
        use crate::admission::AdmissionController;
        use crate::balance::Assignment;
        use crate::strategy::ServiceConfig;
        use crate::time::Time;

        let cfg: ServiceConfig = "J_N_N".parse().unwrap();
        let mut ac = AdmissionController::new(cfg, 2).unwrap();
        let t0 = task(0, 20, 100, &[0]);
        let t1 = task(1, 20, 100, &[1]);
        assert!(ac.handle_arrival(&t0, 0, Time::ZERO).unwrap().is_accept());
        assert!(ac.handle_arrival(&t1, 0, Time::ZERO).unwrap().is_accept());

        let audit = audit_controller(&ac);
        assert_eq!(audit.current_entries, 2);
        assert_eq!(audit.violating_entries, 0);
        assert!(audit.is_consistent(1e-9), "drift {}", audit.max_cached_drift);

        // Un-tested remote load can push current entries over the bound;
        // the audit must surface that while the caches stay consistent.
        let hog = task(9, 70, 100, &[0]);
        ac.apply_remote_commit(&hog, 0, Time::ZERO, &Assignment::primaries(&hog)).unwrap();
        let audit = audit_controller(&ac);
        assert!(audit.violating_entries > 0, "f(0.9) alone exceeds the bound");
        assert!(audit.is_consistent(1e-9), "drift {}", audit.max_cached_drift);
        let json = serde_json::to_string(&audit).unwrap();
        assert!(json.contains("max_cached_drift"));
    }
}
