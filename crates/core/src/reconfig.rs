//! Run-time reconfiguration planning: swapping the full [`ServiceConfig`]
//! of a live admission controller without dropping admitted work.
//!
//! The paper's §5 claims the service strategies "may be modified at
//! run-time"; this module provides the declarative half of that claim:
//!
//! * [`ReconfigPlan`] — the transition planner. Given an old and a new
//!   configuration it validates the §4.5 combination rule *atomically*
//!   (an invalid target leaves the running system untouched) and lists
//!   the handover steps the admission controller must execute:
//!   draining per-task reservations when admission control moves from
//!   per-task to per-job, reseeding them on the way back, and swapping
//!   the idle-resetting / load-balancing strategies.
//! * [`ModeSchedule`] — a timed sequence of configuration changes (a
//!   *mode schedule* in the sense of reconfigurable timed discrete-event
//!   systems), consumed by `rtcm-sim`'s `simulate_with_schedule` and by
//!   experiment drivers.
//! * [`HandoverReport`] — what one executed transition did to the ledger
//!   state: entries carried, reservations drained/reseeded, sticky
//!   rejections cleared, balancer pins forgotten.
//!
//! The imperative half — actually mutating the ledger — lives in
//! [`AdmissionController::reconfigure`](crate::admission::AdmissionController::reconfigure),
//! which executes a plan step by step. See DESIGN.md ("Live
//! reconfiguration") for the handover invariants.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::reconfig::{ModeSchedule, ReconfigPlan, TransitionStep};
//! use rtcm_core::strategy::ServiceConfig;
//! use rtcm_core::time::{Duration, Time};
//!
//! let from: ServiceConfig = "J_N_N".parse()?;
//! let to: ServiceConfig = "T_T_T".parse()?;
//! let plan = ReconfigPlan::between(from, to)?;
//! assert!(plan.steps().contains(&TransitionStep::ReseedReservations));
//!
//! let schedule = ModeSchedule::new().then_at(Time::ZERO + Duration::from_secs(40), to);
//! assert_eq!(schedule.active_at(Time::ZERO + Duration::from_secs(50), from), to);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::strategy::{AcStrategy, InvalidConfigError, IrStrategy, LbStrategy, ServiceConfig};
use crate::time::Time;

/// One handover step of a configuration transition, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitionStep {
    /// Admission control moves per-task → per-job: every per-task
    /// reservation is converted into a deadline-bound contribution (the
    /// latest deadline any job released under it can still hold), so
    /// in-flight jobs keep their guarantees while the reserved capacity
    /// eventually frees. Sticky per-task rejections are cleared.
    DrainReservations,
    /// Admission control moves per-job → per-task: periodic tasks with
    /// live admitted jobs are *reseeded* into reservations on their most
    /// recent placement, guarded by a full AUB re-check (a reseed that
    /// would violate any current entry's bound is skipped and the task is
    /// simply re-tested at its next arrival).
    ReseedReservations,
    /// Swap the idle-resetting strategy. No ledger handover is needed: IR
    /// only selects *which completions are reported*, so contributions
    /// recorded under the old strategy remain valid.
    SwapIr(IrStrategy),
    /// Swap the load-balancing strategy. Pinned per-task plans are
    /// forgotten (the pin is a property of the outgoing strategy); live
    /// reservations keep their placement until relocated or withdrawn.
    SwapLb(LbStrategy),
}

impl fmt::Display for TransitionStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionStep::DrainReservations => f.write_str("drain per-task reservations"),
            TransitionStep::ReseedReservations => f.write_str("reseed per-task reservations"),
            TransitionStep::SwapIr(ir) => write!(f, "swap to {ir}"),
            TransitionStep::SwapLb(lb) => write!(f, "swap to {lb}"),
        }
    }
}

/// A validated transition between two service configurations.
///
/// Construction is the *atomic validity gate* of a reconfiguration: both
/// endpoints must satisfy the §4.5 combination rule before any state is
/// touched, so a rejected plan implies an unchanged system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigPlan {
    from: ServiceConfig,
    to: ServiceConfig,
    steps: Vec<TransitionStep>,
}

impl ReconfigPlan {
    /// Plans the transition `from` → `to`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] if either endpoint violates the
    /// §4.5 rule — checked before any step is emitted, so a failed plan
    /// never partially applies.
    pub fn between(from: ServiceConfig, to: ServiceConfig) -> Result<Self, InvalidConfigError> {
        from.validate()?;
        to.validate()?;
        let mut steps = Vec::new();
        match (from.ac, to.ac) {
            (AcStrategy::PerTask, AcStrategy::PerJob) => {
                steps.push(TransitionStep::DrainReservations);
            }
            (AcStrategy::PerJob, AcStrategy::PerTask) => {
                steps.push(TransitionStep::ReseedReservations);
            }
            _ => {}
        }
        if from.ir != to.ir {
            steps.push(TransitionStep::SwapIr(to.ir));
        }
        if from.lb != to.lb {
            steps.push(TransitionStep::SwapLb(to.lb));
        }
        Ok(ReconfigPlan { from, to, steps })
    }

    /// The configuration being left.
    #[must_use]
    pub fn from(&self) -> ServiceConfig {
        self.from
    }

    /// The configuration being entered.
    #[must_use]
    pub fn to(&self) -> ServiceConfig {
        self.to
    }

    /// The handover steps, in execution order.
    #[must_use]
    pub fn steps(&self) -> &[TransitionStep] {
        &self.steps
    }

    /// True if the transition changes nothing.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for ReconfigPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}:", self.from, self.to)?;
        if self.steps.is_empty() {
            return write!(f, " no-op");
        }
        for step in &self.steps {
            write!(f, " [{step}]")?;
        }
        Ok(())
    }
}

/// What one executed configuration transition did to the admission state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandoverReport {
    /// The configuration left behind.
    pub from: ServiceConfig,
    /// The configuration now active.
    pub to: ServiceConfig,
    /// Current registry entries (admitted jobs + reservations) alive after
    /// the swap — every one keeps its ledger contributions and therefore
    /// its admission guarantee.
    pub entries_carried: usize,
    /// Per-task reservations converted into deadline-bound contributions
    /// (AC per-task → per-job).
    pub reservations_drained: usize,
    /// Reservations of tasks unknown to the caller-supplied task set,
    /// withdrawn outright because no deadline horizon is known for them.
    pub reservations_withdrawn: usize,
    /// Periodic tasks reseeded into reservations from their latest live
    /// placement (AC per-job → per-task).
    pub reservations_reseeded: usize,
    /// Reseed candidates skipped because re-reserving them would have
    /// violated the AUB bound for a current entry.
    pub reseeds_skipped: usize,
    /// Sticky per-task rejections cleared by the AC swap.
    pub rejections_cleared: usize,
    /// Pinned load-balancing plans forgotten by the LB swap.
    pub pins_forgotten: usize,
}

impl HandoverReport {
    /// An all-zero report for the transition `from` → `to`.
    #[must_use]
    pub fn new(from: ServiceConfig, to: ServiceConfig) -> Self {
        HandoverReport {
            from,
            to,
            entries_carried: 0,
            reservations_drained: 0,
            reservations_withdrawn: 0,
            reservations_reseeded: 0,
            reseeds_skipped: 0,
            rejections_cleared: 0,
            pins_forgotten: 0,
        }
    }
}

impl fmt::Display for HandoverReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {}: {} entries carried, {} drained, {} reseeded ({} skipped), \
             {} rejections cleared, {} pins forgotten",
            self.from,
            self.to,
            self.entries_carried,
            self.reservations_drained,
            self.reservations_reseeded,
            self.reseeds_skipped,
            self.rejections_cleared,
            self.pins_forgotten
        )
    }
}

/// One timed configuration change of a [`ModeSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeChange {
    /// When the change takes effect. Ties against same-instant arrivals
    /// resolve *switch first* (the new mode governs the arrival).
    pub at: Time,
    /// The configuration to enter.
    pub services: ServiceConfig,
}

/// A timed sequence of [`ServiceConfig`] changes — the declarative input
/// for mode-change experiments (`rtcm_sim::simulate_with_schedule`) and
/// for scripted runtime transitions.
///
/// Changes are kept sorted by time (stably, so same-instant changes apply
/// in insertion order and the last one wins).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeSchedule {
    changes: Vec<ModeChange>,
}

impl ModeSchedule {
    /// An empty schedule (no changes; the initial configuration runs
    /// throughout).
    #[must_use]
    pub fn new() -> Self {
        ModeSchedule::default()
    }

    /// Adds a change at `at`, keeping the schedule sorted.
    #[must_use]
    pub fn then_at(mut self, at: Time, services: ServiceConfig) -> Self {
        self.push(at, services);
        self
    }

    /// Adds a change at `at`, keeping the schedule sorted.
    pub fn push(&mut self, at: Time, services: ServiceConfig) {
        self.changes.push(ModeChange { at, services });
        self.changes.sort_by_key(|c| c.at);
    }

    /// The scheduled changes, sorted by time.
    #[must_use]
    pub fn changes(&self) -> &[ModeChange] {
        &self.changes
    }

    /// True if the schedule contains no changes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of scheduled changes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Validates every scheduled configuration against the §4.5 rule.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvalidConfigError`] found.
    pub fn validate(&self) -> Result<(), InvalidConfigError> {
        for change in &self.changes {
            change.services.validate()?;
        }
        Ok(())
    }

    /// The configuration governing instant `t` under this schedule, given
    /// the configuration active before the first change.
    #[must_use]
    pub fn active_at(&self, t: Time, initial: ServiceConfig) -> ServiceConfig {
        self.changes.iter().take_while(|c| c.at <= t).last().map_or(initial, |c| c.services)
    }
}

impl fmt::Display for ModeSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.changes.is_empty() {
            return f.write_str("(static)");
        }
        for (i, change) in self.changes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} at {}", change.services, change.at)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn cfg(label: &str) -> ServiceConfig {
        label.parse().unwrap()
    }

    fn at(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn plan_between_identical_configs_is_noop() {
        let plan = ReconfigPlan::between(cfg("J_T_T"), cfg("J_T_T")).unwrap();
        assert!(plan.is_noop());
        assert_eq!(plan.steps(), &[]);
    }

    #[test]
    fn plan_rejects_invalid_endpoints_atomically() {
        assert!(ReconfigPlan::between(cfg("J_N_N"), cfg("T_J_N")).is_err());
        assert!(ReconfigPlan::between(cfg("T_J_N"), cfg("J_N_N")).is_err());
    }

    #[test]
    fn ac_swaps_emit_handover_steps() {
        let drain = ReconfigPlan::between(cfg("T_T_T"), cfg("J_J_J")).unwrap();
        assert_eq!(drain.steps()[0], TransitionStep::DrainReservations);
        let reseed = ReconfigPlan::between(cfg("J_J_J"), cfg("T_T_T")).unwrap();
        assert_eq!(reseed.steps()[0], TransitionStep::ReseedReservations);
    }

    #[test]
    fn axis_swaps_are_listed_in_order() {
        let plan = ReconfigPlan::between(cfg("J_N_N"), cfg("T_T_J")).unwrap();
        assert_eq!(
            plan.steps(),
            &[
                TransitionStep::ReseedReservations,
                TransitionStep::SwapIr(IrStrategy::PerTask),
                TransitionStep::SwapLb(LbStrategy::PerJob),
            ]
        );
        assert!(plan.to_string().contains("reseed"));
    }

    #[test]
    fn every_valid_pair_plans() {
        for from in ServiceConfig::all_valid() {
            for to in ServiceConfig::all_valid() {
                let plan = ReconfigPlan::between(from, to).unwrap();
                assert_eq!(plan.is_noop(), from == to, "{from} -> {to}");
            }
        }
    }

    #[test]
    fn schedule_sorts_and_answers_active_at() {
        let schedule = ModeSchedule::new()
            .then_at(at(200), cfg("T_T_T"))
            .then_at(at(100), cfg("J_J_J"))
            .then_at(at(300), cfg("J_N_N"));
        let initial = cfg("J_T_N");
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule.active_at(at(0), initial), initial);
        assert_eq!(schedule.active_at(at(100), initial), cfg("J_J_J"));
        assert_eq!(schedule.active_at(at(250), initial), cfg("T_T_T"));
        assert_eq!(schedule.active_at(at(999), initial), cfg("J_N_N"));
        schedule.validate().unwrap();
    }

    #[test]
    fn schedule_validation_catches_invalid_modes() {
        let schedule = ModeSchedule::new().then_at(at(10), cfg("T_J_N"));
        assert!(schedule.validate().is_err());
    }

    #[test]
    fn schedule_serializes() {
        let schedule = ModeSchedule::new().then_at(at(10), cfg("J_J_J"));
        let json = serde_json::to_string(&schedule).unwrap();
        let back: ModeSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, schedule);
    }

    #[test]
    fn handover_report_displays_counts() {
        let mut report = HandoverReport::new(cfg("T_N_N"), cfg("J_N_N"));
        report.reservations_drained = 3;
        let text = report.to_string();
        assert!(text.contains("3 drained"), "{text}");
    }
}
