//! End-to-end Deadline Monotonic Scheduling (EDMS) priority assignment.
//!
//! Under EDMS "a subtask has a higher priority if it belongs to a task with
//! a shorter end-to-end deadline" (§2). All subtasks of a task share the
//! task's priority, on every processor they visit. The AUB analysis achieves
//! its highest schedulable synthetic utilization bound under EDMS, which is
//! why both the simulator and the threaded runtime dispatch subjobs in EDMS
//! order.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::priority::{assign_edms, Priority};
//! use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId};
//! use rtcm_core::time::Duration;
//! use rtcm_core::task::TaskSet;
//!
//! let fast = TaskBuilder::aperiodic(TaskId(0))
//!     .deadline(Duration::from_millis(100))
//!     .subtask(Duration::from_millis(1), ProcessorId(0), [])
//!     .build()?;
//! let slow = TaskBuilder::aperiodic(TaskId(1))
//!     .deadline(Duration::from_secs(10))
//!     .subtask(Duration::from_millis(1), ProcessorId(0), [])
//!     .build()?;
//! let set = TaskSet::from_tasks([slow, fast])?;
//!
//! let prio = assign_edms(&set);
//! assert!(prio[&TaskId(0)].is_higher_than(prio[&TaskId(1)]));
//! # Ok::<(), rtcm_core::task::TaskSpecError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::task::{TaskId, TaskSet};

/// A fixed dispatching priority.
///
/// Follows the classic real-time convention: **lower numeric value means
/// higher urgency**, with `Priority(0)` the most urgent. The derived `Ord`
/// therefore orders by *numeric level*; use [`Priority::is_higher_than`] or
/// [`Priority::cmp_urgency`] when you mean urgency.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Priority(pub u32);

impl Priority {
    /// The most urgent priority level.
    pub const HIGHEST: Priority = Priority(0);

    /// Returns true if `self` is more urgent (numerically lower) than
    /// `other`.
    #[must_use]
    pub fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }

    /// Compares by urgency: `Ordering::Greater` means `self` is more urgent.
    #[must_use]
    pub fn cmp_urgency(self, other: Priority) -> std::cmp::Ordering {
        other.0.cmp(&self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// Assigns EDMS priorities to every task in the set.
///
/// Tasks are ranked by end-to-end deadline, shortest first; ties are broken
/// by task id so the assignment is deterministic. Each task gets a distinct
/// level `0..n`, which is how the paper's configuration engine "assigns
/// priorities in order of tasks' end-to-end deadlines" into the deployment
/// plan (§6).
#[must_use]
pub fn assign_edms(tasks: &TaskSet) -> HashMap<TaskId, Priority> {
    let mut order: Vec<_> = tasks.iter().map(|t| (t.deadline(), t.id())).collect();
    order.sort();
    order
        .into_iter()
        .enumerate()
        .map(|(level, (_, id))| {
            (id, Priority(u32::try_from(level).expect("more than u32::MAX tasks")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ProcessorId, TaskBuilder};
    use crate::time::Duration;

    fn task(id: u32, deadline_ms: u64) -> crate::task::TaskSpec {
        TaskBuilder::aperiodic(TaskId(id))
            .deadline(Duration::from_millis(deadline_ms))
            .subtask(Duration::from_millis(1), ProcessorId(0), [])
            .build()
            .unwrap()
    }

    #[test]
    fn shorter_deadline_gets_higher_priority() {
        let set = TaskSet::from_tasks([task(0, 500), task(1, 100), task(2, 900)]).unwrap();
        let prio = assign_edms(&set);
        assert_eq!(prio[&TaskId(1)], Priority(0));
        assert_eq!(prio[&TaskId(0)], Priority(1));
        assert_eq!(prio[&TaskId(2)], Priority(2));
    }

    #[test]
    fn ties_break_by_task_id() {
        let set = TaskSet::from_tasks([task(5, 100), task(3, 100)]).unwrap();
        let prio = assign_edms(&set);
        assert!(prio[&TaskId(3)].is_higher_than(prio[&TaskId(5)]));
    }

    #[test]
    fn levels_are_dense_and_distinct() {
        let set = TaskSet::from_tasks((0..10).map(|i| task(i, 100 + 10 * u64::from(i)))).unwrap();
        let prio = assign_edms(&set);
        let mut levels: Vec<_> = prio.values().map(|p| p.0).collect();
        levels.sort_unstable();
        assert_eq!(levels, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn urgency_comparisons() {
        assert!(Priority(0).is_higher_than(Priority(1)));
        assert!(!Priority(1).is_higher_than(Priority(1)));
        assert_eq!(Priority(0).cmp_urgency(Priority(1)), std::cmp::Ordering::Greater);
        assert_eq!(Priority::HIGHEST, Priority(0));
    }

    #[test]
    fn empty_set_yields_empty_map() {
        let set = TaskSet::new();
        assert!(assign_edms(&set).is_empty());
    }
}
