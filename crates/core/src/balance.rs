//! The load-balancing service (§4.4): greedy lowest-synthetic-utilization
//! placement of subtasks across replica processors.
//!
//! The LB component "always assigns a subtask to the processor with the
//! lowest synthetic utilization among all processors on which the
//! application component corresponding to the task has been replicated".
//! Accepting a new task never moves already-admitted tasks — only the new
//! arrival's plan is computed. Under [`LbStrategy::PerTask`] the first plan
//! is pinned for the task's lifetime (stateful applications, criterion C2);
//! under [`LbStrategy::PerJob`] every job gets a fresh plan.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::balance::LoadBalancer;
//! use rtcm_core::ledger::{ContributionKey, Lifetime, UtilizationLedger};
//! use rtcm_core::strategy::LbStrategy;
//! use rtcm_core::task::{JobId, ProcessorId, TaskBuilder, TaskId};
//! use rtcm_core::time::Duration;
//!
//! let task = TaskBuilder::aperiodic(TaskId(0))
//!     .deadline(Duration::from_millis(100))
//!     .subtask(Duration::from_millis(10), ProcessorId(0), [ProcessorId(1)])
//!     .build()?;
//!
//! let mut ledger = UtilizationLedger::new(2);
//! // Processor 0 is busy; the balancer should route to processor 1.
//! ledger.add(ProcessorId(0), ContributionKey::new(JobId::new(TaskId(9), 0), 0), 0.5,
//!     Lifetime::Reserved)?;
//!
//! let mut lb = LoadBalancer::new(LbStrategy::PerJob);
//! let plan = lb.assignment_for(&task, &ledger);
//! assert_eq!(plan.processor(0), ProcessorId(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ledger::UtilizationLedger;
use crate::strategy::LbStrategy;
use crate::task::{ProcessorId, TaskId, TaskSpec};

/// A placement plan: one processor per subtask of a task, in chain order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment(Vec<ProcessorId>);

impl Assignment {
    /// Creates an assignment from one processor per subtask.
    #[must_use]
    pub fn new(processors: Vec<ProcessorId>) -> Self {
        Assignment(processors)
    }

    /// The primary placement of a task (no balancing).
    #[must_use]
    pub fn primaries(task: &TaskSpec) -> Self {
        Assignment(task.subtasks().iter().map(|s| s.primary).collect())
    }

    /// Processor assigned to subtask `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn processor(&self, index: usize) -> ProcessorId {
        self.0[index]
    }

    /// All assigned processors, in subtask order.
    #[must_use]
    pub fn as_slice(&self) -> &[ProcessorId] {
        &self.0
    }

    /// Number of subtasks covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns true for the (degenerate) empty assignment.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(subtask index, processor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, ProcessorId)> + '_ {
        self.0.iter().copied().enumerate()
    }

    /// Returns true if this plan differs from the task's primary placement —
    /// the paper's definition of a *task re-allocation*.
    #[must_use]
    pub fn is_reallocation(&self, task: &TaskSpec) -> bool {
        self.0.iter().zip(task.subtasks()).any(|(chosen, sub)| *chosen != sub.primary)
    }

    /// Checks that every choice is one of the subtask's declared candidates
    /// and that the arity matches the task's chain.
    #[must_use]
    pub fn is_valid_for(&self, task: &TaskSpec) -> bool {
        self.0.len() == task.subtasks().len()
            && self
                .0
                .iter()
                .zip(task.subtasks())
                .all(|(chosen, sub)| sub.candidates().any(|c| c == *chosen))
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// The configurable load-balancing component.
///
/// Holds the per-task plan cache needed by [`LbStrategy::PerTask`]; the
/// greedy placement heuristic itself is stateless and exposed as
/// [`LoadBalancer::propose`].
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    strategy: LbStrategy,
    plans: HashMap<TaskId, Assignment>,
}

impl LoadBalancer {
    /// Creates a balancer with the given strategy.
    #[must_use]
    pub fn new(strategy: LbStrategy) -> Self {
        LoadBalancer { strategy, plans: HashMap::new() }
    }

    /// The configured strategy.
    #[must_use]
    pub fn strategy(&self) -> LbStrategy {
        self.strategy
    }

    /// Hot-swaps the strategy, forgetting all pinned per-task plans when
    /// it actually changes (a pin is a property of the outgoing strategy;
    /// a stale pin surviving a round trip through per-job could resurrect
    /// a placement chosen against a long-gone load picture). Returns the
    /// number of pins forgotten.
    pub fn set_strategy(&mut self, strategy: LbStrategy) -> usize {
        if strategy == self.strategy {
            return 0;
        }
        self.strategy = strategy;
        let forgotten = self.plans.len();
        self.plans.clear();
        forgotten
    }

    /// Produces the placement for an arriving job of `task`, honoring the
    /// configured strategy:
    ///
    /// * `None` — the primary placement, always;
    /// * `PerTask` — the cached plan if the task was placed before,
    ///   otherwise a fresh greedy plan which is then pinned;
    /// * `PerJob` — a fresh greedy plan for every call.
    pub fn assignment_for(&mut self, task: &TaskSpec, ledger: &UtilizationLedger) -> Assignment {
        self.assignment_for_with(task, ledger.processor_count(), |p| ledger.utilization(p))
    }

    /// [`LoadBalancer::assignment_for`] against an arbitrary utilization
    /// view — the sharded admission plane assembles the view from several
    /// per-shard ledgers, which a single `&UtilizationLedger` cannot
    /// express.
    pub fn assignment_for_with(
        &mut self,
        task: &TaskSpec,
        processor_count: usize,
        utilization: impl Fn(ProcessorId) -> f64,
    ) -> Assignment {
        match self.strategy {
            LbStrategy::None => Assignment::primaries(task),
            LbStrategy::PerTask => {
                if let Some(plan) = self.plans.get(&task.id()) {
                    return plan.clone();
                }
                let plan = Self::propose_with(task, processor_count, utilization);
                self.plans.insert(task.id(), plan.clone());
                plan
            }
            LbStrategy::PerJob => Self::propose_with(task, processor_count, utilization),
        }
    }

    /// The greedy heuristic: walk the subtask chain in order and pick, for
    /// each subtask, the candidate processor with the lowest synthetic
    /// utilization — counting the contributions this same job has already
    /// been assigned in earlier stages. Ties break toward the lower
    /// processor id for determinism.
    #[must_use]
    pub fn propose(task: &TaskSpec, ledger: &UtilizationLedger) -> Assignment {
        Self::propose_with(task, ledger.processor_count(), |p| ledger.utilization(p))
    }

    /// [`LoadBalancer::propose`] against an arbitrary utilization view
    /// (see [`LoadBalancer::assignment_for_with`]).
    #[must_use]
    pub fn propose_with(
        task: &TaskSpec,
        processor_count: usize,
        utilization: impl Fn(ProcessorId) -> f64,
    ) -> Assignment {
        let mut pending = vec![0.0f64; processor_count];
        let mut choice = Vec::with_capacity(task.subtasks().len());
        for (j, sub) in task.subtasks().iter().enumerate() {
            let u = task.subtask_utilization(j);
            let best = sub
                .candidates()
                .filter(|p| p.index() < processor_count)
                .min_by(|a, b| {
                    let ua = utilization(*a) + pending[a.index()];
                    let ub = utilization(*b) + pending[b.index()];
                    ua.total_cmp(&ub).then_with(|| a.cmp(b))
                })
                .unwrap_or(sub.primary);
            if best.index() < pending.len() {
                pending[best.index()] += u;
            }
            choice.push(best);
        }
        Assignment::new(choice)
    }

    /// Drops the pinned plan for a task (task departure or rejection).
    pub fn forget_task(&mut self, task: TaskId) {
        self.plans.remove(&task);
    }

    /// The pinned plan for `task`, if any (only under `PerTask`).
    #[must_use]
    pub fn pinned_plan(&self, task: TaskId) -> Option<&Assignment> {
        self.plans.get(&task)
    }

    /// Number of pinned plans (diagnostic).
    #[must_use]
    pub fn pinned_count(&self) -> usize {
        self.plans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{ContributionKey, Lifetime};
    use crate::task::{JobId, TaskBuilder};
    use crate::time::Duration;

    fn replicated_task(id: u32) -> TaskSpec {
        TaskBuilder::aperiodic(TaskId(id))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(10), ProcessorId(0), [ProcessorId(1), ProcessorId(2)])
            .subtask(Duration::from_millis(10), ProcessorId(1), [ProcessorId(2)])
            .build()
            .unwrap()
    }

    fn load(ledger: &mut UtilizationLedger, proc: u16, amount: f64, tag: u32) {
        ledger
            .add(
                ProcessorId(proc),
                ContributionKey::new(JobId::new(TaskId(1000 + tag), 0), 0),
                amount,
                Lifetime::Reserved,
            )
            .unwrap();
    }

    #[test]
    fn none_strategy_uses_primaries() {
        let task = replicated_task(0);
        let ledger = UtilizationLedger::new(3);
        let mut lb = LoadBalancer::new(LbStrategy::None);
        let plan = lb.assignment_for(&task, &ledger);
        assert_eq!(plan, Assignment::primaries(&task));
        assert!(!plan.is_reallocation(&task));
    }

    #[test]
    fn greedy_picks_least_loaded_candidate() {
        let task = replicated_task(0);
        let mut ledger = UtilizationLedger::new(3);
        load(&mut ledger, 0, 0.6, 0);
        load(&mut ledger, 1, 0.3, 1);
        // Candidates for subtask 0: {0, 1, 2}; P2 is empty -> P2.
        // Candidates for subtask 1: {1, 2}; P2 now carries this job's first
        // stage (0.1), P1 has 0.3 -> P2 again (0.1 < 0.3).
        let plan = LoadBalancer::propose(&task, &ledger);
        assert_eq!(plan.as_slice(), &[ProcessorId(2), ProcessorId(2)]);
        assert!(plan.is_reallocation(&task));
        assert!(plan.is_valid_for(&task));
    }

    #[test]
    fn greedy_counts_own_pending_contributions() {
        let task = replicated_task(0);
        let mut ledger = UtilizationLedger::new(3);
        // P1 slightly loaded; pending weight on P2 after stage 0 must push
        // stage 1 to P1 once P2's pending exceeds it.
        load(&mut ledger, 0, 0.6, 0);
        load(&mut ledger, 1, 0.05, 1);
        let plan = LoadBalancer::propose(&task, &ledger);
        assert_eq!(plan.processor(0), ProcessorId(2));
        // After stage 0, P2 carries 0.1 pending > P1's 0.05.
        assert_eq!(plan.processor(1), ProcessorId(1));
    }

    #[test]
    fn ties_break_to_lower_processor_id() {
        let task = replicated_task(0);
        let ledger = UtilizationLedger::new(3);
        let plan = LoadBalancer::propose(&task, &ledger);
        assert_eq!(plan.processor(0), ProcessorId(0));
    }

    #[test]
    fn per_task_pins_first_plan() {
        let task = replicated_task(0);
        let mut ledger = UtilizationLedger::new(3);
        let mut lb = LoadBalancer::new(LbStrategy::PerTask);
        let first = lb.assignment_for(&task, &ledger);
        // Load the chosen processor heavily; the pinned plan must not move.
        load(&mut ledger, first.processor(0).0, 0.9, 0);
        let second = lb.assignment_for(&task, &ledger);
        assert_eq!(first, second);
        assert_eq!(lb.pinned_plan(task.id()), Some(&first));
        lb.forget_task(task.id());
        assert_eq!(lb.pinned_count(), 0);
    }

    #[test]
    fn per_job_follows_load() {
        let task = replicated_task(0);
        let mut ledger = UtilizationLedger::new(3);
        let mut lb = LoadBalancer::new(LbStrategy::PerJob);
        let first = lb.assignment_for(&task, &ledger);
        assert_eq!(first.processor(0), ProcessorId(0));
        load(&mut ledger, 0, 0.9, 0);
        let second = lb.assignment_for(&task, &ledger);
        assert_ne!(second.processor(0), ProcessorId(0));
    }

    #[test]
    fn assignment_validity_checks_candidates() {
        let task = replicated_task(0);
        let bogus = Assignment::new(vec![ProcessorId(9), ProcessorId(1)]);
        assert!(!bogus.is_valid_for(&task));
        let short = Assignment::new(vec![ProcessorId(0)]);
        assert!(!short.is_valid_for(&task));
    }

    #[test]
    fn display_shows_chain() {
        let plan = Assignment::new(vec![ProcessorId(0), ProcessorId(2)]);
        assert_eq!(plan.to_string(), "[P0 -> P2]");
    }
}
