//! The Aperiodic Utilization Bound (AUB) schedulability condition.
//!
//! From Abdelzaher, Thaker & Lardieri (ICDCS 2004), as used by the paper's
//! admission controller (eq. 1): under End-to-end Deadline Monotonic
//! Scheduling a task `T_i` visiting processors `V_{i,1} … V_{i,n_i}` meets
//! its end-to-end deadline if
//!
//! ```text
//!   Σ_j  U_{V_ij} · (1 − U_{V_ij}/2) / (1 − U_{V_ij})  ≤  1
//! ```
//!
//! where `U_p` is the *synthetic utilization* of processor `p`: the sum of
//! `C/D` contributions of all current tasks' subtasks on `p`. The condition
//! must hold for **every** current task (and the candidate) for an arrival
//! to be admitted. AUB deliberately does not distinguish aperiodic from
//! periodic tasks; both flow through the same test.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::aub::{aub_term, satisfies_bound};
//!
//! // A two-stage task across processors at synthetic utilization 0.3:
//! assert!(satisfies_bound([0.3, 0.3]));
//! // ... but not at 0.5 (f(0.5) = 0.75, and 2 × 0.75 > 1):
//! assert!(!satisfies_bound([0.5, 0.5]));
//! assert!((aub_term(0.5) - 0.75).abs() < 1e-12);
//! ```

/// Numerical slack applied to the `≤ 1` comparison so that workloads sized
/// exactly at the bound are not rejected by floating-point noise.
pub const BOUND_EPSILON: f64 = 1e-9;

/// The per-processor term `f(U) = U(1 − U/2)/(1 − U)` of the AUB condition.
///
/// `f` is zero at zero, increasing, and diverges as `U → 1`; for `U ≥ 1`
/// this returns `f64::INFINITY` so that any task visiting a saturated
/// processor fails the bound. Negative inputs (which can only arise from
/// floating-point drift in callers) are clamped to zero.
#[must_use]
pub fn aub_term(u: f64) -> f64 {
    if u <= 0.0 {
        return 0.0;
    }
    if u >= 1.0 {
        return f64::INFINITY;
    }
    u * (1.0 - u / 2.0) / (1.0 - u)
}

/// Evaluates the left-hand side of the AUB condition for one task: the sum
/// of [`aub_term`] over the synthetic utilizations of the processors the
/// task visits (with multiplicity — a task visiting a processor twice counts
/// its term twice, matching eq. 1's per-subtask sum).
#[must_use]
pub fn bound_lhs(utilizations: impl IntoIterator<Item = f64>) -> f64 {
    utilizations.into_iter().map(aub_term).sum()
}

/// Returns true if a task visiting processors with the given synthetic
/// utilizations satisfies the AUB condition.
#[must_use]
pub fn satisfies_bound(utilizations: impl IntoIterator<Item = f64>) -> bool {
    bound_lhs(utilizations) <= 1.0 + BOUND_EPSILON
}

/// The change `f(u_new) − f(u_old)` a processor's utilization step
/// contributes to the AUB sum of every task visiting it — the delta the
/// incremental admission path applies to its cached per-entry sums.
///
/// Not finite when either side is at or above saturation (`u ≥ 1`, where
/// `f` is `∞`): `∞ − ∞` has no meaningful value, so callers must fall back
/// to recomputing affected sums from scratch whenever this returns a
/// non-finite delta. The convenient special case `u_old == u_new` (both
/// saturated or not) returns `0.0`.
///
/// **Numerical caveat:** even a finite delta loses precision to
/// cancellation when either term is huge (just below saturation `f`
/// reaches ~1e15, where the spacing between representable values is
/// ~0.25). Incremental maintainers should recompute rather than
/// delta-apply once `f` exceeds a comfortable magnitude — the admission
/// controller uses 1e4, bounding the per-application error near 2e-12.
#[must_use]
pub fn aub_delta(u_old: f64, u_new: f64) -> f64 {
    if u_old == u_new {
        return 0.0;
    }
    aub_term(u_new) - aub_term(u_old)
}

/// The single-processor utilization at which `f(U) = 1`, i.e. the largest
/// synthetic utilization a one-stage task may observe and still pass:
/// `2 − √2 ≈ 0.586`, the classic aperiodic utilization bound.
#[must_use]
pub fn single_stage_bound() -> f64 {
    2.0 - std::f64::consts::SQRT_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_at_known_points() {
        assert_eq!(aub_term(0.0), 0.0);
        assert!((aub_term(0.5) - 0.75).abs() < 1e-12);
        // f(2 - sqrt(2)) = 1 exactly (algebraically).
        assert!((aub_term(single_stage_bound()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn term_is_monotonic() {
        let mut prev = 0.0;
        for i in 1..100 {
            let u = f64::from(i) / 101.0;
            let f = aub_term(u);
            assert!(f > prev, "f({u}) = {f} not increasing");
            prev = f;
        }
    }

    #[test]
    fn saturated_processor_fails_everything() {
        assert_eq!(aub_term(1.0), f64::INFINITY);
        assert_eq!(aub_term(1.5), f64::INFINITY);
        assert!(!satisfies_bound([0.0, 1.0]));
    }

    #[test]
    fn negative_drift_clamps_to_zero() {
        assert_eq!(aub_term(-1e-15), 0.0);
    }

    #[test]
    fn empty_visit_list_is_trivially_schedulable() {
        assert!(satisfies_bound(std::iter::empty()));
        assert_eq!(bound_lhs(std::iter::empty()), 0.0);
    }

    #[test]
    fn single_stage_bound_is_the_crossover() {
        let b = single_stage_bound();
        assert!(satisfies_bound([b - 1e-6]));
        assert!(!satisfies_bound([b + 1e-6]));
    }

    #[test]
    fn multiplicity_counts_per_subtask() {
        // Two subtasks on the same processor at U = 0.4: the term is summed
        // twice, per eq. 1's per-subtask indexing.
        let one = bound_lhs([0.4]);
        let twice = bound_lhs([0.4, 0.4]);
        assert!((twice - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn delta_tracks_term_difference() {
        let d = aub_delta(0.2, 0.5);
        assert!((d - (aub_term(0.5) - aub_term(0.2))).abs() < 1e-15);
        assert_eq!(aub_delta(0.3, 0.3), 0.0);
        // Entering or leaving saturation cannot be expressed as a finite
        // delta; callers recompute instead.
        assert_eq!(aub_delta(0.5, 1.0), f64::INFINITY);
        assert_eq!(aub_delta(1.0, 0.5), f64::NEG_INFINITY);
        assert!(!aub_delta(1.0, 1.5).is_finite() || aub_delta(1.0, 1.5) == 0.0);
        // Equal saturated inputs short-circuit to zero rather than NaN.
        assert_eq!(aub_delta(1.2, 1.2), 0.0);
    }

    #[test]
    fn epsilon_tolerates_exact_boundary() {
        // A sum that is exactly 1 up to floating error must pass.
        let u = single_stage_bound();
        assert!(satisfies_bound([u]));
    }
}
