//! A **sharded admission plane**: N shard controllers over disjoint
//! processor groups, tied together by a two-level AUB sum tree.
//!
//! PR 2 made the paper's §4 admission test incremental; this module removes
//! its last structural ceiling — one serialized decision point per host —
//! by partitioning the [`AdmissionController`] by *processor group*:
//!
//! * Processors `0..P` are split into `N` contiguous groups
//!   ([`ShardLayout`]). Each shard owns a full controller — ledger slice,
//!   inverted index, cached per-entry AUB sums — and **every processor's
//!   contributions live in exactly one shard**, so per-processor
//!   utilizations (and therefore every `f(U)` term of the bound) are
//!   identical to the monolithic controller's by construction.
//! * Each shard publishes a `(utilization_sum, violating_count, revision)`
//!   summary through atomics after every locked operation — the upper
//!   level of the sum tree ([`ShardSummary`]). An arrival whose candidate
//!   placements all fall in one group (*single-homed*) takes the **fast
//!   path**: the system-wide AUB answer is assembled from the home shard's
//!   own incremental check plus the foreign summaries alone, with zero
//!   cross-shard locking. Only a summary that cannot be trusted — a
//!   non-zero violating count, which lazy expiry may have already cured —
//!   forces a targeted refresh of that one shard (counted in
//!   [`AdmissionPlaneStats::summary_refreshes`]).
//! * Placements spanning groups (multi-group replica sets, and every
//!   operation in [`AdmissionMode::BruteForce`], which stays the
//!   differential oracle) take the **cross path**: a short full-order
//!   reservation section that locks the cross registry and the shards in
//!   ascending index order, preserving the no-partial-application
//!   guarantee of the drain→reseed handover.
//!
//! ## Lazy expiry and the floor
//!
//! The monolithic controller expires *all* processors at every arrival;
//! doing that here would serialize the shards again. Instead the layer
//! maintains a monotone **expiry floor** — the maximum `now` of every
//! operation that expires in the monolithic controller — and each shard is
//! expired *to the floor* the next time it is locked. Between locks a
//! shard's state is stale only by expirations, which can only remove
//! utilization: a published `violating == 0` therefore stays trustworthy,
//! and `violating > 0` is exactly the case the fast path refreshes.
//!
//! ## Equivalence
//!
//! Every decision point delegates to the monolithic controller's own code
//! with the cross-shard condition injected as an [`ExtraCheck`] at exactly
//! the place the monolithic check runs, and every per-processor ledger
//! mutation is applied in the same order the monolithic controller would
//! apply it. `crates/core/tests/differential_sharded.rs` replays the
//! differential corpus through this plane against a monolithic
//! [`AdmissionMode::BruteForce`] oracle with step-level decision equality.
//!
//! [`ExtraCheck`]: crate::admission::AdmissionController

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};

use crate::admission::{
    AcStats, AdmissionController, AdmissionError, AdmissionMode, Decision, DriftReport,
    RejectReason, RemoteCommit, RESERVED_SEQ,
};
use crate::analysis::{audit_controller, ControllerAudit};
use crate::aub::{bound_lhs, BOUND_EPSILON};
use crate::balance::{Assignment, LoadBalancer};
use crate::ledger::{ContributionKey, Lifetime};
use crate::reconfig::{HandoverReport, ReconfigPlan, TransitionStep};
use crate::strategy::{AcStrategy, InvalidConfigError, LbStrategy, ServiceConfig};
use crate::task::{JobId, ProcessorId, TaskId, TaskSet, TaskSpec};
use crate::time::Time;

/// The static processor-group partition behind a sharded plane: `P`
/// processors split into contiguous groups of `ceil(P / N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLayout {
    processor_count: usize,
    group_size: usize,
    shard_count: usize,
}

impl ShardLayout {
    /// Builds the layout for `processor_count` processors and (at most)
    /// `shards` groups. The request is clamped to `1..=P`; the effective
    /// shard count is derived from the rounded-up group size, so every
    /// shard is non-empty.
    #[must_use]
    pub fn new(processor_count: usize, shards: usize) -> Self {
        let procs = processor_count.max(1);
        let requested = shards.clamp(1, procs);
        let group_size = procs.div_ceil(requested);
        let shard_count = procs.div_ceil(group_size);
        ShardLayout { processor_count, group_size, shard_count }
    }

    /// Number of processors partitioned.
    #[must_use]
    pub fn processor_count(&self) -> usize {
        self.processor_count
    }

    /// Number of (non-empty) shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning `processor`.
    #[must_use]
    pub fn shard_of(&self, processor: ProcessorId) -> usize {
        processor.index() / self.group_size
    }

    /// The processor-index range of shard `shard`.
    #[must_use]
    pub fn group(&self, shard: usize) -> Range<usize> {
        let start = shard * self.group_size;
        start..(start + self.group_size).min(self.processor_count)
    }

    /// The home shard of `task`: `Some(s)` iff *every* candidate processor
    /// of every subtask (primaries and replicas) falls in group `s` — the
    /// static single-homed test behind the fast path. `None` means the
    /// task can span groups and must take the cross path. Unknown
    /// processors also return `None`; the caller's processor check turns
    /// those into the proper error before routing matters.
    #[must_use]
    pub fn home_of(&self, task: &TaskSpec) -> Option<usize> {
        let mut home = None;
        for sub in task.subtasks() {
            for candidate in sub.candidates() {
                if candidate.index() >= self.processor_count {
                    return None;
                }
                let shard = self.shard_of(candidate);
                match home {
                    None => home = Some(shard),
                    Some(h) if h == shard => {}
                    Some(_) => return None,
                }
            }
        }
        home
    }
}

/// One shard's published summary — a node of the upper level of the
/// two-level AUB sum tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// The shard index.
    pub shard: usize,
    /// Sum of the group's per-processor synthetic utilizations at publish
    /// time.
    pub utilization_sum: f64,
    /// The shard's violating-entry count at publish time. Zero stays
    /// trustworthy under lazy expiry (expiry only removes utilization);
    /// non-zero may be stale and triggers a targeted refresh.
    pub violating: usize,
    /// The shard controller's state revision at publish time. A summary
    /// whose revision still equals the controller's is provably current —
    /// the "epoch" of the sum tree, checked by
    /// [`ShardedAdmissionController::audit`].
    pub revision: u64,
}

/// Lock-free publication cell of one shard's summary.
#[derive(Debug, Default)]
struct Published {
    revision: AtomicU64,
    violating: AtomicUsize,
    util_bits: AtomicU64,
}

/// One shard: a full-width controller plus its published summary.
#[derive(Debug)]
struct ShardCell {
    ctl: Mutex<AdmissionController>,
    published: Published,
}

/// A current entry spanning shard groups. Its *contributions* live in the
/// shard ledgers (each processor's utilization has exactly one home); the
/// AUB bookkeeping — visits, outstanding count, registry identity — lives
/// here in the layer.
#[derive(Debug, Clone)]
struct CrossEntry {
    job: JobId,
    visits: Vec<ProcessorId>,
    outstanding: usize,
    gen: u64,
}

/// The layer-owned registry of cross-shard entries, mirroring the
/// monolithic controller's bookkeeping for exactly the entries whose
/// placements span groups.
#[derive(Debug)]
struct CrossState {
    balancer: LoadBalancer,
    entries: Vec<Option<CrossEntry>>,
    free: Vec<usize>,
    live: usize,
    by_job: HashMap<JobId, usize>,
    expiry: BinaryHeap<Reverse<(Time, usize, u64)>>,
    reserved: HashMap<TaskId, usize>,
    rejected: HashSet<TaskId>,
    next_gen: u64,
    next_drain_seq: u64,
    stats: AcStats,
}

impl CrossState {
    fn new(lb: LbStrategy) -> Self {
        CrossState {
            balancer: LoadBalancer::new(lb),
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
            by_job: HashMap::new(),
            expiry: BinaryHeap::new(),
            reserved: HashMap::new(),
            rejected: HashSet::new(),
            next_gen: 1,
            next_drain_seq: RESERVED_SEQ - 1,
            stats: AcStats::default(),
        }
    }

    fn register(&mut self, job: JobId, visits: Vec<ProcessorId>) -> (usize, u64) {
        let gen = self.next_gen;
        self.next_gen += 1;
        let outstanding = visits.len();
        let entry = CrossEntry { job, visits, outstanding, gen };
        let eid = match self.free.pop() {
            Some(eid) => {
                self.entries[eid] = Some(entry);
                eid
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        };
        self.by_job.insert(job, eid);
        self.live += 1;
        (eid, gen)
    }

    fn unregister(&mut self, eid: usize) -> Option<CrossEntry> {
        let entry = self.entries.get_mut(eid)?.take()?;
        self.by_job.remove(&entry.job);
        self.free.push(eid);
        self.live -= 1;
        Some(entry)
    }

    /// Lazy registry expiry, mirroring the monolithic controller's
    /// generation-stamped heap (the shard ledgers expire the deadline-bound
    /// *contributions* themselves).
    fn expire(&mut self, now: Time) {
        while let Some(&Reverse((deadline, eid, gen))) = self.expiry.peek() {
            if deadline > now {
                break;
            }
            self.expiry.pop();
            if self.entries.get(eid).and_then(Option::as_ref).is_some_and(|e| e.gen == gen) {
                self.unregister(eid);
            }
        }
    }

    /// The AUB rows of every live cross entry still outstanding: the data
    /// the fast path folds into its guard.
    fn rows(&self) -> Vec<Vec<ProcessorId>> {
        self.entries
            .iter()
            .flatten()
            .filter(|e| e.outstanding > 0)
            .map(|e| e.visits.clone())
            .collect()
    }
}

/// Fast-path / cross-path counters of the sharded plane (the per-shard
/// admission counters exported as `rtcm_admission_shard_local_total`,
/// `rtcm_admission_cross_shard_total` and the summary-refresh count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionPlaneStats {
    /// Decisions that completed entirely inside one shard (plus summary
    /// reads).
    pub local_decisions: u64,
    /// Decisions that took the full-order cross-shard path.
    pub cross_decisions: u64,
    /// Targeted shard refreshes forced by an untrustworthy summary or by
    /// cross entries needing a foreign shard's live utilizations.
    pub summary_refreshes: u64,
}

/// One shard's consistency audit, plus whether its published summary is
/// current (`revision` and `violating` both match the controller).
#[derive(Debug, Clone)]
pub struct ShardAudit {
    /// The shard index.
    pub shard: usize,
    /// The shard controller's audit (cached vs. fresh AUB sums).
    pub audit: ControllerAudit,
    /// True iff the published summary matches the controller's live state.
    pub summary_coherent: bool,
}

/// One shard's reconciliation result: the drift correction is attributed
/// to the shard by index instead of folding into one global residual.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardDrift {
    /// The shard index.
    pub shard: usize,
    /// What the shard's reconciliation corrected.
    pub drift: DriftReport,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The sharded admission plane: N shard controllers over processor groups,
/// a cross-shard registry, and the summary layer gluing them into one
/// system-wide AUB answer. All operations take `&self`; single-shard
/// arrivals in [`AdmissionMode::Incremental`] never take more than their
/// home shard's lock.
#[derive(Debug)]
pub struct ShardedAdmissionController {
    layout: ShardLayout,
    mode: AdmissionMode,
    config: Mutex<ServiceConfig>,
    shards: Vec<ShardCell>,
    cross: Mutex<CrossState>,
    /// Mirror of `cross.live`, readable without the cross lock. A stale
    /// non-zero read costs one uncontended lock. A stale *zero* is
    /// possible in exactly one window — between an unlocked read and the
    /// reader's own shard-lock acquisition, a concurrent cross commit can
    /// complete — so every fast path that skipped the cross lock on a
    /// zero read MUST re-read the mirror after acquiring its shard lock
    /// and fall back if it became non-zero. That re-check is sufficient:
    /// every operation that *registers* a cross entry publishes the
    /// mirror while holding all shard locks, so once any shard lock is
    /// held the mirror cannot go zero→non-zero underneath it (lock-free
    /// concurrent updates only ever *remove* entries via expiry).
    cross_live: AtomicUsize,
    /// Max `now` (ns) over every operation that expires in the monolithic
    /// controller; every shard is expired to this floor when locked.
    floor_ns: AtomicU64,
    local_decisions: AtomicU64,
    cross_decisions: AtomicU64,
    summary_refreshes: AtomicU64,
    reset_reports: AtomicU64,
}

impl ShardedAdmissionController {
    /// Creates a sharded plane in the default
    /// [`AdmissionMode::Incremental`] with (at most) `shards` groups.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] for the contradictory AC-per-task +
    /// IR-per-job combinations (§4.5).
    pub fn new(
        config: ServiceConfig,
        processor_count: usize,
        shards: usize,
    ) -> Result<Self, InvalidConfigError> {
        Self::with_mode(config, processor_count, shards, AdmissionMode::default())
    }

    /// Creates a sharded plane with an explicit [`AdmissionMode`]. In
    /// [`AdmissionMode::BruteForce`] every operation takes the cross path
    /// (the mode exists as the differential oracle, not for throughput).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] for invalid strategy combinations.
    pub fn with_mode(
        config: ServiceConfig,
        processor_count: usize,
        shards: usize,
        mode: AdmissionMode,
    ) -> Result<Self, InvalidConfigError> {
        config.validate()?;
        let layout = ShardLayout::new(processor_count, shards);
        let cells = (0..layout.shard_count())
            .map(|_| ShardCell {
                ctl: Mutex::new(
                    AdmissionController::with_mode(config, processor_count, mode)
                        .expect("config validated above"),
                ),
                published: Published::default(),
            })
            .collect();
        Ok(ShardedAdmissionController {
            layout,
            mode,
            config: Mutex::new(config),
            shards: cells,
            cross: Mutex::new(CrossState::new(config.lb)),
            cross_live: AtomicUsize::new(0),
            floor_ns: AtomicU64::new(0),
            local_decisions: AtomicU64::new(0),
            cross_decisions: AtomicU64::new(0),
            summary_refreshes: AtomicU64::new(0),
            reset_reports: AtomicU64::new(0),
        })
    }

    /// The static processor-group partition.
    #[must_use]
    pub fn layout(&self) -> ShardLayout {
        self.layout
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.layout.shard_count()
    }

    /// The active admission mode (fixed at construction).
    #[must_use]
    pub fn mode(&self) -> AdmissionMode {
        self.mode
    }

    /// The active service configuration.
    #[must_use]
    pub fn config(&self) -> ServiceConfig {
        *lock(&self.config)
    }

    /// Fast-path / cross-path decision counters.
    #[must_use]
    pub fn plane_stats(&self) -> AdmissionPlaneStats {
        AdmissionPlaneStats {
            local_decisions: self.local_decisions.load(Ordering::Relaxed),
            cross_decisions: self.cross_decisions.load(Ordering::Relaxed),
            summary_refreshes: self.summary_refreshes.load(Ordering::Relaxed),
        }
    }

    /// The published summaries — the sum tree's upper level, read without
    /// any shard lock.
    #[must_use]
    pub fn shard_summaries(&self) -> Vec<ShardSummary> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, cell)| ShardSummary {
                shard,
                utilization_sum: f64::from_bits(cell.published.util_bits.load(Ordering::Relaxed)),
                violating: cell.published.violating.load(Ordering::Relaxed),
                revision: cell.published.revision.load(Ordering::Acquire),
            })
            .collect()
    }

    fn floor(&self) -> Time {
        Time::from_nanos(self.floor_ns.load(Ordering::Acquire))
    }

    fn bump_floor(&self, now: Time) {
        self.floor_ns.fetch_max(now.as_nanos(), Ordering::AcqRel);
    }

    /// Locks shard `s` and expires it to the floor — the lazy-expiry
    /// discipline every delegated operation starts with.
    fn shard_guard(&self, s: usize) -> MutexGuard<'_, AdmissionController> {
        let mut guard = lock(&self.shards[s].ctl);
        guard.expire(self.floor());
        guard
    }

    /// Publishes shard `s`'s summary from its locked controller.
    fn publish(&self, s: usize, ctl: &AdmissionController) {
        let sum: f64 =
            self.layout.group(s).map(|p| ctl.ledger().utilization(ProcessorId(p as u16))).sum();
        let cell = &self.shards[s].published;
        cell.util_bits.store(sum.to_bits(), Ordering::Relaxed);
        cell.violating.store(ctl.violating_entries(), Ordering::Relaxed);
        cell.revision.store(ctl.revision(), Ordering::Release);
    }

    /// Locks the cross registry and every shard in ascending order (the
    /// full-order section behind the cross path), expiring everything to
    /// the floor.
    fn full_lock(&self) -> (MutexGuard<'_, CrossState>, Vec<MutexGuard<'_, AdmissionController>>) {
        let mut cross = lock(&self.cross);
        let guards: Vec<_> = (0..self.layout.shard_count()).map(|s| self.shard_guard(s)).collect();
        cross.expire(self.floor());
        self.cross_live.store(cross.live, Ordering::Release);
        (cross, guards)
    }

    fn publish_all(&self, guards: &[MutexGuard<'_, AdmissionController>]) {
        for (s, guard) in guards.iter().enumerate() {
            self.publish(s, guard);
        }
    }

    fn check_processors(&self, task: &TaskSpec) -> Result<(), AdmissionError> {
        let count = self.layout.processor_count();
        for sub in task.subtasks() {
            for candidate in sub.candidates() {
                if candidate.index() >= count {
                    return Err(AdmissionError::UnknownProcessor {
                        processor: candidate,
                        processor_count: count,
                    });
                }
            }
        }
        Ok(())
    }

    /// True if arrivals of `task` route through the fast path: incremental
    /// mode and a single-homed candidate set. Everything else takes the
    /// cross path ([`AdmissionMode::BruteForce`] unconditionally — it is
    /// the oracle, not a throughput mode).
    fn fast_route(&self, task: &TaskSpec) -> Option<usize> {
        if self.mode != AdmissionMode::Incremental {
            return None;
        }
        self.layout.home_of(task)
    }
}

// --- Decision paths ----------------------------------------------------

impl ShardedAdmissionController {
    /// Handles the arrival of job `seq` of `task` at `now` — the sharded
    /// equivalent of [`AdmissionController::handle_arrival`]. Single-homed
    /// tasks in incremental mode decide under their home shard's lock
    /// alone; spanning tasks take the cross path.
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::handle_arrival`].
    pub fn handle_arrival(
        &self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
    ) -> Result<Decision, AdmissionError> {
        AdmissionController::check_seq(task.id(), seq)?;
        self.check_processors(task)?;
        self.bump_floor(now);
        match self.fast_route(task) {
            Some(home) => self.local_decide(home, task, seq, now, None),
            None => self.cross_decide(task, seq, now, None),
        }
    }

    /// [`AdmissionController::admit_with`] over the sharded plane: a
    /// caller-supplied placement, routed like an arrival.
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::admit_with`].
    pub fn admit_with(
        &self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        assignment: Assignment,
    ) -> Result<Decision, AdmissionError> {
        AdmissionController::check_seq(task.id(), seq)?;
        self.check_processors(task)?;
        self.bump_floor(now);
        match self.fast_route(task) {
            Some(home) => self.local_decide(home, task, seq, now, Some(assignment)),
            None => self.cross_decide(task, seq, now, Some(assignment)),
        }
    }

    /// The fast path: assemble the system-wide condition from published
    /// summaries (refreshing only untrusted ones), then delegate the
    /// decision to the home shard with the cross-shard condition injected
    /// as an [`ExtraCheck`](crate::admission::AdmissionController) at the
    /// exact point the monolithic check runs.
    fn local_decide(
        &self,
        home: usize,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        forced: Option<Assignment>,
    ) -> Result<Decision, AdmissionError> {
        // Cross entries touching the home group must be re-evaluated under
        // the candidate's tentative load; when any are live, hold the
        // cross lock through the decision so the row set cannot shift
        // underneath it. A zero mirror read lets the common case skip the
        // cross lock entirely, but it is only *validated* under the home
        // shard lock below: a concurrent cross commit (which takes every
        // shard lock) can complete between the unlocked read and the home
        // acquisition. On that race the decision restarts with the cross
        // lock held — at most once, since holding the cross lock stops
        // further cross commits.
        let mut take_cross = self.cross_live.load(Ordering::Acquire) > 0;
        loop {
            let mut cross_guard = None;
            let rows: Vec<Vec<ProcessorId>> = if take_cross {
                let mut cross = lock(&self.cross);
                cross.expire(self.floor());
                self.cross_live.store(cross.live, Ordering::Release);
                let rows = cross.rows();
                cross_guard = Some(cross);
                rows
            } else {
                Vec::new()
            };

            // Foreign shards the guard needs live state from: any shard
            // whose published violating count is non-zero (may be stale —
            // refresh decides), and any shard a cross row's visit lands in.
            let mut needed: BTreeSet<usize> = BTreeSet::new();
            for (s, cell) in self.shards.iter().enumerate() {
                if s != home && cell.published.violating.load(Ordering::Relaxed) > 0 {
                    needed.insert(s);
                }
            }
            for visits in &rows {
                for p in visits {
                    let s = self.layout.shard_of(*p);
                    if s != home {
                        needed.insert(s);
                    }
                }
            }

            let mut others_ok = true;
            let mut foreign = vec![0.0f64; self.layout.processor_count()];
            for &s in &needed {
                let guard = self.shard_guard(s);
                self.summary_refreshes.fetch_add(1, Ordering::Relaxed);
                if guard.violating_entries() > 0 {
                    others_ok = false;
                }
                for p in self.layout.group(s) {
                    foreign[p] = guard.ledger().utilization(ProcessorId(p as u16));
                }
                self.publish(s, &guard);
            }

            let layout = self.layout;
            let guard_needed = !others_ok || !rows.is_empty();
            let extra = move |ctl: &AdmissionController| -> bool {
                others_ok
                    && rows.iter().all(|visits| {
                        bound_lhs(visits.iter().map(|p| {
                            if layout.shard_of(*p) == home {
                                ctl.ledger().utilization(*p)
                            } else {
                                foreign[p.index()]
                            }
                        })) <= 1.0 + BOUND_EPSILON
                    })
            };

            let mut ctl = self.shard_guard(home);
            if cross_guard.is_none() && self.cross_live.load(Ordering::Acquire) > 0 {
                // A cross entry committed in the unguarded window; its
                // rows are not folded into this decision. Restart with
                // the cross lock held (see the `cross_live` field doc).
                drop(ctl);
                take_cross = true;
                continue;
            }
            let extra_ref: Option<&dyn Fn(&AdmissionController) -> bool> =
                if guard_needed { Some(&extra) } else { None };
            let result = match forced {
                None => ctl.handle_arrival_ext(task, seq, now, extra_ref),
                Some(assignment) => ctl.admit_with_ext(task, seq, now, assignment, extra_ref),
            };
            self.publish(home, &ctl);
            drop(ctl);
            drop(cross_guard);
            self.local_decisions.fetch_add(1, Ordering::Relaxed);
            return result;
        }
    }

    /// The cross path: full-order lock, then an exact transcription of the
    /// monolithic decision sequence over the combined utilization view.
    fn cross_decide(
        &self,
        task: &TaskSpec,
        seq: u64,
        now: Time,
        forced: Option<Assignment>,
    ) -> Result<Decision, AdmissionError> {
        // Hold the config lock across the whole decision (config ≺ cross
        // ≺ shards, matching `reconfigure`'s order): a reconfigure
        // committing between a config snapshot and `full_lock()` would
        // otherwise apply the old config's reservation/LB semantics to
        // post-handover shard state.
        let config_guard = lock(&self.config);
        let config = *config_guard;
        let (mut cross, mut guards) = self.full_lock();
        if let Some(assignment) = &forced {
            if !assignment.is_valid_for(task) {
                return Err(AdmissionError::InvalidAssignment { task: task.id() });
            }
        }

        let uses_reservation = task.is_periodic() && config.ac == AcStrategy::PerTask;
        if uses_reservation {
            if cross.rejected.contains(&task.id()) {
                cross.stats.rejected += 1;
                self.finish_cross(&cross, &guards);
                return Ok(Decision::Reject { reason: RejectReason::TaskPreviouslyRejected });
            }
            if let Some(&eid) = cross.reserved.get(&task.id()) {
                cross.stats.pass_throughs += 1;
                let assignment = if config.lb == LbStrategy::PerJob {
                    self.cross_relocate(&mut cross, &mut guards, task, eid)
                } else {
                    Assignment::new(
                        cross.entries[eid].as_ref().expect("reserved ids stay live").visits.clone(),
                    )
                };
                self.finish_cross(&cross, &guards);
                return Ok(Decision::Accept { assignment, newly_admitted: false });
            }
        }

        let assignment = match forced {
            Some(assignment) => assignment,
            None => {
                let layout = self.layout;
                let view = {
                    let guards = &guards;
                    move |p: ProcessorId| guards[layout.shard_of(p)].ledger().utilization(p)
                };
                cross.balancer.assignment_for_with(task, layout.processor_count(), view)
            }
        };

        let decision =
            self.cross_admit(&mut cross, &mut guards, task, seq, now, assignment, uses_reservation);
        self.finish_cross(&cross, &guards);
        decision
    }

    /// Publishes every shard summary, syncs the cross-live mirror and
    /// counts the decision; the tail of every cross-path operation.
    fn finish_cross(&self, cross: &CrossState, guards: &[MutexGuard<'_, AdmissionController>]) {
        self.publish_all(guards);
        self.cross_live.store(cross.live, Ordering::Release);
        self.cross_decisions.fetch_add(1, Ordering::Relaxed);
    }

    /// The combined system-wide check under the full-order lock: candidate
    /// fresh, every shard's own condition per the mode, every outstanding
    /// cross entry fresh.
    fn cross_schedulable(
        &self,
        cross: &CrossState,
        guards: &[MutexGuard<'_, AdmissionController>],
        candidate_visits: &[ProcessorId],
    ) -> bool {
        let layout = self.layout;
        let util = |p: ProcessorId| guards[layout.shard_of(p)].ledger().utilization(p);
        if bound_lhs(candidate_visits.iter().map(|p| util(*p))) > 1.0 + BOUND_EPSILON {
            return false;
        }
        let shards_ok = match self.mode {
            AdmissionMode::Incremental => guards.iter().all(|g| g.violating_entries() == 0),
            AdmissionMode::BruteForce => guards.iter().all(|g| g.system_schedulable_brute()),
        };
        shards_ok
            && cross
                .entries
                .iter()
                .flatten()
                .filter(|e| e.outstanding > 0)
                .all(|e| bound_lhs(e.visits.iter().map(|p| util(*p))) <= 1.0 + BOUND_EPSILON)
    }

    /// The monolithic `decide_in_open_epoch` transcribed over shard
    /// ledgers: tentative contributions, combined check, commit or revert.
    #[allow(clippy::too_many_arguments)]
    fn cross_admit(
        &self,
        cross: &mut CrossState,
        guards: &mut [MutexGuard<'_, AdmissionController>],
        task: &TaskSpec,
        seq: u64,
        now: Time,
        assignment: Assignment,
        reserve: bool,
    ) -> Result<Decision, AdmissionError> {
        let job = JobId::new(task.id(), seq);
        if cross.by_job.contains_key(&job) {
            return Err(AdmissionError::DuplicateArrival { job });
        }
        cross.stats.tested += 1;

        let (key_job, lifetime, entry_deadline) = if reserve {
            (JobId::new(task.id(), RESERVED_SEQ), Lifetime::Reserved, Time::MAX)
        } else {
            let deadline = now.saturating_add(task.deadline());
            (job, Lifetime::UntilDeadline(deadline), deadline)
        };

        let mut added = 0usize;
        let mut collided = false;
        for (subtask, processor) in assignment.iter() {
            let key = ContributionKey::new(key_job, subtask);
            let shard = self.layout.shard_of(processor);
            match guards[shard].external_add(
                processor,
                key,
                task.subtask_utilization(subtask),
                lifetime,
            ) {
                Ok(()) => added += 1,
                Err(_) => {
                    collided = true;
                    break;
                }
            }
        }
        if collided {
            for (subtask, processor) in assignment.iter().take(added) {
                let shard = self.layout.shard_of(processor);
                guards[shard].external_remove(processor, ContributionKey::new(key_job, subtask));
            }
            return Err(AdmissionError::DuplicateArrival { job });
        }

        if self.cross_schedulable(cross, guards, assignment.as_slice()) {
            let (eid, gen) = cross.register(job, assignment.as_slice().to_vec());
            if reserve {
                cross.reserved.insert(task.id(), eid);
            } else {
                cross.expiry.push(Reverse((entry_deadline, eid, gen)));
            }
            cross.stats.admitted += 1;
            Ok(Decision::Accept { assignment, newly_admitted: true })
        } else {
            for (subtask, processor) in assignment.iter() {
                let shard = self.layout.shard_of(processor);
                guards[shard].external_remove(processor, ContributionKey::new(key_job, subtask));
            }
            if reserve {
                cross.rejected.insert(task.id());
            }
            cross.balancer.forget_task(task.id());
            cross.stats.rejected += 1;
            Ok(Decision::Reject { reason: RejectReason::Unschedulable })
        }
    }

    /// The monolithic reservation relocation (LB per-job over an AC
    /// per-task reservation) transcribed over shard ledgers.
    fn cross_relocate(
        &self,
        cross: &mut CrossState,
        guards: &mut [MutexGuard<'_, AdmissionController>],
        task: &TaskSpec,
        eid: usize,
    ) -> Assignment {
        let old_visits =
            cross.entries[eid].as_ref().expect("reserved ids stay live").visits.clone();
        let reserved_job = JobId::new(task.id(), RESERVED_SEQ);
        let layout = self.layout;

        for (subtask, processor) in old_visits.iter().enumerate() {
            guards[layout.shard_of(*processor)]
                .external_remove(*processor, ContributionKey::new(reserved_job, subtask));
        }
        let proposal = {
            let view = {
                let guards = &guards;
                move |p: ProcessorId| guards[layout.shard_of(p)].ledger().utilization(p)
            };
            cross.balancer.assignment_for_with(task, layout.processor_count(), view)
        };
        for (subtask, processor) in proposal.iter() {
            guards[layout.shard_of(processor)]
                .external_add(
                    processor,
                    ContributionKey::new(reserved_job, subtask),
                    task.subtask_utilization(subtask),
                    Lifetime::Reserved,
                )
                .expect("reserved keys were just removed");
        }
        cross.entries[eid].as_mut().expect("reserved ids stay live").visits =
            proposal.as_slice().to_vec();

        if self.cross_schedulable(cross, guards, proposal.as_slice()) {
            return proposal;
        }

        // Revert: the relocation would violate someone's bound.
        for (subtask, processor) in proposal.iter() {
            guards[layout.shard_of(processor)]
                .external_remove(processor, ContributionKey::new(reserved_job, subtask));
        }
        for (subtask, processor) in old_visits.iter().enumerate() {
            guards[layout.shard_of(*processor)]
                .external_add(
                    *processor,
                    ContributionKey::new(reserved_job, subtask),
                    task.subtask_utilization(subtask),
                    Lifetime::Reserved,
                )
                .expect("restoring the original reservation cannot collide");
        }
        cross.entries[eid].as_mut().expect("reserved ids stay live").visits = old_visits.clone();
        Assignment::new(old_visits)
    }
}

// --- Maintenance operations --------------------------------------------

impl ShardedAdmissionController {
    /// Records a job admitted by a peer controller — the sharded
    /// equivalent of [`AdmissionController::apply_remote_commit`].
    /// Single-homed commits delegate to their home shard; spanning commits
    /// enter the cross registry with contributions distributed into the
    /// owning shards.
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::apply_remote_commit`].
    pub fn apply_remote_commit(
        &self,
        task: &TaskSpec,
        seq: u64,
        arrival: Time,
        assignment: &Assignment,
    ) -> Result<(), AdmissionError> {
        self.commit_one(task, seq, arrival, assignment).map(|_entered| ())
    }

    fn commit_one(
        &self,
        task: &TaskSpec,
        seq: u64,
        arrival: Time,
        assignment: &Assignment,
    ) -> Result<bool, AdmissionError> {
        AdmissionController::check_seq(task.id(), seq)?;
        self.check_processors(task)?;
        if !assignment.is_valid_for(task) {
            return Err(AdmissionError::InvalidAssignment { task: task.id() });
        }
        if let Some(home) = self.layout.home_of(task) {
            let mut guard = self.shard_guard(home);
            let before = guard.current_entries();
            guard.apply_remote_commit(task, seq, arrival, assignment)?;
            let entered = guard.current_entries() > before;
            self.publish(home, &guard);
            return Ok(entered);
        }

        let (mut cross, mut guards) = self.full_lock();
        let job = JobId::new(task.id(), seq);
        let deadline = arrival.saturating_add(task.deadline());
        let entered = if cross.by_job.contains_key(&job) || deadline <= self.floor() {
            false // idempotent duplicate, or stale (already past its deadline)
        } else {
            for (subtask, processor) in assignment.iter() {
                let key = ContributionKey::new(job, subtask);
                // A collision means the peer double-assigned; keep the
                // first contribution, like the monolithic path.
                let _ = guards[self.layout.shard_of(processor)].external_add(
                    processor,
                    key,
                    task.subtask_utilization(subtask),
                    Lifetime::UntilDeadline(deadline),
                );
            }
            let (eid, gen) = cross.register(job, assignment.as_slice().to_vec());
            cross.expiry.push(Reverse((deadline, eid, gen)));
            true
        };
        self.cross_live.store(cross.live, Ordering::Release);
        self.publish_all(&guards);
        Ok(entered)
    }

    /// Bulk form of [`ShardedAdmissionController::apply_remote_commit`]:
    /// commits are grouped by home shard and loaded through each shard's
    /// own bulk path (raw contribution entry + one cached-sum rebuild), so
    /// seeding `n` single-homed commits costs O(total contributions)
    /// instead of O(n²) in bucket growth. Relative order is preserved
    /// *within* each shard's batch (and within the spanning batch), not
    /// across them — fixture seeding does not care, and per-processor
    /// state cannot: a processor's commits all share its home batch.
    ///
    /// Returns the number of commits actually entered.
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::apply_remote_commits`]; the first error
    /// encountered is returned after every batch has been attempted, with
    /// commits before the offending one (per batch) left applied.
    pub fn apply_remote_commits(
        &self,
        commits: &[RemoteCommit<'_>],
    ) -> Result<usize, AdmissionError> {
        let mut per_shard: Vec<Vec<RemoteCommit<'_>>> = vec![Vec::new(); self.layout.shard_count()];
        let mut spanning: Vec<RemoteCommit<'_>> = Vec::new();
        for commit in commits {
            match self.layout.home_of(commit.task) {
                Some(home) => per_shard[home].push(*commit),
                None => spanning.push(*commit),
            }
        }
        let mut applied = 0usize;
        let mut first_err = None;
        for (shard, batch) in per_shard.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut guard = self.shard_guard(shard);
            match guard.apply_remote_commits(batch) {
                Ok(entered) => applied += entered,
                Err(err) => {
                    first_err.get_or_insert(err);
                }
            }
            self.publish(shard, &guard);
        }
        for commit in &spanning {
            match self.commit_one(commit.task, commit.seq, commit.arrival, commit.assignment) {
                Ok(true) => applied += 1,
                Ok(false) => {}
                Err(err) => {
                    first_err.get_or_insert(err);
                }
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(applied),
        }
    }

    /// Applies an idle-reset report from `processor` — the sharded
    /// equivalent of [`AdmissionController::apply_idle_reset`]. Keys of
    /// cross-registered jobs update the cross registry's outstanding
    /// counts; everything else is delegated to the processor's home shard
    /// in contiguous runs, preserving the report's per-processor removal
    /// order exactly.
    pub fn apply_idle_reset(&self, processor: ProcessorId, keys: &[ContributionKey]) -> f64 {
        self.reset_reports.fetch_add(1, Ordering::Relaxed);
        let shard = self.layout.shard_of(processor);
        if self.cross_live.load(Ordering::Acquire) == 0 {
            let mut guard = self.shard_guard(shard);
            // Validate the zero read under the shard lock (see the
            // `cross_live` field doc): a cross commit completing in the
            // unguarded window would otherwise have this report remove a
            // cross-registered key shard-locally, leaving the cross
            // entry's outstanding count permanently over-counted.
            if self.cross_live.load(Ordering::Acquire) == 0 {
                let freed = guard.apply_idle_reset(processor, keys);
                self.publish(shard, &guard);
                return freed;
            }
            // Release and fall through to the cross path (cross ≺ shards).
        }

        let mut cross = lock(&self.cross);
        cross.expire(self.floor());
        let mut guard = self.shard_guard(shard);
        let mut freed = 0.0;
        let mut run: Vec<ContributionKey> = Vec::new();
        for key in keys {
            if let Some(&eid) = cross.by_job.get(&key.job) {
                if !run.is_empty() {
                    freed += guard.apply_idle_reset(processor, &run);
                    run.clear();
                }
                if let Some(u) = guard.external_remove(processor, *key) {
                    freed += u;
                    cross.stats.reset_utilization += u;
                    if let Some(entry) = cross.entries[eid].as_mut() {
                        entry.outstanding = entry.outstanding.saturating_sub(1);
                    }
                }
            } else {
                run.push(*key);
            }
        }
        if !run.is_empty() {
            freed += guard.apply_idle_reset(processor, &run);
        }
        self.publish(shard, &guard);
        self.cross_live.store(cross.live, Ordering::Release);
        freed
    }

    /// Removes expired jobs everywhere — the sharded equivalent of
    /// [`AdmissionController::expire`]. Bumps the floor and eagerly
    /// expires every shard and the cross registry to it.
    pub fn expire(&self, now: Time) {
        self.bump_floor(now);
        {
            let mut cross = lock(&self.cross);
            cross.expire(self.floor());
            self.cross_live.store(cross.live, Ordering::Release);
        }
        for shard in 0..self.layout.shard_count() {
            let guard = self.shard_guard(shard);
            self.publish(shard, &guard);
        }
    }

    /// Withdraws a periodic task entirely — the sharded equivalent of
    /// [`AdmissionController::withdraw_task`]. The reservation lives
    /// either in the task's home shard or in the cross registry; both are
    /// cleaned (the misses are no-ops).
    pub fn withdraw_task(&self, task: TaskId) {
        let (mut cross, mut guards) = self.full_lock();
        if let Some(eid) = cross.reserved.remove(&task) {
            if let Some(entry) = cross.unregister(eid) {
                let reserved_job = JobId::new(task, RESERVED_SEQ);
                for (subtask, processor) in entry.visits.iter().enumerate() {
                    guards[self.layout.shard_of(*processor)]
                        .external_remove(*processor, ContributionKey::new(reserved_job, subtask));
                }
            }
        }
        cross.rejected.remove(&task);
        cross.balancer.forget_task(task);
        for guard in guards.iter_mut() {
            guard.withdraw_task(task);
        }
        self.cross_live.store(cross.live, Ordering::Release);
        self.publish_all(&guards);
    }

    /// Hot-swaps the full service configuration — the sharded equivalent
    /// of [`AdmissionController::reconfigure`]. The layer executes the
    /// [`ReconfigPlan`] itself: drains and reseeds are merged across
    /// shards and the cross registry into one globally ascending task-id
    /// order, so the per-processor operation sequence — and therefore
    /// every ledger total — matches the monolithic handover exactly.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] for invalid target combinations,
    /// with the plane untouched.
    pub fn reconfigure(
        &self,
        target: ServiceConfig,
        now: Time,
        tasks: &TaskSet,
    ) -> Result<HandoverReport, InvalidConfigError> {
        let mut config = lock(&self.config);
        let plan = ReconfigPlan::between(*config, target)?;
        self.bump_floor(now);
        let (mut cross, mut guards) = self.full_lock();
        let mut report = HandoverReport::new(*config, target);
        for step in plan.steps().to_vec() {
            match step {
                TransitionStep::DrainReservations => {
                    let mut drains: Vec<(TaskId, Option<usize>)> = Vec::new();
                    for (shard, guard) in guards.iter().enumerate() {
                        drains.extend(
                            guard.reserved_task_ids().into_iter().map(|t| (t, Some(shard))),
                        );
                    }
                    drains.extend(cross.reserved.keys().map(|&t| (t, None)));
                    drains.sort_unstable_by_key(|(task, _)| *task);
                    for (task_id, location) in drains {
                        match location {
                            Some(shard) => {
                                guards[shard].drain_reserved_task(task_id, now, tasks, &mut report);
                            }
                            None => self.cross_drain(
                                &mut cross,
                                &mut guards,
                                task_id,
                                now,
                                tasks,
                                &mut report,
                            ),
                        }
                    }
                    report.rejections_cleared =
                        guards.iter_mut().map(|g| g.take_sticky_rejections()).sum::<usize>()
                            + cross.rejected.len();
                    cross.rejected.clear();
                }
                TransitionStep::ReseedReservations => {
                    let mut candidates: Vec<(TaskId, Option<usize>, usize)> = Vec::new();
                    for (shard, guard) in guards.iter().enumerate() {
                        candidates.extend(
                            guard
                                .reseed_candidates(tasks)
                                .into_iter()
                                .map(|(t, eid)| (t, Some(shard), eid)),
                        );
                    }
                    candidates.extend(
                        Self::cross_reseed_candidates(&cross, tasks)
                            .into_iter()
                            .map(|(t, eid)| (t, None, eid)),
                    );
                    candidates.sort_unstable_by_key(|(task, _, _)| *task);
                    for (task_id, location, eid) in candidates {
                        match location {
                            Some(shard) => self.shard_reseed(
                                &cross,
                                &mut guards,
                                shard,
                                task_id,
                                eid,
                                tasks,
                                &mut report,
                            ),
                            None => self.cross_reseed(
                                &mut cross,
                                &mut guards,
                                task_id,
                                eid,
                                tasks,
                                &mut report,
                            ),
                        }
                    }
                }
                TransitionStep::SwapIr(_) => {}
                TransitionStep::SwapLb(lb) => {
                    report.pins_forgotten =
                        guards.iter_mut().map(|g| g.set_lb_strategy(lb)).sum::<usize>()
                            + cross.balancer.set_strategy(lb);
                }
            }
        }
        *config = target;
        for guard in guards.iter_mut() {
            guard.force_config(target);
        }
        report.entries_carried =
            guards.iter().map(|g| g.current_entries()).sum::<usize>() + cross.live;
        self.cross_live.store(cross.live, Ordering::Release);
        self.publish_all(&guards);
        Ok(report)
    }

    /// Drains one cross reservation — the monolithic
    /// `drain_reserved_task` transcribed over shard ledgers.
    fn cross_drain(
        &self,
        cross: &mut CrossState,
        guards: &mut [MutexGuard<'_, AdmissionController>],
        task_id: TaskId,
        now: Time,
        tasks: &TaskSet,
        report: &mut HandoverReport,
    ) {
        let Some(eid) = cross.reserved.remove(&task_id) else { return };
        let Some(entry) = cross.unregister(eid) else { return };
        let reserved_job = JobId::new(task_id, RESERVED_SEQ);
        let layout = self.layout;
        let Some(task) = tasks.get(task_id) else {
            // No deadline horizon known: withdraw the reservation.
            for (subtask, processor) in entry.visits.iter().enumerate() {
                guards[layout.shard_of(*processor)]
                    .external_remove(*processor, ContributionKey::new(reserved_job, subtask));
            }
            report.reservations_withdrawn += 1;
            return;
        };
        let deadline = now.saturating_add(task.deadline());
        cross.next_drain_seq -= 1;
        let drained_job = JobId::new(task_id, cross.next_drain_seq);
        for (subtask, processor) in entry.visits.iter().enumerate() {
            if let Some(u) = guards[layout.shard_of(*processor)]
                .external_remove(*processor, ContributionKey::new(reserved_job, subtask))
            {
                guards[layout.shard_of(*processor)]
                    .external_add(
                        *processor,
                        ContributionKey::new(drained_job, subtask),
                        u,
                        Lifetime::UntilDeadline(deadline),
                    )
                    .expect("drain ids are unique, so the key is free");
            }
        }
        let (new_eid, gen) = cross.register(drained_job, entry.visits.clone());
        cross.expiry.push(Reverse((deadline, new_eid, gen)));
        report.reservations_drained += 1;
    }

    /// The cross registry's reseed-candidate list, mirroring
    /// [`AdmissionController::reseed_candidates`].
    fn cross_reseed_candidates(cross: &CrossState, tasks: &TaskSet) -> Vec<(TaskId, usize)> {
        let mut latest: HashMap<TaskId, (u64, usize)> = HashMap::new();
        for (eid, entry) in cross.entries.iter().enumerate() {
            let Some(entry) = entry else { continue };
            if !tasks.get(entry.job.task).is_some_and(TaskSpec::is_periodic) {
                continue;
            }
            let slot = latest.entry(entry.job.task).or_insert((entry.job.seq, eid));
            if entry.job.seq >= slot.0 {
                *slot = (entry.job.seq, eid);
            }
        }
        let mut candidates: Vec<(TaskId, usize)> =
            latest.into_iter().map(|(task, (_, eid))| (task, eid)).collect();
        candidates.sort_unstable_by_key(|(task, _)| *task);
        candidates
    }

    /// One shard-homed reseed attempt under the full-order lock: the
    /// cross-shard condition is snapshotted (the closure cannot borrow the
    /// other shard guards while the home controller is mutably borrowed)
    /// and injected into the shard's own reseed logic.
    #[allow(clippy::too_many_arguments)]
    fn shard_reseed(
        &self,
        cross: &CrossState,
        guards: &mut [MutexGuard<'_, AdmissionController>],
        home: usize,
        task_id: TaskId,
        eid: usize,
        tasks: &TaskSet,
        report: &mut HandoverReport,
    ) {
        let layout = self.layout;
        let mut others_ok = true;
        let mut foreign = vec![0.0f64; layout.processor_count()];
        for (shard, guard) in guards.iter().enumerate() {
            if shard == home {
                continue;
            }
            let ok = match self.mode {
                AdmissionMode::Incremental => guard.violating_entries() == 0,
                AdmissionMode::BruteForce => guard.system_schedulable_brute(),
            };
            if !ok {
                others_ok = false;
            }
            for p in layout.group(shard) {
                foreign[p] = guard.ledger().utilization(ProcessorId(p as u16));
            }
        }
        let rows = cross.rows();
        let guard_needed = !others_ok || !rows.is_empty();
        let extra = move |ctl: &AdmissionController| -> bool {
            others_ok
                && rows.iter().all(|visits| {
                    bound_lhs(visits.iter().map(|p| {
                        if layout.shard_of(*p) == home {
                            ctl.ledger().utilization(*p)
                        } else {
                            foreign[p.index()]
                        }
                    })) <= 1.0 + BOUND_EPSILON
                })
        };
        let extra_ref: Option<&dyn Fn(&AdmissionController) -> bool> =
            if guard_needed { Some(&extra) } else { None };
        guards[home].try_reseed_candidate(task_id, eid, tasks, extra_ref, report);
    }

    /// One cross-registered reseed attempt — the monolithic
    /// `try_reseed_candidate` transcribed over shard ledgers.
    #[allow(clippy::too_many_arguments)]
    fn cross_reseed(
        &self,
        cross: &mut CrossState,
        guards: &mut [MutexGuard<'_, AdmissionController>],
        task_id: TaskId,
        eid: usize,
        tasks: &TaskSet,
        report: &mut HandoverReport,
    ) {
        if cross.reserved.contains_key(&task_id) {
            return;
        }
        let Some(entry) = cross.entries.get(eid).and_then(Option::as_ref) else { return };
        let visits = entry.visits.clone();
        let old_job = entry.job;
        let outstanding = entry.outstanding;
        let task = tasks.get(task_id).expect("candidates filtered on membership");
        let reserved_job = JobId::new(task_id, RESERVED_SEQ);
        let layout = self.layout;

        let intact = outstanding == visits.len()
            && visits.iter().enumerate().all(|(subtask, processor)| {
                guards[layout.shard_of(*processor)]
                    .ledger()
                    .contribution(*processor, ContributionKey::new(old_job, subtask))
                    .is_some()
            });

        if intact {
            // Utilization-neutral conversion: the guard runs up front, no
            // rollback path needed.
            if !self.cross_schedulable(cross, guards, &visits) {
                report.reseeds_skipped += 1;
                return;
            }
            cross.unregister(eid);
            for (subtask, processor) in visits.iter().enumerate() {
                let u = guards[layout.shard_of(*processor)]
                    .external_remove(*processor, ContributionKey::new(old_job, subtask))
                    .expect("intact entries hold every contribution (checked above)");
                guards[layout.shard_of(*processor)]
                    .external_add(
                        *processor,
                        ContributionKey::new(reserved_job, subtask),
                        u,
                        Lifetime::Reserved,
                    )
                    .expect("the reserved key space was free");
            }
            let (new_eid, _gen) = cross.register(old_job, visits);
            cross.reserved.insert(task_id, new_eid);
            report.reservations_reseeded += 1;
            return;
        }

        // Additive fallback: the partial entry keeps its remaining
        // contributions; the reservation is added fresh under the
        // post-addition system-wide check.
        for (subtask, processor) in visits.iter().enumerate() {
            guards[layout.shard_of(*processor)]
                .external_add(
                    *processor,
                    ContributionKey::new(reserved_job, subtask),
                    task.subtask_utilization(subtask),
                    Lifetime::Reserved,
                )
                .expect("the reserved key space was free");
        }
        if self.cross_schedulable(cross, guards, &visits) {
            let (new_eid, _gen) = cross.register(reserved_job, visits);
            cross.reserved.insert(task_id, new_eid);
            report.reservations_reseeded += 1;
        } else {
            for (subtask, processor) in visits.iter().enumerate() {
                guards[layout.shard_of(*processor)]
                    .external_remove(*processor, ContributionKey::new(reserved_job, subtask));
            }
            report.reseeds_skipped += 1;
        }
    }
}

// --- Read and diagnostic API -------------------------------------------

impl ShardedAdmissionController {
    /// Proposes a placement without running the admission test (the
    /// paper's "Location" call) — the sharded equivalent of
    /// [`AdmissionController::propose_assignment`].
    pub fn propose_assignment(&self, task: &TaskSpec) -> Assignment {
        match self.fast_route(task) {
            Some(home) => {
                let mut guard = self.shard_guard(home);
                let assignment = guard.propose_assignment(task);
                self.publish(home, &guard);
                assignment
            }
            None => {
                let (mut cross, guards) = self.full_lock();
                let layout = self.layout;
                let view = {
                    let guards = &guards;
                    move |p: ProcessorId| guards[layout.shard_of(p)].ledger().utilization(p)
                };
                let assignment =
                    cross.balancer.assignment_for_with(task, layout.processor_count(), view);
                self.publish_all(&guards);
                assignment
            }
        }
    }

    /// Live per-processor synthetic utilizations, assembled from the shard
    /// ledgers (each shard is expired to the floor first, matching the
    /// monolithic controller's already-expired view).
    #[must_use]
    pub fn utilizations(&self) -> Vec<f64> {
        let mut utils = vec![0.0f64; self.layout.processor_count()];
        for shard in 0..self.layout.shard_count() {
            let guard = self.shard_guard(shard);
            for p in self.layout.group(shard) {
                utils[p] = guard.ledger().utilization(ProcessorId(p as u16));
            }
            self.publish(shard, &guard);
        }
        utils
    }

    /// Number of current registry entries (shard entries + cross entries).
    #[must_use]
    pub fn current_entries(&self) -> usize {
        let cross = lock(&self.cross);
        let shard_total: usize =
            self.shards.iter().map(|cell| lock(&cell.ctl).current_entries()).sum();
        shard_total + cross.live
    }

    /// Number of per-task reservations held anywhere.
    #[must_use]
    pub fn reserved_tasks(&self) -> usize {
        let cross = lock(&self.cross);
        let shard_total: usize =
            self.shards.iter().map(|cell| lock(&cell.ctl).reserved_tasks()).sum();
        shard_total + cross.reserved.len()
    }

    /// True if `task` holds a per-task reservation anywhere.
    #[must_use]
    pub fn is_reserved(&self, task: TaskId) -> bool {
        if lock(&self.cross).reserved.contains_key(&task) {
            return true;
        }
        self.shards.iter().any(|cell| lock(&cell.ctl).is_reserved(task))
    }

    /// True if `task` was permanently rejected by a per-task test.
    #[must_use]
    pub fn is_rejected(&self, task: TaskId) -> bool {
        if lock(&self.cross).rejected.contains(&task) {
            return true;
        }
        self.shards.iter().any(|cell| lock(&cell.ctl).is_rejected(task))
    }

    /// Accumulated counters, summed across shards and the cross path.
    /// `reset_reports` counts *plane-level* reports (a report split across
    /// the cross registry and a shard still counts once, as the monolithic
    /// controller would count it).
    #[must_use]
    pub fn stats(&self) -> AcStats {
        let cross = lock(&self.cross);
        let mut total = cross.stats;
        for cell in &self.shards {
            let stats = lock(&cell.ctl).stats();
            total.tested += stats.tested;
            total.admitted += stats.admitted;
            total.rejected += stats.rejected;
            total.pass_throughs += stats.pass_throughs;
            total.reset_utilization += stats.reset_utilization;
        }
        total.reset_reports = self.reset_reports.load(Ordering::Relaxed);
        total
    }

    /// The full brute-force system-wide check under the full-order lock —
    /// the layer's agreement point with the monolithic oracle.
    #[must_use]
    pub fn system_schedulable(&self) -> bool {
        let (cross, guards) = self.full_lock();
        let layout = self.layout;
        let util = |p: ProcessorId| guards[layout.shard_of(p)].ledger().utilization(p);
        let ok = guards.iter().all(|g| g.system_schedulable_brute())
            && cross
                .entries
                .iter()
                .flatten()
                .filter(|e| e.outstanding > 0)
                .all(|e| bound_lhs(e.visits.iter().map(|p| util(*p))) <= 1.0 + BOUND_EPSILON);
        self.publish_all(&guards);
        ok
    }

    /// Per-shard consistency audit: each shard controller's cached-vs-fresh
    /// AUB sums, plus whether its published summary is current. Read-only
    /// (no expiry), so a coherent summary stays coherent across the call.
    #[must_use]
    pub fn audit(&self) -> Vec<ShardAudit> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, cell)| {
                let guard = lock(&cell.ctl);
                let summary_coherent = cell.published.revision.load(Ordering::Acquire)
                    == guard.revision()
                    && cell.published.violating.load(Ordering::Relaxed)
                        == guard.violating_entries();
                ShardAudit { shard, audit: audit_controller(&guard), summary_coherent }
            })
            .collect()
    }

    /// Reconciles every shard (recompute ledger totals and cached AUB sums
    /// from scratch) and republishes the summaries. Drift is reported
    /// **per shard**, so one noisy shard is identified by index instead of
    /// folding into a single global residual.
    pub fn reconcile(&self) -> Vec<ShardDrift> {
        (0..self.layout.shard_count())
            .map(|shard| {
                let mut guard = lock(&self.shards[shard].ctl);
                let drift = guard.reconcile_detailed();
                self.publish(shard, &guard);
                ShardDrift { shard, drift }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskBuilder, TaskSet};
    use crate::time::Duration;

    fn config(s: &str) -> ServiceConfig {
        s.parse().expect("valid config string")
    }

    /// An aperiodic task whose candidates all live in `block` (procs
    /// 2·block and 2·block+1 of a 4-processor host).
    fn homed_task(id: u32, block: u16, exec_ms: u64) -> TaskSpec {
        let base = block * 2;
        TaskBuilder::aperiodic(TaskId(id))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(exec_ms), ProcessorId(base), [ProcessorId(base + 1)])
            .build()
            .expect("valid task")
    }

    /// An aperiodic task spanning both blocks.
    fn spanning_task(id: u32, exec_ms: u64) -> TaskSpec {
        TaskBuilder::aperiodic(TaskId(id))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(exec_ms), ProcessorId(0), [ProcessorId(3)])
            .build()
            .expect("valid task")
    }

    #[test]
    fn layout_partitions_into_contiguous_nonempty_groups() {
        let layout = ShardLayout::new(64, 4);
        assert_eq!(layout.shard_count(), 4);
        assert_eq!(layout.group(0), 0..16);
        assert_eq!(layout.group(3), 48..64);
        assert_eq!(layout.shard_of(ProcessorId(15)), 0);
        assert_eq!(layout.shard_of(ProcessorId(16)), 1);

        // Uneven split: 10 procs over 4 shards -> groups of 3, last short.
        let layout = ShardLayout::new(10, 4);
        assert_eq!(layout.shard_count(), 4);
        assert_eq!(layout.group(3), 9..10);

        // Over-asking clamps to one shard per processor.
        let layout = ShardLayout::new(2, 8);
        assert_eq!(layout.shard_count(), 2);
    }

    #[test]
    fn home_routing_is_static() {
        let layout = ShardLayout::new(4, 2);
        assert_eq!(layout.home_of(&homed_task(0, 0, 10)), Some(0));
        assert_eq!(layout.home_of(&homed_task(1, 1, 10)), Some(1));
        assert_eq!(layout.home_of(&spanning_task(2, 10)), None);
    }

    #[test]
    fn single_homed_arrivals_match_the_monolithic_controller() {
        let cfg = config("J_J_J");
        let sharded = ShardedAdmissionController::new(cfg, 4, 2).expect("valid");
        let mut mono = AdmissionController::new(cfg, 4).expect("valid");

        let mut now = Time::ZERO;
        for seq in 0..50u64 {
            for block in 0..2u16 {
                let task = homed_task(u32::from(block), block, 60);
                let a = sharded.handle_arrival(&task, seq, now).expect("no misuse");
                let b = mono.handle_arrival(&task, seq, now).expect("no misuse");
                assert_eq!(a, b, "decision diverged at seq {seq} block {block}");
            }
            now = now.saturating_add(Duration::from_millis(7));
        }
        assert_eq!(sharded.utilizations(), mono.ledger().utilizations());
        let stats = sharded.plane_stats();
        assert_eq!(stats.cross_decisions, 0, "single-homed arrivals must stay local");
        assert_eq!(stats.local_decisions, 100);
    }

    #[test]
    fn spanning_arrivals_take_the_cross_path_and_match() {
        let cfg = config("J_J_J");
        let sharded = ShardedAdmissionController::new(cfg, 4, 2).expect("valid");
        let mut mono = AdmissionController::new(cfg, 4).expect("valid");

        let mut now = Time::ZERO;
        for seq in 0..40u64 {
            let spanning = spanning_task(9, 45);
            let local = homed_task(1, 1, 45);
            let a1 = sharded.handle_arrival(&spanning, seq, now).expect("no misuse");
            let b1 = mono.handle_arrival(&spanning, seq, now).expect("no misuse");
            assert_eq!(a1, b1, "spanning decision diverged at seq {seq}");
            let a2 = sharded.handle_arrival(&local, seq, now).expect("no misuse");
            let b2 = mono.handle_arrival(&local, seq, now).expect("no misuse");
            assert_eq!(a2, b2, "local decision diverged at seq {seq}");
            now = now.saturating_add(Duration::from_millis(11));
        }
        assert_eq!(sharded.utilizations(), mono.ledger().utilizations());
        assert!(sharded.plane_stats().cross_decisions > 0);
        assert_eq!(sharded.stats(), mono.stats());
    }

    #[test]
    fn summaries_publish_and_stay_coherent() {
        let cfg = config("J_J_J");
        let sharded = ShardedAdmissionController::new(cfg, 4, 2).expect("valid");
        let task = homed_task(0, 0, 30);
        sharded.handle_arrival(&task, 0, Time::ZERO).expect("no misuse");

        let summaries = sharded.shard_summaries();
        assert!(summaries[0].utilization_sum > 0.0);
        assert_eq!(summaries[1].utilization_sum, 0.0);
        for audit in sharded.audit() {
            assert!(audit.summary_coherent, "shard {} summary stale", audit.shard);
            assert!(audit.audit.is_consistent(1e-9));
        }
    }

    #[test]
    fn reconciliation_reports_drift_per_shard() {
        let cfg = config("J_J_J");
        let sharded = ShardedAdmissionController::new(cfg, 4, 2).expect("valid");
        for block in 0..2u16 {
            let task = homed_task(u32::from(block), block, 40);
            sharded.handle_arrival(&task, 0, Time::ZERO).expect("no misuse");
        }
        let drifts = sharded.reconcile();
        assert_eq!(drifts.len(), 2);
        for (shard, drift) in drifts.iter().enumerate() {
            assert_eq!(drift.shard, shard);
            assert!(drift.drift.max_drift <= 1e-12);
        }
        // Reconciliation republishes: summaries remain coherent.
        for audit in sharded.audit() {
            assert!(audit.summary_coherent);
        }
    }

    /// Concurrent single-homed and spanning arrivals on `&self` — the
    /// regression surface for the fast path's cross-mirror TOCTOU: a
    /// cross entry committing between the unlocked `cross_live` read and
    /// the home-shard lock must not let a local decision admit past an
    /// AUB row's bound. Decision outcomes are nondeterministic under the
    /// storm; the admitted *state* must satisfy every row regardless.
    #[test]
    fn concurrent_local_and_cross_storm_never_over_admits() {
        let cfg = config("J_J_J");
        let sharded = ShardedAdmissionController::new(cfg, 4, 2).expect("valid");
        std::thread::scope(|scope| {
            let plane = &sharded;
            for block in 0..2u16 {
                scope.spawn(move || {
                    for seq in 0..200u64 {
                        let task = homed_task(u32::from(block), block, 35);
                        plane.handle_arrival(&task, seq, Time::ZERO).expect("unique jobs");
                    }
                });
            }
            scope.spawn(move || {
                for seq in 0..200u64 {
                    let task = spanning_task(9, 35);
                    plane.handle_arrival(&task, seq, Time::ZERO).expect("unique jobs");
                }
            });
        });
        assert!(
            sharded.system_schedulable(),
            "an admitted state must satisfy every AUB row under any interleaving"
        );
        for audit in sharded.audit() {
            assert!(audit.audit.is_consistent(1e-9), "shard {} cached sums drifted", audit.shard);
            assert!(audit.summary_coherent, "shard {} summary stale at quiescence", audit.shard);
        }
        for drift in sharded.reconcile() {
            assert!(drift.drift.max_drift <= 1e-9, "shard {} ledger drifted", drift.shard);
        }
    }

    #[test]
    fn per_task_reservations_work_across_paths() {
        let cfg = config("T_T_T");
        let sharded = ShardedAdmissionController::new(cfg, 4, 2).expect("valid");
        let mut mono = AdmissionController::new(cfg, 4).expect("valid");
        let mut tasks = TaskSet::new();
        let periodic = TaskBuilder::periodic(TaskId(7), Duration::from_millis(50))
            .subtask(Duration::from_millis(10), ProcessorId(0), [ProcessorId(3)])
            .build()
            .expect("valid task");
        tasks.insert(periodic.clone()).expect("fresh id");

        for seq in 0..3u64 {
            let now = Time::from_nanos(seq * 1_000_000);
            let a = sharded.handle_arrival(&periodic, seq, now).expect("no misuse");
            let b = mono.handle_arrival(&periodic, seq, now).expect("no misuse");
            assert_eq!(a, b);
        }
        assert!(sharded.is_reserved(TaskId(7)));
        assert_eq!(sharded.reserved_tasks(), mono.reserved_tasks());

        sharded.withdraw_task(TaskId(7));
        mono.withdraw_task(TaskId(7));
        assert!(!sharded.is_reserved(TaskId(7)));
        assert_eq!(sharded.utilizations(), mono.ledger().utilizations());
    }
}
