//! Shared evaluation metrics: the paper's *accepted utilization ratio* and
//! mean/max latency accounting for the overhead table (Figure 8).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// The paper's §7.1 performance metric: "the total utilization of jobs
/// actually released divided by the total utilization of all jobs
/// arriving". A job's utilization weight is `Σ_j C_{i,j} / D_i`
/// ([`crate::task::TaskSpec::job_utilization`]).
///
/// # Examples
///
/// ```
/// use rtcm_core::metrics::UtilizationRatio;
///
/// let mut r = UtilizationRatio::new();
/// r.record_arrival(0.4);
/// r.record_release(0.4);
/// r.record_arrival(0.6);
/// assert!((r.ratio() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRatio {
    arrived: f64,
    released: f64,
    arrived_jobs: u64,
    released_jobs: u64,
}

impl UtilizationRatio {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        UtilizationRatio::default()
    }

    /// Reassembles an accumulator from externally maintained parts — the
    /// runtime's lock-free telemetry registry keeps these as atomics and
    /// folds them back into a ratio at snapshot time.
    #[must_use]
    pub fn from_parts(arrived: f64, released: f64, arrived_jobs: u64, released_jobs: u64) -> Self {
        UtilizationRatio { arrived, released, arrived_jobs, released_jobs }
    }

    /// Records an arriving job of the given utilization weight.
    pub fn record_arrival(&mut self, utilization: f64) {
        self.arrived += utilization;
        self.arrived_jobs += 1;
    }

    /// Records a released (admitted) job of the given utilization weight.
    pub fn record_release(&mut self, utilization: f64) {
        self.released += utilization;
        self.released_jobs += 1;
    }

    /// Released / arrived utilization; defined as 1 when nothing arrived.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.arrived <= 0.0 {
            1.0
        } else {
            self.released / self.arrived
        }
    }

    /// Total utilization weight of arrived jobs.
    #[must_use]
    pub fn arrived_utilization(&self) -> f64 {
        self.arrived
    }

    /// Total utilization weight of released jobs.
    #[must_use]
    pub fn released_utilization(&self) -> f64 {
        self.released
    }

    /// Number of arrived jobs.
    #[must_use]
    pub fn arrived_jobs(&self) -> u64 {
        self.arrived_jobs
    }

    /// Number of released jobs.
    #[must_use]
    pub fn released_jobs(&self) -> u64 {
        self.released_jobs
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &UtilizationRatio) {
        self.arrived += other.arrived;
        self.released += other.released;
        self.arrived_jobs += other.arrived_jobs;
        self.released_jobs += other.released_jobs;
    }
}

impl fmt::Display for UtilizationRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ({}/{} jobs, {:.3}/{:.3} utilization)",
            self.ratio(),
            self.released_jobs,
            self.arrived_jobs,
            self.released,
            self.arrived
        )
    }
}

/// Mean / max / min accumulation of operation delays, as reported in the
/// paper's Figure 8 (µs rows).
///
/// # Examples
///
/// ```
/// use rtcm_core::metrics::DelayStats;
/// use rtcm_core::time::Duration;
///
/// let mut s = DelayStats::new();
/// s.record(Duration::from_micros(100));
/// s.record(Duration::from_micros(300));
/// assert_eq!(s.mean(), Duration::from_micros(200));
/// assert_eq!(s.max(), Duration::from_micros(300));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayStats {
    count: u64,
    total_ns: u128,
    max: Duration,
    min: Duration,
}

impl DelayStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        DelayStats { count: 0, total_ns: 0, max: Duration::ZERO, min: Duration::MAX }
    }

    /// Reassembles an accumulator from externally maintained parts
    /// (sample count, exact nanosecond sum, exact extremes) — the bridge
    /// from the telemetry registry's atomic histograms back to the
    /// report's mean/max/min rows. An empty part set (`count == 0`)
    /// yields the canonical empty accumulator.
    #[must_use]
    pub fn from_parts(count: u64, total_ns: u128, min: Duration, max: Duration) -> Self {
        if count == 0 {
            DelayStats::new()
        } else {
            DelayStats { count, total_ns, max, min }
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        self.count += 1;
        self.total_ns += u128::from(sample.as_nanos());
        self.max = self.max.max(sample);
        self.min = self.min.min(sample);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample; zero when empty.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            let ns = self.total_ns / u128::from(self.count);
            Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
        }
    }

    /// Largest sample; zero when empty.
    #[must_use]
    pub fn max(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.max
        }
    }

    /// Smallest sample; zero when empty.
    #[must_use]
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.min
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &DelayStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl fmt::Display for DelayStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {}us max {}us over {} samples",
            self.mean().as_micros(),
            self.max().as_micros(),
            self.count
        )
    }
}

/// Tracks consecutive job skips per task — quantifying *how much* job
/// skipping (criterion C1) a configuration actually demands from the
/// application.
///
/// The paper's C1 is a yes/no question, but it cites Koren & Shasha's
/// skip-over work for applications tolerating "varying degrees" of
/// skipping. The longest run of consecutive skipped jobs is the quantity
/// such an application must be specified against.
///
/// # Examples
///
/// ```
/// use rtcm_core::metrics::SkipTracker;
/// use rtcm_core::task::TaskId;
///
/// let mut s = SkipTracker::new();
/// s.record(TaskId(0), false); // skipped
/// s.record(TaskId(0), false); // skipped again
/// s.record(TaskId(0), true);  // released
/// assert_eq!(s.max_consecutive(TaskId(0)), 2);
/// assert_eq!(s.worst_case(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkipTracker {
    current: std::collections::HashMap<crate::task::TaskId, u32>,
    max: std::collections::HashMap<crate::task::TaskId, u32>,
}

impl SkipTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        SkipTracker::default()
    }

    /// Records one job outcome for `task`: `released = false` means the
    /// job was skipped (rejected or dropped).
    pub fn record(&mut self, task: crate::task::TaskId, released: bool) {
        if released {
            self.current.insert(task, 0);
        } else {
            let run = self.current.entry(task).or_insert(0);
            *run += 1;
            let max = self.max.entry(task).or_insert(0);
            *max = (*max).max(*run);
        }
    }

    /// Longest skip run observed for `task`.
    #[must_use]
    pub fn max_consecutive(&self, task: crate::task::TaskId) -> u32 {
        self.max.get(&task).copied().unwrap_or(0)
    }

    /// Longest skip run observed across all tasks.
    #[must_use]
    pub fn worst_case(&self) -> u32 {
        self.max.values().copied().max().unwrap_or(0)
    }

    /// `(task, longest run)` pairs for every task that skipped at least
    /// once, sorted by task id.
    #[must_use]
    pub fn per_task(&self) -> Vec<(crate::task::TaskId, u32)> {
        let mut v: Vec<_> =
            self.max.iter().filter(|(_, m)| **m > 0).map(|(t, m)| (*t, *m)).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_of_empty_is_one() {
        assert_eq!(UtilizationRatio::new().ratio(), 1.0);
    }

    #[test]
    fn ratio_tracks_weights_not_counts() {
        let mut r = UtilizationRatio::new();
        r.record_arrival(0.9);
        r.record_arrival(0.1);
        r.record_release(0.9);
        // 1 of 2 jobs but 90% of the utilization.
        assert!((r.ratio() - 0.9).abs() < 1e-12);
        assert_eq!(r.arrived_jobs(), 2);
        assert_eq!(r.released_jobs(), 1);
    }

    #[test]
    fn ratio_merge_combines() {
        let mut a = UtilizationRatio::new();
        a.record_arrival(1.0);
        a.record_release(1.0);
        let mut b = UtilizationRatio::new();
        b.record_arrival(1.0);
        a.merge(&b);
        assert!((a.ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delay_stats_mean_max_min() {
        let mut s = DelayStats::new();
        for us in [10u64, 20, 60] {
            s.record(Duration::from_micros(us));
        }
        assert_eq!(s.mean(), Duration::from_micros(30));
        assert_eq!(s.max(), Duration::from_micros(60));
        assert_eq!(s.min(), Duration::from_micros(10));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn delay_stats_empty_reads_zero() {
        let s = DelayStats::new();
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.min(), Duration::ZERO);
    }

    #[test]
    fn delay_stats_merge() {
        let mut a = DelayStats::new();
        a.record(Duration::from_micros(10));
        let mut b = DelayStats::new();
        b.record(Duration::from_micros(50));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Duration::from_micros(30));
        assert_eq!(a.max(), Duration::from_micros(50));
        assert_eq!(a.min(), Duration::from_micros(10));
        let empty = DelayStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn skip_tracker_runs_and_resets() {
        use crate::task::TaskId;
        let mut s = SkipTracker::new();
        // Run of 3, then release, then run of 1.
        for _ in 0..3 {
            s.record(TaskId(0), false);
        }
        s.record(TaskId(0), true);
        s.record(TaskId(0), false);
        assert_eq!(s.max_consecutive(TaskId(0)), 3);
        // Independent task.
        s.record(TaskId(1), true);
        assert_eq!(s.max_consecutive(TaskId(1)), 0);
        assert_eq!(s.worst_case(), 3);
        assert_eq!(s.per_task(), vec![(TaskId(0), 3)]);
    }

    #[test]
    fn skip_tracker_empty_is_zero() {
        let s = SkipTracker::new();
        assert_eq!(s.worst_case(), 0);
        assert!(s.per_task().is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = DelayStats::new();
        s.record(Duration::from_micros(5));
        assert!(!s.to_string().is_empty());
        let mut r = UtilizationRatio::new();
        r.record_arrival(0.5);
        assert!(!r.to_string().is_empty());
    }
}
