//! The idle-resetting service (§4.3): the application-processor side of the
//! AUB resetting rule.
//!
//! Subtask components call [`IdleResetter::record_completion`] when a subjob
//! finishes (the paper's "Complete" method call); when the processor's
//! dispatcher runs out of ready work it calls [`IdleResetter::on_idle`],
//! which — if there is anything new to report — produces an
//! [`IdleResetReport`] to push to the admission controller as an "Idle
//! Resetting" event. The resetter only reports "when there is a newly
//! completed … subjob whose deadline has not expired", avoiding repeated
//! reports.
//!
//! Which completions are recorded depends on the strategy:
//!
//! * [`IrStrategy::None`] — nothing is recorded; `on_idle` never reports.
//! * [`IrStrategy::PerTask`] — aperiodic subjobs only.
//! * [`IrStrategy::PerJob`] — aperiodic and periodic subjobs.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::ledger::ContributionKey;
//! use rtcm_core::reset::IdleResetter;
//! use rtcm_core::strategy::IrStrategy;
//! use rtcm_core::task::{JobId, ProcessorId, TaskId};
//! use rtcm_core::time::{Duration, Time};
//!
//! let mut ir = IdleResetter::new(IrStrategy::PerTask, ProcessorId(0));
//! let key = ContributionKey::new(JobId::new(TaskId(3), 0), 0);
//! ir.record_completion(key, Time::ZERO + Duration::from_millis(100), false);
//!
//! let report = ir.on_idle(Time::ZERO + Duration::from_millis(10)).expect("new completion");
//! assert_eq!(report.completed, vec![key]);
//! assert!(ir.on_idle(Time::ZERO + Duration::from_millis(11)).is_none(), "no repeat");
//! ```

use serde::{Deserialize, Serialize};

use crate::ledger::ContributionKey;
use crate::strategy::IrStrategy;
use crate::task::ProcessorId;
use crate::time::Time;

/// An "Idle Resetting" event payload: completed subjobs whose contributions
/// the admission controller may now remove.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleResetReport {
    /// The processor that went idle.
    pub processor: ProcessorId,
    /// Completed, unexpired, not-yet-reported contributions on it.
    pub completed: Vec<ContributionKey>,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    key: ContributionKey,
    deadline: Time,
}

/// The configurable idle-resetting component deployed on each application
/// processor.
#[derive(Debug, Clone)]
pub struct IdleResetter {
    strategy: IrStrategy,
    processor: ProcessorId,
    pending: Vec<Pending>,
    reports: u64,
    recorded: u64,
}

impl IdleResetter {
    /// Creates a resetter for `processor` with the given strategy.
    #[must_use]
    pub fn new(strategy: IrStrategy, processor: ProcessorId) -> Self {
        IdleResetter { strategy, processor, pending: Vec::new(), reports: 0, recorded: 0 }
    }

    /// The configured strategy.
    #[must_use]
    pub fn strategy(&self) -> IrStrategy {
        self.strategy
    }

    /// Changes the strategy at run time (the paper's component attributes
    /// "may be modified at run-time", §5). Completions already recorded
    /// under the old strategy stay pending; only future completions are
    /// filtered by the new one. The §4.5 validity rule is the caller's to
    /// enforce (it depends on the admission-control strategy, which the
    /// resetter does not know).
    pub fn set_strategy(&mut self, strategy: IrStrategy) {
        self.strategy = strategy;
    }

    /// The processor this resetter serves.
    #[must_use]
    pub fn processor(&self) -> ProcessorId {
        self.processor
    }

    /// Records a subjob completion (the subtask components' "Complete"
    /// call). `deadline` is the job's absolute end-to-end deadline;
    /// `periodic` says whether the owning task is periodic. Completions the
    /// strategy does not cover are dropped.
    pub fn record_completion(&mut self, key: ContributionKey, deadline: Time, periodic: bool) {
        let record = if periodic {
            self.strategy.resets_periodic()
        } else {
            self.strategy.resets_aperiodic()
        };
        if record {
            self.pending.push(Pending { key, deadline });
            self.recorded += 1;
        }
    }

    /// Called when the processor's dispatcher goes idle. Returns a report if
    /// any recorded completion is new and unexpired; otherwise `None` (the
    /// idle detector "only reports when there is a newly completed …
    /// subjob whose deadline has not expired").
    pub fn on_idle(&mut self, now: Time) -> Option<IdleResetReport> {
        if self.pending.is_empty() {
            return None;
        }
        let completed: Vec<ContributionKey> =
            self.pending.drain(..).filter(|p| p.deadline > now).map(|p| p.key).collect();
        if completed.is_empty() {
            return None;
        }
        self.reports += 1;
        Some(IdleResetReport { processor: self.processor, completed })
    }

    /// Completions currently awaiting an idle period.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Reports produced so far.
    #[must_use]
    pub fn report_count(&self) -> u64 {
        self.reports
    }

    /// Completions recorded so far (after strategy filtering).
    #[must_use]
    pub fn recorded_count(&self) -> u64 {
        self.recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{JobId, TaskId};
    use crate::time::Duration;

    fn key(task: u32, seq: u64, subtask: usize) -> ContributionKey {
        ContributionKey::new(JobId::new(TaskId(task), seq), subtask)
    }

    fn at(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn none_strategy_records_nothing() {
        let mut ir = IdleResetter::new(IrStrategy::None, ProcessorId(0));
        ir.record_completion(key(0, 0, 0), at(100), false);
        ir.record_completion(key(1, 0, 0), at(100), true);
        assert_eq!(ir.pending_count(), 0);
        assert!(ir.on_idle(at(1)).is_none());
        assert_eq!(ir.recorded_count(), 0);
    }

    #[test]
    fn per_task_records_only_aperiodic() {
        let mut ir = IdleResetter::new(IrStrategy::PerTask, ProcessorId(0));
        ir.record_completion(key(0, 0, 0), at(100), false);
        ir.record_completion(key(1, 0, 0), at(100), true);
        let report = ir.on_idle(at(1)).unwrap();
        assert_eq!(report.completed, vec![key(0, 0, 0)]);
    }

    #[test]
    fn per_job_records_both() {
        let mut ir = IdleResetter::new(IrStrategy::PerJob, ProcessorId(2));
        ir.record_completion(key(0, 0, 0), at(100), false);
        ir.record_completion(key(1, 0, 1), at(100), true);
        let report = ir.on_idle(at(1)).unwrap();
        assert_eq!(report.processor, ProcessorId(2));
        assert_eq!(report.completed, vec![key(0, 0, 0), key(1, 0, 1)]);
    }

    #[test]
    fn expired_completions_are_not_reported() {
        let mut ir = IdleResetter::new(IrStrategy::PerJob, ProcessorId(0));
        ir.record_completion(key(0, 0, 0), at(10), true);
        assert!(ir.on_idle(at(10)).is_none(), "deadline == now means expired");
        assert_eq!(ir.pending_count(), 0, "expired entries are dropped, not retried");
    }

    #[test]
    fn no_repeat_reports_without_new_completions() {
        let mut ir = IdleResetter::new(IrStrategy::PerJob, ProcessorId(0));
        ir.record_completion(key(0, 0, 0), at(100), true);
        assert!(ir.on_idle(at(1)).is_some());
        assert!(ir.on_idle(at(2)).is_none());
        ir.record_completion(key(0, 0, 1), at(100), true);
        assert!(ir.on_idle(at(3)).is_some());
        assert_eq!(ir.report_count(), 2);
    }

    #[test]
    fn strategy_can_change_at_runtime() {
        let mut ir = IdleResetter::new(IrStrategy::None, ProcessorId(0));
        ir.record_completion(key(0, 0, 0), at(100), false);
        assert_eq!(ir.pending_count(), 0, "None records nothing");
        ir.set_strategy(IrStrategy::PerJob);
        assert_eq!(ir.strategy(), IrStrategy::PerJob);
        ir.record_completion(key(0, 1, 0), at(100), true);
        assert_eq!(ir.pending_count(), 1, "new strategy applies to new completions");
        // Downgrading keeps already-pending entries reportable.
        ir.set_strategy(IrStrategy::None);
        assert!(ir.on_idle(at(1)).is_some());
    }

    #[test]
    fn mixed_expired_and_live_reports_live_only() {
        let mut ir = IdleResetter::new(IrStrategy::PerJob, ProcessorId(0));
        ir.record_completion(key(0, 0, 0), at(5), true);
        ir.record_completion(key(1, 0, 0), at(100), true);
        let report = ir.on_idle(at(50)).unwrap();
        assert_eq!(report.completed, vec![key(1, 0, 0)]);
    }
}
