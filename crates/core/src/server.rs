//! Deferrable-server admission control — the *other* aperiodic scheduling
//! technique from the authors' prior work (Zhang, Lu, Gill, Lardieri &
//! Thaker, RTAS 2007), provided here as a comparison baseline.
//!
//! The reproduced paper focuses exclusively on AUB because it performs
//! comparably to the deferrable server (DS) while needing simpler
//! middleware mechanisms (§2). To let the ablation benches revisit that
//! claim, this module implements a DS-based admission controller:
//!
//! * Each processor dedicates a deferrable server with budget `Q` and
//!   period `P` (utilization `U_s = Q/P`) to aperiodic execution.
//! * **Periodic tasks** are admitted per task if, on every visited
//!   processor, the periodic utilization stays within the RM bound adjusted
//!   for a top-priority deferrable server (Strosnider, Lehoczky & Sha):
//!   `U_p ≤ n·(((U_s + 2)/(2·U_s + 1))^{1/n} − 1)`.
//! * **Aperiodic jobs** are admitted if every stage's demand fits under the
//!   server's linear supply-bound function on its processor:
//!   `lsbf(Δ) = U_s · (Δ − 2·(P − Q))`, clamped at zero — the worst case
//!   allows a back-to-back blackout of `2(P−Q)`. The end-to-end deadline is
//!   split across stages proportionally to their execution times, and
//!   committed demand is tracked per processor so concurrent aperiodic jobs
//!   contend for the same budget.
//!
//! This is deliberately a *sufficient* (conservative) test, like AUB; the
//! interesting experimental question is where each technique's pessimism
//! bites.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::server::{DeferrableServerAc, ServerParams};
//! use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId};
//! use rtcm_core::time::{Duration, Time};
//!
//! let params = ServerParams::new(Duration::from_millis(20), Duration::from_millis(100))?;
//! let mut ac = DeferrableServerAc::new(params, 1);
//!
//! let job = TaskBuilder::aperiodic(TaskId(0))
//!     .deadline(Duration::from_secs(1))
//!     .subtask(Duration::from_millis(10), ProcessorId(0), [])
//!     .build()?;
//! assert!(ac.admit_aperiodic(&job, 0, Time::ZERO));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::task::{TaskId, TaskSpec};
use crate::time::{Duration, Time};

/// Budget and period of the per-processor deferrable server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerParams {
    budget: Duration,
    period: Duration,
}

impl ServerParams {
    /// Creates server parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ServerParamsError`] unless `0 < budget ≤ period`.
    pub fn new(budget: Duration, period: Duration) -> Result<Self, ServerParamsError> {
        if budget.is_zero() || period.is_zero() || budget > period {
            return Err(ServerParamsError { budget, period });
        }
        Ok(ServerParams { budget, period })
    }

    /// The server budget `Q`.
    #[must_use]
    pub fn budget(self) -> Duration {
        self.budget
    }

    /// The server period `P`.
    #[must_use]
    pub fn period(self) -> Duration {
        self.period
    }

    /// Server utilization `U_s = Q/P`.
    #[must_use]
    pub fn utilization(self) -> f64 {
        self.budget.ratio(self.period)
    }

    /// The linear supply-bound function `lsbf(Δ) = U_s·(Δ − 2(P − Q))`,
    /// clamped at zero: guaranteed server execution in any window `Δ`.
    #[must_use]
    pub fn linear_supply(self, window: Duration) -> Duration {
        let blackout = (self.period - self.budget) * 2;
        match window.checked_sub(blackout) {
            None => Duration::ZERO,
            Some(effective) => effective.mul_f64(self.utilization()),
        }
    }
}

/// Error for invalid deferrable-server parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerParamsError {
    /// The rejected budget.
    pub budget: Duration,
    /// The rejected period.
    pub period: Duration,
}

impl fmt::Display for ServerParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid deferrable server parameters: budget {} must satisfy 0 < budget <= period {}",
            self.budget, self.period
        )
    }
}

impl std::error::Error for ServerParamsError {}

/// The RM utilization bound for `n` periodic tasks sharing a processor with
/// a top-priority deferrable server of utilization `u_s` (Strosnider,
/// Lehoczky & Sha 1995): `n·(((u_s + 2)/(2·u_s + 1))^{1/n} − 1)`.
#[must_use]
pub fn ds_rm_bound(n: usize, u_s: f64) -> f64 {
    if n == 0 {
        return 1.0 - u_s;
    }
    let n_f = n as f64;
    n_f * (((u_s + 2.0) / (2.0 * u_s + 1.0)).powf(1.0 / n_f) - 1.0)
}

#[derive(Debug, Clone, Default)]
struct ProcServerState {
    /// Committed aperiodic demand: absolute deadline → total execution
    /// reserved with that deadline.
    committed: BTreeMap<Time, Duration>,
    /// Admitted periodic subtask utilizations on this processor.
    periodic_utils: Vec<(TaskId, f64)>,
}

impl ProcServerState {
    fn periodic_utilization(&self) -> f64 {
        self.periodic_utils.iter().map(|(_, u)| u).sum()
    }

    fn periodic_count(&self) -> usize {
        self.periodic_utils.len()
    }
}

/// Deferrable-server-based admission controller (comparison baseline).
///
/// Unlike [`crate::admission::AdmissionController`], this controller keeps
/// separate periodic and aperiodic accounting, mirroring how DS-based
/// schemes split the two classes.
#[derive(Debug, Clone)]
pub struct DeferrableServerAc {
    params: ServerParams,
    procs: Vec<ProcServerState>,
    admitted_periodic: u64,
    admitted_aperiodic: u64,
    rejected: u64,
}

impl DeferrableServerAc {
    /// Creates a controller with identical server parameters on every
    /// processor.
    #[must_use]
    pub fn new(params: ServerParams, processor_count: usize) -> Self {
        DeferrableServerAc {
            params,
            procs: (0..processor_count).map(|_| ProcServerState::default()).collect(),
            admitted_periodic: 0,
            admitted_aperiodic: 0,
            rejected: 0,
        }
    }

    /// The server parameters in force.
    #[must_use]
    pub fn params(&self) -> ServerParams {
        self.params
    }

    /// Admits or rejects a periodic task at its first arrival (DS schemes
    /// are inherently per-task for periodics). Placement is the primary
    /// assignment; DS admission does not balance load.
    pub fn admit_periodic(&mut self, task: &TaskSpec) -> bool {
        debug_assert!(task.is_periodic());
        // Tentatively project each visited processor's periodic utilization.
        let mut extra: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
        for (j, sub) in task.subtasks().iter().enumerate() {
            let entry = extra.entry(sub.primary.index()).or_insert((0.0, 0));
            entry.0 += task.subtask_utilization(j);
            entry.1 += 1;
        }
        let u_s = self.params.utilization();
        for (&proc, &(add_u, add_n)) in &extra {
            let Some(state) = self.procs.get(proc) else { return false };
            let total = state.periodic_utilization() + add_u;
            let n = state.periodic_count() + add_n;
            if total > ds_rm_bound(n, u_s) {
                self.rejected += 1;
                return false;
            }
        }
        for (j, sub) in task.subtasks().iter().enumerate() {
            self.procs[sub.primary.index()]
                .periodic_utils
                .push((task.id(), task.subtask_utilization(j)));
        }
        self.admitted_periodic += 1;
        true
    }

    /// Admits or rejects one aperiodic job arriving at `now`. `_seq` is the
    /// job sequence (kept for symmetry with the AUB controller's API).
    ///
    /// The end-to-end deadline is split across stages proportionally to
    /// execution times; each stage must fit under its processor's remaining
    /// guaranteed supply at every committed deadline (demand-bound vs
    /// supply-bound check).
    pub fn admit_aperiodic(&mut self, task: &TaskSpec, _seq: u64, now: Time) -> bool {
        self.expire(now);
        let total_exec: Duration = task.subtasks().iter().map(|s| s.execution_time).sum();
        if total_exec.is_zero() {
            return true;
        }
        // Stage-local absolute deadlines by proportional splitting.
        let mut offsets = Vec::with_capacity(task.subtasks().len());
        let mut acc = Duration::ZERO;
        for sub in task.subtasks() {
            acc += sub.execution_time;
            let frac = acc.ratio(total_exec);
            offsets.push(now + task.deadline().mul_f64(frac));
        }
        // Feasibility on each stage's processor.
        for (j, sub) in task.subtasks().iter().enumerate() {
            let proc = sub.primary.index();
            let Some(state) = self.procs.get(proc) else { return false };
            if !self.stage_fits(state, now, offsets[j], sub.execution_time) {
                self.rejected += 1;
                return false;
            }
        }
        // Commit.
        for (j, sub) in task.subtasks().iter().enumerate() {
            let slot = self.procs[sub.primary.index()]
                .committed
                .entry(offsets[j])
                .or_insert(Duration::ZERO);
            *slot += sub.execution_time;
        }
        self.admitted_aperiodic += 1;
        true
    }

    /// Checks that adding `demand` at `deadline` keeps cumulative demand
    /// under the supply bound at every committed deadline ≥ `deadline`'s
    /// predecessors (EDF-style demand check within the server).
    fn stage_fits(
        &self,
        state: &ProcServerState,
        now: Time,
        deadline: Time,
        demand: Duration,
    ) -> bool {
        let mut cumulative = Duration::ZERO;
        let mut checked_new = false;
        for (&d, &c) in &state.committed {
            if d > deadline && !checked_new {
                let total = cumulative + demand;
                if total > self.params.linear_supply(deadline.elapsed_since(now)) {
                    return false;
                }
                checked_new = true;
            }
            cumulative += c;
            let budget_here = if d >= deadline { cumulative + demand } else { cumulative };
            if budget_here > self.params.linear_supply(d.elapsed_since(now)) {
                return false;
            }
        }
        if !checked_new {
            let total = cumulative + demand;
            if total > self.params.linear_supply(deadline.elapsed_since(now)) {
                return false;
            }
        }
        true
    }

    /// Drops committed demand whose deadlines have passed.
    pub fn expire(&mut self, now: Time) {
        for state in &mut self.procs {
            state.committed = state.committed.split_off(&Time::from_nanos(now.as_nanos() + 1));
        }
    }

    /// Removes a periodic task's reservations (task departure).
    pub fn withdraw_periodic(&mut self, task: TaskId) {
        for state in &mut self.procs {
            state.periodic_utils.retain(|(id, _)| *id != task);
        }
    }

    /// `(periodic admitted, aperiodic admitted, rejected)` counters.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.admitted_periodic, self.admitted_aperiodic, self.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ProcessorId, TaskBuilder};

    fn params(budget_ms: u64, period_ms: u64) -> ServerParams {
        ServerParams::new(Duration::from_millis(budget_ms), Duration::from_millis(period_ms))
            .unwrap()
    }

    fn aperiodic(id: u32, exec_ms: u64, deadline_ms: u64, proc: u16) -> TaskSpec {
        TaskBuilder::aperiodic(TaskId(id))
            .deadline(Duration::from_millis(deadline_ms))
            .subtask(Duration::from_millis(exec_ms), ProcessorId(proc), [])
            .build()
            .unwrap()
    }

    #[test]
    fn params_validation() {
        assert!(ServerParams::new(Duration::ZERO, Duration::from_millis(1)).is_err());
        assert!(ServerParams::new(Duration::from_millis(2), Duration::from_millis(1)).is_err());
        let p = params(20, 100);
        assert!((p.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn linear_supply_has_blackout() {
        let p = params(20, 100);
        // Blackout = 2 * 80ms = 160ms.
        assert_eq!(p.linear_supply(Duration::from_millis(160)), Duration::ZERO);
        assert_eq!(p.linear_supply(Duration::from_millis(100)), Duration::ZERO);
        // At 660ms: 0.2 * 500ms = 100ms.
        assert_eq!(p.linear_supply(Duration::from_millis(660)), Duration::from_millis(100));
    }

    #[test]
    fn ds_rm_bound_matches_known_values() {
        // With u_s = 0: bound(1) = 1 (one task alone fits fully under RM).
        assert!((ds_rm_bound(1, 0.0) - 1.0).abs() < 1e-12);
        // n -> infinity with u_s = 0 approaches ln 2 ≈ 0.693.
        assert!((ds_rm_bound(10_000, 0.0) - std::f64::consts::LN_2).abs() < 1e-3);
        // A server consumes bound: bound decreases in u_s.
        assert!(ds_rm_bound(2, 0.3) < ds_rm_bound(2, 0.1));
        // n = 0: everything left after the server.
        assert!((ds_rm_bound(0, 0.25) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn admits_small_aperiodic_job() {
        let mut ac = DeferrableServerAc::new(params(20, 100), 1);
        assert!(ac.admit_aperiodic(&aperiodic(0, 10, 1_000, 0), 0, Time::ZERO));
        assert_eq!(ac.counters(), (0, 1, 0));
    }

    #[test]
    fn rejects_job_with_tight_deadline_inside_blackout() {
        let mut ac = DeferrableServerAc::new(params(20, 100), 1);
        // Deadline 150ms < blackout 160ms: no guaranteed supply.
        assert!(!ac.admit_aperiodic(&aperiodic(0, 1, 150, 0), 0, Time::ZERO));
    }

    #[test]
    fn budget_contention_rejects_second_job() {
        let mut ac = DeferrableServerAc::new(params(20, 100), 1);
        // lsbf(1s) = 0.2 * (1000 - 160) = 168ms.
        assert!(ac.admit_aperiodic(&aperiodic(0, 150, 1_000, 0), 0, Time::ZERO));
        assert!(!ac.admit_aperiodic(&aperiodic(1, 50, 1_000, 0), 0, Time::ZERO));
        // After expiry the budget frees up.
        let later = Time::ZERO + Duration::from_millis(1_500);
        assert!(ac.admit_aperiodic(&aperiodic(2, 50, 1_000, 0), 0, later));
    }

    #[test]
    fn earlier_deadline_job_checks_later_commitments() {
        let mut ac = DeferrableServerAc::new(params(50, 100), 1);
        // Commit a large job with a late deadline.
        assert!(ac.admit_aperiodic(&aperiodic(0, 300, 1_000, 0), 0, Time::ZERO));
        // A small early job must still respect the later commitment:
        // at d=1000ms supply is 0.5*(1000-100)=450ms >= 300+100.
        assert!(ac.admit_aperiodic(&aperiodic(1, 100, 500, 0), 0, Time::ZERO));
        // But one that overflows the shared 450ms fails.
        assert!(!ac.admit_aperiodic(&aperiodic(2, 100, 500, 0), 0, Time::ZERO));
    }

    #[test]
    fn periodic_admission_respects_ds_bound() {
        let mut ac = DeferrableServerAc::new(params(20, 100), 1);
        let t = |id: u32, exec: u64| {
            TaskBuilder::periodic(TaskId(id), Duration::from_millis(100))
                .subtask(Duration::from_millis(exec), ProcessorId(0), [])
                .build()
                .unwrap()
        };
        // bound(1, 0.2) = ((2.2/1.4) - 1) ≈ 0.571.
        assert!(ac.admit_periodic(&t(0, 40)));
        // Second task: bound(2, 0.2) = 2(sqrt(2.2/1.4)-1) ≈ 0.507 < 0.4+0.2.
        assert!(!ac.admit_periodic(&t(1, 20)));
        ac.withdraw_periodic(TaskId(0));
        assert!(ac.admit_periodic(&t(2, 20)));
    }

    #[test]
    fn multi_stage_jobs_split_deadline() {
        let mut ac = DeferrableServerAc::new(params(50, 100), 2);
        let two_stage = TaskBuilder::aperiodic(TaskId(0))
            .deadline(Duration::from_secs(2))
            .subtask(Duration::from_millis(100), ProcessorId(0), [])
            .subtask(Duration::from_millis(100), ProcessorId(1), [])
            .build()
            .unwrap();
        // Stage deadlines: 1s and 2s; each stage 100ms under lsbf(1s)=450ms.
        assert!(ac.admit_aperiodic(&two_stage, 0, Time::ZERO));
    }

    #[test]
    fn unknown_processor_rejects() {
        let mut ac = DeferrableServerAc::new(params(20, 100), 1);
        assert!(!ac.admit_aperiodic(&aperiodic(0, 10, 1_000, 5), 0, Time::ZERO));
    }
}
