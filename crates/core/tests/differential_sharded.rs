//! Differential testing of the sharded admission plane against the
//! monolithic brute-force oracle.
//!
//! PR 10 partitions the admission controller into per-processor-group
//! shards behind a two-level AUB sum tree
//! (`rtcm_core::shard::ShardedAdmissionController`). The claim is strict
//! behavioral equivalence: for any trace of {arrival, expiry, idle-reset,
//! withdraw, remote-commit, mid-trace `ServiceConfig` swap} operations,
//! the sharded plane decides exactly as a single monolithic
//! `AdmissionMode::BruteForce` controller would — same `Decision` per
//! arrival, same freed utilization per reset, same `HandoverReport` per
//! swap, same final ledger to 1e-9.
//!
//! The corpus mirrors `differential.rs`: 256 deterministic proptest cases
//! per property, replayed under every valid starting `ServiceConfig`.
//! The swap-heavy property additionally runs a one-processor-per-shard
//! layout where *every* multi-candidate placement is forced through the
//! cross-shard reservation path.

use proptest::collection::vec;
use proptest::prelude::*;

use rtcm_core::admission::{AdmissionController, AdmissionMode, Decision};
use rtcm_core::balance::Assignment;
use rtcm_core::ledger::ContributionKey;
use rtcm_core::shard::ShardedAdmissionController;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{JobId, ProcessorId, TaskBuilder, TaskId, TaskSet, TaskSpec};
use rtcm_core::time::{Duration, Time};

const PROCS: u16 = 4;

/// One raw trace step; interpreted by [`run_trace`].
type RawOp = (u8, u64, u32, u32);

/// Strategy: a small single- or multi-stage task over `PROCS` processors.
/// Candidate sets straddle shard boundaries freely, so traces mix
/// single-homed fast-path arrivals with cross-shard reservations.
fn arb_task(id: u32) -> impl Strategy<Value = TaskSpec> {
    let deadline_ms = 30u64..300;
    let stages = vec((1u64..30, 0..PROCS, 0..PROCS), 1..4);
    (deadline_ms, stages, any::<bool>()).prop_map(move |(deadline, stages, periodic)| {
        let deadline = Duration::from_millis(deadline);
        let total: u64 = stages.iter().map(|(e, _, _)| *e).sum();
        let scale = (deadline.as_millis() / 2).max(1);
        let mut builder = if periodic {
            TaskBuilder::periodic(TaskId(id), deadline)
        } else {
            TaskBuilder::aperiodic(TaskId(id)).deadline(deadline)
        };
        for (exec, primary, replica) in &stages {
            let exec_ms = (exec * scale / total.max(1)).max(1);
            builder = builder.subtask(
                Duration::from_millis(exec_ms),
                ProcessorId(*primary),
                [ProcessorId(*replica)],
            );
        }
        builder.build().expect("generated tasks are valid")
    })
}

fn arb_tasks(n: usize) -> impl Strategy<Value = Vec<TaskSpec>> {
    #[allow(clippy::cast_possible_truncation)]
    (0..n as u32).map(arb_task).collect::<Vec<_>>().prop_map(|tasks| tasks)
}

/// Replays one trace through a sharded plane and a monolithic brute-force
/// controller, asserting step-by-step agreement. Returns the number of
/// admission decisions compared.
fn run_trace(config: ServiceConfig, shards: usize, tasks: &[TaskSpec], ops: &[RawOp]) -> usize {
    let procs = usize::from(PROCS);
    let sharded =
        ShardedAdmissionController::with_mode(config, procs, shards, AdmissionMode::Incremental)
            .expect("valid config");
    let mut brute = AdmissionController::with_mode(config, procs, AdmissionMode::BruteForce)
        .expect("valid config");
    let task_set = TaskSet::from_tasks(tasks.to_vec()).expect("generated ids are unique");

    let mut now = Time::ZERO;
    let mut seqs = vec![0u64; tasks.len()];
    let mut admitted: Vec<(JobId, Assignment)> = Vec::new();
    let mut decisions = 0usize;

    for (step, &(kind, dt, x, y)) in ops.iter().enumerate() {
        now = now.saturating_add(Duration::from_millis(dt % 40));
        let t_idx = (x as usize) % tasks.len();
        let task = &tasks[t_idx];
        match kind % 9 {
            0..=3 => {
                let seq = seqs[t_idx];
                seqs[t_idx] += 1;
                let a = sharded.handle_arrival(task, seq, now);
                let b = brute.handle_arrival(task, seq, now);
                assert_eq!(a, b, "{config}/{shards}s: step {step} diverged for {}", task.id());
                decisions += 1;
                if let Ok(Decision::Accept { assignment, .. }) = a {
                    admitted.push((JobId::new(task.id(), seq), assignment));
                }
            }
            4 => {
                sharded.expire(now);
                brute.expire(now);
            }
            5 => {
                if !admitted.is_empty() {
                    let (job, plan) = &admitted[(y as usize) % admitted.len()];
                    let subtask = (x as usize) % plan.len();
                    let key = ContributionKey::new(*job, subtask);
                    let processor = plan.processor(subtask);
                    let fa = sharded.apply_idle_reset(processor, &[key]);
                    let fb = brute.apply_idle_reset(processor, &[key]);
                    assert_eq!(
                        fa.to_bits(),
                        fb.to_bits(),
                        "{config}/{shards}s: step {step} freed different utilization"
                    );
                }
            }
            6 => {
                sharded.withdraw_task(task.id());
                brute.withdraw_task(task.id());
            }
            7 => {
                let seq = seqs[t_idx];
                seqs[t_idx] += 1;
                let plan = Assignment::primaries(task);
                sharded.apply_remote_commit(task, seq, now, &plan).expect("primaries are valid");
                brute.apply_remote_commit(task, seq, now, &plan).expect("primaries are valid");
            }
            8 => {
                let valid = ServiceConfig::all_valid();
                let target = valid[(y as usize) % valid.len()];
                let ra = sharded.reconfigure(target, now, &task_set).expect("valid targets");
                let rb = brute.reconfigure(target, now, &task_set).expect("valid targets");
                assert_eq!(ra, rb, "{config}/{shards}s: step {step} handover diverged");
                assert_eq!(sharded.config(), target);
            }
            _ => unreachable!(),
        }

        if step % 16 == 15 {
            for audit in sharded.audit() {
                assert!(
                    audit.audit.is_consistent(1e-9),
                    "{config}/{shards}s: shard {} caches drifted {} at step {step}",
                    audit.shard,
                    audit.audit.max_cached_drift
                );
                assert!(
                    audit.summary_coherent,
                    "{config}/{shards}s: shard {} published a stale summary at step {step}",
                    audit.shard
                );
            }
            assert_eq!(
                sharded.system_schedulable(),
                brute.system_schedulable_brute(),
                "{config}/{shards}s: oracle views diverged at step {step}"
            );
        }
    }

    // Final-state agreement.
    let ua = sharded.utilizations();
    let ub = brute.ledger().utilizations();
    for (p, (a, b)) in ua.iter().zip(&ub).enumerate() {
        assert!((a - b).abs() <= 1e-9, "{config}/{shards}s: P{p} utilization {a} vs {b}");
    }
    assert_eq!(sharded.current_entries(), brute.current_entries(), "{config}/{shards}s");
    assert_eq!(sharded.reserved_tasks(), brute.reserved_tasks(), "{config}/{shards}s");
    let (sa, sb) = (sharded.stats(), brute.stats());
    assert_eq!(
        (sa.tested, sa.admitted, sa.rejected, sa.pass_throughs, sa.reset_reports),
        (sb.tested, sb.admitted, sb.rejected, sb.pass_throughs, sb.reset_reports),
        "{config}/{shards}s"
    );
    assert!((sa.reset_utilization - sb.reset_utilization).abs() <= 1e-9, "{config}/{shards}s");

    // Shard reconciliation finds no drift anywhere, per shard.
    for drift in sharded.reconcile() {
        assert!(
            drift.drift.max_drift <= 1e-9,
            "{config}/{shards}s: shard {} drifted {}",
            drift.shard,
            drift.drift.max_drift
        );
    }
    decisions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline property: the two-shard plane is decision-equal to the
    /// monolithic brute-force oracle under every valid strategy
    /// combination, across the full operation mix.
    #[test]
    fn sharded_and_monolithic_agree(
        tasks in arb_tasks(6),
        ops in vec((any::<u8>(), 0u64..40, any::<u32>(), any::<u32>()), 10..48),
    ) {
        for config in ServiceConfig::all_valid() {
            let decisions = run_trace(config, 2, &tasks, &ops);
            let arrivals = ops.iter().filter(|(k, ..)| k % 9 <= 3).count();
            prop_assert_eq!(decisions, arrivals);
        }
    }

    /// Swap-heavy traces under a one-processor-per-shard layout: every
    /// multi-candidate placement takes the cross-shard reservation path,
    /// and every third step reconfigures — reservations migrate between
    /// the cross registry and shard registries repeatedly.
    #[test]
    fn cross_heavy_swaps_agree(
        tasks in arb_tasks(4),
        ops in vec((0u8..8, 0u64..20, any::<u32>(), any::<u32>()), 24..64),
    ) {
        let ops: Vec<RawOp> =
            ops.iter().map(|&(k, dt, x, y)| (if k % 3 == 0 { 8 } else { k }, dt, x, y)).collect();
        for config in [
            "T_T_T".parse::<ServiceConfig>().unwrap(),
            "J_N_N".parse::<ServiceConfig>().unwrap(),
            "J_J_J".parse::<ServiceConfig>().unwrap(),
        ] {
            run_trace(config, 4, &tasks, &ops);
        }
    }

    /// Reset-heavy traces at two shards: contribution keys removed by idle
    /// resets must route to the owning shard or the cross registry exactly
    /// as the monolithic by-job lookup would.
    #[test]
    fn reset_heavy_sharded_traces_agree(
        tasks in arb_tasks(4),
        ops in vec((0u8..8, 0u64..10, any::<u32>(), any::<u32>()), 24..64),
    ) {
        let ops: Vec<RawOp> =
            ops.iter().map(|&(k, dt, x, y)| (if k % 2 == 0 { 5 } else { k }, dt, x, y)).collect();
        for config in [
            "J_J_J".parse::<ServiceConfig>().unwrap(),
            "J_T_T".parse::<ServiceConfig>().unwrap(),
            "T_T_N".parse::<ServiceConfig>().unwrap(),
        ] {
            run_trace(config, 2, &tasks, &ops);
        }
    }
}
