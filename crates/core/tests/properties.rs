//! Property-based tests for the core scheduling machinery: ledger
//! invariants, admission soundness and rollback, balancer validity, and
//! strategy parsing.

use proptest::collection::vec;
use proptest::prelude::*;

use rtcm_core::admission::AdmissionController;
use rtcm_core::aub::{aub_term, bound_lhs, BOUND_EPSILON};
use rtcm_core::balance::{Assignment, LoadBalancer};
use rtcm_core::ledger::{ContributionKey, Lifetime, UtilizationLedger};
use rtcm_core::priority::assign_edms;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{JobId, ProcessorId, TaskBuilder, TaskId, TaskSet, TaskSpec};
use rtcm_core::time::{Duration, Time};

const PROCS: u16 = 4;

/// Strategy: a small single- or multi-stage task over `PROCS` processors.
fn arb_task(id: u32) -> impl Strategy<Value = TaskSpec> {
    let deadline_ms = 50u64..2_000;
    let stages = vec((1u64..40, 0..PROCS, 0..PROCS), 1..5);
    (deadline_ms, stages, any::<bool>()).prop_map(move |(deadline, stages, periodic)| {
        let deadline = Duration::from_millis(deadline);
        let total: u64 = stages.iter().map(|(e, _, _)| *e).sum();
        // Scale execution times so the chain always fits in the deadline.
        let scale = (deadline.as_millis() / 2).max(1);
        let mut builder = if periodic {
            TaskBuilder::periodic(TaskId(id), deadline)
        } else {
            TaskBuilder::aperiodic(TaskId(id)).deadline(deadline)
        };
        for (exec, primary, replica) in &stages {
            let exec_ms = (exec * scale / total.max(1)).max(1);
            builder = builder.subtask(
                Duration::from_millis(exec_ms),
                ProcessorId(*primary),
                [ProcessorId(*replica)],
            );
        }
        builder.build().expect("generated tasks are valid")
    })
}

fn arb_tasks(n: usize) -> impl Strategy<Value = Vec<TaskSpec>> {
    (0..n as u32).map(arb_task).collect::<Vec<_>>().prop_map(|tasks| tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The AUB term is non-negative and monotone on [0, 1).
    #[test]
    fn aub_term_monotone(a in 0.0f64..0.99, b in 0.0f64..0.99) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(aub_term(lo) >= 0.0);
        prop_assert!(aub_term(lo) <= aub_term(hi) + 1e-12);
    }

    /// Ledger add/remove round-trips leave utilization at zero, and totals
    /// never go negative along the way.
    #[test]
    fn ledger_add_remove_round_trip(
        contributions in vec((0..PROCS, 0u32..50, 0.0f64..0.5), 1..60)
    ) {
        let mut ledger = UtilizationLedger::new(PROCS as usize);
        let mut added = Vec::new();
        for (i, (proc, task, u)) in contributions.into_iter().enumerate() {
            let key = ContributionKey::new(JobId::new(TaskId(task), i as u64), 0);
            let p = ProcessorId(proc);
            ledger.add(p, key, u, Lifetime::Reserved).unwrap();
            added.push((p, key));
        }
        for p in 0..PROCS {
            prop_assert!(ledger.utilization(ProcessorId(p)) >= 0.0);
        }
        for (p, key) in added {
            ledger.remove(p, key);
            prop_assert!(ledger.utilization(p) >= 0.0);
        }
        for p in 0..PROCS {
            prop_assert_eq!(ledger.utilization(ProcessorId(p)), 0.0);
        }
    }

    /// Expiry removes exactly the deadline-bound contributions at or before
    /// `now`, never reserved ones.
    #[test]
    fn ledger_expiry_is_exact(
        deadlines in vec(1u64..1_000, 1..40),
        cut in 1u64..1_000
    ) {
        let mut ledger = UtilizationLedger::new(1);
        for (i, d) in deadlines.iter().enumerate() {
            let key = ContributionKey::new(JobId::new(TaskId(0), i as u64), 0);
            let deadline = Time::ZERO + Duration::from_millis(*d);
            ledger.add(ProcessorId(0), key, 0.01, Lifetime::UntilDeadline(deadline)).unwrap();
        }
        ledger
            .add(
                ProcessorId(0),
                ContributionKey::new(JobId::new(TaskId(1), 0), 0),
                0.01,
                Lifetime::Reserved,
            )
            .unwrap();
        let removed = ledger.expire_until(Time::ZERO + Duration::from_millis(cut));
        let expected = deadlines.iter().filter(|d| **d <= cut).count();
        prop_assert_eq!(removed.len(), expected);
        prop_assert_eq!(
            ledger.contribution_count(ProcessorId(0)),
            deadlines.len() - expected + 1
        );
    }

    /// Whenever the admission controller accepts, the AUB condition holds
    /// for every processor-visit list it tracks; whenever it rejects, the
    /// ledger is exactly as it was before the call.
    #[test]
    fn admission_sound_and_rollback_clean(
        tasks in arb_tasks(12),
        config_idx in 0usize..15
    ) {
        let config = ServiceConfig::all_valid()[config_idx];
        let mut ac = AdmissionController::new(config, PROCS as usize).unwrap();
        let mut now = Time::ZERO;
        for (i, task) in tasks.iter().enumerate() {
            now += Duration::from_millis(7 * (i as u64 % 5));
            // Snapshot after expiry so rejection rollback is observable in
            // isolation (handle_arrival expires lazily on entry).
            ac.expire(now);
            let before = ac.ledger().utilizations();
            let decision = ac.handle_arrival(task, 0, now).unwrap();
            match decision {
                rtcm_core::admission::Decision::Accept { assignment, newly_admitted } => {
                    prop_assert!(assignment.is_valid_for(task));
                    if newly_admitted {
                        // The candidate's own bound must hold.
                        let u = ac.ledger().utilizations();
                        let lhs = bound_lhs(
                            assignment.as_slice().iter().map(|p| u[p.index()]),
                        );
                        prop_assert!(lhs <= 1.0 + BOUND_EPSILON, "lhs = {lhs}");
                    }
                }
                rtcm_core::admission::Decision::Reject { .. } => {
                    let after = ac.ledger().utilizations();
                    for (b, a) in before.iter().zip(&after) {
                        prop_assert!((b - a).abs() < 1e-12, "rollback must not move U");
                    }
                }
            }
        }
    }

    /// The balancer only ever places subtasks on declared candidates, for
    /// every strategy.
    #[test]
    fn balancer_respects_candidates(tasks in arb_tasks(8), strat in 0usize..3) {
        let strategy = rtcm_core::strategy::LbStrategy::all()[strat];
        let mut lb = LoadBalancer::new(strategy);
        let ledger = UtilizationLedger::new(PROCS as usize);
        for task in &tasks {
            let plan = lb.assignment_for(task, &ledger);
            prop_assert!(plan.is_valid_for(task));
        }
    }

    /// Greedy proposals pick a minimal-utilization candidate for the first
    /// stage.
    #[test]
    fn balancer_first_stage_is_argmin(
        task in arb_task(0),
        loads in vec(0.0f64..0.9, PROCS as usize)
    ) {
        let mut ledger = UtilizationLedger::new(PROCS as usize);
        for (p, u) in loads.iter().enumerate() {
            ledger
                .add(
                    ProcessorId(p as u16),
                    ContributionKey::new(JobId::new(TaskId(999), p as u64), 0),
                    *u,
                    Lifetime::Reserved,
                )
                .unwrap();
        }
        let plan = LoadBalancer::propose(&task, &ledger);
        let chosen = plan.processor(0);
        let best = task.subtasks()[0]
            .candidates()
            .map(|c| ledger.utilization(c))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(ledger.utilization(chosen) <= best + 1e-12);
    }

    /// EDMS yields a permutation of 0..n consistent with deadline order.
    #[test]
    fn edms_is_deadline_consistent(tasks in arb_tasks(10)) {
        let set = TaskSet::from_tasks(tasks.clone()).unwrap();
        let prio = assign_edms(&set);
        for a in &tasks {
            for b in &tasks {
                if a.deadline() < b.deadline() {
                    prop_assert!(prio[&a.id()].is_higher_than(prio[&b.id()]));
                }
            }
        }
    }

    /// Label parsing is the inverse of display for every combination.
    #[test]
    fn config_label_round_trip(idx in 0usize..18) {
        let cfg = ServiceConfig::all()[idx];
        let back: ServiceConfig = cfg.label().parse().unwrap();
        prop_assert_eq!(back, cfg);
    }

    /// Assignments built from primaries are always valid and never count as
    /// re-allocations.
    #[test]
    fn primary_assignment_valid(task in arb_task(0)) {
        let plan = Assignment::primaries(&task);
        prop_assert!(plan.is_valid_for(&task));
        prop_assert!(!plan.is_reallocation(&task));
    }

    /// Time arithmetic: (t + d) - t == d and ordering is consistent.
    #[test]
    fn time_arithmetic_round_trip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = Time::from_nanos(t);
        let dur = Duration::from_nanos(d);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert_eq!((time + dur).elapsed_since(time), dur);
        prop_assert!(time + dur >= time);
    }

    /// Duration unit conversions are consistent with nanosecond math.
    #[test]
    fn duration_units_consistent(ms in 0u64..10_000_000) {
        let d = Duration::from_millis(ms);
        prop_assert_eq!(d.as_nanos(), ms * 1_000_000);
        prop_assert_eq!(d.as_micros(), ms * 1_000);
        prop_assert_eq!(d.as_millis(), ms);
        let f = d.as_secs_f64();
        prop_assert!((f - ms as f64 / 1e3).abs() < 1e-9);
        // std round trip.
        let std: std::time::Duration = d.into();
        prop_assert_eq!(Duration::from(std), d);
    }

    /// DelayStats merging equals recording everything into one accumulator.
    #[test]
    fn delay_stats_merge_equals_combined(
        xs in vec(0u64..1_000_000, 0..20),
        ys in vec(0u64..1_000_000, 0..20)
    ) {
        use rtcm_core::metrics::DelayStats;
        let mut a = DelayStats::new();
        let mut b = DelayStats::new();
        let mut combined = DelayStats::new();
        for x in &xs {
            a.record(Duration::from_nanos(*x));
            combined.record(Duration::from_nanos(*x));
        }
        for y in &ys {
            b.record(Duration::from_nanos(*y));
            combined.record(Duration::from_nanos(*y));
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), combined.count());
        prop_assert_eq!(a.max(), combined.max());
        prop_assert_eq!(a.min(), combined.min());
        prop_assert_eq!(a.mean(), combined.mean());
    }

    /// UtilizationRatio merging equals combined recording, and the ratio
    /// stays within [0, 1] whenever releases never exceed arrivals.
    #[test]
    fn ratio_merge_equals_combined(weights in vec((0.01f64..2.0, any::<bool>()), 0..30)) {
        use rtcm_core::metrics::UtilizationRatio;
        let mut parts = [UtilizationRatio::new(), UtilizationRatio::new()];
        let mut combined = UtilizationRatio::new();
        for (i, (w, released)) in weights.iter().enumerate() {
            let part = &mut parts[i % 2];
            part.record_arrival(*w);
            combined.record_arrival(*w);
            if *released {
                part.record_release(*w);
                combined.record_release(*w);
            }
        }
        let mut merged = parts[0];
        merged.merge(&parts[1]);
        prop_assert!((merged.ratio() - combined.ratio()).abs() < 1e-12);
        prop_assert!(merged.ratio() <= 1.0 + 1e-12);
        prop_assert!(merged.ratio() >= 0.0);
    }
}
