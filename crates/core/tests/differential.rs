//! Differential testing of the incremental admission path against the
//! brute-force AUB oracle.
//!
//! The admission controller's hot path answers the system-wide AUB
//! question from cached per-entry sums maintained through a per-processor
//! inverted index (`AdmissionMode::Incremental`). The original
//! re-evaluate-everything scan survives as `AdmissionMode::BruteForce` /
//! `system_schedulable_brute` precisely so it can sit on the other side of
//! this harness: every randomized trace of {arrival, expiry, idle-reset,
//! withdraw, remote-commit, **mid-trace `ServiceConfig` swap**} operations
//! is replayed through both paths under **all 15 valid service
//! configurations** (as the *starting* configuration — swaps then wander
//! the trace across the whole combination lattice, exercising the ledger
//! handover of `AdmissionController::reconfigure`), and the two
//! controllers must agree on every `Decision`, every freed utilization,
//! every `HandoverReport`, and the final ledger state to 1e-9.
//!
//! Each property runs 256 cases (the vendored proptest is deterministic
//! per test, so a green run is exactly reproducible), giving ≥ 256 traces
//! per strategy combination.

use proptest::collection::vec;
use proptest::prelude::*;

use rtcm_core::admission::{AdmissionController, AdmissionMode, Decision};
use rtcm_core::analysis::audit_controller;
use rtcm_core::balance::Assignment;
use rtcm_core::ledger::ContributionKey;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{JobId, ProcessorId, TaskBuilder, TaskId, TaskSet, TaskSpec};
use rtcm_core::time::{Duration, Time};

const PROCS: u16 = 4;

/// One raw trace step; interpreted by [`run_trace`]. Generating plain
/// integers keeps the strategy simple under the vendored proptest (no
/// `prop_oneof`) while still covering every operation kind.
type RawOp = (u8, u64, u32, u32);

/// Strategy: a small single- or multi-stage task over `PROCS` processors,
/// periodic or aperiodic, with execution times scaled into the deadline.
fn arb_task(id: u32) -> impl Strategy<Value = TaskSpec> {
    let deadline_ms = 30u64..300;
    let stages = vec((1u64..30, 0..PROCS, 0..PROCS), 1..4);
    (deadline_ms, stages, any::<bool>()).prop_map(move |(deadline, stages, periodic)| {
        let deadline = Duration::from_millis(deadline);
        let total: u64 = stages.iter().map(|(e, _, _)| *e).sum();
        let scale = (deadline.as_millis() / 2).max(1);
        let mut builder = if periodic {
            TaskBuilder::periodic(TaskId(id), deadline)
        } else {
            TaskBuilder::aperiodic(TaskId(id)).deadline(deadline)
        };
        for (exec, primary, replica) in &stages {
            let exec_ms = (exec * scale / total.max(1)).max(1);
            builder = builder.subtask(
                Duration::from_millis(exec_ms),
                ProcessorId(*primary),
                [ProcessorId(*replica)],
            );
        }
        builder.build().expect("generated tasks are valid")
    })
}

fn arb_tasks(n: usize) -> impl Strategy<Value = Vec<TaskSpec>> {
    #[allow(clippy::cast_possible_truncation)]
    (0..n as u32).map(arb_task).collect::<Vec<_>>().prop_map(|tasks| tasks)
}

/// Replays one trace through paired incremental/brute-force controllers,
/// asserting step-by-step agreement. Returns the number of admission
/// decisions compared.
fn run_trace(config: ServiceConfig, tasks: &[TaskSpec], ops: &[RawOp]) -> usize {
    let procs = usize::from(PROCS);
    let mut inc = AdmissionController::with_mode(config, procs, AdmissionMode::Incremental)
        .expect("valid config");
    let mut brute = AdmissionController::with_mode(config, procs, AdmissionMode::BruteForce)
        .expect("valid config");
    let task_set = TaskSet::from_tasks(tasks.to_vec()).expect("generated ids are unique");

    let mut now = Time::ZERO;
    let mut seqs = vec![0u64; tasks.len()];
    let mut admitted: Vec<(JobId, Assignment)> = Vec::new();
    let mut decisions = 0usize;

    for (step, &(kind, dt, x, y)) in ops.iter().enumerate() {
        now = now.saturating_add(Duration::from_millis(dt % 40));
        let t_idx = (x as usize) % tasks.len();
        let task = &tasks[t_idx];
        match kind % 9 {
            // Weighted toward arrivals: they exercise the decision path.
            0..=3 => {
                let seq = seqs[t_idx];
                seqs[t_idx] += 1;
                let a = inc.handle_arrival(task, seq, now);
                let b = brute.handle_arrival(task, seq, now);
                assert_eq!(a, b, "{config}: step {step} diverged for {}", task.id());
                decisions += 1;
                if let Ok(Decision::Accept { assignment, .. }) = a {
                    admitted.push((JobId::new(task.id(), seq), assignment));
                }
            }
            4 => {
                inc.expire(now);
                brute.expire(now);
            }
            5 => {
                if !admitted.is_empty() {
                    let (job, plan) = &admitted[(y as usize) % admitted.len()];
                    let subtask = (x as usize) % plan.len();
                    let key = ContributionKey::new(*job, subtask);
                    let processor = plan.processor(subtask);
                    let fa = inc.apply_idle_reset(processor, &[key]);
                    let fb = brute.apply_idle_reset(processor, &[key]);
                    assert_eq!(
                        fa.to_bits(),
                        fb.to_bits(),
                        "{config}: step {step} freed different utilization"
                    );
                }
            }
            6 => {
                inc.withdraw_task(task.id());
                brute.withdraw_task(task.id());
            }
            7 => {
                // Un-tested peer load: the one operation that can push
                // current entries over the bound, forcing both paths to
                // remember system-wide violations.
                let seq = seqs[t_idx];
                seqs[t_idx] += 1;
                let plan = Assignment::primaries(task);
                inc.apply_remote_commit(task, seq, now, &plan).expect("primaries are valid");
                brute.apply_remote_commit(task, seq, now, &plan).expect("primaries are valid");
            }
            8 => {
                // Mid-trace configuration swap: both controllers execute
                // the same ledger handover (drain/reseed/axis swaps) and
                // must report identical outcomes.
                let valid = ServiceConfig::all_valid();
                let target = valid[(y as usize) % valid.len()];
                let ra = inc.reconfigure(target, now, &task_set).expect("valid targets");
                let rb = brute.reconfigure(target, now, &task_set).expect("valid targets");
                assert_eq!(ra, rb, "{config}: step {step} handover diverged");
                assert_eq!(inc.config(), target);
            }
            _ => unreachable!(),
        }

        if step % 16 == 15 {
            // The declarative-model audit: cached sums must match fresh
            // recomputation on both sides, mid-trace.
            for (label, ac) in [("incremental", &inc), ("brute", &brute)] {
                let audit = audit_controller(ac);
                assert!(
                    audit.is_consistent(1e-9),
                    "{config}: {label} caches drifted {} at step {step}",
                    audit.max_cached_drift
                );
            }
            assert_eq!(
                inc.system_schedulable_brute(),
                brute.system_schedulable_brute(),
                "{config}: oracle views diverged at step {step}"
            );
        }
    }

    // Final-state agreement.
    let ua = inc.ledger().utilizations();
    let ub = brute.ledger().utilizations();
    for (p, (a, b)) in ua.iter().zip(&ub).enumerate() {
        assert!((a - b).abs() <= 1e-9, "{config}: P{p} utilization {a} vs {b}");
    }
    assert_eq!(inc.current_entries(), brute.current_entries(), "{config}");
    assert_eq!(inc.reserved_tasks(), brute.reserved_tasks(), "{config}");
    let (sa, sb) = (inc.stats(), brute.stats());
    assert_eq!(
        (sa.tested, sa.admitted, sa.rejected, sa.pass_throughs, sa.reset_reports),
        (sb.tested, sb.admitted, sb.rejected, sb.pass_throughs, sb.reset_reports),
        "{config}"
    );
    assert!((sa.reset_utilization - sb.reset_utilization).abs() <= 1e-9, "{config}");
    decisions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline differential property: randomized traces through both
    /// admission paths under every valid strategy combination.
    #[test]
    fn incremental_and_brute_paths_agree(
        tasks in arb_tasks(6),
        ops in vec((any::<u8>(), 0u64..40, any::<u32>(), any::<u32>()), 10..48),
    ) {
        for config in ServiceConfig::all_valid() {
            let decisions = run_trace(config, &tasks, &ops);
            // Traces are arrival-weighted: kinds 0..=3 of 9 are arrivals,
            // so a trace with no decision at all would signal a broken
            // interpreter rather than an unlucky draw... unless the draw
            // really contains no arrival ops, which short traces can.
            let arrivals = ops.iter().filter(|(k, ..)| k % 9 <= 3).count();
            prop_assert_eq!(decisions, arrivals);
        }
    }

    /// Idle-reset heavy traces: most contributions are removed before
    /// their deadline, stressing the ledger's lazy-deletion expiry heap
    /// and the outstanding-count bookkeeping on both paths.
    #[test]
    fn reset_heavy_traces_agree(
        tasks in arb_tasks(4),
        ops in vec((0u8..8, 0u64..10, any::<u32>(), any::<u32>()), 24..64),
    ) {
        // Remap op kinds so half of all steps are idle resets.
        let ops: Vec<RawOp> =
            ops.iter().map(|&(k, dt, x, y)| (if k % 2 == 0 { 5 } else { k }, dt, x, y)).collect();
        for config in [
            "J_J_J".parse::<ServiceConfig>().unwrap(),
            "J_T_T".parse::<ServiceConfig>().unwrap(),
            "T_T_N".parse::<ServiceConfig>().unwrap(),
        ] {
            run_trace(config, &tasks, &ops);
        }
    }

    /// Swap-heavy traces: every third step reconfigures to a random valid
    /// combination, so reservations are drained and reseeded many times
    /// within one trace — the ledger handover must stay agreement- and
    /// audit-clean through arbitrarily long swap chains.
    #[test]
    fn swap_heavy_traces_agree(
        tasks in arb_tasks(4),
        ops in vec((0u8..8, 0u64..20, any::<u32>(), any::<u32>()), 24..64),
    ) {
        let ops: Vec<RawOp> =
            ops.iter().map(|&(k, dt, x, y)| (if k % 3 == 0 { 8 } else { k }, dt, x, y)).collect();
        for config in [
            "T_T_T".parse::<ServiceConfig>().unwrap(),
            "J_N_N".parse::<ServiceConfig>().unwrap(),
            "J_J_J".parse::<ServiceConfig>().unwrap(),
        ] {
            run_trace(config, &tasks, &ops);
        }
    }
}
