//! The ledger handover racing the registry's lazy-deletion expiry heap:
//! a drained reservation leaves deadline-bound sentinel contributions
//! *and* a pending expiry-heap record behind; if the task is reseeded
//! back into a reservation before that deadline passes, the stale heap
//! record must not unregister (or alias) the new reservation when it
//! finally surfaces. The per-registration generation stamps are the
//! defense; these tests pin it under governor-style rapid mode flapping.

use rtcm_core::admission::{AdmissionController, Decision};
use rtcm_core::analysis::audit_controller;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId, TaskSet};
use rtcm_core::time::{Duration, Time};

fn cfg(label: &str) -> ServiceConfig {
    label.parse().unwrap()
}

fn at(ms: u64) -> Time {
    Time::ZERO + Duration::from_millis(ms)
}

fn one_periodic() -> TaskSet {
    let t = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
        .subtask(Duration::from_millis(20), ProcessorId(0), [])
        .build()
        .unwrap();
    TaskSet::from_tasks([t]).unwrap()
}

/// Drain → reseed *before* the drained entry's deadline: the reseed
/// converts the sentinel entry in place (unregistering it early), and the
/// heap still holds a pending expiry record for it. When that record
/// surfaces past the deadline it must be discarded as stale — the live
/// reservation keeps its guarantee.
#[test]
fn reseed_survives_pending_expiry_of_the_drained_entry() {
    let tasks = one_periodic();
    let task = tasks.get(TaskId(0)).unwrap();
    let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();

    let decision = ac.handle_arrival(task, 0, at(0)).unwrap();
    assert!(matches!(decision, Decision::Accept { .. }));
    assert!(ac.is_reserved(TaskId(0)));
    let loaded = ac.ledger().utilizations();

    // Drain at t = 10 ms: reservation → sentinel entry expiring at 110 ms,
    // with a pending lazy-deletion heap record.
    let drain = ac.reconfigure(cfg("J_N_N"), at(10), &tasks).unwrap();
    assert_eq!(drain.reservations_drained, 1);
    assert!(!ac.is_reserved(TaskId(0)));
    assert_eq!(ac.current_entries(), 1);

    // Reseed at t = 20 ms — well before the drained deadline: the sentinel
    // entry is converted back into the reservation in place, leaving its
    // heap record orphaned.
    let reseed = ac.reconfigure(cfg("T_N_N"), at(20), &tasks).unwrap();
    assert_eq!(reseed.reservations_reseeded, 1);
    assert_eq!(reseed.reseeds_skipped, 0);
    assert!(ac.is_reserved(TaskId(0)));

    // t = 200 ms: the orphaned record pops. A generation mismatch must
    // discard it; the reservation (and its ledger contributions) survive.
    ac.expire(at(200));
    assert!(ac.is_reserved(TaskId(0)), "stale expiry must not evict the reseeded reservation");
    assert_eq!(ac.current_entries(), 1);
    assert_eq!(ac.ledger().utilizations(), loaded, "utilization carried through the race");

    let audit = audit_controller(&ac);
    assert!(audit.is_consistent(1e-9), "cached sums drifted {}", audit.max_cached_drift);

    // Later jobs still pass through on the surviving reservation.
    let decision = ac.handle_arrival(task, 1, at(210)).unwrap();
    assert!(matches!(decision, Decision::Accept { newly_admitted: false, .. }));
}

/// The inverse order: drain and let the sentinel *expire normally* — the
/// capacity must actually free (the drained guarantee covers only the
/// in-flight window).
#[test]
fn drained_entry_expires_and_frees_capacity_when_not_reseeded() {
    let tasks = one_periodic();
    let task = tasks.get(TaskId(0)).unwrap();
    let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
    ac.handle_arrival(task, 0, at(0)).unwrap();

    let drain = ac.reconfigure(cfg("J_N_N"), at(10), &tasks).unwrap();
    assert_eq!(drain.reservations_drained, 1);

    // Before the drained deadline (110 ms) the contributions still guard
    // the in-flight window.
    ac.expire(at(100));
    assert_eq!(ac.current_entries(), 1);
    assert!(ac.ledger().utilizations()[0] > 0.0);

    // Past it, the registry and ledger both drain to empty.
    ac.expire(at(120));
    assert_eq!(ac.current_entries(), 0);
    assert!(ac.ledger().utilizations()[0].abs() < 1e-12);
    let audit = audit_controller(&ac);
    assert!(audit.is_consistent(1e-9));
}

/// Governor-style flapping: many drain/reseed round trips inside one
/// deadline window pile up orphaned heap records on the same task. Every
/// one of them must be discarded by the generation check, and the
/// bookkeeping must come out drift-free.
#[test]
fn rapid_mode_flapping_leaves_no_aliasing_and_no_drift() {
    let tasks = one_periodic();
    let task = tasks.get(TaskId(0)).unwrap();
    let mut ac = AdmissionController::new(cfg("T_N_N"), 1).unwrap();
    ac.handle_arrival(task, 0, at(0)).unwrap();
    let loaded = ac.ledger().utilizations();

    // 40 full round trips, 1 ms apart: each drain queues a fresh expiry
    // record; each reseed orphans it.
    for i in 0..40u64 {
        let now = at(1 + 2 * i);
        let drain = ac.reconfigure(cfg("J_N_N"), now, &tasks).unwrap();
        assert_eq!(drain.reservations_drained, 1, "cycle {i}");
        let reseed = ac.reconfigure(cfg("T_N_N"), now + Duration::from_millis(1), &tasks).unwrap();
        assert_eq!(reseed.reservations_reseeded, 1, "cycle {i}");
    }
    assert!(ac.is_reserved(TaskId(0)));
    assert_eq!(ac.current_entries(), 1);

    // Flush every orphaned record far past all drained deadlines.
    ac.expire(at(10_000));
    assert!(ac.is_reserved(TaskId(0)), "40 stale records, zero evictions");
    assert_eq!(ac.current_entries(), 1);
    for (have, want) in ac.ledger().utilizations().iter().zip(&loaded) {
        assert!((have - want).abs() < 1e-9, "utilization drifted: {have} vs {want}");
    }
    let audit = audit_controller(&ac);
    assert!(audit.is_consistent(1e-9), "cached sums drifted {}", audit.max_cached_drift);
    assert_eq!(audit.violating_entries, 0);
    let drift = ac.reconcile();
    assert!(drift < 1e-9, "reconcile corrected {drift}");
}

/// Cross-shard migration through a swap on the sharded plane: a
/// reservation whose candidates span two shards lives in the cross
/// registry; draining turns it into per-shard sentinel contributions and
/// reseeding pulls it back — all without losing utilization or drifting
/// any shard ledger. The per-shard `recompute_totals` reconciliation must
/// come back clean on every shard, identified by index.
#[test]
fn cross_shard_swap_migrates_entries_losslessly() {
    use rtcm_core::shard::ShardedAdmissionController;

    // Four processors, two shards: the task's primary is on shard 0 and
    // its replica on shard 1, so the reservation is cross-homed.
    let spanning = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
        .subtask(Duration::from_millis(20), ProcessorId(0), [ProcessorId(3)])
        .build()
        .unwrap();
    // A single-homed neighbor on shard 1 keeps that shard's ledger busy
    // while the spanning entry migrates.
    let homed = TaskBuilder::periodic(TaskId(1), Duration::from_millis(100))
        .subtask(Duration::from_millis(15), ProcessorId(2), [ProcessorId(3)])
        .build()
        .unwrap();
    let tasks = TaskSet::from_tasks([spanning.clone(), homed.clone()]).unwrap();
    let sharded = ShardedAdmissionController::new(cfg("T_N_N"), 4, 2).unwrap();
    let mut mono = AdmissionController::new(cfg("T_N_N"), 4).unwrap();

    for (seq, task) in [(0u64, &spanning), (0, &homed)] {
        let a = sharded.handle_arrival(task, seq, at(0)).unwrap();
        let b = mono.handle_arrival(task, seq, at(0)).unwrap();
        assert_eq!(a, b);
        assert!(matches!(a, Decision::Accept { .. }));
    }
    assert_eq!(sharded.reserved_tasks(), 2);
    let loaded = sharded.utilizations();
    assert_eq!(loaded, mono.ledger().utilizations());

    // Drain: both reservations become sentinel entries. The cross-homed
    // one leaves contributions pinned on both shards.
    let drain_s = sharded.reconfigure(cfg("J_N_N"), at(10), &tasks).unwrap();
    let drain_m = mono.reconfigure(cfg("J_N_N"), at(10), &tasks).unwrap();
    assert_eq!(drain_s, drain_m);
    assert_eq!(drain_s.reservations_drained, 2);
    assert_eq!(sharded.reserved_tasks(), 0);
    assert_eq!(sharded.current_entries(), 2);
    assert_eq!(sharded.utilizations(), mono.ledger().utilizations());

    // Reseed before the drained deadlines: entries migrate back into
    // reservations (the cross-homed one re-enters the cross registry).
    let reseed_s = sharded.reconfigure(cfg("T_N_N"), at(20), &tasks).unwrap();
    let reseed_m = mono.reconfigure(cfg("T_N_N"), at(20), &tasks).unwrap();
    assert_eq!(reseed_s, reseed_m);
    assert_eq!(reseed_s.reservations_reseeded, 2);
    assert_eq!(reseed_s.reseeds_skipped, 0);
    assert!(sharded.is_reserved(TaskId(0)));
    assert!(sharded.is_reserved(TaskId(1)));

    // Flush the orphaned drain records far past their deadlines: the
    // reseeded reservations survive and utilization is carried exactly.
    sharded.expire(at(10_000));
    mono.expire(at(10_000));
    assert_eq!(sharded.reserved_tasks(), 2, "stale expiry evicted a migrated reservation");
    assert_eq!(sharded.current_entries(), 2);
    for (have, want) in sharded.utilizations().iter().zip(&loaded) {
        assert!((have - want).abs() < 1e-9, "utilization drifted: {have} vs {want}");
    }
    assert_eq!(sharded.utilizations(), mono.ledger().utilizations());

    // Zero ledger drift, reported per shard.
    for drift in sharded.reconcile() {
        assert!(
            drift.drift.max_drift < 1e-9,
            "shard {} reconcile corrected {}",
            drift.shard,
            drift.drift.max_drift
        );
    }
    for audit in sharded.audit() {
        assert!(audit.audit.is_consistent(1e-9), "shard {} caches drifted", audit.shard);
        assert!(audit.summary_coherent, "shard {} summary stale", audit.shard);
    }

    // Later jobs still pass through on both sides.
    let a = sharded.handle_arrival(&spanning, 1, at(10_100)).unwrap();
    let b = mono.handle_arrival(&spanning, 1, at(10_100)).unwrap();
    assert_eq!(a, b);
    assert!(matches!(a, Decision::Accept { newly_admitted: false, .. }));
}
