//! Arrival traces: deterministic, replayable job arrival sequences.
//!
//! The paper compares 15 strategy combinations on *the same* ten task sets;
//! for that comparison to be meaningful the arrival pattern must also be
//! identical across combinations. We therefore pre-generate an
//! [`ArrivalTrace`] per (task set, seed) and replay it into the simulator
//! for every combination.
//!
//! * **Periodic tasks** release every period, starting at a random phase in
//!   `[0, period)` (the paper does not stagger explicitly, but its
//!   "synthetic utilization 0.5 *if* all tasks arrive simultaneously"
//!   phrasing implies non-simultaneous arrivals; phase randomization is the
//!   standard way to realize that and is seedable here).
//! * **Aperiodic tasks** arrive as a Poisson process: exponential
//!   interarrival times with mean `poisson_factor × deadline`. The paper
//!   does not state its rate; 2× the deadline is our documented default,
//!   and the ablation benches sweep the factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rtcm_core::task::{TaskId, TaskSet};
use rtcm_core::time::{Duration, Time};

/// How periodic tasks are phased at the start of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Phasing {
    /// Every periodic task releases its first job at time zero.
    Simultaneous,
    /// Each periodic task starts at an independent uniform phase in
    /// `[0, period)`.
    #[default]
    RandomPhase,
}

/// Parameters for trace generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Arrivals are generated in `[0, horizon)`.
    pub horizon: Duration,
    /// Mean aperiodic interarrival = `poisson_factor × deadline`.
    pub poisson_factor: f64,
    /// Periodic phasing policy.
    pub phasing: Phasing,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            horizon: Duration::from_secs(300), // the paper's 5-minute runs
            poisson_factor: 2.0,
            phasing: Phasing::RandomPhase,
        }
    }
}

/// One job arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival instant.
    pub time: Time,
    /// The owning task.
    pub task: TaskId,
    /// Job sequence number within the task (0-based).
    pub seq: u64,
}

/// A time-sorted sequence of job arrivals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    /// Generates the trace for `tasks` under `config`, deterministically in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config.poisson_factor` is not positive and finite.
    #[must_use]
    pub fn generate(tasks: &TaskSet, config: &ArrivalConfig, seed: u64) -> Self {
        assert!(
            config.poisson_factor.is_finite() && config.poisson_factor > 0.0,
            "poisson_factor must be positive and finite"
        );
        let mut arrivals = Vec::new();
        // One independent deterministic stream per task, so adding a task
        // does not reshuffle the others.
        for task in tasks.iter() {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0xA076_1D64_78BD_642F_u64.wrapping_mul(u64::from(task.id().0) + 1)),
            );
            match task.kind().period() {
                Some(period) => {
                    let phase = match config.phasing {
                        Phasing::Simultaneous => Duration::ZERO,
                        Phasing::RandomPhase => {
                            Duration::from_nanos(rng.gen_range(0..period.as_nanos().max(1)))
                        }
                    };
                    let mut t = Time::ZERO + phase;
                    let mut seq = 0u64;
                    while t.elapsed_since(Time::ZERO) < config.horizon {
                        arrivals.push(Arrival { time: t, task: task.id(), seq });
                        seq += 1;
                        t += period;
                    }
                }
                None => {
                    let mean = task.deadline().mul_f64(config.poisson_factor);
                    let mut t = Time::ZERO + exponential(&mut rng, mean);
                    let mut seq = 0u64;
                    while t.elapsed_since(Time::ZERO) < config.horizon {
                        arrivals.push(Arrival { time: t, task: task.id(), seq });
                        seq += 1;
                        t += exponential(&mut rng, mean);
                    }
                }
            }
        }
        arrivals.sort_by_key(|a| (a.time, a.task, a.seq));
        ArrivalTrace { arrivals }
    }

    /// Builds a trace from raw arrivals (sorted internally). Used by
    /// scenario generators that need non-homogeneous arrival processes.
    #[must_use]
    pub fn from_arrivals(mut arrivals: Vec<Arrival>) -> Self {
        arrivals.sort_by_key(|a| (a.time, a.task, a.seq));
        ArrivalTrace { arrivals }
    }

    /// The arrivals, sorted by time.
    #[must_use]
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Iterates over the arrivals in time order.
    pub fn iter(&self) -> impl Iterator<Item = &Arrival> {
        self.arrivals.iter()
    }

    /// Number of arrivals in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Returns true if the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Total utilization weight offered by the trace (the denominator of
    /// the accepted utilization ratio): `Σ_jobs Σ_j C/D`.
    #[must_use]
    pub fn offered_utilization(&self, tasks: &TaskSet) -> f64 {
        self.arrivals
            .iter()
            .filter_map(|a| tasks.get(a.task))
            .map(rtcm_core::task::TaskSpec::job_utilization)
            .sum()
    }
}

impl<'a> IntoIterator for &'a ArrivalTrace {
    type Item = &'a Arrival;
    type IntoIter = std::slice::Iter<'a, Arrival>;

    fn into_iter(self) -> Self::IntoIter {
        self.arrivals.iter()
    }
}

/// Samples an exponential with the given mean via inverse transform.
fn exponential(rng: &mut StdRng, mean: Duration) -> Duration {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    mean.mul_f64(-u.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::RandomWorkload;
    use rtcm_core::task::{ProcessorId, TaskBuilder};

    fn small_set() -> TaskSet {
        let periodic = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(5), ProcessorId(0), [])
            .build()
            .unwrap();
        let aperiodic = TaskBuilder::aperiodic(TaskId(1))
            .deadline(Duration::from_millis(200))
            .subtask(Duration::from_millis(5), ProcessorId(0), [])
            .build()
            .unwrap();
        TaskSet::from_tasks([periodic, aperiodic]).unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let set = small_set();
        let cfg = ArrivalConfig::default();
        let a = ArrivalTrace::generate(&set, &cfg, 1);
        let b = ArrivalTrace::generate(&set, &cfg, 1);
        assert_eq!(a, b);
        let c = ArrivalTrace::generate(&set, &cfg, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn sorted_by_time() {
        let set = RandomWorkload::default().generate(3).unwrap();
        let trace = ArrivalTrace::generate(&set, &ArrivalConfig::default(), 3);
        for pair in trace.arrivals().windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn periodic_arrivals_are_spaced_by_period() {
        let set = small_set();
        let cfg = ArrivalConfig { horizon: Duration::from_secs(1), ..ArrivalConfig::default() };
        let trace = ArrivalTrace::generate(&set, &cfg, 5);
        let times: Vec<Time> =
            trace.iter().filter(|a| a.task == TaskId(0)).map(|a| a.time).collect();
        assert!(!times.is_empty());
        for pair in times.windows(2) {
            assert_eq!(pair[1] - pair[0], Duration::from_millis(100));
        }
        // Sequence numbers are dense.
        let seqs: Vec<u64> = trace.iter().filter(|a| a.task == TaskId(0)).map(|a| a.seq).collect();
        assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn simultaneous_phasing_starts_at_zero() {
        let set = small_set();
        let cfg = ArrivalConfig {
            phasing: Phasing::Simultaneous,
            horizon: Duration::from_millis(500),
            ..ArrivalConfig::default()
        };
        let trace = ArrivalTrace::generate(&set, &cfg, 5);
        let first_periodic = trace.iter().find(|a| a.task == TaskId(0)).unwrap();
        assert_eq!(first_periodic.time, Time::ZERO);
    }

    #[test]
    fn random_phase_is_within_one_period() {
        let set = small_set();
        let cfg = ArrivalConfig { horizon: Duration::from_secs(1), ..ArrivalConfig::default() };
        for seed in 0..20 {
            let trace = ArrivalTrace::generate(&set, &cfg, seed);
            let first = trace.iter().find(|a| a.task == TaskId(0)).unwrap();
            assert!(first.time.elapsed_since(Time::ZERO) < Duration::from_millis(100));
        }
    }

    #[test]
    fn poisson_mean_is_roughly_factor_times_deadline() {
        // Aperiodic task with 200 ms deadline, factor 2 -> mean 400 ms.
        let set = small_set();
        let cfg = ArrivalConfig {
            horizon: Duration::from_secs(400),
            poisson_factor: 2.0,
            ..ArrivalConfig::default()
        };
        let trace = ArrivalTrace::generate(&set, &cfg, 11);
        let n = trace.iter().filter(|a| a.task == TaskId(1)).count();
        let expected = 400.0 / 0.4;
        let deviation = (n as f64 - expected).abs() / expected;
        assert!(deviation < 0.15, "got {n} arrivals, expected ≈ {expected}");
    }

    #[test]
    fn offered_utilization_weights_jobs() {
        let set = small_set();
        let cfg = ArrivalConfig {
            horizon: Duration::from_millis(300),
            phasing: Phasing::Simultaneous,
            ..ArrivalConfig::default()
        };
        let trace = ArrivalTrace::generate(&set, &cfg, 1);
        let periodic_jobs = trace.iter().filter(|a| a.task == TaskId(0)).count() as f64;
        let aperiodic_jobs = trace.iter().filter(|a| a.task == TaskId(1)).count() as f64;
        let expected = periodic_jobs * 0.05 + aperiodic_jobs * 0.025;
        assert!((trace.offered_utilization(&set) - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "poisson_factor")]
    fn zero_poisson_factor_panics() {
        let set = small_set();
        let cfg = ArrivalConfig { poisson_factor: 0.0, ..ArrivalConfig::default() };
        let _ = ArrivalTrace::generate(&set, &cfg, 0);
    }
}
