//! Domain scenarios beyond the paper's two workloads — most importantly
//! the **aperiodic burst**, the situation the paper's introduction and
//! §7.2 motivate: "a blockage in a fluid flow valve may cause a sharp
//! increase in the load on the processors immediately connected to it, as
//! aperiodic alert and diagnostic tasks are launched."
//!
//! [`BurstScenario`] generates a §7.1-style task set plus an arrival trace
//! whose aperiodic arrival rate is multiplied by `intensity` inside a
//! burst window — a piecewise-constant non-homogeneous Poisson process
//! (sampled exactly: exponential memorylessness lets the sampler restart
//! at each rate boundary).
//!
//! # Examples
//!
//! ```
//! use rtcm_core::time::Duration;
//! use rtcm_workload::scenario::BurstScenario;
//!
//! let scenario = BurstScenario::default();
//! let (tasks, trace) = scenario.generate(1)?;
//! assert_eq!(tasks.len(), 9);
//! assert!(!trace.is_empty());
//! # let _ = Duration::ZERO;
//! # Ok::<(), rtcm_workload::WorkloadError>(())
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rtcm_core::reconfig::ModeSchedule;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::TaskSet;
use rtcm_core::time::{Duration, Time};

use crate::arrivals::{Arrival, ArrivalTrace, Phasing};
use crate::generate::{RandomWorkload, WorkloadError};

/// A transient aperiodic overload on top of a random workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstScenario {
    /// The underlying task-set shape.
    pub workload: RandomWorkload,
    /// Total trace horizon.
    pub horizon: Duration,
    /// Nominal mean aperiodic interarrival = `poisson_factor × deadline`.
    pub poisson_factor: f64,
    /// Periodic phasing.
    pub phasing: Phasing,
    /// Burst window start.
    pub burst_start: Duration,
    /// Burst window length.
    pub burst_duration: Duration,
    /// Arrival-rate multiplier inside the window (≥ 1).
    pub intensity: f64,
}

impl Default for BurstScenario {
    fn default() -> Self {
        BurstScenario {
            workload: RandomWorkload::default(),
            horizon: Duration::from_secs(120),
            poisson_factor: 2.0,
            phasing: Phasing::RandomPhase,
            burst_start: Duration::from_secs(40),
            burst_duration: Duration::from_secs(20),
            intensity: 8.0,
        }
    }
}

impl BurstScenario {
    /// End of the burst window.
    #[must_use]
    pub fn burst_end(&self) -> Duration {
        self.burst_start + self.burst_duration
    }

    /// Returns true if `t` lies inside the burst window.
    #[must_use]
    pub fn in_burst(&self, t: Time) -> bool {
        let offset = t.elapsed_since(Time::ZERO);
        offset >= self.burst_start && offset < self.burst_end()
    }

    /// Generates the task set and its burst-shaped arrival trace.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for inconsistent parameters (zero/negative
    /// intensity or factor, burst outside the horizon) or unsatisfiable
    /// workload shapes.
    pub fn generate(&self, seed: u64) -> Result<(TaskSet, ArrivalTrace), WorkloadError> {
        validate_burst_window(
            self.intensity,
            self.poisson_factor,
            self.burst_start,
            self.burst_end(),
            self.horizon,
        )?;
        let tasks = self.workload.generate(seed)?;
        let mut arrivals = Vec::new();
        for task in tasks.iter() {
            let mut rng = task_stream(seed, task.id());
            match task.kind().period() {
                Some(period) => push_periodic_arrivals(
                    &mut rng,
                    period,
                    self.phasing,
                    self.horizon,
                    task.id(),
                    &mut arrivals,
                ),
                None => {
                    let base_mean = task.deadline().mul_f64(self.poisson_factor);
                    sample_piecewise_poisson(
                        &mut rng,
                        base_mean,
                        base_mean.mul_f64(1.0 / self.intensity),
                        self.burst_start,
                        self.burst_end(),
                        self.horizon,
                        task.id(),
                        &mut arrivals,
                    );
                }
            }
        }
        Ok((tasks, ArrivalTrace::from_arrivals(arrivals)))
    }
}

/// Per-task deterministic RNG stream, independent of iteration order.
fn task_stream(seed: u64, task: rtcm_core::task::TaskId) -> StdRng {
    StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(u64::from(task.0) + 1)))
}

fn validate_burst_window(
    intensity: f64,
    poisson_factor: f64,
    burst_start: Duration,
    burst_end: Duration,
    horizon: Duration,
) -> Result<(), WorkloadError> {
    if !(intensity.is_finite() && intensity >= 1.0) {
        return Err(WorkloadError::Parameters(format!(
            "burst intensity {intensity} must be finite and >= 1"
        )));
    }
    if !(poisson_factor.is_finite() && poisson_factor > 0.0) {
        return Err(WorkloadError::Parameters(format!(
            "poisson factor {poisson_factor} must be positive and finite"
        )));
    }
    if burst_end > horizon {
        return Err(WorkloadError::Parameters(format!(
            "burst window [{burst_start}, {burst_end}) extends beyond the horizon {horizon}"
        )));
    }
    Ok(())
}

/// Strict periodic releases with the configured phasing.
fn push_periodic_arrivals(
    rng: &mut StdRng,
    period: Duration,
    phasing: Phasing,
    horizon: Duration,
    task: rtcm_core::task::TaskId,
    out: &mut Vec<Arrival>,
) {
    let phase = match phasing {
        Phasing::Simultaneous => Duration::ZERO,
        Phasing::RandomPhase => Duration::from_nanos(rng.gen_range(0..period.as_nanos().max(1))),
    };
    let mut t = Time::ZERO + phase;
    let mut seq = 0;
    while t.elapsed_since(Time::ZERO) < horizon {
        out.push(Arrival { time: t, task, seq });
        seq += 1;
        t += period;
    }
}

/// Piecewise-constant non-homogeneous Poisson sampling: advance with the
/// current window's mean interarrival (`burst_mean` inside
/// `[burst_start, burst_end)`, `base_mean` outside); a jump crossing a
/// window boundary is clamped to the boundary and resampled (exact, by
/// memorylessness).
#[allow(clippy::too_many_arguments)]
fn sample_piecewise_poisson(
    rng: &mut StdRng,
    base_mean: Duration,
    burst_mean: Duration,
    burst_start: Duration,
    burst_end: Duration,
    horizon: Duration,
    task: rtcm_core::task::TaskId,
    out: &mut Vec<Arrival>,
) {
    let mut t = Duration::ZERO;
    let mut seq = 0;
    loop {
        let (mean, window_end) = if t < burst_start {
            (base_mean, burst_start)
        } else if t < burst_end {
            (burst_mean, burst_end)
        } else {
            (base_mean, horizon)
        };
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let step = mean.mul_f64(-u.ln());
        let next = t + step;
        if next >= horizon {
            if window_end >= horizon {
                break;
            }
            // The jump crossed into the next window before the horizon:
            // clamp and resample from the boundary.
            t = window_end;
            continue;
        }
        if next >= window_end && window_end < horizon {
            t = window_end;
            continue;
        }
        t = next;
        out.push(Arrival { time: Time::ZERO + t, task, seq });
        seq += 1;
    }
}

/// A **correlated** overload: simultaneous aperiodic bursts on *multiple*
/// processors at once — the paper's motivating cascade ("a blockage …
/// increase[s] the load on the processors immediately connected to it")
/// scaled up to a plant-wide event that floods several processors in the
/// same window. Load balancing alone cannot absorb it (every replica
/// group is busy too), which is exactly the situation an adaptation
/// governor must detect and defend against; `examples/governed_recovery.rs`
/// uses this scenario to stress the closed loop.
///
/// Aperiodic tasks whose *arrival processor* (first subtask's primary) is
/// in [`CorrelatedBurstScenario::processors`] burst together during the
/// window; others keep their nominal rate. An empty processor list bursts
/// **every** processor simultaneously.
///
/// # Examples
///
/// ```
/// use rtcm_workload::CorrelatedBurstScenario;
///
/// let scenario = CorrelatedBurstScenario::default();
/// let (tasks, trace) = scenario.generate(3)?;
/// assert!(!trace.is_empty());
/// # let _ = tasks;
/// # Ok::<(), rtcm_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedBurstScenario {
    /// The underlying task-set shape.
    pub workload: RandomWorkload,
    /// Total trace horizon.
    pub horizon: Duration,
    /// Nominal mean aperiodic interarrival = `poisson_factor × deadline`.
    pub poisson_factor: f64,
    /// Periodic phasing.
    pub phasing: Phasing,
    /// Burst window start (shared by every affected processor — the
    /// correlation).
    pub burst_start: Duration,
    /// Burst window length.
    pub burst_duration: Duration,
    /// Arrival-rate multiplier inside the window (≥ 1).
    pub intensity: f64,
    /// Arrival processors hit simultaneously; empty = all of them.
    pub processors: Vec<u16>,
}

impl Default for CorrelatedBurstScenario {
    fn default() -> Self {
        CorrelatedBurstScenario {
            workload: RandomWorkload::default(),
            horizon: Duration::from_secs(120),
            poisson_factor: 2.0,
            phasing: Phasing::RandomPhase,
            burst_start: Duration::from_secs(40),
            burst_duration: Duration::from_secs(20),
            intensity: 8.0,
            processors: Vec::new(),
        }
    }
}

impl CorrelatedBurstScenario {
    /// End of the burst window.
    #[must_use]
    pub fn burst_end(&self) -> Duration {
        self.burst_start + self.burst_duration
    }

    /// Returns true if `t` lies inside the burst window.
    #[must_use]
    pub fn in_burst(&self, t: Time) -> bool {
        let offset = t.elapsed_since(Time::ZERO);
        offset >= self.burst_start && offset < self.burst_end()
    }

    /// True if an aperiodic task arriving on `processor` bursts.
    #[must_use]
    pub fn hits_processor(&self, processor: u16) -> bool {
        self.processors.is_empty() || self.processors.contains(&processor)
    }

    /// Generates the task set and its correlated-burst arrival trace.
    ///
    /// # Errors
    ///
    /// As [`BurstScenario::generate`], plus a parameter error when a
    /// listed processor is outside the workload's processor range.
    pub fn generate(&self, seed: u64) -> Result<(TaskSet, ArrivalTrace), WorkloadError> {
        validate_burst_window(
            self.intensity,
            self.poisson_factor,
            self.burst_start,
            self.burst_end(),
            self.horizon,
        )?;
        if let Some(&bad) = self.processors.iter().find(|p| **p >= self.workload.processors) {
            return Err(WorkloadError::Parameters(format!(
                "burst processor {bad} outside the workload's 0..{} range",
                self.workload.processors
            )));
        }
        let tasks = self.workload.generate(seed)?;
        let mut arrivals = Vec::new();
        for task in tasks.iter() {
            let mut rng = task_stream(seed, task.id());
            match task.kind().period() {
                Some(period) => push_periodic_arrivals(
                    &mut rng,
                    period,
                    self.phasing,
                    self.horizon,
                    task.id(),
                    &mut arrivals,
                ),
                None => {
                    let base_mean = task.deadline().mul_f64(self.poisson_factor);
                    let arrival_proc = task.subtasks()[0].primary.0;
                    let burst_mean = if self.hits_processor(arrival_proc) {
                        base_mean.mul_f64(1.0 / self.intensity)
                    } else {
                        base_mean // unaffected: homogeneous throughout
                    };
                    sample_piecewise_poisson(
                        &mut rng,
                        base_mean,
                        burst_mean,
                        self.burst_start,
                        self.burst_end(),
                        self.horizon,
                        task.id(),
                        &mut arrivals,
                    );
                }
            }
        }
        Ok((tasks, ArrivalTrace::from_arrivals(arrivals)))
    }
}

/// A sustained **event storm**: every aperiodic task fires at a high
/// Poisson rate across the *entire* horizon — no burst window, no relief.
/// Where [`BurstScenario`] models a transient overload the admission
/// control must survive, the storm models the paper's testbed at its
/// event-handling limit: a steady flood in which every arrival crosses
/// the federated channel (Task Arrive → Accept/Reject → Trigger → Idle
/// Reset), so middleware overhead — not schedulability — dominates. It is
/// the workload behind the `micro_events` fast-path numbers at system
/// scale.
///
/// `poisson_factor` is the mean interarrival in units of each task's
/// deadline; the default 0.02 fires each aperiodic task about fifty times
/// per deadline — a hundredfold the nominal `2.0` of [`BurstScenario`]'s
/// calm phase, thousands of channel crossings per minute on the §7.1
/// task set.
///
/// # Examples
///
/// ```
/// use rtcm_workload::EventStormScenario;
///
/// let scenario = EventStormScenario::default();
/// let (tasks, trace) = scenario.generate(1)?;
/// assert!(trace.len() > 1000, "a storm floods the channel");
/// # let _ = tasks;
/// # Ok::<(), rtcm_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventStormScenario {
    /// The underlying task-set shape.
    pub workload: RandomWorkload,
    /// Total trace horizon.
    pub horizon: Duration,
    /// Mean aperiodic interarrival = `poisson_factor × deadline`
    /// (smaller ⇒ denser storm; must be positive).
    pub poisson_factor: f64,
    /// Periodic phasing.
    pub phasing: Phasing,
}

impl Default for EventStormScenario {
    fn default() -> Self {
        EventStormScenario {
            workload: RandomWorkload::default(),
            horizon: Duration::from_secs(60),
            poisson_factor: 0.02,
            phasing: Phasing::RandomPhase,
        }
    }
}

impl EventStormScenario {
    /// Expected aperiodic arrival rate (events/second) of the storm over
    /// `tasks`: `Σ 1 / (poisson_factor × deadline)` over aperiodic tasks.
    #[must_use]
    pub fn expected_aperiodic_rate(&self, tasks: &TaskSet) -> f64 {
        tasks
            .iter()
            .filter(|t| !t.is_periodic())
            .map(|t| 1.0 / t.deadline().mul_f64(self.poisson_factor).as_secs_f64())
            .sum()
    }

    /// Generates the task set and its storm-shaped arrival trace.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for non-positive/non-finite
    /// `poisson_factor` or unsatisfiable workload shapes.
    pub fn generate(&self, seed: u64) -> Result<(TaskSet, ArrivalTrace), WorkloadError> {
        if !(self.poisson_factor.is_finite() && self.poisson_factor > 0.0) {
            return Err(WorkloadError::Parameters(format!(
                "storm poisson factor {} must be positive and finite",
                self.poisson_factor
            )));
        }
        let tasks = self.workload.generate(seed)?;
        let mut arrivals = Vec::new();
        for task in tasks.iter() {
            let mut rng = task_stream(seed, task.id());
            match task.kind().period() {
                Some(period) => push_periodic_arrivals(
                    &mut rng,
                    period,
                    self.phasing,
                    self.horizon,
                    task.id(),
                    &mut arrivals,
                ),
                None => {
                    // Homogeneous storm: the "burst" window is empty, so
                    // the sampler runs at the storm mean throughout.
                    let mean = task.deadline().mul_f64(self.poisson_factor);
                    sample_piecewise_poisson(
                        &mut rng,
                        mean,
                        mean,
                        Duration::ZERO,
                        Duration::ZERO,
                        self.horizon,
                        task.id(),
                        &mut arrivals,
                    );
                }
            }
        }
        Ok((tasks, ArrivalTrace::from_arrivals(arrivals)))
    }
}

/// A [`BurstScenario`] paired with a **defensive mode change**: the system
/// starts in a vulnerable baseline configuration, and a timed
/// [`ModeSchedule`] switches it to a defensive configuration mid-burst
/// (and optionally back once the storm has passed) — the mode-change
/// experiment behind `examples/live_reconfig.rs`.
///
/// The canonical instance is an overloaded per-job system recovering by
/// switching to per-task admission: the swap reseeds the currently live
/// periodic tasks into reservations, so the periodic baseline stops
/// competing with (and losing to) the aperiodic alert flood.
///
/// # Examples
///
/// ```
/// use rtcm_workload::ModeChangeScenario;
///
/// let scenario = ModeChangeScenario::default();
/// let (tasks, trace, schedule) = scenario.generate(7)?;
/// assert!(!trace.is_empty());
/// assert_eq!(schedule.len(), 2, "switch in, relax out");
/// # let _ = tasks;
/// # Ok::<(), rtcm_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeChangeScenario {
    /// The overload being defended against.
    pub burst: BurstScenario,
    /// Configuration the system starts in.
    pub baseline: ServiceConfig,
    /// Configuration switched to mid-burst.
    pub defensive: ServiceConfig,
    /// Delay from burst onset to the defensive switch (detection lag).
    pub trigger_delay: Duration,
    /// Delay after burst end before switching back to the baseline;
    /// `None` stays defensive for the rest of the run.
    pub relax_delay: Option<Duration>,
}

impl Default for ModeChangeScenario {
    fn default() -> Self {
        ModeChangeScenario {
            burst: BurstScenario::default(),
            baseline: "J_N_N".parse().expect("static label"),
            defensive: "T_T_T".parse().expect("static label"),
            trigger_delay: Duration::from_secs(5),
            relax_delay: Some(Duration::from_secs(10)),
        }
    }
}

impl ModeChangeScenario {
    /// The instant of the defensive switch.
    #[must_use]
    pub fn switch_at(&self) -> Time {
        Time::ZERO + self.burst.burst_start + self.trigger_delay
    }

    /// The timed schedule: defensive switch mid-burst, optional relax
    /// back to the baseline after the burst.
    #[must_use]
    pub fn schedule(&self) -> ModeSchedule {
        let mut schedule = ModeSchedule::new().then_at(self.switch_at(), self.defensive);
        if let Some(relax) = self.relax_delay {
            schedule.push(Time::ZERO + self.burst.burst_end() + relax, self.baseline);
        }
        schedule
    }

    /// Generates the task set, the burst-shaped arrival trace, and the
    /// defensive mode schedule.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for invalid configurations (§4.5), a
    /// switch instant outside the burst window, or any underlying
    /// [`BurstScenario`] parameter error.
    pub fn generate(
        &self,
        seed: u64,
    ) -> Result<(TaskSet, ArrivalTrace, ModeSchedule), WorkloadError> {
        for cfg in [self.baseline, self.defensive] {
            if !cfg.is_valid() {
                return Err(WorkloadError::Parameters(format!(
                    "mode-change scenario uses invalid combination {cfg}"
                )));
            }
        }
        if self.burst.burst_start + self.trigger_delay >= self.burst.burst_end() {
            return Err(WorkloadError::Parameters(format!(
                "defensive switch at {} misses the burst window [{}, {})",
                self.burst.burst_start + self.trigger_delay,
                self.burst.burst_start,
                self.burst.burst_end()
            )));
        }
        let (tasks, trace) = self.burst.generate(seed)?;
        Ok((tasks, trace, self.schedule()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcm_core::task::TaskId;

    fn scenario() -> BurstScenario {
        BurstScenario {
            horizon: Duration::from_secs(90),
            burst_start: Duration::from_secs(30),
            burst_duration: Duration::from_secs(30),
            intensity: 10.0,
            ..BurstScenario::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = scenario();
        let (t1, a1) = s.generate(5).unwrap();
        let (t2, a2) = s.generate(5).unwrap();
        assert_eq!(t1.tasks(), t2.tasks());
        assert_eq!(a1, a2);
    }

    #[test]
    fn burst_window_is_denser() {
        let s = scenario();
        let (tasks, trace) = s.generate(3).unwrap();
        let aperiodic: Vec<TaskId> =
            tasks.iter().filter(|t| !t.is_periodic()).map(|t| t.id()).collect();
        let thirds = |lo: u64, hi: u64| {
            trace
                .iter()
                .filter(|a| {
                    aperiodic.contains(&a.task)
                        && a.time >= Time::ZERO + Duration::from_secs(lo)
                        && a.time < Time::ZERO + Duration::from_secs(hi)
                })
                .count()
        };
        let before = thirds(0, 30);
        let during = thirds(30, 60);
        let after = thirds(60, 90);
        assert!(
            during > 3 * before.max(1),
            "burst ({during}) must be much denser than before ({before})"
        );
        assert!(
            during > 3 * after.max(1),
            "burst ({during}) must be much denser than after ({after})"
        );
    }

    #[test]
    fn periodic_tasks_are_unaffected_by_the_burst() {
        let s = scenario();
        let (tasks, trace) = s.generate(4).unwrap();
        for task in tasks.iter().filter(|t| t.is_periodic()) {
            let times: Vec<Time> =
                trace.iter().filter(|a| a.task == task.id()).map(|a| a.time).collect();
            let period = task.kind().period().unwrap();
            for pair in times.windows(2) {
                assert_eq!(pair[1] - pair[0], period);
            }
        }
    }

    #[test]
    fn in_burst_predicate() {
        let s = scenario();
        assert!(!s.in_burst(Time::ZERO + Duration::from_secs(29)));
        assert!(s.in_burst(Time::ZERO + Duration::from_secs(30)));
        assert!(s.in_burst(Time::ZERO + Duration::from_secs(59)));
        assert!(!s.in_burst(Time::ZERO + Duration::from_secs(60)));
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut s = scenario();
        s.intensity = 0.5;
        assert!(s.generate(0).is_err());

        let mut s = scenario();
        s.burst_start = Duration::from_secs(80);
        s.burst_duration = Duration::from_secs(30);
        assert!(s.generate(0).is_err());

        let mut s = scenario();
        s.poisson_factor = 0.0;
        assert!(s.generate(0).is_err());
    }

    #[test]
    fn mode_change_scenario_builds_schedule_inside_burst() {
        let s = ModeChangeScenario {
            burst: scenario(),
            trigger_delay: Duration::from_secs(5),
            relax_delay: Some(Duration::from_secs(10)),
            ..ModeChangeScenario::default()
        };
        let (_, trace, schedule) = s.generate(1).unwrap();
        assert!(!trace.is_empty());
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule.changes()[0].at, Time::ZERO + Duration::from_secs(35));
        assert_eq!(schedule.changes()[0].services, s.defensive);
        assert_eq!(schedule.changes()[1].at, Time::ZERO + Duration::from_secs(70));
        assert_eq!(schedule.changes()[1].services, s.baseline);
        assert!(s.burst.in_burst(s.switch_at()), "the switch lands mid-burst");
        schedule.validate().unwrap();
    }

    #[test]
    fn mode_change_scenario_rejects_bad_parameters() {
        let mut s = ModeChangeScenario { burst: scenario(), ..ModeChangeScenario::default() };
        s.defensive = ServiceConfig::new(
            rtcm_core::strategy::AcStrategy::PerTask,
            rtcm_core::strategy::IrStrategy::PerJob,
            rtcm_core::strategy::LbStrategy::None,
        );
        assert!(s.generate(0).is_err(), "invalid defensive combination");

        let mut s = ModeChangeScenario { burst: scenario(), ..ModeChangeScenario::default() };
        s.trigger_delay = Duration::from_secs(40);
        assert!(s.generate(0).is_err(), "switch after the burst window");
    }

    fn correlated(processors: Vec<u16>) -> CorrelatedBurstScenario {
        CorrelatedBurstScenario {
            horizon: Duration::from_secs(90),
            burst_start: Duration::from_secs(30),
            burst_duration: Duration::from_secs(30),
            intensity: 10.0,
            processors,
            ..CorrelatedBurstScenario::default()
        }
    }

    /// In-window vs out-of-window arrival counts for the given tasks.
    fn window_counts(
        trace: &ArrivalTrace,
        tasks: &[rtcm_core::task::TaskId],
        lo: u64,
        hi: u64,
    ) -> usize {
        trace
            .iter()
            .filter(|a| {
                tasks.contains(&a.task)
                    && a.time >= Time::ZERO + Duration::from_secs(lo)
                    && a.time < Time::ZERO + Duration::from_secs(hi)
            })
            .count()
    }

    #[test]
    fn correlated_burst_hits_only_the_listed_processors() {
        let s = correlated(vec![0, 1]);
        let (tasks, trace) = s.generate(5).unwrap();
        let hit: Vec<_> = tasks
            .iter()
            .filter(|t| !t.is_periodic() && s.hits_processor(t.subtasks()[0].primary.0))
            .map(|t| t.id())
            .collect();
        let spared: Vec<_> = tasks
            .iter()
            .filter(|t| !t.is_periodic() && !s.hits_processor(t.subtasks()[0].primary.0))
            .map(|t| t.id())
            .collect();
        if !hit.is_empty() {
            let before = window_counts(&trace, &hit, 0, 30);
            let during = window_counts(&trace, &hit, 30, 60);
            assert!(
                during > 3 * before.max(1),
                "hit processors burst: {during} during vs {before} before"
            );
        }
        if !spared.is_empty() {
            let before = window_counts(&trace, &spared, 0, 30);
            let during = window_counts(&trace, &spared, 30, 60);
            assert!(
                during < 3 * (before + 3),
                "spared processors stay nominal: {during} during vs {before} before"
            );
        }
    }

    #[test]
    fn empty_processor_list_bursts_everything_simultaneously() {
        let s = correlated(Vec::new());
        let (tasks, trace) = s.generate(3).unwrap();
        // Every aperiodic task individually bursts inside the same window —
        // the correlation a per-task burst cannot produce.
        for task in tasks.iter().filter(|t| !t.is_periodic()) {
            let ids = [task.id()];
            let before = window_counts(&trace, &ids, 0, 30);
            let during = window_counts(&trace, &ids, 30, 60);
            assert!(during > before.max(1), "{}: {during} during vs {before} before", task.id());
        }
        assert!(s.hits_processor(4));
    }

    #[test]
    fn correlated_burst_is_deterministic_and_validated() {
        let s = correlated(vec![2]);
        let (t1, a1) = s.generate(9).unwrap();
        let (t2, a2) = s.generate(9).unwrap();
        assert_eq!(t1.tasks(), t2.tasks());
        assert_eq!(a1, a2);
        for pair in a1.arrivals().windows(2) {
            assert!(pair[0].time <= pair[1].time, "sorted trace");
        }

        let mut bad = correlated(vec![0]);
        bad.intensity = 0.0;
        assert!(bad.generate(0).is_err());

        let bad = correlated(vec![9]);
        assert!(matches!(bad.generate(0), Err(WorkloadError::Parameters(_))), "unknown processor");

        let mut bad = correlated(Vec::new());
        bad.burst_start = Duration::from_secs(80);
        bad.burst_duration = Duration::from_secs(30);
        assert!(bad.generate(0).is_err());
    }

    #[test]
    fn event_storm_is_dense_deterministic_and_in_horizon() {
        let s = EventStormScenario {
            horizon: Duration::from_secs(30),
            ..EventStormScenario::default()
        };
        let (t1, a1) = s.generate(2).unwrap();
        let (t2, a2) = s.generate(2).unwrap();
        assert_eq!(t1.tasks(), t2.tasks());
        assert_eq!(a1, a2, "same seed, same storm");

        // The realized aperiodic density tracks the analytic rate.
        let aperiodic: Vec<TaskId> =
            t1.iter().filter(|t| !t.is_periodic()).map(|t| t.id()).collect();
        assert!(!aperiodic.is_empty(), "the §7.1 workload carries aperiodic tasks");
        let count = a1.iter().filter(|a| aperiodic.contains(&a.task)).count() as f64;
        let expected = s.expected_aperiodic_rate(&t1) * 30.0;
        assert!(
            count > expected * 0.5 && count < expected * 2.0,
            "{count} aperiodic arrivals vs ~{expected} expected"
        );

        for pair in a1.arrivals().windows(2) {
            assert!(pair[0].time <= pair[1].time, "sorted trace");
        }
        for a in a1.iter() {
            assert!(a.time.elapsed_since(Time::ZERO) < s.horizon);
        }

        // A storm is *much* denser than the burst scenario's calm phase
        // (factor 0.02 vs 2.0: a hundredfold the aperiodic rate).
        let calm = BurstScenario {
            workload: s.workload.clone(),
            horizon: s.horizon,
            burst_start: Duration::from_secs(10),
            burst_duration: Duration::from_secs(1),
            ..BurstScenario::default()
        };
        let (_, calm_trace) = calm.generate(2).unwrap();
        assert!(a1.len() > 2 * calm_trace.len(), "storm {} vs calm {}", a1.len(), calm_trace.len());

        let mut bad = s;
        bad.poisson_factor = 0.0;
        assert!(bad.generate(0).is_err());
    }

    #[test]
    fn arrivals_stay_inside_horizon_and_sorted() {
        let s = scenario();
        let (_, trace) = s.generate(9).unwrap();
        for pair in trace.arrivals().windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for a in trace.iter() {
            assert!(a.time.elapsed_since(Time::ZERO) < s.horizon);
        }
    }
}
