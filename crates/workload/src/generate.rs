//! Seeded task-set generators reproducing the paper's experimental
//! workloads.
//!
//! * [`RandomWorkload`] — §7.1: 9 tasks (4 aperiodic + 5 periodic),
//!   subtasks/task ~ U{1..5} placed uniformly over 5 application
//!   processors, deadlines ~ U[250 ms, 10 s], period = deadline, one
//!   replica per subtask on a random *other* processor, and execution times
//!   scaled so every processor's synthetic utilization is exactly the
//!   target (0.5) if all tasks arrive simultaneously.
//! * [`ImbalancedWorkload`] — §7.2: primaries confined to a "loaded" group
//!   (3 processors at 0.7 each), replicas confined to a separate group
//!   (2 processors), subtasks/task ~ U{1..3}.
//!
//! Generation is deterministic per seed; the evaluation harness runs the
//! *same* ten seeds across all 15 strategy combinations, exactly as the
//! paper runs its ten task sets per combination.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rtcm_core::task::{ProcessorId, SubtaskSpec, TaskId, TaskKind, TaskSet, TaskSpec};
use rtcm_core::time::Duration;

/// Maximum whole-set regeneration attempts before giving up (a draw can
/// produce a task whose scaled demand exceeds its deadline; the paper's
/// parameters make this rare).
const MAX_ATTEMPTS: u64 = 100;

/// Parameters for the §7.1 random workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWorkload {
    /// Number of periodic tasks (paper: 5).
    pub periodic_tasks: usize,
    /// Number of aperiodic tasks (paper: 4).
    pub aperiodic_tasks: usize,
    /// Inclusive range of subtasks per task (paper: 1..=5).
    pub subtasks: (usize, usize),
    /// Inclusive range of end-to-end deadlines (paper: 250 ms ..= 10 s).
    pub deadline: (Duration, Duration),
    /// Number of application processors (paper: 5).
    pub processors: u16,
    /// Target per-processor synthetic utilization when all tasks are
    /// simultaneously current (paper: 0.5).
    pub target_utilization: f64,
    /// Replicas per subtask, each on a distinct random other processor
    /// (paper: 1).
    pub replicas_per_subtask: usize,
}

impl Default for RandomWorkload {
    fn default() -> Self {
        RandomWorkload {
            periodic_tasks: 5,
            aperiodic_tasks: 4,
            subtasks: (1, 5),
            deadline: (Duration::from_millis(250), Duration::from_secs(10)),
            processors: 5,
            target_utilization: 0.5,
            replicas_per_subtask: 1,
        }
    }
}

impl RandomWorkload {
    /// Generates one task set.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if the parameters are inconsistent (no
    /// processors, empty ranges, utilization outside (0, 1]) or if no valid
    /// set could be drawn within the retry budget.
    pub fn generate(&self, seed: u64) -> Result<TaskSet, WorkloadError> {
        self.validate()?;
        let all: Vec<ProcessorId> = (0..self.processors).map(ProcessorId).collect();
        generate_scaled(
            &GeneratorShape {
                periodic_tasks: self.periodic_tasks,
                aperiodic_tasks: self.aperiodic_tasks,
                subtasks: self.subtasks,
                deadline: self.deadline,
                primary_pool: all.clone(),
                replica_pool: all,
                replicas_per_subtask: self.replicas_per_subtask,
                target_utilization: self.target_utilization,
                exclude_primary_from_replicas: true,
            },
            seed,
        )
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        check_common(
            self.processors as usize,
            self.periodic_tasks + self.aperiodic_tasks,
            self.subtasks,
            self.deadline,
            self.target_utilization,
        )?;
        if self.replicas_per_subtask >= self.processors as usize {
            return Err(WorkloadError::Parameters(format!(
                "{} replicas per subtask cannot fit on {} processors with a distinct primary",
                self.replicas_per_subtask, self.processors
            )));
        }
        Ok(())
    }
}

/// Parameters for the §7.2 imbalanced workload: all primaries on a loaded
/// group, all replicas on a separate duplicate group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImbalancedWorkload {
    /// Number of periodic tasks (paper: 5).
    pub periodic_tasks: usize,
    /// Number of aperiodic tasks (paper: 4).
    pub aperiodic_tasks: usize,
    /// Inclusive range of subtasks per task (paper: 1..=3).
    pub subtasks: (usize, usize),
    /// Inclusive range of end-to-end deadlines (paper: 250 ms ..= 10 s).
    pub deadline: (Duration, Duration),
    /// Processors hosting all primaries (paper: 3), ids `0..loaded`.
    pub loaded_processors: u16,
    /// Processors hosting all replicas (paper: 2), ids
    /// `loaded..loaded+replica`.
    pub replica_processors: u16,
    /// Target synthetic utilization of each *loaded* processor (paper: 0.7).
    pub target_utilization: f64,
    /// Replicas per subtask, drawn from the replica group (paper: 1).
    pub replicas_per_subtask: usize,
}

impl Default for ImbalancedWorkload {
    fn default() -> Self {
        ImbalancedWorkload {
            periodic_tasks: 5,
            aperiodic_tasks: 4,
            subtasks: (1, 3),
            deadline: (Duration::from_millis(250), Duration::from_secs(10)),
            loaded_processors: 3,
            replica_processors: 2,
            target_utilization: 0.7,
            replicas_per_subtask: 1,
        }
    }
}

impl ImbalancedWorkload {
    /// Total processors (loaded + replica groups).
    #[must_use]
    pub fn processors(&self) -> u16 {
        self.loaded_processors + self.replica_processors
    }

    /// Generates one task set.
    ///
    /// # Errors
    ///
    /// As [`RandomWorkload::generate`].
    pub fn generate(&self, seed: u64) -> Result<TaskSet, WorkloadError> {
        self.validate()?;
        let primaries: Vec<ProcessorId> = (0..self.loaded_processors).map(ProcessorId).collect();
        let replicas: Vec<ProcessorId> =
            (self.loaded_processors..self.processors()).map(ProcessorId).collect();
        generate_scaled(
            &GeneratorShape {
                periodic_tasks: self.periodic_tasks,
                aperiodic_tasks: self.aperiodic_tasks,
                subtasks: self.subtasks,
                deadline: self.deadline,
                primary_pool: primaries,
                replica_pool: replicas,
                replicas_per_subtask: self.replicas_per_subtask,
                target_utilization: self.target_utilization,
                exclude_primary_from_replicas: false,
            },
            seed,
        )
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        check_common(
            self.loaded_processors as usize,
            self.periodic_tasks + self.aperiodic_tasks,
            self.subtasks,
            self.deadline,
            self.target_utilization,
        )?;
        if self.replicas_per_subtask > self.replica_processors as usize {
            return Err(WorkloadError::Parameters(format!(
                "{} replicas per subtask cannot fit in a {}-processor replica group",
                self.replicas_per_subtask, self.replica_processors
            )));
        }
        Ok(())
    }
}

fn check_common(
    processors: usize,
    tasks: usize,
    subtasks: (usize, usize),
    deadline: (Duration, Duration),
    target_utilization: f64,
) -> Result<(), WorkloadError> {
    if processors == 0 {
        return Err(WorkloadError::Parameters("at least one processor is required".into()));
    }
    if tasks == 0 {
        return Err(WorkloadError::Parameters("at least one task is required".into()));
    }
    if subtasks.0 == 0 || subtasks.0 > subtasks.1 {
        return Err(WorkloadError::Parameters(format!(
            "invalid subtask range {}..={}",
            subtasks.0, subtasks.1
        )));
    }
    if deadline.0.is_zero() || deadline.0 > deadline.1 {
        return Err(WorkloadError::Parameters(format!(
            "invalid deadline range {}..={}",
            deadline.0, deadline.1
        )));
    }
    if !(target_utilization > 0.0 && target_utilization <= 1.0) {
        return Err(WorkloadError::Parameters(format!(
            "target utilization {target_utilization} outside (0, 1]"
        )));
    }
    Ok(())
}

/// Shared structural parameters for both generators.
struct GeneratorShape {
    periodic_tasks: usize,
    aperiodic_tasks: usize,
    subtasks: (usize, usize),
    deadline: (Duration, Duration),
    primary_pool: Vec<ProcessorId>,
    replica_pool: Vec<ProcessorId>,
    replicas_per_subtask: usize,
    target_utilization: f64,
    exclude_primary_from_replicas: bool,
}

struct DraftSubtask {
    primary: ProcessorId,
    replicas: Vec<ProcessorId>,
    weight: f64,
}

struct DraftTask {
    kind: TaskKind,
    deadline: Duration,
    subtasks: Vec<DraftSubtask>,
}

fn generate_scaled(shape: &GeneratorShape, seed: u64) -> Result<TaskSet, WorkloadError> {
    for attempt in 0..MAX_ATTEMPTS {
        // Derive a fresh, deterministic stream per attempt.
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        if let Some(set) = try_generate(shape, &mut rng) {
            return Ok(set);
        }
    }
    Err(WorkloadError::Unsatisfiable { seed, attempts: MAX_ATTEMPTS })
}

fn try_generate(shape: &GeneratorShape, rng: &mut StdRng) -> Option<TaskSet> {
    let total = shape.periodic_tasks + shape.aperiodic_tasks;
    let mut drafts = Vec::with_capacity(total);
    for i in 0..total {
        let deadline = Duration::from_nanos(
            rng.gen_range(shape.deadline.0.as_nanos()..=shape.deadline.1.as_nanos()),
        );
        let kind = if i < shape.periodic_tasks {
            TaskKind::Periodic { period: deadline }
        } else {
            TaskKind::Aperiodic
        };
        let n_sub = rng.gen_range(shape.subtasks.0..=shape.subtasks.1);
        let mut subtasks = Vec::with_capacity(n_sub);
        for _ in 0..n_sub {
            let primary = shape.primary_pool[rng.gen_range(0..shape.primary_pool.len())];
            let mut replicas = Vec::with_capacity(shape.replicas_per_subtask);
            let mut pool: Vec<ProcessorId> = shape
                .replica_pool
                .iter()
                .copied()
                .filter(|p| !shape.exclude_primary_from_replicas || *p != primary)
                .collect();
            for _ in 0..shape.replicas_per_subtask {
                if pool.is_empty() {
                    break;
                }
                let idx = rng.gen_range(0..pool.len());
                replicas.push(pool.swap_remove(idx));
            }
            // Weights in [0.5, 1.5) avoid degenerate near-zero subtasks while
            // keeping per-subtask variety.
            let weight = rng.gen_range(0.5..1.5);
            subtasks.push(DraftSubtask { primary, replicas, weight });
        }
        drafts.push(DraftTask { kind, deadline, subtasks });
    }

    // Per-processor weighted demand S_p = Σ w/D over primaries, then scale
    // each subtask's utilization so the processor lands exactly on target:
    // u = target · (w/D) / S_p, hence C = u · D = target · w / S_p.
    let max_proc = shape
        .primary_pool
        .iter()
        .chain(shape.replica_pool.iter())
        .map(|p| p.index() + 1)
        .max()
        .unwrap_or(0);
    let mut demand = vec![0.0f64; max_proc];
    for task in &drafts {
        for sub in &task.subtasks {
            demand[sub.primary.index()] += sub.weight / task.deadline.as_secs_f64();
        }
    }

    let mut specs = Vec::with_capacity(drafts.len());
    for (i, task) in drafts.iter().enumerate() {
        let mut subs = Vec::with_capacity(task.subtasks.len());
        for sub in &task.subtasks {
            let s_p = demand[sub.primary.index()];
            debug_assert!(s_p > 0.0);
            let exec_secs = shape.target_utilization * sub.weight / s_p;
            let exec = Duration::from_secs_f64(exec_secs).max(Duration::from_micros(1));
            subs.push(SubtaskSpec::with_replicas(exec, sub.primary, sub.replicas.clone()));
        }
        let name = match task.kind {
            TaskKind::Periodic { .. } => format!("periodic-{i}"),
            TaskKind::Aperiodic => format!("aperiodic-{i}"),
        };
        // A draw whose scaled demand exceeds its deadline invalidates the
        // whole set; the caller retries with a derived seed.
        let spec = TaskSpec::new(TaskId(i as u32), name, task.kind, task.deadline, subs).ok()?;
        specs.push(spec);
    }
    TaskSet::from_tasks(specs).ok()
}

/// Errors from workload generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The parameters are internally inconsistent.
    Parameters(String),
    /// No valid set could be drawn (pathological parameters).
    Unsatisfiable {
        /// The seed given.
        seed: u64,
        /// Attempts made.
        attempts: u64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Parameters(msg) => write!(f, "invalid workload parameters: {msg}"),
            WorkloadError::Unsatisfiable { seed, attempts } => {
                write!(f, "no valid task set found for seed {seed} after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_workload_is_deterministic() {
        let w = RandomWorkload::default();
        let a = w.generate(42).unwrap();
        let b = w.generate(42).unwrap();
        assert_eq!(a.tasks(), b.tasks());
        let c = w.generate(43).unwrap();
        assert_ne!(a.tasks(), c.tasks());
    }

    #[test]
    fn random_workload_matches_paper_shape() {
        let w = RandomWorkload::default();
        for seed in 0..10 {
            let set = w.generate(seed).unwrap();
            assert_eq!(set.len(), 9);
            let periodic = set.iter().filter(|t| t.is_periodic()).count();
            assert_eq!(periodic, 5);
            for task in set.iter() {
                let n = task.subtasks().len();
                assert!((1..=5).contains(&n), "subtask count {n}");
                assert!(task.deadline() >= Duration::from_millis(250));
                assert!(task.deadline() <= Duration::from_secs(10));
                if let TaskKind::Periodic { period } = task.kind() {
                    assert_eq!(period, task.deadline(), "period = deadline in §7.1");
                }
                for sub in task.subtasks() {
                    assert_eq!(sub.replicas.len(), 1);
                    assert_ne!(sub.replicas[0], sub.primary, "duplicate on another processor");
                    assert!(sub.primary.0 < 5);
                }
            }
        }
    }

    #[test]
    fn random_workload_hits_target_utilization() {
        let w = RandomWorkload::default();
        for seed in 0..10 {
            let set = w.generate(seed).unwrap();
            for (p, u) in set.simultaneous_utilization().iter().enumerate() {
                // Exact by construction, up to nanosecond rounding; empty
                // processors are possible only in tiny configs, not 9×3 avg
                // subtasks over 5 processors — but tolerate them.
                if *u > 0.0 {
                    assert!((u - 0.5).abs() < 1e-3, "seed {seed} processor {p}: utilization {u}");
                }
            }
        }
    }

    #[test]
    fn imbalanced_workload_separates_groups() {
        let w = ImbalancedWorkload::default();
        for seed in 0..10 {
            let set = w.generate(seed).unwrap();
            for task in set.iter() {
                let n = task.subtasks().len();
                assert!((1..=3).contains(&n));
                for sub in task.subtasks() {
                    assert!(sub.primary.0 < 3, "primaries on the loaded group");
                    assert_eq!(sub.replicas.len(), 1);
                    assert!((3..5).contains(&sub.replicas[0].0), "replicas on the duplicate group");
                }
            }
            let u = set.simultaneous_utilization();
            for (p, &util) in u.iter().enumerate().take(3) {
                if util > 0.0 {
                    assert!((util - 0.7).abs() < 1e-3, "loaded {p}: {util}");
                }
            }
            for &util in &u[3..] {
                assert_eq!(util, 0.0, "replica group carries no primaries");
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let w = RandomWorkload { target_utilization: 0.0, ..RandomWorkload::default() };
        assert!(matches!(w.generate(0), Err(WorkloadError::Parameters(_))));

        let w = RandomWorkload { processors: 0, ..RandomWorkload::default() };
        assert!(w.generate(0).is_err());

        let w = RandomWorkload { subtasks: (3, 2), ..RandomWorkload::default() };
        assert!(w.generate(0).is_err());

        let w = RandomWorkload {
            deadline: (Duration::from_secs(2), Duration::from_secs(1)),
            ..RandomWorkload::default()
        };
        assert!(w.generate(0).is_err());

        let w = RandomWorkload { replicas_per_subtask: 5, ..RandomWorkload::default() };
        assert!(w.generate(0).is_err());

        let w = ImbalancedWorkload { replicas_per_subtask: 3, ..ImbalancedWorkload::default() };
        assert!(w.generate(0).is_err());
    }

    #[test]
    fn single_processor_workload_has_no_replicas_available() {
        let w = RandomWorkload {
            processors: 1,
            replicas_per_subtask: 0,
            target_utilization: 0.4,
            ..RandomWorkload::default()
        };
        let set = w.generate(7).unwrap();
        for task in set.iter() {
            for sub in task.subtasks() {
                assert_eq!(sub.primary, ProcessorId(0));
                assert!(sub.replicas.is_empty());
            }
        }
    }

    #[test]
    fn generated_tasks_always_validate() {
        // TaskSpec::new re-validates inside the generator; this exercises
        // many seeds to shake out scaling violations.
        let w = RandomWorkload::default();
        for seed in 0..50 {
            let set = w.generate(seed).unwrap();
            for task in set.iter() {
                let demand: Duration = task.subtasks().iter().map(|s| s.execution_time).sum();
                assert!(demand <= task.deadline());
            }
        }
    }
}
