//! # rtcm-workload
//!
//! Seeded workload generators reproducing the experimental setup of
//! *"Reconfigurable Real-Time Middleware for Distributed Cyber-Physical
//! Systems with Aperiodic Events"* (§7):
//!
//! * [`generate::RandomWorkload`] — the §7.1 random workloads (balanced
//!   across 5 processors at synthetic utilization 0.5);
//! * [`generate::ImbalancedWorkload`] — the §7.2 imbalanced workloads
//!   (3 loaded processors at 0.7, 2 replica-only processors);
//! * [`arrivals::ArrivalTrace`] — deterministic periodic + Poisson arrival
//!   sequences, replayed identically across all strategy combinations.
//!
//! # Examples
//!
//! ```
//! use rtcm_workload::{ArrivalConfig, ArrivalTrace, RandomWorkload};
//!
//! let tasks = RandomWorkload::default().generate(42)?;
//! assert_eq!(tasks.len(), 9);
//!
//! let trace = ArrivalTrace::generate(&tasks, &ArrivalConfig::default(), 42);
//! assert!(!trace.is_empty());
//! # Ok::<(), rtcm_workload::WorkloadError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod generate;
pub mod scenario;

pub use arrivals::{Arrival, ArrivalConfig, ArrivalTrace, Phasing};
pub use generate::{ImbalancedWorkload, RandomWorkload, WorkloadError};
pub use scenario::{
    BurstScenario, CorrelatedBurstScenario, EventStormScenario, ModeChangeScenario,
};
