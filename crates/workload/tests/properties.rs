//! Property-based tests for the workload generators: structural
//! invariants, exact utilization scaling, and trace discipline across
//! random parameter draws.

use proptest::prelude::*;

use rtcm_core::time::{Duration, Time};
use rtcm_workload::{
    ArrivalConfig, ArrivalTrace, BurstScenario, ImbalancedWorkload, Phasing, RandomWorkload,
};

fn arb_random_workload() -> impl Strategy<Value = RandomWorkload> {
    (1usize..6, 1usize..6, 1usize..4, 2u16..7, 1u32..9).prop_map(
        |(periodic, aperiodic, max_sub, procs, util_tenths)| RandomWorkload {
            periodic_tasks: periodic,
            aperiodic_tasks: aperiodic,
            subtasks: (1, max_sub),
            deadline: (Duration::from_millis(100), Duration::from_secs(2)),
            processors: procs,
            target_utilization: f64::from(util_tenths) / 10.0,
            replicas_per_subtask: 1,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated sets respect every declared constraint and land exactly on
    /// the per-processor utilization target (for processors that host any
    /// primaries).
    #[test]
    fn random_workload_invariants(w in arb_random_workload(), seed in 0u64..500) {
        let set = w.generate(seed).unwrap();
        prop_assert_eq!(set.len(), w.periodic_tasks + w.aperiodic_tasks);
        prop_assert_eq!(
            set.iter().filter(|t| t.is_periodic()).count(),
            w.periodic_tasks
        );
        for task in set.iter() {
            prop_assert!((w.subtasks.0..=w.subtasks.1).contains(&task.subtasks().len()));
            prop_assert!(task.deadline() >= w.deadline.0);
            prop_assert!(task.deadline() <= w.deadline.1);
            let demand: Duration = task.subtasks().iter().map(|s| s.execution_time).sum();
            prop_assert!(demand <= task.deadline());
            for sub in task.subtasks() {
                prop_assert!(sub.primary.0 < w.processors);
                for r in &sub.replicas {
                    prop_assert!(r.0 < w.processors);
                    prop_assert_ne!(*r, sub.primary);
                }
            }
        }
        for u in set.simultaneous_utilization() {
            if u > 0.0 {
                prop_assert!(
                    (u - w.target_utilization).abs() < 1e-3,
                    "utilization {u} vs target {}",
                    w.target_utilization
                );
            }
        }
    }

    /// Same seed, same set; different seed, (almost surely) different set.
    #[test]
    fn generation_is_deterministic(w in arb_random_workload(), seed in 0u64..500) {
        let a = w.generate(seed).unwrap();
        let b = w.generate(seed).unwrap();
        prop_assert_eq!(a.tasks(), b.tasks());
    }

    /// Imbalanced workloads keep the group separation for any sizing.
    #[test]
    fn imbalanced_group_separation(
        loaded in 1u16..5,
        replica in 1u16..4,
        seed in 0u64..200
    ) {
        let w = ImbalancedWorkload {
            loaded_processors: loaded,
            replica_processors: replica,
            ..ImbalancedWorkload::default()
        };
        let set = w.generate(seed).unwrap();
        for task in set.iter() {
            for sub in task.subtasks() {
                prop_assert!(sub.primary.0 < loaded);
                for r in &sub.replicas {
                    prop_assert!((loaded..loaded + replica).contains(&r.0));
                }
            }
        }
    }

    /// Traces are sorted, in-horizon, with dense per-task sequence numbers.
    #[test]
    fn trace_discipline(w in arb_random_workload(), seed in 0u64..200, factor in 1u32..5) {
        let set = w.generate(seed).unwrap();
        let cfg = ArrivalConfig {
            horizon: Duration::from_secs(10),
            poisson_factor: f64::from(factor),
            phasing: Phasing::RandomPhase,
        };
        let trace = ArrivalTrace::generate(&set, &cfg, seed);
        let mut prev = Time::ZERO;
        for a in trace.iter() {
            prop_assert!(a.time >= prev);
            prev = a.time;
            prop_assert!(a.time.elapsed_since(Time::ZERO) < cfg.horizon);
        }
        for task in set.iter() {
            let seqs: Vec<u64> =
                trace.iter().filter(|a| a.task == task.id()).map(|a| a.seq).collect();
            prop_assert_eq!(seqs.len() as u64, seqs.last().map_or(0, |s| s + 1));
        }
    }

    /// Burst scenarios inherit the workload invariants and stay in horizon.
    #[test]
    fn burst_scenario_invariants(seed in 0u64..200, intensity in 1u32..16) {
        let scenario = BurstScenario {
            horizon: Duration::from_secs(30),
            burst_start: Duration::from_secs(10),
            burst_duration: Duration::from_secs(10),
            intensity: f64::from(intensity),
            ..BurstScenario::default()
        };
        let (set, trace) = scenario.generate(seed).unwrap();
        prop_assert_eq!(set.len(), 9);
        for a in trace.iter() {
            prop_assert!(a.time.elapsed_since(Time::ZERO) < scenario.horizon);
        }
    }
}
