//! Multi-process fault campaigns: real OS processes running real rtcm
//! systems, bridged over localhost TCP, with faults injected while
//! two-phase reconfigurations are in flight.
//!
//! Every campaign asserts the same end-to-end safety contract:
//!
//! 1. **No partial swap** — an aborted reconfiguration leaves every
//!    process on the old configuration, and a member's witnessed commits
//!    are exactly the swaps the quorum committed (in order).
//! 2. **Abort accounting** — every abort shows up in the coordinator's
//!    `reconfig_abort_reasons` with the right reason.
//!
//! Campaigns named `quick_*` are the CI smoke arm
//! (`cargo test -p rtcm-harness quick_`); the rest run in the full suite.

use std::time::{Duration, Instant};

use rtcm_harness::protocol::{Command, Reply};
use rtcm_harness::proxy::{Direction, FaultProxy};
use rtcm_harness::{NodeProc, ScheduleRunner};
use rtcm_sim::{FaultAction, FaultSchedule};

const NODE_BIN: &str = env!("CARGO_BIN_EXE_cluster_node");

/// Coordinator ack deadline: long enough for a healthy bridged ack round
/// trip (even through a delaying proxy), short enough that abort campaigns
/// stay fast.
const ACK_TIMEOUT_MS: &str = "600";
/// Member fence expiry, for members orphaned mid-swap by a dead link.
const FENCE_TIMEOUT_MS: &str = "500";

fn coordinator() -> NodeProc {
    NodeProc::spawn(NODE_BIN, &["coordinator", ACK_TIMEOUT_MS]).expect("coordinator spawns")
}

fn member() -> NodeProc {
    NodeProc::spawn(NODE_BIN, &["member", FENCE_TIMEOUT_MS]).expect("member spawns")
}

/// Opens a fresh gateway port on the coordinator.
fn listen(coord: &mut NodeProc) -> u16 {
    coord.expect_ok(&Command::verb("listen")).port.expect("listen returns a port")
}

/// Points `m` at `addr` (a coordinator gateway or a fault proxy).
fn connect(m: &mut NodeProc, addr: String) {
    let mut cmd = Command::verb("connect");
    cmd.addr = Some(addr);
    m.expect_ok(&cmd);
}

/// Registers `m`'s federation as a required voter at the coordinator.
fn expect_voter(coord: &mut NodeProc, m: &NodeProc) {
    let mut cmd = Command::verb("expect-voter");
    cmd.host_id = Some(m.host_id);
    coord.expect_ok(&cmd);
}

/// Runs one reconfiguration; returns the raw reply (ok or abort).
fn swap(coord: &mut NodeProc, target: &str) -> Reply {
    let mut cmd = Command::verb("swap");
    cmd.target = Some(target.to_string());
    coord.request(&cmd).expect("coordinator alive")
}

/// Runs one reconfiguration that must commit.
fn swap_ok(coord: &mut NodeProc, target: &str) {
    let reply = swap(coord, target);
    assert!(reply.ok, "swap to {target} should commit, got {:?}", reply.error);
    assert_eq!(reply.label.as_deref(), Some(target));
}

/// Runs one reconfiguration that must abort with `reason`, without moving
/// the coordinator off `stays` — the no-partial-swap half of the contract.
fn swap_aborts(coord: &mut NodeProc, target: &str, reason: &str, stays: &str) {
    let reply = swap(coord, target);
    assert!(!reply.ok, "swap to {target} should abort");
    assert_eq!(reply.error.as_deref(), Some(reason));
    assert_eq!(reply.label.as_deref(), Some(stays), "no partial application");
    let services = coord.expect_ok(&Command::verb("services"));
    assert_eq!(services.label.as_deref(), Some(stays), "config stable after abort");
}

fn member_report(m: &mut NodeProc) -> Reply {
    m.expect_ok(&Command::verb("report"))
}

/// Polls the member until its witnessed commit list equals `want`
/// (commits cross the bridge after the coordinator's swap returns).
fn wait_for_commits(m: &mut NodeProc, want: &[&str]) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let commits = member_report(m).commits.expect("member reports commits");
        if commits == want {
            return;
        }
        assert!(Instant::now() < deadline, "member commits stuck at {commits:?}, want {want:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Campaign 1 — **process kill**. Three processes: a coordinator and two
/// voting members. Killing one member (SIGKILL, no goodbye) must abort the
/// in-flight swap at the ack deadline with nothing applied anywhere; after
/// the dead host is deregistered, swaps flow again.
#[test]
fn quick_campaign_process_kill() {
    let mut coord = coordinator();
    let mut alice = member();
    let mut bob = member();
    for m in [&mut alice, &mut bob] {
        let port = listen(&mut coord);
        connect(m, format!("127.0.0.1:{port}"));
    }
    expect_voter(&mut coord, &alice);
    expect_voter(&mut coord, &bob);

    // Healthy baseline: a swap commits across all three processes.
    swap_ok(&mut coord, "J_J_T");
    wait_for_commits(&mut alice, &["J_J_T"]);
    wait_for_commits(&mut bob, &["J_J_T"]);

    // Kill bob mid-cluster; the next swap is one vote short.
    bob.kill();
    swap_aborts(&mut coord, "T_T_T", "AckTimeout", "J_J_T");

    // Alice acked the doomed prepare but must never have applied it.
    let report = member_report(&mut alice);
    assert_eq!(report.acks, Some(2), "alice voted for both prepares");
    assert_eq!(report.commits.as_deref(), Some(&["J_J_T".to_string()][..]));

    // Deregister the corpse: quorum shrinks, swaps flow again.
    let mut cmd = Command::verb("drop-voter");
    cmd.host_id = Some(bob.host_id);
    coord.expect_ok(&cmd);
    swap_ok(&mut coord, "T_T_T");
    wait_for_commits(&mut alice, &["J_J_T", "T_T_T"]);

    // Jobs still run on the final configuration.
    let mut submit = Command::verb("submit");
    submit.count = Some(5);
    coord.expect_ok(&submit);

    // Abort accounting: exactly one abort, attributed to the ack timeout,
    // and the kill surfaced as a bridge disconnect.
    let report = coord.expect_ok(&Command::verb("report")).report.expect("coordinator report");
    assert_eq!(report.reconfig_abort_reasons.ack_timeout, 1);
    assert_eq!(report.reconfig_abort_reasons.validation, 0);
    assert_eq!(report.reconfig_abort_reasons.foreign_coordinator, 0);
    assert!(report.bridge_disconnects >= 1, "bob's death tore down a bridge");
    assert_eq!(report.jobs_completed, 5);

    alice.shutdown();
    coord.shutdown();
}

/// Campaign 2 — **network partition**. The member is bridged through a
/// fault proxy that can blackhole frames in both directions while keeping
/// the TCP connection up (the nastiest partition: indistinguishable from
/// unbounded delay). A swap during the partition aborts with nothing
/// applied; healing restores the quorum on the same connection.
#[test]
fn quick_campaign_partition() {
    let mut coord = coordinator();
    let mut m = member();
    let port = listen(&mut coord);
    let proxy = FaultProxy::spawn(format!("127.0.0.1:{port}").parse().unwrap()).unwrap();
    connect(&mut m, proxy.addr().to_string());
    expect_voter(&mut coord, &m);

    swap_ok(&mut coord, "J_J_T");
    wait_for_commits(&mut m, &["J_J_T"]);

    // Partition: the prepare never reaches the member, so it neither
    // fences nor votes, and the swap aborts at the deadline.
    proxy.set_partitioned(true);
    swap_aborts(&mut coord, "T_T_T", "AckTimeout", "J_J_T");
    let report = member_report(&mut m);
    assert_eq!(report.acks, Some(1), "partitioned member never saw the prepare");
    assert_eq!(report.fenced, Some(false));
    assert_eq!(report.commits.as_deref(), Some(&["J_J_T".to_string()][..]));

    // Heal: same connection, quorum restored.
    proxy.set_partitioned(false);
    swap_ok(&mut coord, "T_T_T");
    wait_for_commits(&mut m, &["J_J_T", "T_T_T"]);

    let report = coord.expect_ok(&Command::verb("report")).report.expect("coordinator report");
    assert_eq!(report.reconfig_abort_reasons.ack_timeout, 1);
    assert_eq!(report.bridge_rx_errors, 0, "a partition is silence, not corruption");

    m.shutdown();
    coord.shutdown();
    proxy.shutdown();
}

/// Campaign 3 — **delay and reordering**. Every frame is delayed and
/// back-to-back frames are swapped, so a commit can arrive *after* the
/// next swap's prepare. The member's supersede rule keeps it safe: its
/// witnessed commits must be an ordered subsequence of the committed
/// configurations, ending at the final one — never a config the quorum
/// didn't commit, never out of order.
#[test]
fn campaign_delay_reorder() {
    let mut coord = coordinator();
    let mut m = member();
    let port = listen(&mut coord);
    let proxy = FaultProxy::spawn(format!("127.0.0.1:{port}").parse().unwrap()).unwrap();
    connect(&mut m, proxy.addr().to_string());
    expect_voter(&mut coord, &m);

    proxy.set_delay_ms(30);
    proxy.set_reorder(true);

    let targets = ["J_J_T", "T_T_T", "J_N_N"];
    for target in targets {
        swap_ok(&mut coord, target); // every swap still commits
    }

    // The final commit must land at the member eventually.
    let deadline = Instant::now() + Duration::from_secs(10);
    let commits = loop {
        let commits = member_report(&mut m).commits.expect("member reports commits");
        if commits.last().map(String::as_str) == Some("J_N_N") {
            break commits;
        }
        assert!(Instant::now() < deadline, "final commit never crossed: {commits:?}");
        std::thread::sleep(Duration::from_millis(25));
    };

    // No-partial-swap under reordering: witnessed commits are an ordered
    // subsequence of the committed sequence (reordering may hide a commit
    // behind a newer prepare, but can never invent or transpose one).
    let mut cursor = targets.iter();
    for commit in &commits {
        assert!(
            cursor.any(|t| t == commit),
            "member witnessed {commit} out of order or uncommitted: {commits:?}"
        );
    }

    let report = coord.expect_ok(&Command::verb("report")).report.expect("coordinator report");
    assert_eq!(report.reconfig_abort_reasons.ack_timeout, 0, "delay alone must not abort");
    assert_eq!(report.bridge_rx_errors, 0);

    m.shutdown();
    coord.shutdown();
    proxy.shutdown();
}

/// Campaign 4 — **corrupt frame**. The proxy stomps the version byte of
/// the member's ack in flight. The coordinator's bridge must count the
/// corrupt frame, tear the link down (fail-stop, no resync guessing), and
/// abort the swap at the deadline; a fresh listen/connect recovers.
#[test]
fn campaign_corrupt_frame() {
    let mut coord = coordinator();
    let mut m = member();
    let port = listen(&mut coord);
    let proxy = FaultProxy::spawn(format!("127.0.0.1:{port}").parse().unwrap()).unwrap();
    connect(&mut m, proxy.addr().to_string());
    expect_voter(&mut coord, &m);

    swap_ok(&mut coord, "J_J_T");
    wait_for_commits(&mut m, &["J_J_T"]);

    // The next member→coordinator frame (the ack for the doomed swap) is
    // corrupted in flight: the coordinator never hears the vote.
    proxy.corrupt_next(Direction::Up);
    swap_aborts(&mut coord, "T_T_T", "AckTimeout", "J_J_T");

    // The member did ack — the wire ate it. It must not have applied
    // anything beyond the committed history.
    let report = member_report(&mut m);
    assert_eq!(report.acks, Some(2), "the member voted; the frame was corrupted in flight");
    assert_eq!(report.commits.as_deref(), Some(&["J_J_T".to_string()][..]));

    // Recovery: the poisoned link is gone on both sides, so re-listen and
    // re-connect (directly this time), then swap again. The member's stale
    // fence is superseded by the same coordinator's fresh prepare.
    let deadline = Instant::now() + Duration::from_secs(10);
    while member_report(&mut m).bridge_disconnects != Some(1) {
        assert!(Instant::now() < deadline, "member never noticed the dead link");
        std::thread::sleep(Duration::from_millis(25));
    }
    let port = listen(&mut coord);
    connect(&mut m, format!("127.0.0.1:{port}"));
    swap_ok(&mut coord, "T_T_T");
    wait_for_commits(&mut m, &["J_J_T", "T_T_T"]);

    let report = coord.expect_ok(&Command::verb("report")).report.expect("coordinator report");
    assert_eq!(report.bridge_rx_errors, 1, "exactly one corrupt frame seen");
    assert!(report.bridge_disconnects >= 1, "the poisoned link was torn down");
    assert_eq!(report.reconfig_abort_reasons.ack_timeout, 1);

    m.shutdown();
    coord.shutdown();
    proxy.shutdown();
}

/// Campaign 6 — **schedule-driven orchestration**. The same serde
/// `FaultSchedule` format the federation simulator's campaigns consume
/// drives a real cluster through `ScheduleRunner`: no hand-coded steps,
/// just a script of primitive actions (shipped as JSON to prove the
/// serialized form is the interface). Covers the verbs the sim-vs-real
/// cross-check doesn't: crash (SIGKILL + deregistration) and restart
/// (fresh process, fresh bridge, re-registered vote).
#[test]
fn quick_campaign_scheduled_crash_restart() {
    let mut schedule = FaultSchedule::new();
    schedule.push(50, FaultAction::Partition { a: 0, b: 2 });
    schedule.push(100, FaultAction::Swap { host: 0, target: "J_J_T".to_string() });
    schedule.push(700, FaultAction::Heal { a: 0, b: 2 });
    schedule.push(750, FaultAction::Crash { host: 1 });
    schedule.push(800, FaultAction::Swap { host: 0, target: "J_J_T".to_string() });
    schedule.push(900, FaultAction::Restart { host: 1 });
    schedule.push(1000, FaultAction::Swap { host: 0, target: "T_T_T".to_string() });
    let json = serde_json::to_string(&schedule).expect("schedule serializes");
    let schedule: FaultSchedule = serde_json::from_str(&json).expect("schedule deserializes");

    let mut cluster = ScheduleRunner::launch(
        NODE_BIN,
        2,
        ACK_TIMEOUT_MS.parse().unwrap(),
        FENCE_TIMEOUT_MS.parse().unwrap(),
    )
    .expect("cluster launches");
    let outcome = cluster.run(&schedule);
    cluster.shutdown();

    let verdicts: Vec<String> = outcome.swaps.iter().map(|s| s.key()).collect();
    assert_eq!(
        verdicts,
        vec!["abort:AckTimeout", "commit:J_J_T", "commit:T_T_T"],
        "skipped: {:?}",
        outcome.skipped
    );
    assert!(outcome.skipped.is_empty(), "every action maps physically: {:?}", outcome.skipped);
    assert_eq!(outcome.final_label, "T_T_T");
    // No member ever applied a configuration the quorum didn't commit.
    for commits in &outcome.member_commits {
        for label in commits {
            assert!(
                ["J_J_T", "T_T_T"].contains(&label.as_str()),
                "member applied uncommitted config {label}"
            );
        }
    }
}

/// Campaign 5 — **live OAM scrape**. Both processes mount their scrape
/// endpoints mid-campaign; the orchestrator (standing in for an operator's
/// Prometheus) scrapes real HTTP over localhost while jobs flow and after
/// a bridged swap. The exposition must agree with the line-protocol
/// report, and the two processes' `/trace` dumps must correlate on the
/// swap's trace id with no shared state beyond the id itself.
#[test]
fn quick_campaign_oam_scrape() {
    fn sample(page: &str, name: &str) -> u64 {
        page.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
            .unwrap_or_else(|| panic!("metric {name} absent"))
            .parse()
            .unwrap_or_else(|_| panic!("metric {name} not an integer"))
    }
    fn oam_addr(node: &mut NodeProc) -> std::net::SocketAddr {
        let port = node.expect_ok(&Command::verb("oam")).port.expect("oam returns a port");
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    let mut coord = coordinator();
    let mut m = member();
    let port = listen(&mut coord);
    connect(&mut m, format!("127.0.0.1:{port}"));
    expect_voter(&mut coord, &m);

    // Mounting is idempotent: asking twice returns the same port.
    let coord_oam = oam_addr(&mut coord);
    assert_eq!(coord_oam, oam_addr(&mut coord));
    let member_oam = oam_addr(&mut m);

    swap_ok(&mut coord, "J_J_T");
    wait_for_commits(&mut m, &["J_J_T"]);
    let mut submit = Command::verb("submit");
    submit.count = Some(5);
    coord.expect_ok(&submit);

    // The exposition and the line-protocol report are two views of the
    // same registry; quiescent, they must agree exactly.
    let page = rtcm_telemetry::scrape(coord_oam, "/metrics").expect("coordinator scrape");
    let report = coord.expect_ok(&Command::verb("report")).report.expect("coordinator report");
    assert_eq!(sample(&page, "rtcm_jobs_completed_total"), report.jobs_completed);
    assert_eq!(sample(&page, "rtcm_reconfig_swaps_total"), report.reconfig_swaps);
    assert_eq!(sample(&page, "rtcm_jobs_in_flight"), 0);
    assert!(page.contains("rtcm_build_info{"), "build metadata is served");

    // The member serves its own (smaller) exposition.
    let member_page = rtcm_telemetry::scrape(member_oam, "/metrics").expect("member scrape");
    assert_eq!(sample(&member_page, "rtcm_member_commits_total"), 1);
    assert_eq!(sample(&member_page, "rtcm_member_acks_total"), 1);

    // Cross-process trace correlation: read the swap's id off the
    // coordinator's dump, grep the member's dump for it.
    let coord_trace = rtcm_telemetry::scrape(coord_oam, "/trace").expect("coordinator trace");
    let commit_id = coord_trace
        .lines()
        .map(|l| serde_json::from_str::<rtcm_telemetry::TraceRecord>(l).expect("valid JSON line"))
        .find(|r| r.stage == "reconfig_commit")
        .expect("coordinator traced the commit")
        .trace;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let member_trace = rtcm_telemetry::scrape(member_oam, "/trace").expect("member trace");
        let correlated = member_trace
            .lines()
            .map(|l| serde_json::from_str::<rtcm_telemetry::TraceRecord>(l).expect("valid JSON"))
            .any(|r| r.trace == commit_id && r.stage == "reconfig_commit");
        if correlated {
            break;
        }
        assert!(Instant::now() < deadline, "member trace never showed the commit id");
        std::thread::sleep(Duration::from_millis(25));
    }

    m.shutdown();
    coord.shutdown();
}
