//! One schedule, two substrates: the same serialized `FaultSchedule` is
//! executed by the deterministic federation simulator (virtual time,
//! simulated links) and by the multi-process harness (real processes,
//! real TCP through fault proxies), and both must reach the same
//! protocol verdicts:
//!
//! * the same swap outcome sequence (abort by silence, then commit),
//! * the same final configuration everywhere,
//! * no partial application on either substrate.
//!
//! This is the strongest evidence the simulator earns its keep: a
//! campaign result produced in microseconds of virtual time predicts
//! what the real cluster does over real sockets.

use rtcm_harness::ScheduleRunner;
use rtcm_sim::{EpochOutcome, FaultAction, FaultSchedule, FedHostSpec, FedOptions, Federation};
use rtcm_workload::{ArrivalConfig, ArrivalTrace, RandomWorkload};

const NODE_BIN: &str = env!("CARGO_BIN_EXE_cluster_node");

/// The shared scenario: host 1 is partitioned from the coordinator, a
/// swap is attempted under the partition (and must abort by silence),
/// the partition heals, and the swap is retried (and must commit).
fn scenario() -> FaultSchedule {
    let mut schedule = FaultSchedule::new();
    schedule.push(50, FaultAction::Partition { a: 0, b: 1 });
    schedule.push(100, FaultAction::Swap { host: 0, target: "T_T_T".to_string() });
    schedule.push(900, FaultAction::Heal { a: 0, b: 1 });
    schedule.push(1000, FaultAction::Swap { host: 0, target: "T_T_T".to_string() });
    schedule
}

/// Normalized swap verdicts from the simulator's epoch records.
fn sim_keys(outcomes: &[(String, Option<EpochOutcome>)]) -> Vec<String> {
    outcomes
        .iter()
        .map(|(target, o)| match o {
            Some(EpochOutcome::Committed) => format!("commit:{target}"),
            Some(EpochOutcome::Aborted(reason)) => format!("abort:{reason:?}"),
            Some(EpochOutcome::CoordinatorCrashed) => "crashed".to_string(),
            None => "unresolved".to_string(),
        })
        .collect()
}

#[test]
fn same_schedule_same_verdicts_on_both_substrates() {
    // The schedule travels as serialized JSON — both executors consume
    // the serde format, not an in-memory builder.
    let json = serde_json::to_string(&scenario()).expect("schedule serializes");
    let schedule: FaultSchedule = serde_json::from_str(&json).expect("schedule deserializes");

    // Substrate 1: the deterministic federation simulator. Three hosts
    // (matching the physical cluster: coordinator + two voters), initial
    // configuration J_N_N like the cluster_node processes.
    let specs: Vec<FedHostSpec> = (0..3u64)
        .map(|i| {
            let workload = RandomWorkload {
                periodic_tasks: 1,
                aperiodic_tasks: 1,
                subtasks: (1, 2),
                processors: 2,
                ..RandomWorkload::default()
            };
            let tasks = workload.generate(31 + i).expect("workload generates");
            let config = ArrivalConfig {
                horizon: rtcm_core::time::Duration::from_millis(600),
                ..ArrivalConfig::default()
            };
            let arrivals = ArrivalTrace::generate(&tasks, &config, 31 + i);
            FedHostSpec { services: "J_N_N".parse().expect("valid"), tasks, arrivals }
        })
        .collect();
    let opts = FedOptions { seed: 31, ..FedOptions::default() };
    let sim = Federation::new(specs, &schedule, opts)
        .expect("federation builds")
        .run()
        .expect("federation runs");
    let sim_verdicts =
        sim_keys(&sim.epochs.iter().map(|e| (e.target.clone(), e.outcome)).collect::<Vec<_>>());
    for host in &sim.hosts {
        assert_eq!(host.final_config, "T_T_T", "sim host {} missed the commit", host.host);
    }

    // Substrate 2: real processes over real TCP, same schedule.
    let mut cluster = ScheduleRunner::launch(NODE_BIN, 2, 600, 500).expect("cluster launches");
    let mut real = cluster.run(&schedule);
    // Commits cross the bridges asynchronously after the swap returns;
    // poll until every member has witnessed the final one.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !real.member_commits.iter().all(|c| c.last().map(String::as_str) == Some("T_T_T")) {
        assert!(
            std::time::Instant::now() < deadline,
            "final commit never reached every member: {:?}",
            real.member_commits
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
        real.member_commits = cluster.member_commits();
    }
    cluster.shutdown();
    let real_verdicts: Vec<String> = real.swaps.iter().map(|s| s.key()).collect();
    assert!(real.skipped.is_empty(), "every action has a physical analogue: {:?}", real.skipped);

    // The cross-check: identical verdict sequences, identical final
    // configuration, no partial application anywhere.
    assert_eq!(sim_verdicts, vec!["abort:AckTimeout", "commit:T_T_T"]);
    assert_eq!(real_verdicts, sim_verdicts, "substrates disagree on the protocol outcome");
    assert_eq!(real.final_label, "T_T_T");
    for commits in &real.member_commits {
        // Members may have missed the doomed prepare entirely, but every
        // commit they witnessed is one the quorum committed.
        for label in commits {
            assert_eq!(label, "T_T_T", "member applied an uncommitted config");
        }
        assert_eq!(commits.last().map(String::as_str), Some("T_T_T"));
    }
}
