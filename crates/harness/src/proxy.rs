//! A frame-aware TCP fault proxy: sits between a bridge client and a
//! bridge listener, decodes the wire protocol, and injects link faults on
//! command — partitions (silent frame drops), per-frame delay, pairwise
//! reordering, frame corruption, and mid-frame truncation.
//!
//! The proxy is *frame-aware*: it reassembles frames with the same
//! [`wire::FrameDecoder`] the real bridges use and re-emits them through
//! [`wire::append_frame`], so every fault is injected at a frame boundary
//! (or deliberately inside one, for truncation) rather than at arbitrary
//! byte offsets. Faults are toggled live from the orchestrating test via
//! the shared [`FaultProxy`] handle while the campaign runs.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rtcm_events::wire::{self, FrameDecoder, WireFrame};

/// Which pump direction a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bridge client → listener (e.g. member acks toward the coordinator).
    Up,
    /// Listener → bridge client (e.g. coordinator phases toward a member).
    Down,
}

/// Read timeout of the pump loops; also the hold window after which a
/// reordering pump flushes a held frame that never got a swap partner.
const TICK: Duration = Duration::from_millis(25);

#[derive(Default)]
struct Faults {
    drop_up: AtomicBool,
    drop_down: AtomicBool,
    delay_ms: AtomicU64,
    reorder: AtomicBool,
    corrupt_next_up: AtomicBool,
    corrupt_next_down: AtomicBool,
    truncate_next_up: AtomicBool,
    truncate_next_down: AtomicBool,
}

impl Faults {
    fn dropping(&self, dir: Direction) -> bool {
        match dir {
            Direction::Up => self.drop_up.load(Ordering::SeqCst),
            Direction::Down => self.drop_down.load(Ordering::SeqCst),
        }
    }

    fn take_corrupt(&self, dir: Direction) -> bool {
        match dir {
            Direction::Up => self.corrupt_next_up.swap(false, Ordering::SeqCst),
            Direction::Down => self.corrupt_next_down.swap(false, Ordering::SeqCst),
        }
    }

    fn take_truncate(&self, dir: Direction) -> bool {
        match dir {
            Direction::Up => self.truncate_next_up.swap(false, Ordering::SeqCst),
            Direction::Down => self.truncate_next_down.swap(false, Ordering::SeqCst),
        }
    }
}

/// A running fault proxy forwarding one bridge connection to `upstream`.
/// Dropping the handle kills the link and joins the pump threads.
pub struct FaultProxy {
    addr: SocketAddr,
    faults: Arc<Faults>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for FaultProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultProxy").field("addr", &self.addr).finish()
    }
}

impl FaultProxy {
    /// Binds a fresh local port and forwards the first accepted connection
    /// to `upstream`. Returns immediately; the accept happens in the
    /// background, so callers can hand [`FaultProxy::addr`] to the bridge
    /// client right away.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the proxy's listener.
    pub fn spawn(upstream: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let faults = Arc::new(Faults::default());
        let stop = Arc::new(AtomicBool::new(false));

        let accept_faults = Arc::clone(&faults);
        let accept_stop = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("rtcm-proxy-accept".into())
            .spawn(move || {
                let client = loop {
                    if accept_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match listener.accept() {
                        Ok((s, _)) => break s,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => return,
                    }
                };
                if client.set_nonblocking(false).is_err() {
                    return;
                }
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    return;
                };
                let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                    return;
                };
                let up_faults = Arc::clone(&accept_faults);
                let up_stop = Arc::clone(&accept_stop);
                let up = std::thread::Builder::new()
                    .name("rtcm-proxy-up".into())
                    .spawn(move || pump(client, server, Direction::Up, &up_faults, &up_stop))
                    .expect("spawn proxy pump");
                pump(s2, c2, Direction::Down, &accept_faults, &accept_stop);
                let _ = up.join();
            })
            .expect("spawn proxy acceptor");

        Ok(FaultProxy { addr, faults, stop, threads: vec![acceptor] })
    }

    /// The address bridge clients should dial.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Partition the link: while set, frames in **both** directions are
    /// silently dropped (the TCP connection itself stays up — the nastiest
    /// kind of partition, indistinguishable from an unbounded delay).
    pub fn set_partitioned(&self, on: bool) {
        self.faults.drop_up.store(on, Ordering::SeqCst);
        self.faults.drop_down.store(on, Ordering::SeqCst);
    }

    /// Delay every forwarded frame by `ms` milliseconds (0 disables).
    pub fn set_delay_ms(&self, ms: u64) {
        self.faults.delay_ms.store(ms, Ordering::SeqCst);
    }

    /// While set, each pump holds one frame back and emits it *after* the
    /// next frame of the same direction — pairwise reordering. A held
    /// frame with no successor is flushed after one [`TICK`].
    pub fn set_reorder(&self, on: bool) {
        self.faults.reorder.store(on, Ordering::SeqCst);
    }

    /// Corrupt the next frame forwarded in `dir` (its version byte is
    /// replaced with garbage; length prefix stays valid, so the receiver
    /// sees a well-framed but undecodable body).
    pub fn corrupt_next(&self, dir: Direction) {
        match dir {
            Direction::Up => self.faults.corrupt_next_up.store(true, Ordering::SeqCst),
            Direction::Down => self.faults.corrupt_next_down.store(true, Ordering::SeqCst),
        }
    }

    /// Cut the link in the middle of the next frame forwarded in `dir`:
    /// half the frame's bytes are sent, then both sockets are slammed.
    pub fn truncate_next(&self, dir: Direction) {
        match dir {
            Direction::Up => self.faults.truncate_next_up.store(true, Ordering::SeqCst),
            Direction::Down => self.faults.truncate_next_down.store(true, Ordering::SeqCst),
        }
    }

    /// Kills the link and joins the pump threads.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.close();
    }
}

/// Encodes `frame` and writes it to `dst`, applying the per-frame faults.
/// Returns `false` when the pump must stop (write failure or injected
/// truncation).
fn emit(dst: &mut TcpStream, frame: &WireFrame, dir: Direction, faults: &Faults) -> bool {
    let delay = faults.delay_ms.load(Ordering::SeqCst);
    if delay > 0 {
        std::thread::sleep(Duration::from_millis(delay));
    }
    let mut buf = Vec::with_capacity(frame.payload.len() + wire::FRAME_OVERHEAD);
    if wire::append_frame(&mut buf, frame.topic, &frame.payload).is_err() {
        return true; // oversized: drop, like the real forwarder
    }
    if faults.take_corrupt(dir) {
        buf[4] = 0xEE; // stomp the version byte: framing intact, body not
    }
    if faults.take_truncate(dir) {
        let half = buf.len() / 2;
        let _ = dst.write_all(&buf[..half.max(1)]);
        return false; // pump ends; sockets are slammed by the caller
    }
    dst.write_all(&buf).is_ok()
}

/// One direction's pump: reassemble frames from `src`, apply faults,
/// re-emit to `dst`. Ends on EOF, error, injected truncation, or stop.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    dir: Direction,
    faults: &Faults,
    stop: &AtomicBool,
) {
    let _ = src.set_read_timeout(Some(TICK));
    let mut decoder = FrameDecoder::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut held: Option<WireFrame> = None;
    'outer: loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match src.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                decoder.extend(&chunk[..n]);
                let drained = decoder.drain();
                for frame in drained.frames {
                    if faults.dropping(dir) {
                        held = None; // partition swallows held frames too
                        continue;
                    }
                    if faults.reorder.load(Ordering::SeqCst) {
                        match held.take() {
                            // Swap: the newer frame overtakes the held one.
                            Some(prev) => {
                                if !emit(&mut dst, &frame, dir, faults)
                                    || !emit(&mut dst, &prev, dir, faults)
                                {
                                    break 'outer;
                                }
                            }
                            None => held = Some(frame),
                        }
                    } else if !emit(&mut dst, &frame, dir, faults) {
                        break 'outer;
                    }
                }
                if drained.fatal.is_some() {
                    break; // the proxy only speaks the real wire format
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle tick: a held frame never got a swap partner.
                if let Some(prev) = held.take() {
                    if !faults.dropping(dir) && !emit(&mut dst, &prev, dir, faults) {
                        break;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    if let Some(prev) = held.take() {
        if !faults.dropping(dir) {
            let _ = emit(&mut dst, &prev, dir, faults);
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcm_events::{remote, Federation, Latency, NodeId, Topic};
    use std::time::{Duration as StdDuration, Instant};

    const RECV: StdDuration = StdDuration::from_secs(5);

    fn bridged_pair() -> (Federation, Federation, FaultProxy) {
        let a = Federation::new(2, Latency::None, 0);
        let b = Federation::new(2, Latency::None, 0);
        let (addr, server) = remote::listen(&a, NodeId(0), "127.0.0.1:0", vec![Topic(1)]).unwrap();
        let proxy = FaultProxy::spawn(addr).unwrap();
        let client = remote::connect(&b, NodeId(0), proxy.addr(), vec![Topic(1)]).unwrap();
        // Keep the bridge handles alive for the test duration by leaking
        // them into the federations' lifetimes via Box (the test owns the
        // federations, which outlive the bridges' threads).
        std::mem::forget(server);
        std::mem::forget(client);
        (a, b, proxy)
    }

    #[test]
    fn transparent_when_no_faults_are_set() {
        let (a, b, _proxy) = bridged_pair();
        let rx = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        b.handle(NodeId(1)).unwrap().publish(Topic(1), &b"through"[..]);
        assert_eq!(rx.recv_timeout(RECV).unwrap().payload.as_ref(), b"through");
    }

    #[test]
    fn partition_blackholes_then_heals() {
        let (a, b, proxy) = bridged_pair();
        let rx = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let tx = b.handle(NodeId(1)).unwrap();

        proxy.set_partitioned(true);
        tx.publish(Topic(1), &b"lost"[..]);
        assert!(rx.recv_timeout(StdDuration::from_millis(200)).is_err(), "partitioned");

        proxy.set_partitioned(false);
        tx.publish(Topic(1), &b"healed"[..]);
        assert_eq!(rx.recv_timeout(RECV).unwrap().payload.as_ref(), b"healed");
    }

    #[test]
    fn delay_slows_frames_down() {
        let (a, b, proxy) = bridged_pair();
        let rx = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        proxy.set_delay_ms(80);
        let start = Instant::now();
        b.handle(NodeId(1)).unwrap().publish(Topic(1), &b"late"[..]);
        rx.recv_timeout(RECV).unwrap();
        assert!(start.elapsed() >= StdDuration::from_millis(75), "frame was delayed");
    }

    #[test]
    fn reorder_swaps_back_to_back_frames() {
        let (a, b, proxy) = bridged_pair();
        let rx = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        proxy.set_reorder(true);
        let tx = b.handle(NodeId(1)).unwrap();
        // A tight burst of 2: the bridge coalesces them into one write, so
        // the proxy drains both in one pass and swaps them.
        tx.publish(Topic(1), &b"first"[..]);
        tx.publish(Topic(1), &b"second"[..]);
        let one = rx.recv_timeout(RECV).unwrap();
        let two = rx.recv_timeout(RECV).unwrap();
        let got = [one.payload.to_vec(), two.payload.to_vec()];
        assert!(
            got.iter().any(|p| p == b"first") && got.iter().any(|p| p == b"second"),
            "both frames arrive exactly once: {got:?}"
        );
    }

    #[test]
    fn corrupted_frame_closes_the_receiving_bridge() {
        let (a, b, proxy) = bridged_pair();
        let _rx = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        proxy.corrupt_next(Direction::Up);
        b.handle(NodeId(1)).unwrap().publish(Topic(1), &b"mangled"[..]);
        let deadline = Instant::now() + RECV;
        while a.stats().bridge_rx_errors == 0 && Instant::now() < deadline {
            std::thread::sleep(StdDuration::from_millis(5));
        }
        assert_eq!(a.stats().bridge_rx_errors, 1, "receiver counted the corrupt frame");
        assert_eq!(a.stats().bridge_disconnects, 1, "and closed its link");
    }

    #[test]
    fn truncation_cuts_the_link_mid_frame() {
        let (a, b, proxy) = bridged_pair();
        let rx = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        proxy.truncate_next(Direction::Up);
        b.handle(NodeId(1)).unwrap().publish(Topic(1), &b"cut mid-frame"[..]);
        let deadline = Instant::now() + RECV;
        while a.stats().bridge_disconnects == 0 && Instant::now() < deadline {
            std::thread::sleep(StdDuration::from_millis(5));
        }
        let stats = a.stats();
        assert_eq!(stats.bridge_disconnects, 1, "link died");
        assert_eq!(stats.bridge_rx_errors, 0, "a truncated frame is a disconnect, not rx junk");
        assert!(rx.try_recv().is_err(), "the half frame never became an event");
    }
}
