//! Child-process management for the multi-process cluster harness.
//!
//! [`NodeProc`] wraps one `cluster_node` OS process: it spawns the child
//! with piped stdio, waits for the `READY` banner, and then exchanges one
//! JSON line per command over stdin/stdout. A background pump thread owns
//! the child's stdout so [`NodeProc::request`] can time out instead of
//! blocking forever on a wedged or killed child.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command as OsCommand, Stdio};
use std::time::Duration;

use crossbeam::channel::{self, Receiver};

use crate::protocol::{Command, Reply, READY_PREFIX};

/// How long a single command may take before the orchestrator declares the
/// child wedged. Generous: campaigns run aborting swaps whose ack timeouts
/// are a few hundred milliseconds, plus process scheduling noise under CI.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Errors from driving a `cluster_node` child.
#[derive(Debug)]
pub enum ProcError {
    /// The child could not be spawned or its stdio pipes taken.
    Spawn(String),
    /// The child's stdout closed or produced garbage where a reply was due.
    Protocol(String),
    /// No reply line arrived within [`REPLY_TIMEOUT`].
    Timeout,
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Spawn(e) => write!(f, "spawn failed: {e}"),
            ProcError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ProcError::Timeout => write!(f, "child did not reply in time"),
        }
    }
}

impl std::error::Error for ProcError {}

/// One running `cluster_node` child process.
pub struct NodeProc {
    child: Child,
    stdin: ChildStdin,
    lines: Receiver<String>,
    /// The host id the child announced in its `READY` banner.
    pub host_id: u64,
}

impl std::fmt::Debug for NodeProc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeProc").field("host_id", &self.host_id).finish()
    }
}

impl NodeProc {
    /// Spawns `binary` with the given arguments (role + options), pipes its
    /// stdio, and blocks until the child prints its `READY` banner.
    ///
    /// # Errors
    ///
    /// [`ProcError`] if the spawn fails, the banner is malformed, or the
    /// child dies before announcing readiness.
    pub fn spawn(binary: &str, args: &[&str]) -> Result<NodeProc, ProcError> {
        let mut child = OsCommand::new(binary)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| ProcError::Spawn(e.to_string()))?;
        let stdin = child.stdin.take().ok_or_else(|| ProcError::Spawn("no stdin pipe".into()))?;
        let stdout =
            child.stdout.take().ok_or_else(|| ProcError::Spawn("no stdout pipe".into()))?;

        let (tx, lines) = channel::unbounded();
        std::thread::Builder::new()
            .name("rtcm-node-stdout".into())
            .spawn(move || {
                for line in BufReader::new(stdout).lines() {
                    let Ok(line) = line else { break };
                    if tx.send(line).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn stdout pump");

        let banner = lines
            .recv_timeout(REPLY_TIMEOUT)
            .map_err(|_| ProcError::Protocol("child exited before READY".into()))?;
        let json = banner
            .strip_prefix(READY_PREFIX)
            .ok_or_else(|| ProcError::Protocol(format!("bad banner: {banner}")))?;
        let ready: Reply =
            serde_json::from_str(json).map_err(|e| ProcError::Protocol(e.to_string()))?;
        let host_id =
            ready.host_id.ok_or_else(|| ProcError::Protocol("READY without host_id".into()))?;

        Ok(NodeProc { child, stdin, lines, host_id })
    }

    /// Sends one command and waits for the matching reply line.
    ///
    /// # Errors
    ///
    /// [`ProcError`] on a dead child, malformed reply, or timeout.
    pub fn request(&mut self, cmd: &Command) -> Result<Reply, ProcError> {
        let line = serde_json::to_string(cmd).map_err(|e| ProcError::Protocol(e.to_string()))?;
        writeln!(self.stdin, "{line}").map_err(|e| ProcError::Protocol(e.to_string()))?;
        self.stdin.flush().map_err(|e| ProcError::Protocol(e.to_string()))?;
        let reply = self.lines.recv_timeout(REPLY_TIMEOUT).map_err(|_| ProcError::Timeout)?;
        serde_json::from_str(&reply).map_err(|e| ProcError::Protocol(e.to_string()))
    }

    /// Convenience: send a command and panic with context unless the child
    /// replies `ok: true`. Campaign tests use this for steps that must
    /// succeed; fault outcomes go through [`NodeProc::request`] instead.
    pub fn expect_ok(&mut self, cmd: &Command) -> Reply {
        let reply = self.request(cmd).unwrap_or_else(|e| panic!("{} failed: {e}", cmd.cmd));
        assert!(reply.ok, "{} refused: {:?}", cmd.cmd, reply.error);
        reply
    }

    /// Asks the child to exit cleanly and reaps it.
    pub fn shutdown(mut self) {
        let _ = self.request(&Command::verb("exit"));
        let _ = self.child.wait();
    }

    /// Kills the child process outright (SIGKILL) — the "process crash"
    /// fault. The OS closes the child's sockets, so peers observe a
    /// disconnect with no goodbye.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
