//! The line protocol between the orchestrator and `cluster_node` child
//! processes.
//!
//! Framing is one JSON document per line on the child's stdin (commands)
//! and stdout (replies). At startup a child prints exactly one line of the
//! form `READY {reply-json}` carrying its federation host id; after that,
//! every command line produces exactly one reply line, in order.
//!
//! Commands and replies are deliberately one flat struct each (optional
//! fields unused by a given command stay `None`): the vendored serde
//! stand-in round-trips plain structs, and a flat shape keeps the child
//! loop a simple match on [`Command::cmd`].

use serde::{Deserialize, Serialize};

use rtcm_rt::SystemReport;

/// Marker prefix of a child's startup line.
pub const READY_PREFIX: &str = "READY ";

/// One command sent to a `cluster_node` child.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Command {
    /// The verb: `listen`, `connect`, `expect-voter`, `drop-voter`,
    /// `swap`, `submit`, `hold`, `services`, `report`, `oam`, `exit`.
    pub cmd: String,
    /// `connect`: the address to dial (`127.0.0.1:port`).
    pub addr: Option<String>,
    /// `expect-voter` / `drop-voter`: the remote host id.
    pub host_id: Option<u64>,
    /// `swap`: the target `ServiceConfig` label (e.g. `J_J_J`).
    pub target: Option<String>,
    /// `submit`: number of jobs to submit (task 0, ascending sequence).
    pub count: Option<u64>,
    /// `hold`: whether the member should simulate a partitioned host.
    pub value: Option<bool>,
}

impl Command {
    /// A command with only the verb set.
    #[must_use]
    pub fn verb(cmd: &str) -> Self {
        Command { cmd: cmd.to_string(), ..Command::default() }
    }
}

/// One reply from a `cluster_node` child (also the payload of `READY`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Reply {
    /// Whether the command succeeded.
    pub ok: bool,
    /// Failure detail when `ok` is false (e.g. a swap abort reason).
    pub error: Option<String>,
    /// `READY`: the child federation's host id.
    pub host_id: Option<u64>,
    /// `listen`: the freshly bound gateway port. `oam`: the freshly bound
    /// scrape-endpoint port.
    pub port: Option<u16>,
    /// `swap` / `services`: the current `ServiceConfig` label.
    pub label: Option<String>,
    /// Member `report`: prepares acked.
    pub acks: Option<u64>,
    /// Member `report`: prepares vetoed.
    pub nacks: Option<u64>,
    /// Member `report`: whether a fence is currently standing.
    pub fenced: Option<bool>,
    /// Member `report`: labels of configs whose commits were witnessed.
    pub commits: Option<Vec<String>>,
    /// Member `report`: corrupt frames seen by this member's bridges.
    pub bridge_rx_errors: Option<u64>,
    /// Member `report`: bridge links torn down at this member.
    pub bridge_disconnects: Option<u64>,
    /// Coordinator `report`: the full runtime report (includes the
    /// federation's bridge counters and the reconfig abort breakdown).
    pub report: Option<SystemReport>,
}

impl Reply {
    /// A bare success reply.
    #[must_use]
    pub fn success() -> Self {
        Reply { ok: true, ..Reply::default() }
    }

    /// A failure reply with detail.
    #[must_use]
    pub fn failure(error: impl Into<String>) -> Self {
        Reply { ok: false, error: Some(error.into()), ..Reply::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_round_trips() {
        let mut cmd = Command::verb("swap");
        cmd.target = Some("J_J_J".into());
        let line = serde_json::to_string(&cmd).unwrap();
        let back: Command = serde_json::from_str(&line).unwrap();
        assert_eq!(back.cmd, "swap");
        assert_eq!(back.target.as_deref(), Some("J_J_J"));
        assert_eq!(back.host_id, None);
    }

    #[test]
    fn reply_round_trips_with_report() {
        let mut reply = Reply::success();
        let mut report = SystemReport::default();
        report.reconfig_abort_reasons.record(rtcm_rt::ReconfigAbortReason::AckTimeout);
        report.bridge_rx_errors = 2;
        reply.report = Some(report);
        reply.commits = Some(vec!["J_J_J".into(), "T_T_T".into()]);
        let line = serde_json::to_string(&reply).unwrap();
        let back: Reply = serde_json::from_str(&line).unwrap();
        assert!(back.ok);
        let report = back.report.unwrap();
        assert_eq!(report.reconfig_abort_reasons.ack_timeout, 1);
        assert_eq!(report.bridge_rx_errors, 2);
        assert_eq!(back.commits.unwrap().len(), 2);
    }

    #[test]
    fn failure_carries_detail() {
        let line = serde_json::to_string(&Reply::failure("AckTimeout")).unwrap();
        let back: Reply = serde_json::from_str(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("AckTimeout"));
    }
}
